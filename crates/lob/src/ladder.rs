//! The contiguous price-ladder book: the zero-steady-state-allocation
//! resting book behind the hot path.
//!
//! [`ReferenceBook`](crate::book::ReferenceBook) keeps each side in a
//! `BTreeMap<Price, VecDeque<Order>>` — clear, but every level lives behind
//! a pointer chase and every snapshot walks tree nodes. Futures and
//! equities tick in a narrow price band around the last trade, so
//! [`PriceLadder`] instead stores levels in one contiguous array indexed by
//! tick offset from a moving origin (the JAX-LOB layout, arXiv:2308.13289):
//! best-price lookup is an index read, depth iteration is a linear scan,
//! and the only allocations left are range growth when prices escape the
//! current band — which settles after warm-up.
//!
//! Resting orders live in [`OrderArena`], a slab with an intrusive free
//! list; each level slot holds an intrusive doubly-linked FIFO of arena
//! indices, so insert/cancel/fill touch a handful of cache lines and
//! recycle nodes instead of allocating.

use crate::book::LevelView;
use crate::hash::IdHashBuilder;
use crate::order::Order;
use crate::snapshot::LobSnapshot;
use crate::store::BookStore;
use crate::types::{OrderId, Price, Qty, Side, Timestamp};
use std::collections::HashMap;

/// Null link / empty-slot sentinel for arena indices.
const NIL: u32 = u32::MAX;

/// Initial ladder span in ticks; sized so a session's normal price band
/// never forces a rehome.
const INITIAL_SPAN: usize = 256;

/// One price level: aggregate totals plus an intrusive FIFO of arena nodes.
#[derive(Debug, Clone, Copy)]
struct LevelSlot {
    /// Aggregate resting quantity at the level.
    total: Qty,
    /// Number of resting orders (maintained by the order-level API only).
    orders: u32,
    /// True while the level exists. Kept separate from `total` so the
    /// aggregate API can mirror map semantics where a level may briefly
    /// exist with zero displayed quantity.
    present: bool,
    /// Arena index of the oldest resting order, or `NIL`.
    head: u32,
    /// Arena index of the newest resting order, or `NIL`.
    tail: u32,
}

impl LevelSlot {
    const EMPTY: LevelSlot = LevelSlot {
        total: Qty::ZERO,
        orders: 0,
        present: false,
        head: NIL,
        tail: NIL,
    };
}

/// One side of the book as a contiguous array of price levels.
///
/// `slots[i]` is the level at price `origin + i`. The occupied band is
/// tracked by tight `[lo, hi]` indices, which double as the best-price
/// cursors: the best bid is `hi`, the best ask is `lo`. Vacating an edge
/// level rescans toward worse prices, bounded by the band — the
/// "incrementally maintained best + depth cursor" scheme.
///
/// Out-of-band prices trigger the only allocating paths: a *rehome* copies
/// the occupied band into a larger array (geometric growth, so a session
/// settles after warm-up), and an empty ladder simply re-centers its
/// origin on the next price for free.
#[derive(Debug, Clone)]
pub struct PriceLadder {
    side: Side,
    slots: Vec<LevelSlot>,
    /// Price (in ticks) of `slots[0]`.
    origin: i64,
    /// Lowest occupied slot index; valid only when `occupied > 0`.
    lo: usize,
    /// Highest occupied slot index; valid only when `occupied > 0`.
    hi: usize,
    /// Number of occupied (present) levels.
    occupied: usize,
}

impl PriceLadder {
    /// Creates an empty ladder for `side`. No slots are allocated until the
    /// first level arrives.
    pub fn new(side: Side) -> Self {
        PriceLadder {
            side,
            slots: Vec::new(),
            origin: 0,
            lo: 0,
            hi: 0,
            occupied: 0,
        }
    }

    /// The side this ladder stores.
    #[inline]
    pub fn side(&self) -> Side {
        self.side
    }

    /// Number of occupied price levels.
    #[inline]
    pub fn level_count(&self) -> usize {
        self.occupied
    }

    /// True when no levels are occupied.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }

    /// Best (most aggressive) occupied price, if any.
    #[inline]
    pub fn best_price(&self) -> Option<Price> {
        self.best_index().map(|i| self.price_of(i))
    }

    /// Aggregate quantity at `price`, zero if the level is absent.
    #[inline]
    pub fn qty_at(&self, price: Price) -> Qty {
        match self.index_of(price) {
            Some(i) if self.slots[i].present => self.slots[i].total,
            _ => Qty::ZERO,
        }
    }

    /// True if a level exists at `price` (even with zero quantity).
    #[inline]
    pub fn level_exists(&self, price: Price) -> bool {
        matches!(self.index_of(price), Some(i) if self.slots[i].present)
    }

    /// Visits the best `depth` occupied levels, most aggressive first,
    /// without allocating.
    #[inline]
    pub fn for_each_level<F: FnMut(LevelView)>(&self, depth: usize, mut f: F) {
        if self.occupied == 0 || depth == 0 {
            return;
        }
        let mut remaining = depth;
        match self.side {
            Side::Bid => {
                let mut i = self.hi;
                loop {
                    let slot = &self.slots[i];
                    if slot.present {
                        f(self.view_of(i, slot));
                        remaining -= 1;
                        if remaining == 0 {
                            return;
                        }
                    }
                    if i == self.lo {
                        return;
                    }
                    i -= 1;
                }
            }
            Side::Ask => {
                for i in self.lo..=self.hi {
                    let slot = &self.slots[i];
                    if slot.present {
                        f(self.view_of(i, slot));
                        remaining -= 1;
                        if remaining == 0 {
                            return;
                        }
                    }
                }
            }
        }
    }

    /// Adds `qty` to the level at `price`, creating it if absent. The
    /// aggregate-only entry point used by market-data mirrors; it does not
    /// maintain per-level order counts.
    #[inline]
    pub fn deposit(&mut self, price: Price, qty: Qty) {
        let i = self.ensure_index(price);
        if !self.slots[i].present {
            self.occupy(i);
        }
        self.slots[i].total += qty;
    }

    /// Subtracts `qty` (saturating) from the level at `price`, removing the
    /// level when its quantity reaches zero. A no-op on absent levels.
    #[inline]
    pub fn withdraw(&mut self, price: Price, qty: Qty) {
        let Some(i) = self.index_of(price) else {
            return;
        };
        if !self.slots[i].present {
            return;
        }
        let left = self.slots[i].total.saturating_sub(qty);
        self.slots[i].total = left;
        if left.is_zero() {
            self.vacate(i);
        }
    }

    /// Replaces an `old` contribution with `new` at `price`
    /// (`total − old + new`, saturating), removing the level at zero. A
    /// no-op on absent levels.
    #[inline]
    pub fn rescale(&mut self, price: Price, old: Qty, new: Qty) {
        let Some(i) = self.index_of(price) else {
            return;
        };
        if !self.slots[i].present {
            return;
        }
        let left = self.slots[i].total.saturating_sub(old) + new;
        self.slots[i].total = left;
        if left.is_zero() {
            self.vacate(i);
        }
    }

    #[inline]
    fn view_of(&self, idx: usize, slot: &LevelSlot) -> LevelView {
        LevelView {
            price: self.price_of(idx),
            qty: slot.total,
            orders: slot.orders as usize,
        }
    }

    #[inline]
    fn price_of(&self, idx: usize) -> Price {
        Price::new(self.origin + idx as i64)
    }

    #[inline]
    fn best_index(&self) -> Option<usize> {
        if self.occupied == 0 {
            None
        } else {
            Some(match self.side {
                Side::Bid => self.hi,
                Side::Ask => self.lo,
            })
        }
    }

    #[inline]
    fn index_of(&self, price: Price) -> Option<usize> {
        let off = price.ticks() - self.origin;
        if off >= 0 && (off as usize) < self.slots.len() {
            Some(off as usize)
        } else {
            None
        }
    }

    /// Slot index for `price`, growing or rehoming the ladder when the
    /// price falls outside the current band. This is the only allocating
    /// path; once the band covers the session's price range it is never
    /// taken again.
    fn ensure_index(&mut self, price: Price) -> usize {
        if let Some(i) = self.index_of(price) {
            return i;
        }
        let ticks = price.ticks();
        if self.occupied == 0 {
            // Nothing to preserve: re-center the (already empty) slots on
            // the new price, allocating only if this is the first use.
            if self.slots.is_empty() {
                self.slots.resize(INITIAL_SPAN, LevelSlot::EMPTY);
            }
            self.origin = ticks - self.slots.len() as i64 / 2;
            return (ticks - self.origin) as usize;
        }
        // Rehome: copy the occupied band into a larger array whose span
        // covers both the band and the new price, with headroom on each
        // side. Growth is geometric so repeated excursions amortize.
        let band_lo = self.origin + self.lo as i64;
        let band_hi = self.origin + self.hi as i64;
        let new_lo = band_lo.min(ticks);
        let new_hi = band_hi.max(ticks);
        let needed = (new_hi - new_lo + 1) as usize;
        let span = needed.max(self.slots.len().saturating_mul(2));
        let pad = (span - needed) / 2;
        let new_origin = new_lo - pad as i64;
        let mut slots = vec![LevelSlot::EMPTY; span];
        let delta = self.origin - new_origin;
        for i in self.lo..=self.hi {
            slots[(i as i64 + delta) as usize] = self.slots[i];
        }
        self.slots = slots;
        self.origin = new_origin;
        self.lo = (self.lo as i64 + delta) as usize;
        self.hi = (self.hi as i64 + delta) as usize;
        (ticks - self.origin) as usize
    }

    /// Marks `idx` occupied and tightens the band / best cursors.
    #[inline]
    fn occupy(&mut self, idx: usize) {
        self.slots[idx].present = true;
        if self.occupied == 0 {
            self.lo = idx;
            self.hi = idx;
        } else {
            if idx < self.lo {
                self.lo = idx;
            }
            if idx > self.hi {
                self.hi = idx;
            }
        }
        self.occupied += 1;
    }

    /// Clears `idx` and re-tightens the band. When an edge (and therefore
    /// possibly the best price) vacates, scan toward worse prices for the
    /// next occupied level — bounded by the band width.
    #[inline]
    fn vacate(&mut self, idx: usize) {
        self.slots[idx] = LevelSlot::EMPTY;
        self.occupied -= 1;
        if self.occupied == 0 {
            self.lo = 0;
            self.hi = 0;
            return;
        }
        if idx == self.lo {
            let mut i = idx + 1;
            while !self.slots[i].present {
                i += 1;
            }
            self.lo = i;
        } else if idx == self.hi {
            let mut i = idx - 1;
            while !self.slots[i].present {
                i -= 1;
            }
            self.hi = i;
        }
    }
}

/// An intrusive doubly-linked node in the order slab.
#[derive(Debug, Clone, Copy)]
struct OrderNode {
    order: Order,
    prev: u32,
    next: u32,
}

/// Slab storage for resting orders with an intrusive free list: freed nodes
/// are threaded through their `next` links and recycled before the slab
/// grows, so steady-state order churn never allocates.
#[derive(Debug, Clone)]
struct OrderArena {
    nodes: Vec<OrderNode>,
    free_head: u32,
}

impl OrderArena {
    fn new() -> Self {
        OrderArena {
            nodes: Vec::new(),
            free_head: NIL,
        }
    }

    #[inline]
    fn alloc(&mut self, order: Order) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            let node = &mut self.nodes[idx as usize];
            self.free_head = node.next;
            *node = OrderNode {
                order,
                prev: NIL,
                next: NIL,
            };
            idx
        } else {
            let idx = self.nodes.len() as u32;
            self.nodes.push(OrderNode {
                order,
                prev: NIL,
                next: NIL,
            });
            idx
        }
    }

    #[inline]
    fn free(&mut self, idx: u32) {
        let node = &mut self.nodes[idx as usize];
        node.prev = NIL;
        node.next = self.free_head;
        self.free_head = idx;
    }
}

/// The hot-path limit order book: two [`PriceLadder`]s over a shared
/// [`OrderArena`], plus an id → arena-index map.
///
/// Behaviorally identical to [`ReferenceBook`](crate::book::ReferenceBook)
/// — same price/time priority, same panics, same snapshots — which the
/// differential suite in `tests/book_equivalence.rs` pins. The difference
/// is mechanical: levels are array slots, FIFOs are intrusive links, and
/// after the price band and slab warm up, no operation allocates.
#[derive(Debug, Clone)]
pub struct LadderBook {
    bids: PriceLadder,
    asks: PriceLadder,
    arena: OrderArena,
    /// Locates a resting order's arena node by id.
    index: HashMap<OrderId, u32, IdHashBuilder>,
}

impl Default for LadderBook {
    fn default() -> Self {
        Self::new()
    }
}

impl LadderBook {
    /// Creates an empty book.
    pub fn new() -> Self {
        LadderBook {
            bids: PriceLadder::new(Side::Bid),
            asks: PriceLadder::new(Side::Ask),
            arena: OrderArena::new(),
            index: HashMap::default(),
        }
    }

    /// Number of resting orders across both sides.
    #[inline]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no orders rest on either side.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Highest resting bid price, if any.
    #[inline]
    pub fn best_bid(&self) -> Option<Price> {
        self.bids.best_price()
    }

    /// Lowest resting ask price, if any.
    #[inline]
    pub fn best_ask(&self) -> Option<Price> {
        self.asks.best_price()
    }

    /// Mid price in half-ticks (`bid + ask`), or `None` if either side is
    /// empty. Returned doubled so that it stays an exact integer.
    #[inline]
    pub fn mid_price_x2(&self) -> Option<i64> {
        Some(self.best_bid()?.ticks() + self.best_ask()?.ticks())
    }

    /// Bid/ask spread in ticks, or `None` if either side is empty.
    #[inline]
    pub fn spread(&self) -> Option<i64> {
        Some(self.best_ask()? - self.best_bid()?)
    }

    /// True if the book is *crossed* (best bid >= best ask).
    #[inline]
    pub fn is_crossed(&self) -> bool {
        match (self.best_bid(), self.best_ask()) {
            (Some(b), Some(a)) => b >= a,
            _ => false,
        }
    }

    /// Aggregate resting quantity at `price` on `side`.
    #[inline]
    pub fn qty_at(&self, side: Side, price: Price) -> Qty {
        self.ladder(side).qty_at(price)
    }

    /// Looks up a resting order by id (O(1) via the arena, unlike the
    /// reference book's level scan — same result, ids are unique).
    #[inline]
    pub fn order(&self, id: OrderId) -> Option<&Order> {
        let &node = self.index.get(&id)?;
        Some(&self.arena.nodes[node as usize].order)
    }

    /// True if an order with `id` currently rests on the book.
    #[inline]
    pub fn contains(&self, id: OrderId) -> bool {
        self.index.contains_key(&id)
    }

    /// Visits the best `depth` levels of `side`, most aggressive first,
    /// without allocating.
    #[inline]
    pub fn for_each_level<F: FnMut(LevelView)>(&self, side: Side, depth: usize, f: F) {
        self.ladder(side).for_each_level(depth, f);
    }

    /// Iterates the best `depth` levels of `side` from most to least
    /// aggressive. Thin allocating wrapper over [`Self::for_each_level`].
    pub fn levels(&self, side: Side, depth: usize) -> Vec<LevelView> {
        let mut out = Vec::with_capacity(depth.min(self.ladder(side).level_count()));
        self.for_each_level(side, depth, |v| out.push(v));
        out
    }

    /// Builds the `depth`-level snapshot consumed by the trading pipeline.
    pub fn snapshot(&self, depth: usize, ts: Timestamp) -> LobSnapshot {
        let mut out = LobSnapshot::default();
        self.snapshot_into(depth, ts, &mut out);
        out
    }

    /// Refills `out` with the `depth`-level snapshot, reusing its level
    /// buffers so steady-state snapshotting never allocates.
    pub fn snapshot_into(&self, depth: usize, ts: Timestamp, out: &mut LobSnapshot) {
        BookStore::snapshot_into(self, depth, ts, out);
    }

    #[inline]
    pub(crate) fn insert(&mut self, order: Order) {
        let node = self.arena.alloc(order);
        let prior = self.index.insert(order.id, node);
        assert!(prior.is_none(), "duplicate order id {}", order.id);
        let (ladder, arena) = self.split_mut(order.side);
        let i = ladder.ensure_index(order.price);
        if !ladder.slots[i].present {
            ladder.occupy(i);
        }
        let slot = &mut ladder.slots[i];
        if slot.tail == NIL {
            slot.head = node;
        } else {
            arena.nodes[slot.tail as usize].next = node;
            arena.nodes[node as usize].prev = slot.tail;
        }
        slot.tail = node;
        slot.total += order.remaining;
        slot.orders += 1;
    }

    #[inline]
    pub(crate) fn remove(&mut self, id: OrderId) -> Option<Order> {
        let node = self.index.remove(&id)?;
        let order = self.arena.nodes[node as usize].order;
        let (ladder, arena) = self.split_mut(order.side);
        let i = ladder
            .index_of(order.price)
            .expect("resting order price inside ladder band");
        let (prev, next) = {
            let n = &arena.nodes[node as usize];
            (n.prev, n.next)
        };
        let slot = &mut ladder.slots[i];
        if prev == NIL {
            slot.head = next;
        } else {
            arena.nodes[prev as usize].next = next;
        }
        let slot = &mut ladder.slots[i];
        if next == NIL {
            slot.tail = prev;
        } else {
            arena.nodes[next as usize].prev = prev;
        }
        slot.total -= order.remaining;
        slot.orders -= 1;
        if slot.orders == 0 {
            ladder.vacate(i);
        }
        self.arena.free(node);
        Some(order)
    }

    #[inline]
    pub(crate) fn front(&self, side: Side) -> Option<&Order> {
        let ladder = self.ladder(side);
        let i = ladder.best_index()?;
        let head = ladder.slots[i].head;
        debug_assert_ne!(head, NIL, "occupied level has a queue head");
        Some(&self.arena.nodes[head as usize].order)
    }

    #[inline]
    pub(crate) fn fill_front(&mut self, side: Side, fill: Qty) -> OrderId {
        let (ladder, arena) = self.split_mut(side);
        let i = ladder.best_index().expect("fill_front on empty side");
        let head = ladder.slots[i].head;
        let front = &mut arena.nodes[head as usize];
        assert!(
            fill <= front.order.remaining,
            "over-fill of {}",
            front.order.id
        );
        front.order.remaining -= fill;
        let id = front.order.id;
        let emptied = front.order.remaining.is_zero();
        let next = front.next;
        let slot = &mut ladder.slots[i];
        slot.total -= fill;
        if emptied {
            slot.head = next;
            if next == NIL {
                slot.tail = NIL;
            } else {
                arena.nodes[next as usize].prev = NIL;
            }
            slot.orders -= 1;
            if slot.orders == 0 {
                ladder.vacate(i);
            }
            self.index.remove(&id);
            self.arena.free(head);
        }
        id
    }

    #[inline]
    pub(crate) fn crossable_qty(&self, side: Side, limit: Price) -> Qty {
        let ladder = self.ladder(side);
        let Some(best) = ladder.best_index() else {
            return Qty::ZERO;
        };
        let mut sum = Qty::ZERO;
        match side {
            Side::Bid => {
                let mut i = best;
                loop {
                    let slot = &ladder.slots[i];
                    if slot.present {
                        if !side.crosses(ladder.price_of(i), limit) {
                            break;
                        }
                        sum += slot.total;
                    }
                    if i == ladder.lo {
                        break;
                    }
                    i -= 1;
                }
            }
            Side::Ask => {
                for i in best..=ladder.hi {
                    let slot = &ladder.slots[i];
                    if slot.present {
                        if !side.crosses(ladder.price_of(i), limit) {
                            break;
                        }
                        sum += slot.total;
                    }
                }
            }
        }
        sum
    }

    #[inline]
    fn ladder(&self, side: Side) -> &PriceLadder {
        match side {
            Side::Bid => &self.bids,
            Side::Ask => &self.asks,
        }
    }

    #[inline]
    fn split_mut(&mut self, side: Side) -> (&mut PriceLadder, &mut OrderArena) {
        match side {
            Side::Bid => (&mut self.bids, &mut self.arena),
            Side::Ask => (&mut self.asks, &mut self.arena),
        }
    }
}

impl BookStore for LadderBook {
    #[inline]
    fn len(&self) -> usize {
        LadderBook::len(self)
    }

    #[inline]
    fn best_bid(&self) -> Option<Price> {
        LadderBook::best_bid(self)
    }

    #[inline]
    fn best_ask(&self) -> Option<Price> {
        LadderBook::best_ask(self)
    }

    #[inline]
    fn qty_at(&self, side: Side, price: Price) -> Qty {
        LadderBook::qty_at(self, side, price)
    }

    #[inline]
    fn order(&self, id: OrderId) -> Option<&Order> {
        LadderBook::order(self, id)
    }

    #[inline]
    fn contains(&self, id: OrderId) -> bool {
        LadderBook::contains(self, id)
    }

    #[inline]
    fn for_each_level<F: FnMut(LevelView)>(&self, side: Side, depth: usize, f: F) {
        LadderBook::for_each_level(self, side, depth, f);
    }

    #[inline]
    fn insert(&mut self, order: Order) {
        LadderBook::insert(self, order);
    }

    #[inline]
    fn remove(&mut self, id: OrderId) -> Option<Order> {
        LadderBook::remove(self, id)
    }

    #[inline]
    fn front(&self, side: Side) -> Option<&Order> {
        LadderBook::front(self, side)
    }

    #[inline]
    fn fill_front(&mut self, side: Side, fill: Qty) -> OrderId {
        LadderBook::fill_front(self, side, fill)
    }

    #[inline]
    fn crossable_qty(&self, side: Side, limit: Price) -> Qty {
        LadderBook::crossable_qty(self, side, limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Timestamp;

    fn order(id: u64, side: Side, price: i64, qty: u64, seq: u64) -> Order {
        Order {
            id: OrderId::new(id),
            side,
            price: Price::new(price),
            remaining: Qty::new(qty),
            original: Qty::new(qty),
            arrival: Timestamp::from_nanos(seq),
            seq,
        }
    }

    #[test]
    fn ladder_tracks_best_and_band() {
        let mut ladder = PriceLadder::new(Side::Bid);
        assert!(ladder.is_empty());
        assert_eq!(ladder.best_price(), None);
        ladder.deposit(Price::new(100), Qty::new(5));
        ladder.deposit(Price::new(98), Qty::new(3));
        ladder.deposit(Price::new(102), Qty::new(1));
        assert_eq!(ladder.best_price(), Some(Price::new(102)));
        assert_eq!(ladder.level_count(), 3);
        assert_eq!(ladder.qty_at(Price::new(98)), Qty::new(3));
        ladder.withdraw(Price::new(102), Qty::new(1));
        assert_eq!(ladder.best_price(), Some(Price::new(100)), "best rescans");
        ladder.withdraw(Price::new(98), Qty::new(3));
        ladder.withdraw(Price::new(100), Qty::new(5));
        assert!(ladder.is_empty());
        assert_eq!(ladder.best_price(), None);
    }

    #[test]
    fn ladder_orders_levels_by_aggression() {
        let mut asks = PriceLadder::new(Side::Ask);
        for p in [105, 101, 103] {
            asks.deposit(Price::new(p), Qty::new(1));
        }
        let mut seen = Vec::new();
        asks.for_each_level(10, |v| seen.push(v.price.ticks()));
        assert_eq!(seen, vec![101, 103, 105]);
        seen.clear();
        asks.for_each_level(2, |v| seen.push(v.price.ticks()));
        assert_eq!(seen, vec![101, 103], "depth limits the visit");
    }

    #[test]
    fn ladder_rehomes_on_out_of_band_price() {
        let mut ladder = PriceLadder::new(Side::Bid);
        ladder.deposit(Price::new(10_000), Qty::new(1));
        // Far outside the initial span in both directions.
        ladder.deposit(Price::new(10_000 + 5_000), Qty::new(2));
        ladder.deposit(Price::new(10_000 - 5_000), Qty::new(3));
        assert_eq!(ladder.qty_at(Price::new(10_000)), Qty::new(1));
        assert_eq!(ladder.qty_at(Price::new(15_000)), Qty::new(2));
        assert_eq!(ladder.qty_at(Price::new(5_000)), Qty::new(3));
        assert_eq!(ladder.best_price(), Some(Price::new(15_000)));
        assert_eq!(ladder.level_count(), 3);
    }

    #[test]
    fn empty_ladder_recenters_for_free() {
        let mut ladder = PriceLadder::new(Side::Ask);
        ladder.deposit(Price::new(100), Qty::new(1));
        ladder.withdraw(Price::new(100), Qty::new(1));
        let span = ladder.slots.len();
        // A wildly different price on an empty ladder must not grow slots.
        ladder.deposit(Price::new(1_000_000), Qty::new(1));
        assert_eq!(ladder.slots.len(), span);
        assert_eq!(ladder.best_price(), Some(Price::new(1_000_000)));
    }

    #[test]
    fn rescale_mirrors_map_arithmetic() {
        let mut ladder = PriceLadder::new(Side::Bid);
        ladder.deposit(Price::new(100), Qty::new(10));
        ladder.rescale(Price::new(100), Qty::new(10), Qty::new(4));
        assert_eq!(ladder.qty_at(Price::new(100)), Qty::new(4));
        ladder.rescale(Price::new(100), Qty::new(4), Qty::ZERO);
        assert!(!ladder.level_exists(Price::new(100)));
        // Rescale and withdraw on absent levels are no-ops.
        ladder.rescale(Price::new(100), Qty::new(1), Qty::new(2));
        ladder.withdraw(Price::new(100), Qty::new(1));
        assert!(ladder.is_empty());
    }

    #[test]
    fn zero_qty_level_exists_until_touched() {
        let mut ladder = PriceLadder::new(Side::Ask);
        ladder.deposit(Price::new(100), Qty::ZERO);
        assert!(ladder.level_exists(Price::new(100)));
        assert_eq!(ladder.best_price(), Some(Price::new(100)));
        ladder.withdraw(Price::new(100), Qty::ZERO);
        assert!(!ladder.level_exists(Price::new(100)));
    }

    #[test]
    fn book_fifo_and_recycling() {
        let mut book = LadderBook::new();
        book.insert(order(1, Side::Bid, 99, 5, 1));
        book.insert(order(2, Side::Bid, 99, 7, 2));
        assert_eq!(book.front(Side::Bid).unwrap().id, OrderId::new(1));
        assert_eq!(book.fill_front(Side::Bid, Qty::new(5)), OrderId::new(1));
        assert_eq!(book.front(Side::Bid).unwrap().id, OrderId::new(2));
        let slab = book.arena.nodes.len();
        // The freed node is recycled: inserting again must not grow the slab.
        book.insert(order(3, Side::Bid, 98, 1, 3));
        assert_eq!(book.arena.nodes.len(), slab);
        assert_eq!(book.len(), 2);
    }

    #[test]
    fn book_remove_from_middle_of_queue() {
        let mut book = LadderBook::new();
        for (id, seq) in [(1u64, 1u64), (2, 2), (3, 3)] {
            book.insert(order(id, Side::Ask, 101, 2, seq));
        }
        let removed = book.remove(OrderId::new(2)).unwrap();
        assert_eq!(removed.id, OrderId::new(2));
        assert_eq!(book.qty_at(Side::Ask, Price::new(101)), Qty::new(4));
        assert_eq!(book.fill_front(Side::Ask, Qty::new(2)), OrderId::new(1));
        assert_eq!(book.front(Side::Ask).unwrap().id, OrderId::new(3));
        assert!(book.remove(OrderId::new(2)).is_none(), "idempotent");
    }

    #[test]
    #[should_panic(expected = "duplicate order id")]
    fn duplicate_insert_panics() {
        let mut book = LadderBook::new();
        book.insert(order(1, Side::Bid, 99, 5, 1));
        book.insert(order(1, Side::Bid, 98, 5, 2));
    }
}
