//! The storage contract behind the matching engine.
//!
//! [`BookStore`] abstracts over the two resting-book implementations in
//! this crate — the cache-friendly [`LadderBook`](crate::ladder::LadderBook)
//! used on the hot path and the map-based
//! [`ReferenceBook`](crate::book::ReferenceBook) kept as the behavioral
//! oracle — so the matching engine and the differential property tests can
//! drive either through one interface.

use crate::book::LevelView;
use crate::order::Order;
use crate::snapshot::{LobSnapshot, SnapshotLevel};
use crate::types::{OrderId, Price, Qty, Side, Timestamp};

/// Resting-order storage in price/time priority.
///
/// The mutating methods (`insert`, `remove`, `fill_front`) are
/// exchange-internal: they are normally driven by
/// [`MatchingEngine`](crate::matching::MatchingEngine), which enforces the
/// never-crossed invariant around them. Read methods mirror the public book
/// API.
///
/// `for_each_level` is the allocation-free primitive every depth query is
/// built on; `levels`/`snapshot` are thin wrappers that collect it into
/// containers for callers that want owned views.
pub trait BookStore: Default {
    /// Number of resting orders across both sides.
    fn len(&self) -> usize;

    /// Highest resting bid price, if any.
    fn best_bid(&self) -> Option<Price>;

    /// Lowest resting ask price, if any.
    fn best_ask(&self) -> Option<Price>;

    /// Aggregate resting quantity at `price` on `side`.
    fn qty_at(&self, side: Side, price: Price) -> Qty;

    /// Looks up a resting order by id.
    fn order(&self, id: OrderId) -> Option<&Order>;

    /// True if an order with `id` currently rests on the book.
    fn contains(&self, id: OrderId) -> bool;

    /// Visits the best `depth` levels of `side` from most to least
    /// aggressive without allocating.
    fn for_each_level<F: FnMut(LevelView)>(&self, side: Side, depth: usize, f: F);

    /// Inserts a resting order at the back of its price-level queue.
    ///
    /// # Panics
    ///
    /// Panics if an order with the same id already rests on the book; the
    /// matching engine rejects duplicates before insertion.
    fn insert(&mut self, order: Order);

    /// Removes a resting order, returning it if present.
    fn remove(&mut self, id: OrderId) -> Option<Order>;

    /// Peeks at the front (oldest) order at the best level of `side`.
    fn front(&self, side: Side) -> Option<&Order>;

    /// Reduces the front order at the best level of `side` by `fill`,
    /// removing it when fully filled. Returns the order's id.
    ///
    /// # Panics
    ///
    /// Panics if the side is empty or `fill` exceeds the front order's
    /// remaining quantity.
    fn fill_front(&mut self, side: Side, fill: Qty) -> OrderId;

    /// Total resting quantity on `side` at prices that cross `limit`
    /// (used for fill-or-kill feasibility checks).
    fn crossable_qty(&self, side: Side, limit: Price) -> Qty;

    /// True when no orders rest on either side.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Best price on `side`, if any.
    fn best(&self, side: Side) -> Option<Price> {
        match side {
            Side::Bid => self.best_bid(),
            Side::Ask => self.best_ask(),
        }
    }

    /// Mid price in half-ticks (`bid + ask`), or `None` if either side is
    /// empty. Returned doubled so that it stays an exact integer.
    fn mid_price_x2(&self) -> Option<i64> {
        Some(self.best_bid()?.ticks() + self.best_ask()?.ticks())
    }

    /// Bid/ask spread in ticks, or `None` if either side is empty.
    fn spread(&self) -> Option<i64> {
        Some(self.best_ask()? - self.best_bid()?)
    }

    /// True if the book is *crossed* (best bid >= best ask). A well-formed
    /// book maintained by the matching engine is never crossed.
    fn is_crossed(&self) -> bool {
        match (self.best_bid(), self.best_ask()) {
            (Some(b), Some(a)) => b >= a,
            _ => false,
        }
    }

    /// Collects the best `depth` levels of `side` into a `Vec`, most
    /// aggressive first. Thin allocating wrapper over `for_each_level`.
    fn levels(&self, side: Side, depth: usize) -> Vec<LevelView> {
        let mut out = Vec::with_capacity(depth.min(self.len()));
        self.for_each_level(side, depth, |v| out.push(v));
        out
    }

    /// Builds the `depth`-level snapshot consumed by the trading pipeline.
    fn snapshot(&self, depth: usize, ts: Timestamp) -> LobSnapshot {
        let mut out = LobSnapshot::default();
        self.snapshot_into(depth, ts, &mut out);
        out
    }

    /// Refills `out` with the `depth`-level snapshot, reusing its level
    /// buffers so steady-state snapshotting never allocates.
    fn snapshot_into(&self, depth: usize, ts: Timestamp, out: &mut LobSnapshot) {
        out.ts = ts;
        out.bids.clear();
        out.asks.clear();
        self.for_each_level(Side::Bid, depth, |v| {
            out.bids.push(SnapshotLevel {
                price: v.price,
                qty: v.qty,
            });
        });
        self.for_each_level(Side::Ask, depth, |v| {
            out.asks.push(SnapshotLevel {
                price: v.price,
                qty: v.qty,
            });
        });
    }

    /// Writes the DeepLOB feature row straight from the live book into
    /// `out`, bypassing the intermediate snapshot: one visitor pass per
    /// side, no allocation. Produces bit-identical output to
    /// `snapshot(depth, ts).to_features(depth)`.
    ///
    /// # Panics
    ///
    /// Panics unless `out.len() == LobSnapshot::feature_count(depth)`.
    fn write_features(&self, depth: usize, out: &mut [f32]) {
        assert_eq!(
            out.len(),
            LobSnapshot::feature_count(depth),
            "feature buffer sized for depth"
        );
        let mut n_asks = 0usize;
        let mut last_ask = 0i64;
        self.for_each_level(Side::Ask, depth, |v| {
            out[n_asks * 4] = v.price.ticks() as f32;
            out[n_asks * 4 + 1] = v.qty.contracts() as f32;
            last_ask = v.price.ticks();
            n_asks += 1;
        });
        for i in n_asks..depth {
            let pad = last_ask + (i as i64 - n_asks as i64 + 1);
            out[i * 4] = pad as f32;
            out[i * 4 + 1] = 0.0;
        }
        let mut n_bids = 0usize;
        let mut last_bid = 0i64;
        self.for_each_level(Side::Bid, depth, |v| {
            out[n_bids * 4 + 2] = v.price.ticks() as f32;
            out[n_bids * 4 + 3] = v.qty.contracts() as f32;
            last_bid = v.price.ticks();
            n_bids += 1;
        });
        for i in n_bids..depth {
            let pad = last_bid - (i as i64 - n_bids as i64 + 1);
            out[i * 4 + 2] = pad as f32;
            out[i * 4 + 3] = 0.0;
        }
    }
}
