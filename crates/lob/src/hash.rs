//! A fast, deterministic hasher for order-id indexes.
//!
//! The hot-path books key their per-order indexes by [`OrderId`] — a
//! newtype over `u64` that participants assign sequentially. SipHash's
//! DoS hardening buys nothing against a trusted exchange feed and costs
//! tens of nanoseconds per lookup, which is comparable to the entire
//! ladder update it sits next to. This module provides a Fibonacci
//! multiply-mix hasher: one `wrapping_mul` plus a fold of the high bits
//! (where the multiply concentrates entropy) into the low bits (which
//! hash tables index by).
//!
//! [`OrderId`]: crate::types::OrderId

use std::hash::{BuildHasher, Hasher};

/// `BuildHasher` for [`IdHasher`]; the zero-sized, stateless seed makes
/// hash maps keyed this way fully deterministic across runs.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IdHashBuilder;

impl BuildHasher for IdHashBuilder {
    type Hasher = IdHasher;

    fn build_hasher(&self) -> IdHasher {
        IdHasher(0)
    }
}

/// Multiply-mix hasher specialized for integer keys.
#[derive(Debug, Default, Clone, Copy)]
pub struct IdHasher(u64);

impl IdHasher {
    /// 2^64 / φ, the usual Fibonacci-hashing multiplier.
    const K: u64 = 0x9e37_79b9_7f4a_7c15;

    #[inline]
    fn mix(&mut self, n: u64) {
        let h = (self.0 ^ n).wrapping_mul(Self::K);
        self.0 = h ^ (h >> 29);
    }
}

impl Hasher for IdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-integer keys: fold 8-byte words.
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(word));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::OrderId;
    use std::collections::HashMap;
    use std::hash::BuildHasher;

    fn hash_of(id: OrderId) -> u64 {
        IdHashBuilder.hash_one(id)
    }

    #[test]
    fn sequential_ids_spread_across_buckets() {
        // Sequential ids are the common case; their hashes must differ in
        // the low bits hash tables index by.
        let low_bits: std::collections::HashSet<u64> = (0..1024u64)
            .map(|i| hash_of(OrderId::new(i)) % 1024)
            .collect();
        assert!(
            low_bits.len() > 512,
            "only {} distinct buckets",
            low_bits.len()
        );
    }

    #[test]
    fn map_round_trips_with_custom_hasher() {
        let mut map: HashMap<OrderId, u32, IdHashBuilder> = HashMap::default();
        for i in 0..10_000u64 {
            map.insert(OrderId::new(i), i as u32);
        }
        for i in (0..10_000u64).step_by(3) {
            assert_eq!(map.remove(&OrderId::new(i)), Some(i as u32));
        }
        assert_eq!(map.len(), 10_000 - 3_334);
        assert_eq!(map.get(&OrderId::new(1)), Some(&1));
    }

    #[test]
    fn hashing_is_deterministic() {
        assert_eq!(hash_of(OrderId::new(42)), hash_of(OrderId::new(42)));
        assert_ne!(hash_of(OrderId::new(42)), hash_of(OrderId::new(43)));
    }
}
