//! Order-book analytics used by trading strategies.
//!
//! The trading engine "allows HFT firms to combine the AI algorithm with
//! the conventional trading algorithms" (§III-A); these are the standard
//! microstructure signals such conventional overlays use: microprice,
//! depth-weighted imbalance, and realized tick volatility.
//!
//! Each signal comes in two forms: a snapshot-based function for replayed
//! traces, and a `book_*` variant that reads a live [`BookStore`] through
//! its `for_each_level` visitor, so strategies polling the book every tick
//! never allocate a `Vec<LevelView>` per query.

use crate::book::LevelView;
use crate::snapshot::LobSnapshot;
use crate::store::BookStore;
use crate::types::Side;

/// The microprice: the depth-weighted mid,
/// `(ask_qty·bid_px + bid_qty·ask_px) / (bid_qty + ask_qty)`.
///
/// Leans toward the side with *less* displayed size — the direction the
/// next trade is statistically likelier to push the price. `None` on a
/// one-sided or empty book.
pub fn microprice(snapshot: &LobSnapshot) -> Option<f64> {
    let bid = snapshot.best_bid()?;
    let ask = snapshot.best_ask()?;
    let bq = bid.qty.contracts() as f64;
    let aq = ask.qty.contracts() as f64;
    if bq + aq == 0.0 {
        return snapshot.mid_price();
    }
    Some((aq * bid.price.ticks() as f64 + bq * ask.price.ticks() as f64) / (bq + aq))
}

/// Multi-level depth imbalance in `[-1, 1]` over the top `depth` levels:
/// `(Σ bid_qty − Σ ask_qty) / (Σ bid_qty + Σ ask_qty)`; 0 on an empty
/// book.
pub fn depth_imbalance(snapshot: &LobSnapshot, depth: usize) -> f64 {
    let sum = |levels: &[crate::snapshot::SnapshotLevel]| -> f64 {
        levels
            .iter()
            .take(depth)
            .map(|l| l.qty.contracts() as f64)
            .sum()
    };
    let b = sum(&snapshot.bids);
    let a = sum(&snapshot.asks);
    if b + a == 0.0 {
        0.0
    } else {
        (b - a) / (b + a)
    }
}

/// Realized tick-to-tick volatility of the mid price over a window of
/// snapshots: the standard deviation of mid-price changes in ticks.
/// Returns 0 for fewer than three two-sided snapshots.
pub fn realized_tick_volatility(snapshots: &[LobSnapshot]) -> f64 {
    let mids: Vec<f64> = snapshots
        .iter()
        .filter_map(LobSnapshot::mid_price)
        .collect();
    if mids.len() < 3 {
        return 0.0;
    }
    let diffs: Vec<f64> = mids.windows(2).map(|w| w[1] - w[0]).collect();
    let mean = diffs.iter().sum::<f64>() / diffs.len() as f64;
    let var = diffs.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / diffs.len() as f64;
    var.sqrt()
}

/// The displayed quantity needed to move the price through `levels` book
/// levels on `side` (a crude market-impact estimate). `None` when the
/// book has fewer levels than requested.
pub fn quantity_to_sweep(
    snapshot: &LobSnapshot,
    side: crate::types::Side,
    levels: usize,
) -> Option<u64> {
    let book_side = match side {
        crate::types::Side::Bid => &snapshot.bids,
        crate::types::Side::Ask => &snapshot.asks,
    };
    if book_side.len() < levels {
        return None;
    }
    Some(
        book_side
            .iter()
            .take(levels)
            .map(|l| l.qty.contracts())
            .sum(),
    )
}

/// Best level of `side` read without allocating.
fn book_top<B: BookStore>(book: &B, side: Side) -> Option<LevelView> {
    let mut out = None;
    book.for_each_level(side, 1, |v| out = Some(v));
    out
}

/// [`microprice`] computed directly from a live book — no snapshot, no
/// allocation.
pub fn book_microprice<B: BookStore>(book: &B) -> Option<f64> {
    let bid = book_top(book, Side::Bid)?;
    let ask = book_top(book, Side::Ask)?;
    let bq = bid.qty.contracts() as f64;
    let aq = ask.qty.contracts() as f64;
    if bq + aq == 0.0 {
        return Some((bid.price.ticks() as f64 + ask.price.ticks() as f64) / 2.0);
    }
    Some((aq * bid.price.ticks() as f64 + bq * ask.price.ticks() as f64) / (bq + aq))
}

/// [`depth_imbalance`] computed directly from a live book via the level
/// visitor — no snapshot, no allocation.
pub fn book_depth_imbalance<B: BookStore>(book: &B, depth: usize) -> f64 {
    let sum = |side: Side| -> f64 {
        let mut total = 0.0;
        book.for_each_level(side, depth, |v| total += v.qty.contracts() as f64);
        total
    };
    let b = sum(Side::Bid);
    let a = sum(Side::Ask);
    if b + a == 0.0 {
        0.0
    } else {
        (b - a) / (b + a)
    }
}

/// [`quantity_to_sweep`] computed directly from a live book via the level
/// visitor — no snapshot, no allocation.
pub fn book_quantity_to_sweep<B: BookStore>(book: &B, side: Side, levels: usize) -> Option<u64> {
    let mut visited = 0usize;
    let mut total = 0u64;
    book.for_each_level(side, levels, |v| {
        visited += 1;
        total += v.qty.contracts();
    });
    (visited == levels).then_some(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::MatchingEngine;
    use crate::order::NewOrder;
    use crate::snapshot::SnapshotLevel;
    use crate::types::{OrderId, Price, Qty, Side, Symbol, Timestamp};

    fn snap(bid_px: i64, bid_q: u64, ask_px: i64, ask_q: u64) -> LobSnapshot {
        LobSnapshot {
            ts: Timestamp::ZERO,
            bids: vec![SnapshotLevel {
                price: Price::new(bid_px),
                qty: Qty::new(bid_q),
            }],
            asks: vec![SnapshotLevel {
                price: Price::new(ask_px),
                qty: Qty::new(ask_q),
            }],
        }
    }

    #[test]
    fn microprice_leans_toward_thin_side() {
        // Heavy bid (40) vs thin ask (10): buyers dominate, the next move
        // is up — microprice sits above mid, near the ask.
        let s = snap(99, 40, 101, 10);
        let mp = microprice(&s).unwrap();
        assert!(mp > 100.0, "mp {mp}");
        // Balanced book: microprice == mid.
        let b = snap(99, 10, 101, 10);
        assert!((microprice(&b).unwrap() - 100.0).abs() < 1e-12);
        // One-sided book: none.
        let one_sided = LobSnapshot {
            ts: Timestamp::ZERO,
            bids: vec![],
            asks: snap(99, 1, 101, 1).asks,
        };
        assert!(microprice(&one_sided).is_none());
    }

    #[test]
    fn depth_imbalance_bounds_and_sign() {
        let buyers = snap(99, 30, 101, 10);
        let imb = depth_imbalance(&buyers, 10);
        assert!(imb > 0.0 && imb <= 1.0);
        assert!((imb - 0.5).abs() < 1e-12); // (30-10)/40
        let sellers = snap(99, 10, 101, 30);
        assert!(depth_imbalance(&sellers, 10) < 0.0);
        assert_eq!(depth_imbalance(&LobSnapshot::default(), 10), 0.0);
    }

    #[test]
    fn volatility_of_constant_mid_is_zero() {
        let window: Vec<LobSnapshot> = (0..10).map(|_| snap(99, 5, 101, 5)).collect();
        assert_eq!(realized_tick_volatility(&window), 0.0);
    }

    #[test]
    fn volatility_grows_with_swings() {
        let calm: Vec<LobSnapshot> = (0..20)
            .map(|i| snap(99 + (i % 2), 5, 101 + (i % 2), 5))
            .collect();
        let wild: Vec<LobSnapshot> = (0..20)
            .map(|i| snap(99 + 5 * (i % 2), 5, 101 + 5 * (i % 2), 5))
            .collect();
        assert!(realized_tick_volatility(&wild) > realized_tick_volatility(&calm));
        assert_eq!(realized_tick_volatility(&[]), 0.0);
    }

    #[test]
    fn book_variants_match_snapshot_variants() {
        let mut e = MatchingEngine::new(Symbol::new("ESU6"));
        let t = Timestamp::from_nanos(1);
        for (i, (side, px, q)) in [
            (Side::Bid, 99, 40),
            (Side::Bid, 98, 7),
            (Side::Ask, 101, 10),
            (Side::Ask, 103, 3),
        ]
        .into_iter()
        .enumerate()
        {
            e.submit(
                NewOrder::limit(
                    OrderId::new(i as u64 + 1),
                    side,
                    Price::new(px),
                    Qty::new(q),
                ),
                t,
            );
        }
        let snap = e.book().snapshot(10, t);
        assert_eq!(book_microprice(e.book()), microprice(&snap));
        for depth in [1usize, 2, 10] {
            assert_eq!(
                book_depth_imbalance(e.book(), depth),
                depth_imbalance(&snap, depth),
                "depth {depth}"
            );
        }
        for side in [Side::Bid, Side::Ask] {
            for levels in [0usize, 1, 2, 3] {
                assert_eq!(
                    book_quantity_to_sweep(e.book(), side, levels),
                    quantity_to_sweep(&snap, side, levels),
                    "{side:?} x{levels}"
                );
            }
        }
    }

    #[test]
    fn book_variants_handle_empty_and_one_sided_books() {
        let mut e = MatchingEngine::new(Symbol::new("ESU6"));
        assert_eq!(book_microprice(e.book()), None);
        assert_eq!(book_depth_imbalance(e.book(), 10), 0.0);
        assert_eq!(book_quantity_to_sweep(e.book(), Side::Bid, 1), None);
        e.submit(
            NewOrder::limit(OrderId::new(1), Side::Bid, Price::new(99), Qty::new(5)),
            Timestamp::from_nanos(1),
        );
        assert_eq!(book_microprice(e.book()), None, "one-sided");
        assert!(book_depth_imbalance(e.book(), 10) > 0.0);
    }

    #[test]
    fn sweep_quantity_sums_levels() {
        let mut s = snap(99, 5, 101, 7);
        s.asks.push(SnapshotLevel {
            price: Price::new(102),
            qty: Qty::new(3),
        });
        assert_eq!(quantity_to_sweep(&s, Side::Ask, 2), Some(10));
        assert_eq!(quantity_to_sweep(&s, Side::Bid, 1), Some(5));
        assert_eq!(quantity_to_sweep(&s, Side::Bid, 2), None, "too shallow");
    }
}
