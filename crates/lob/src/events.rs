//! Market (tick) events emitted by the matching engine.
//!
//! Every change to the book — an add, a modify, a delete, or a trade —
//! produces one event. These are the "tick data" of the paper: the market
//! data feed serializes them (see `lt-protocol`) and the HFT system's packet
//! parser decodes them to maintain its local book (§II-A).

use crate::types::{OrderId, Price, Qty, Side, Timestamp};
use serde::{Deserialize, Serialize};

/// A book-change notification (add / modify / delete of resting liquidity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BookDelta {
    /// New resting quantity appeared at a level.
    Add {
        /// Resting order id.
        id: OrderId,
        /// Book side.
        side: Side,
        /// Level price.
        price: Price,
        /// Added quantity.
        qty: Qty,
    },
    /// A resting order's remaining quantity decreased (partial fill or
    /// cancel-replace downsize).
    Modify {
        /// Resting order id.
        id: OrderId,
        /// Book side.
        side: Side,
        /// Level price.
        price: Price,
        /// New remaining quantity.
        remaining: Qty,
    },
    /// A resting order left the book (filled or cancelled).
    Delete {
        /// Resting order id.
        id: OrderId,
        /// Book side.
        side: Side,
        /// Level price.
        price: Price,
    },
}

/// A completed trade between an incoming order and a resting order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trade {
    /// The aggressing (incoming) order.
    pub taker: OrderId,
    /// The resting order that was hit.
    pub maker: OrderId,
    /// Execution price (the resting order's price).
    pub price: Price,
    /// Executed quantity.
    pub qty: Qty,
    /// Side of the *aggressor* — `Bid` means a buyer lifted the offer.
    pub aggressor: Side,
}

/// One tick of market data: a timestamped book change or trade.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MarketEvent {
    /// Exchange sequence number (gap detection at the parser).
    pub seq: u64,
    /// Exchange timestamp.
    pub ts: Timestamp,
    /// What happened.
    pub kind: MarketEventKind,
}

/// The payload of a [`MarketEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MarketEventKind {
    /// Book liquidity changed.
    Book(BookDelta),
    /// A trade printed.
    Trade(Trade),
}

impl MarketEvent {
    /// True if this event is a trade print.
    pub fn is_trade(&self) -> bool {
        matches!(self.kind, MarketEventKind::Trade(_))
    }

    /// The trade payload, if this event is a trade.
    pub fn as_trade(&self) -> Option<&Trade> {
        match &self.kind {
            MarketEventKind::Trade(t) => Some(t),
            MarketEventKind::Book(_) => None,
        }
    }

    /// The book-delta payload, if this event is a book change.
    pub fn as_book(&self) -> Option<&BookDelta> {
        match &self.kind {
            MarketEventKind::Book(d) => Some(d),
            MarketEventKind::Trade(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_discriminate_kinds() {
        let trade = MarketEvent {
            seq: 1,
            ts: Timestamp::from_nanos(10),
            kind: MarketEventKind::Trade(Trade {
                taker: OrderId::new(2),
                maker: OrderId::new(1),
                price: Price::new(100),
                qty: Qty::new(1),
                aggressor: Side::Bid,
            }),
        };
        assert!(trade.is_trade());
        assert!(trade.as_trade().is_some());
        assert!(trade.as_book().is_none());

        let add = MarketEvent {
            seq: 2,
            ts: Timestamp::from_nanos(11),
            kind: MarketEventKind::Book(BookDelta::Add {
                id: OrderId::new(3),
                side: Side::Ask,
                price: Price::new(101),
                qty: Qty::new(4),
            }),
        };
        assert!(!add.is_trade());
        assert!(add.as_book().is_some());
        assert!(add.as_trade().is_none());
    }
}
