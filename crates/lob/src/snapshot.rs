//! Ten-level book snapshots — the raw material of DNN input feature maps.

use crate::types::{Price, Qty, Timestamp};
use serde::{Deserialize, Serialize};

/// One side-level of a snapshot: price and aggregate quantity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotLevel {
    /// Level price in ticks.
    pub price: Price,
    /// Aggregate resting quantity at the level.
    pub qty: Qty,
}

/// A top-of-book snapshot with up to N levels per side.
///
/// The paper's offload engine consumes ten levels of bids and asks, each
/// carrying `(price, qty)` (§III-A), i.e. 40 raw features per tick. Levels
/// are ordered from most to least aggressive (bids descending, asks
/// ascending).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LobSnapshot {
    /// Exchange timestamp of the tick that produced this snapshot.
    pub ts: Timestamp,
    /// Bid levels, best (highest) first.
    pub bids: Vec<SnapshotLevel>,
    /// Ask levels, best (lowest) first.
    pub asks: Vec<SnapshotLevel>,
}

impl LobSnapshot {
    /// The number of `f32` features a `depth`-level snapshot flattens to:
    /// `(price, qty) x 2 sides x depth`.
    pub const fn feature_count(depth: usize) -> usize {
        depth * 4
    }

    /// Best bid level, if present.
    pub fn best_bid(&self) -> Option<SnapshotLevel> {
        self.bids.first().copied()
    }

    /// Best ask level, if present.
    pub fn best_ask(&self) -> Option<SnapshotLevel> {
        self.asks.first().copied()
    }

    /// Mid price in ticks as a float, or `None` if either side is empty.
    pub fn mid_price(&self) -> Option<f64> {
        let b = self.best_bid()?.price.ticks() as f64;
        let a = self.best_ask()?.price.ticks() as f64;
        Some((a + b) / 2.0)
    }

    /// Mid price in **half-ticks** (`bid + ask` in ticks), or `None` if
    /// either side is empty. Exact where the integer-tick mid truncates on
    /// odd spreads, and always agrees with [`Self::mid_price`]:
    /// `mid_half_ticks == 2 × mid_price`.
    pub fn mid_half_ticks(&self) -> Option<i64> {
        let b = self.best_bid()?.price.ticks();
        let a = self.best_ask()?.price.ticks();
        Some(a + b)
    }

    /// Flattens the snapshot into the fixed-layout feature vector the
    /// offload engine normalizes: for each level `i` in `0..depth`,
    /// `[ask_price_i, ask_qty_i, bid_price_i, bid_qty_i]` — the DeepLOB
    /// input layout. Missing levels are padded by extrapolating the last
    /// seen price one tick further (zero quantity), so the vector length is
    /// always `4 * depth`. Allocating wrapper over
    /// [`Self::write_features`].
    pub fn to_features(&self, depth: usize) -> Vec<f32> {
        let mut out = vec![0.0; Self::feature_count(depth)];
        self.write_features(depth, &mut out);
        out
    }

    /// Writes the `depth`-level feature vector into `out` in place — the
    /// allocation-free path the offload engine's recycled row buffers use.
    /// Layout and padding are identical to [`Self::to_features`].
    ///
    /// # Panics
    ///
    /// Panics unless `out.len() == Self::feature_count(depth)`.
    pub fn write_features(&self, depth: usize, out: &mut [f32]) {
        assert_eq!(
            out.len(),
            Self::feature_count(depth),
            "feature buffer sized for depth"
        );
        let last_ask = self.asks.last().map(|l| l.price.ticks()).unwrap_or(0);
        let last_bid = self.bids.last().map(|l| l.price.ticks()).unwrap_or(0);
        for i in 0..depth {
            let base = i * 4;
            match self.asks.get(i) {
                Some(l) => {
                    out[base] = l.price.ticks() as f32;
                    out[base + 1] = l.qty.contracts() as f32;
                }
                None => {
                    let pad = last_ask + (i as i64 - self.asks.len() as i64 + 1);
                    out[base] = pad as f32;
                    out[base + 1] = 0.0;
                }
            }
            match self.bids.get(i) {
                Some(l) => {
                    out[base + 2] = l.price.ticks() as f32;
                    out[base + 3] = l.qty.contracts() as f32;
                }
                None => {
                    let pad = last_bid - (i as i64 - self.bids.len() as i64 + 1);
                    out[base + 2] = pad as f32;
                    out[base + 3] = 0.0;
                }
            }
        }
    }

    /// Order-book imbalance at the top level in `[-1, 1]`
    /// (`(bid_qty - ask_qty) / (bid_qty + ask_qty)`), or 0 when empty.
    pub fn top_imbalance(&self) -> f64 {
        let b = self.best_bid().map_or(0.0, |l| l.qty.contracts() as f64);
        let a = self.best_ask().map_or(0.0, |l| l.qty.contracts() as f64);
        if b + a == 0.0 {
            0.0
        } else {
            (b - a) / (b + a)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn level(price: i64, qty: u64) -> SnapshotLevel {
        SnapshotLevel {
            price: Price::new(price),
            qty: Qty::new(qty),
        }
    }

    fn snap() -> LobSnapshot {
        LobSnapshot {
            ts: Timestamp::from_nanos(42),
            bids: vec![level(99, 10), level(98, 20)],
            asks: vec![level(101, 5), level(103, 7)],
        }
    }

    #[test]
    fn mid_price_and_imbalance() {
        let s = snap();
        assert_eq!(s.mid_price(), Some(100.0));
        let imb = s.top_imbalance();
        assert!((imb - (10.0 - 5.0) / 15.0).abs() < 1e-12);
        assert_eq!(LobSnapshot::default().mid_price(), None);
        assert_eq!(LobSnapshot::default().top_imbalance(), 0.0);
    }

    #[test]
    fn features_follow_deeplob_layout() {
        let s = snap();
        let f = s.to_features(2);
        assert_eq!(f.len(), 8);
        assert_eq!(
            f,
            vec![101.0, 5.0, 99.0, 10.0, 103.0, 7.0, 98.0, 20.0],
            "ask_p, ask_q, bid_p, bid_q per level"
        );
    }

    #[test]
    fn features_pad_missing_levels() {
        let s = snap();
        let f = s.to_features(4);
        assert_eq!(f.len(), LobSnapshot::feature_count(4));
        // Level 2 (index 2) is padded: ask extrapolates upward, bid downward,
        // both with zero quantity.
        assert_eq!(f[8], 104.0);
        assert_eq!(f[9], 0.0);
        assert_eq!(f[10], 97.0);
        assert_eq!(f[11], 0.0);
        // Level 3 pads one tick further out.
        assert_eq!(f[12], 105.0);
        assert_eq!(f[14], 96.0);
    }

    #[test]
    fn write_features_matches_to_features() {
        let s = snap();
        for depth in [0usize, 1, 2, 4, 8] {
            let mut buf = vec![123.0; LobSnapshot::feature_count(depth)];
            s.write_features(depth, &mut buf);
            assert_eq!(buf, s.to_features(depth), "depth {depth}");
        }
        let empty = LobSnapshot::default();
        let mut buf = vec![123.0; LobSnapshot::feature_count(3)];
        empty.write_features(3, &mut buf);
        assert_eq!(buf, empty.to_features(3));
    }

    #[test]
    fn feature_count_matches_paper_geometry() {
        // Ten levels x (price, qty) x 2 sides = 40 features per tick (§III-A).
        assert_eq!(LobSnapshot::feature_count(10), 40);
    }
}
