//! Venue-side execution model: fills, fees, and slippage.
//!
//! The back-test's trading engine emits immediate-or-cancel orders, but
//! until now nothing ever *filled* them — cash was booked assuming every
//! IOC fills fully at its limit. This module is the venue's half of the
//! story: [`fill_ioc`] sweeps an IOC against the visible levels of a
//! [`LobSnapshot`] exactly as the [`crate::MatchingEngine`] would match
//! it against a book holding those levels (pinned by a differential
//! test), and [`FeeModel`] prices the resulting fill.
//!
//! All monetary amounts are carried in **half-tick fixed point**
//! (`2 × ticks × contracts`): the mid of a one-tick-wide market is not
//! representable in integer ticks, so inventory valuation, P&L, and fees
//! all use half-ticks end to end and convert to ticks only at the edges.

use crate::snapshot::{LobSnapshot, SnapshotLevel};
use crate::types::{Price, Qty, Side};
use serde::{Deserialize, Serialize};

/// How the venue fills an immediate-or-cancel order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FillModel {
    /// The historical fiction: the full order quantity fills at the limit
    /// price regardless of the book. Exists as the differential baseline —
    /// back-tests run with this model reproduce the pre-execution-layer
    /// numbers byte-for-byte.
    AssumeFill,
    /// Taker sweep of the visible levels at or better than the limit, in
    /// price priority; the remainder cancels (IOC semantics). This is what
    /// the matching engine does to an IOC arriving at a book showing
    /// exactly the snapshot's levels.
    SweepVisible,
}

/// Venue fee schedule in half-ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FeeModel {
    /// Fee per filled contract, in half-ticks.
    pub per_contract_half: i64,
    /// Fee per order that achieves any fill, in half-ticks. Missed orders
    /// (zero fill) cost nothing.
    pub per_order_half: i64,
}

impl FeeModel {
    /// The free venue: no fees at all.
    pub const fn zero() -> Self {
        FeeModel {
            per_contract_half: 0,
            per_order_half: 0,
        }
    }

    /// Total fee for a fill of `contracts`, in half-ticks. Zero when
    /// nothing filled.
    pub fn fee_half(&self, contracts: u64) -> i64 {
        if contracts == 0 {
            0
        } else {
            self.per_order_half + self.per_contract_half * contracts as i64
        }
    }
}

/// An order the strategy decided to send, captured at decision time:
/// everything the venue model needs to settle it when it arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrderIntent {
    /// Order side.
    pub side: Side,
    /// Limit price (the touch at decision time for the IOC strategy).
    pub limit: Price,
    /// Order quantity.
    pub qty: Qty,
    /// Visible quantity at the decision-time touch — what the assume-fill
    /// functional path caps its fictional fill at.
    pub touch_qty: Qty,
}

/// The outcome of settling one order against the venue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Fill {
    /// Contracts filled (possibly zero: the order missed).
    pub filled: Qty,
    /// Gross cash movement in half-ticks: negative for buys, positive for
    /// sells, before fees.
    pub cash_delta_half: i64,
    /// Fees charged, in half-ticks (non-negative; zero when missed).
    pub fee_half: i64,
    /// Execution-price shortfall versus the limit in half-ticks, summed
    /// over filled contracts. Positive means worse than the limit; for a
    /// marketable IOC it is never positive, so this measures price
    /// *improvement* as a negative number.
    pub slippage_half: i64,
}

impl Fill {
    /// A miss: nothing traded, nothing charged.
    pub const MISS: Fill = Fill {
        filled: Qty::ZERO,
        cash_delta_half: 0,
        fee_half: 0,
        slippage_half: 0,
    };

    /// Net cash movement in half-ticks, fees included.
    pub fn net_cash_half(&self) -> i64 {
        self.cash_delta_half - self.fee_half
    }
}

/// Settles an immediate-or-cancel order against the book state `book`,
/// under `model`, with `fees`.
///
/// For [`FillModel::SweepVisible`] the order sweeps the opposite side's
/// visible levels at or better than `limit` in price priority — the same
/// fills a [`crate::MatchingEngine`] produces for an IOC arriving at a
/// book resting exactly those levels. For [`FillModel::AssumeFill`] the
/// full `qty` fills at `limit` unconditionally.
pub fn fill_ioc(
    book: &LobSnapshot,
    side: Side,
    limit: Price,
    qty: Qty,
    model: FillModel,
    fees: &FeeModel,
) -> Fill {
    let mut filled = Qty::ZERO;
    let mut cash_half = 0i64;
    let mut slip_half = 0i64;
    let mut take_leg = |px: Price, q: Qty| {
        let contracts = q.contracts() as i64;
        let notional_half = 2 * px.ticks() * contracts;
        match side {
            Side::Bid => {
                cash_half -= notional_half;
                slip_half += 2 * (px.ticks() - limit.ticks()) * contracts;
            }
            Side::Ask => {
                cash_half += notional_half;
                slip_half += 2 * (limit.ticks() - px.ticks()) * contracts;
            }
        }
        filled += q;
    };
    match model {
        FillModel::AssumeFill => take_leg(limit, qty),
        FillModel::SweepVisible => {
            let levels: &[SnapshotLevel] = match side {
                Side::Bid => &book.asks,
                Side::Ask => &book.bids,
            };
            let mut remaining = qty;
            for level in levels {
                // A buy takes asks priced at or below the limit; a sell
                // takes bids at or above it. Levels are sorted best-first,
                // so the first non-crossing level ends the sweep.
                if remaining.is_zero() || !side.opposite().crosses(level.price, limit) {
                    break;
                }
                let take = remaining.min(level.qty);
                if !take.is_zero() {
                    take_leg(level.price, take);
                    remaining -= take;
                }
            }
        }
    }
    Fill {
        filled,
        cash_delta_half: cash_half,
        fee_half: fees.fee_half(filled.contracts()),
        slippage_half: slip_half,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::MatchingEngine;
    use crate::order::NewOrder;
    use crate::types::{OrderId, Symbol, Timestamp};

    fn level(price: i64, qty: u64) -> SnapshotLevel {
        SnapshotLevel {
            price: Price::new(price),
            qty: Qty::new(qty),
        }
    }

    fn snap(bids: Vec<SnapshotLevel>, asks: Vec<SnapshotLevel>) -> LobSnapshot {
        LobSnapshot {
            ts: Timestamp::from_nanos(1),
            bids,
            asks,
        }
    }

    #[test]
    fn assume_fill_books_full_qty_at_limit() {
        let book = snap(vec![level(99, 1)], vec![level(101, 1)]);
        let f = fill_ioc(
            &book,
            Side::Bid,
            Price::new(101),
            Qty::new(5),
            FillModel::AssumeFill,
            &FeeModel::zero(),
        );
        assert_eq!(f.filled, Qty::new(5));
        assert_eq!(f.cash_delta_half, -2 * 101 * 5);
        assert_eq!(f.slippage_half, 0);
        assert_eq!(f.fee_half, 0);
    }

    #[test]
    fn sweep_caps_at_visible_depth() {
        let book = snap(vec![level(99, 10)], vec![level(101, 3)]);
        let f = fill_ioc(
            &book,
            Side::Bid,
            Price::new(101),
            Qty::new(5),
            FillModel::SweepVisible,
            &FeeModel::zero(),
        );
        assert_eq!(f.filled, Qty::new(3), "only the visible 3 fill");
        assert_eq!(f.cash_delta_half, -2 * 101 * 3);
        assert_eq!(f.slippage_half, 0);
    }

    #[test]
    fn sweep_misses_when_market_ran_away() {
        // The ask moved above the stale limit: the IOC cancels unfilled.
        let book = snap(vec![level(100, 5)], vec![level(103, 5)]);
        let f = fill_ioc(
            &book,
            Side::Bid,
            Price::new(101),
            Qty::new(2),
            FillModel::SweepVisible,
            &FeeModel::zero(),
        );
        assert_eq!(f, Fill::MISS);
    }

    #[test]
    fn sweep_takes_price_improvement_as_negative_slippage() {
        // The ask dropped below the stale buy limit: fill at the better
        // price, slippage is negative (improvement).
        let book = snap(vec![level(97, 5)], vec![level(99, 4)]);
        let f = fill_ioc(
            &book,
            Side::Bid,
            Price::new(101),
            Qty::new(2),
            FillModel::SweepVisible,
            &FeeModel::zero(),
        );
        assert_eq!(f.filled, Qty::new(2));
        assert_eq!(f.cash_delta_half, -2 * 99 * 2);
        assert_eq!(f.slippage_half, 2 * (99 - 101) * 2);
        assert!(f.slippage_half < 0);
    }

    #[test]
    fn sell_sweeps_bids_downward() {
        let book = snap(vec![level(100, 1), level(99, 2)], vec![level(105, 9)]);
        let f = fill_ioc(
            &book,
            Side::Ask,
            Price::new(99),
            Qty::new(3),
            FillModel::SweepVisible,
            &FeeModel::zero(),
        );
        assert_eq!(f.filled, Qty::new(3));
        assert_eq!(f.cash_delta_half, 2 * (100 + 99 * 2));
        // One contract at 100 against a 99 limit: one tick of improvement.
        assert_eq!(f.slippage_half, -2);
    }

    #[test]
    fn fees_charged_only_on_fills() {
        let fees = FeeModel {
            per_contract_half: 1,
            per_order_half: 2,
        };
        let book = snap(vec![level(99, 10)], vec![level(101, 10)]);
        let hit = fill_ioc(
            &book,
            Side::Bid,
            Price::new(101),
            Qty::new(3),
            FillModel::SweepVisible,
            &fees,
        );
        assert_eq!(hit.fee_half, 2 + 3);
        assert_eq!(hit.net_cash_half(), -2 * 101 * 3 - 5);
        let miss = fill_ioc(
            &book,
            Side::Bid,
            Price::new(95),
            Qty::new(3),
            FillModel::SweepVisible,
            &fees,
        );
        assert_eq!(miss, Fill::MISS);
    }

    /// Reconstructs a book from snapshot levels inside the real matching
    /// engine, submits the same IOC, and checks the sweep model agrees on
    /// both filled quantity and gross cash — the "replayed via the
    /// existing MatchingEngine/LadderBook" pin.
    #[test]
    fn sweep_matches_matching_engine_on_reconstructed_book() {
        let cases = vec![
            // (bids, asks, side, limit, qty)
            (
                vec![level(99, 10)],
                vec![level(101, 3), level(102, 4)],
                Side::Bid,
                102,
                6,
            ),
            (
                vec![level(99, 10)],
                vec![level(101, 3), level(102, 4)],
                Side::Bid,
                101,
                6,
            ),
            (
                vec![level(100, 2), level(98, 5)],
                vec![level(103, 1)],
                Side::Ask,
                98,
                9,
            ),
            (vec![level(100, 2)], vec![level(104, 2)], Side::Bid, 101, 1),
            (vec![], vec![level(101, 2)], Side::Bid, 101, 2),
            (vec![level(99, 7)], vec![], Side::Ask, 99, 7),
        ];
        for (bids, asks, side, limit, qty) in cases {
            let book = snap(bids.clone(), asks.clone());
            let mut engine = MatchingEngine::new(Symbol::new("ESU6"));
            let t = Timestamp::from_nanos(0);
            let mut id = 1u64;
            for l in bids.iter().chain(asks.iter()) {
                let rest_side = if bids.contains(l) {
                    Side::Bid
                } else {
                    Side::Ask
                };
                engine.submit(
                    NewOrder::limit(OrderId::new(id), rest_side, l.price, l.qty),
                    t,
                );
                id += 1;
            }
            let out = engine.submit(
                NewOrder::ioc(OrderId::new(id), side, Price::new(limit), Qty::new(qty)),
                Timestamp::from_nanos(1),
            );
            let model = fill_ioc(
                &book,
                side,
                Price::new(limit),
                Qty::new(qty),
                FillModel::SweepVisible,
                &FeeModel::zero(),
            );
            assert_eq!(
                model.filled,
                out.report.filled_qty(),
                "filled qty disagrees for {side:?} {qty}@{limit}"
            );
            // Gross cash from the engine's trade events.
            let mut engine_cash_half = 0i64;
            for ev in &out.events {
                if let crate::events::MarketEventKind::Trade(tr) = &ev.kind {
                    let notional = 2 * tr.price.ticks() * tr.qty.contracts() as i64;
                    match side {
                        Side::Bid => engine_cash_half -= notional,
                        Side::Ask => engine_cash_half += notional,
                    }
                }
            }
            assert_eq!(
                model.cash_delta_half, engine_cash_half,
                "cash disagrees for {side:?} {qty}@{limit}"
            );
        }
    }

    #[test]
    fn mid_half_ticks_is_exact() {
        let book = snap(vec![level(99, 1)], vec![level(102, 1)]);
        // (99 + 102) / 2 = 100.5 ticks = 201 half-ticks — exact where
        // integer-tick division truncates.
        assert_eq!(book.mid_half_ticks(), Some(201));
        assert_eq!(book.mid_price(), Some(100.5));
        assert_eq!(LobSnapshot::default().mid_half_ticks(), None);
    }
}
