//! Strongly typed market primitives shared across the workspace.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};
use std::time::Duration;

/// A price expressed in integer ticks (the exchange's minimum increment).
///
/// Using integer ticks avoids all floating-point comparison hazards inside
/// the matching engine; conversion to decimal happens only at the protocol
/// boundary. E-mini S&P 500 futures tick in 0.25 index points, so
/// `Price::new(18_000)` represents 4 500.00 points.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Price(i64);

impl Price {
    /// Creates a price from a raw tick count.
    pub const fn new(ticks: i64) -> Self {
        Price(ticks)
    }

    /// Returns the raw tick count.
    pub const fn ticks(self) -> i64 {
        self.0
    }

    /// Returns the price shifted by `delta` ticks.
    #[must_use]
    pub const fn offset(self, delta: i64) -> Self {
        Price(self.0 + delta)
    }

    /// Converts to a decimal value given the tick size.
    pub fn to_decimal(self, tick_size: f64) -> f64 {
        self.0 as f64 * tick_size
    }
}

impl fmt::Display for Price {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}t", self.0)
    }
}

impl Add<i64> for Price {
    type Output = Price;
    fn add(self, rhs: i64) -> Price {
        Price(self.0 + rhs)
    }
}

impl Sub<i64> for Price {
    type Output = Price;
    fn sub(self, rhs: i64) -> Price {
        Price(self.0 - rhs)
    }
}

impl Sub for Price {
    type Output = i64;
    fn sub(self, rhs: Price) -> i64 {
        self.0 - rhs.0
    }
}

/// An order quantity in contracts.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Qty(u64);

impl Qty {
    /// Quantity of zero contracts.
    pub const ZERO: Qty = Qty(0);

    /// Creates a quantity from a raw contract count.
    pub const fn new(contracts: u64) -> Self {
        Qty(contracts)
    }

    /// Returns the raw contract count.
    pub const fn contracts(self) -> u64 {
        self.0
    }

    /// True when the quantity is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns the smaller of the two quantities.
    #[must_use]
    pub fn min(self, other: Qty) -> Qty {
        Qty(self.0.min(other.0))
    }

    /// Subtracts `other`, saturating at zero.
    #[must_use]
    pub fn saturating_sub(self, other: Qty) -> Qty {
        Qty(self.0.saturating_sub(other.0))
    }
}

impl fmt::Display for Qty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Add for Qty {
    type Output = Qty;
    fn add(self, rhs: Qty) -> Qty {
        Qty(self.0 + rhs.0)
    }
}

impl AddAssign for Qty {
    fn add_assign(&mut self, rhs: Qty) {
        self.0 += rhs.0;
    }
}

impl Sub for Qty {
    type Output = Qty;
    fn sub(self, rhs: Qty) -> Qty {
        Qty(self.0 - rhs.0)
    }
}

impl SubAssign for Qty {
    fn sub_assign(&mut self, rhs: Qty) {
        self.0 -= rhs.0;
    }
}

impl std::iter::Sum for Qty {
    fn sum<I: Iterator<Item = Qty>>(iter: I) -> Qty {
        iter.fold(Qty::ZERO, |a, b| a + b)
    }
}

/// Which side of the book an order rests on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Side {
    /// Buy side: resting bids, matched against incoming asks.
    Bid,
    /// Sell side: resting asks, matched against incoming bids.
    Ask,
}

impl Side {
    /// The opposing side.
    #[must_use]
    pub const fn opposite(self) -> Side {
        match self {
            Side::Bid => Side::Ask,
            Side::Ask => Side::Bid,
        }
    }

    /// True if a resting order at `resting` can trade against an incoming
    /// order on the *other* side limited at `incoming`.
    ///
    /// For a resting bid this means `resting >= incoming` (the buyer pays at
    /// least what the seller asks); for a resting ask, `resting <= incoming`.
    pub fn crosses(self, resting: Price, incoming: Price) -> bool {
        match self {
            Side::Bid => resting >= incoming,
            Side::Ask => resting <= incoming,
        }
    }

    /// Returns `true` when `a` is more aggressive than `b` on this side
    /// (higher for bids, lower for asks).
    pub fn more_aggressive(self, a: Price, b: Price) -> bool {
        match self {
            Side::Bid => a > b,
            Side::Ask => a < b,
        }
    }
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Side::Bid => f.write_str("bid"),
            Side::Ask => f.write_str("ask"),
        }
    }
}

/// A unique order identifier assigned by the submitting participant.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct OrderId(u64);

impl OrderId {
    /// Creates an identifier from a raw value.
    pub const fn new(raw: u64) -> Self {
        OrderId(raw)
    }

    /// Returns the raw identifier value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for OrderId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A nanosecond-resolution event timestamp.
///
/// All simulation and market times in the workspace use this type; it is the
/// tick-to-trade clock of the paper's simulation framework (§IV-A).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The zero timestamp (simulation epoch).
    pub const ZERO: Timestamp = Timestamp(0);

    /// Creates a timestamp from raw nanoseconds since the epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        Timestamp(nanos)
    }

    /// Creates a timestamp from microseconds since the epoch.
    pub const fn from_micros(micros: u64) -> Self {
        Timestamp(micros * 1_000)
    }

    /// Creates a timestamp from milliseconds since the epoch.
    pub const fn from_millis(millis: u64) -> Self {
        Timestamp(millis * 1_000_000)
    }

    /// Creates a timestamp from whole seconds since the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        Timestamp(secs * 1_000_000_000)
    }

    /// Raw nanoseconds since the epoch.
    pub const fn nanos(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is after `self`.
    pub fn since(self, earlier: Timestamp) -> Duration {
        debug_assert!(earlier <= self, "time went backwards");
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Saturating difference in nanoseconds.
    pub fn nanos_since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.as_nanos() as u64)
    }
}

impl AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_nanos() as u64;
    }
}

/// A security symbol, e.g. `ESU6` for the September 2026 E-mini S&P 500
/// future.
///
/// Stored inline as fixed-width ASCII so it is `Copy` and hashes cheaply on
/// the hot path.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Symbol {
    bytes: [u8; 8],
    len: u8,
}

impl Symbol {
    /// Creates a symbol from an ASCII string.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty or longer than eight bytes.
    pub fn new(name: &str) -> Self {
        assert!(
            !name.is_empty() && name.len() <= 8,
            "symbol must be 1..=8 bytes, got {:?}",
            name
        );
        let mut bytes = [0u8; 8];
        bytes[..name.len()].copy_from_slice(name.as_bytes());
        Symbol {
            bytes,
            len: name.len() as u8,
        }
    }

    /// The symbol as a string slice.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.bytes[..self.len as usize]).expect("symbols are always ASCII")
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Default for Symbol {
    fn default() -> Self {
        Symbol::new("ES")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn price_arithmetic_and_display() {
        let p = Price::new(100);
        assert_eq!(p + 5, Price::new(105));
        assert_eq!(p - 5, Price::new(95));
        assert_eq!(Price::new(105) - p, 5);
        assert_eq!(p.offset(-100), Price::new(0));
        assert_eq!(p.to_string(), "100t");
        assert!((Price::new(4).to_decimal(0.25) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn qty_saturating_and_sum() {
        let q = Qty::new(3);
        assert_eq!(q.saturating_sub(Qty::new(5)), Qty::ZERO);
        assert_eq!(q.min(Qty::new(2)), Qty::new(2));
        let total: Qty = [Qty::new(1), Qty::new(2), Qty::new(3)].into_iter().sum();
        assert_eq!(total, Qty::new(6));
        assert!(Qty::ZERO.is_zero());
    }

    #[test]
    fn side_crossing_rules() {
        // Resting bid at 10 matches an incoming ask limited at 10 or lower.
        assert!(Side::Bid.crosses(Price::new(10), Price::new(10)));
        assert!(Side::Bid.crosses(Price::new(10), Price::new(9)));
        assert!(!Side::Bid.crosses(Price::new(10), Price::new(11)));
        // Resting ask at 10 matches an incoming bid limited at 10 or higher.
        assert!(Side::Ask.crosses(Price::new(10), Price::new(10)));
        assert!(Side::Ask.crosses(Price::new(10), Price::new(11)));
        assert!(!Side::Ask.crosses(Price::new(10), Price::new(9)));
        assert_eq!(Side::Bid.opposite(), Side::Ask);
        assert_eq!(Side::Ask.opposite(), Side::Bid);
    }

    #[test]
    fn side_aggressiveness() {
        assert!(Side::Bid.more_aggressive(Price::new(11), Price::new(10)));
        assert!(!Side::Bid.more_aggressive(Price::new(10), Price::new(10)));
        assert!(Side::Ask.more_aggressive(Price::new(9), Price::new(10)));
        assert!(!Side::Ask.more_aggressive(Price::new(11), Price::new(10)));
    }

    #[test]
    fn timestamp_units_and_elapsed() {
        let a = Timestamp::from_micros(5);
        let b = Timestamp::from_nanos(5_500);
        assert_eq!(b.since(a), Duration::from_nanos(500));
        assert_eq!(b.nanos_since(a), 500);
        assert_eq!(a.nanos_since(b), 0, "saturating");
        assert_eq!(Timestamp::from_millis(1).nanos(), 1_000_000);
        assert_eq!(Timestamp::from_secs(1).nanos(), 1_000_000_000);
        let mut c = a;
        c += Duration::from_nanos(10);
        assert_eq!(c, Timestamp::from_nanos(5_010));
    }

    #[test]
    fn symbol_round_trip() {
        let s = Symbol::new("ESU6");
        assert_eq!(s.as_str(), "ESU6");
        assert_eq!(s.to_string(), "ESU6");
        assert_eq!(format!("{s:?}"), "Symbol(ESU6)");
        assert_eq!(s, Symbol::new("ESU6"));
        assert_ne!(s, Symbol::new("NQU6"));
    }

    #[test]
    #[should_panic(expected = "symbol must be 1..=8 bytes")]
    fn symbol_too_long_panics() {
        let _ = Symbol::new("TOOLONGNAME");
    }

    #[test]
    fn symbol_length_extremes_round_trip() {
        // 1-byte and full 8-byte names: the inline buffer's edge cases.
        let one = Symbol::new("A");
        assert_eq!(one.as_str(), "A");
        assert_eq!(one, Symbol::new("A"));
        let eight = Symbol::new("ABCDEFGH");
        assert_eq!(eight.as_str(), "ABCDEFGH");
        assert_ne!(one, eight);
        // A shorter name is never equal to a longer one sharing its
        // prefix (the zero padding must not alias with real bytes).
        assert_ne!(Symbol::new("ES"), Symbol::new("ESU6"));
        assert_ne!(Symbol::new("ES\0\0").as_str(), Symbol::new("ES").as_str());
    }

    #[test]
    fn symbol_ordering_matches_str_ordering() {
        // Ord derives over (bytes, len); with zero padding that must
        // coincide with lexicographic string order, prefixes first.
        let mut names = vec!["ZB", "ESU6", "A", "ABCDEFGH", "ES", "NQU6", "ESU5"];
        let mut symbols: Vec<Symbol> = names.iter().map(|n| Symbol::new(n)).collect();
        names.sort_unstable();
        symbols.sort_unstable();
        let sorted: Vec<&str> = symbols.iter().map(|s| s.as_str()).collect();
        assert_eq!(sorted, names);
    }

    #[test]
    fn symbol_maps_are_deterministic_under_id_hash() {
        use crate::hash::IdHashBuilder;
        use std::collections::HashMap;
        let names = ["A", "ES", "ESU6", "NQU6", "ABCDEFGH", "ZB", "S00", "S07"];
        let build = || {
            let mut map: HashMap<Symbol, usize, IdHashBuilder> = HashMap::default();
            for (i, n) in names.iter().enumerate() {
                map.insert(Symbol::new(n), i);
            }
            map
        };
        let a = build();
        let b = build();
        for (i, n) in names.iter().enumerate() {
            assert_eq!(a.get(&Symbol::new(n)), Some(&i));
        }
        // The stateless hasher makes iteration order itself reproducible
        // across independently built maps — the property per-symbol
        // book-keeping relies on for run-to-run determinism.
        let order_a: Vec<Symbol> = a.keys().copied().collect();
        let order_b: Vec<Symbol> = b.keys().copied().collect();
        assert_eq!(order_a, order_b);
        // Distinct names never collide outright in the finished hash.
        use std::hash::BuildHasher;
        let hashes: std::collections::HashSet<u64> = names
            .iter()
            .map(|n| IdHashBuilder.hash_one(Symbol::new(n)))
            .collect();
        assert_eq!(hashes.len(), names.len());
    }
}
