//! The map-based resting limit order book, kept as the behavioral oracle.

use crate::order::Order;
use crate::snapshot::{LobSnapshot, SnapshotLevel};
use crate::store::BookStore;
use crate::types::{OrderId, Price, Qty, Side, Timestamp};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// A read-only view of one price level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelView {
    /// Level price in ticks.
    pub price: Price,
    /// Aggregate resting quantity at the level.
    pub qty: Qty,
    /// Number of resting orders at the level.
    pub orders: usize,
}

/// One price level: a FIFO of resting orders plus a cached aggregate.
#[derive(Debug, Clone, Default)]
struct Level {
    queue: VecDeque<Order>,
    total: Qty,
}

impl Level {
    fn push_back(&mut self, order: Order) {
        self.total += order.remaining;
        self.queue.push_back(order);
    }
}

/// The map-based limit order book for a single symbol.
///
/// Bids and asks are kept in separate [`BTreeMap`]s keyed by price so that
/// best-price lookups and level iteration are ordered; each level is a FIFO
/// queue, giving the exchange's price/time priority (paper §II-A).
///
/// The book only *stores* orders — crossing and trade generation live in
/// [`MatchingEngine`](crate::matching::MatchingEngine). The hot path uses
/// the contiguous [`LadderBook`](crate::ladder::LadderBook) instead; this
/// implementation survives as the easy-to-audit oracle the differential
/// suite (`tests/book_equivalence.rs`) checks the ladder against.
#[derive(Debug, Clone, Default)]
pub struct ReferenceBook {
    bids: BTreeMap<Price, Level>,
    asks: BTreeMap<Price, Level>,
    /// Locates a resting order by id: (side, price).
    index: HashMap<OrderId, (Side, Price)>,
}

impl ReferenceBook {
    /// Creates an empty book.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of resting orders across both sides.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no orders rest on either side.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Highest resting bid price, if any.
    pub fn best_bid(&self) -> Option<Price> {
        self.bids.keys().next_back().copied()
    }

    /// Lowest resting ask price, if any.
    pub fn best_ask(&self) -> Option<Price> {
        self.asks.keys().next().copied()
    }

    /// Mid price in half-ticks (`bid + ask`), or `None` if either side is
    /// empty. Returned doubled so that it stays an exact integer.
    pub fn mid_price_x2(&self) -> Option<i64> {
        Some(self.best_bid()?.ticks() + self.best_ask()?.ticks())
    }

    /// Bid/ask spread in ticks, or `None` if either side is empty.
    pub fn spread(&self) -> Option<i64> {
        Some(self.best_ask()? - self.best_bid()?)
    }

    /// True if the book is *crossed* (best bid >= best ask). A well-formed
    /// book maintained by the matching engine is never crossed; this is the
    /// central invariant checked by the property tests.
    pub fn is_crossed(&self) -> bool {
        match (self.best_bid(), self.best_ask()) {
            (Some(b), Some(a)) => b >= a,
            _ => false,
        }
    }

    /// Aggregate resting quantity at `price` on `side`.
    pub fn qty_at(&self, side: Side, price: Price) -> Qty {
        self.side_levels(side)
            .get(&price)
            .map_or(Qty::ZERO, |l| l.total)
    }

    /// Looks up a resting order by id.
    pub fn order(&self, id: OrderId) -> Option<&Order> {
        let &(side, price) = self.index.get(&id)?;
        self.side_levels(side)
            .get(&price)?
            .queue
            .iter()
            .find(|o| o.id == id)
    }

    /// True if an order with `id` currently rests on the book.
    pub fn contains(&self, id: OrderId) -> bool {
        self.index.contains_key(&id)
    }

    /// Visits the best `depth` levels of `side` from most to least
    /// aggressive without allocating.
    pub fn for_each_level<F: FnMut(LevelView)>(&self, side: Side, depth: usize, mut f: F) {
        let levels = self.side_levels(side);
        let view = |(&price, level): (&Price, &Level)| LevelView {
            price,
            qty: level.total,
            orders: level.queue.len(),
        };
        match side {
            Side::Bid => levels.iter().rev().take(depth).map(view).for_each(&mut f),
            Side::Ask => levels.iter().take(depth).map(view).for_each(&mut f),
        }
    }

    /// Iterates the best `depth` levels of `side` from most to least
    /// aggressive. Thin allocating wrapper over [`Self::for_each_level`].
    pub fn levels(&self, side: Side, depth: usize) -> Vec<LevelView> {
        let mut out = Vec::with_capacity(depth.min(self.len()));
        self.for_each_level(side, depth, |v| out.push(v));
        out
    }

    /// Builds the `depth`-level snapshot consumed by the trading pipeline.
    pub fn snapshot(&self, depth: usize, ts: Timestamp) -> LobSnapshot {
        let to_levels = |views: Vec<LevelView>| {
            views
                .into_iter()
                .map(|v| SnapshotLevel {
                    price: v.price,
                    qty: v.qty,
                })
                .collect()
        };
        LobSnapshot {
            ts,
            bids: to_levels(self.levels(Side::Bid, depth)),
            asks: to_levels(self.levels(Side::Ask, depth)),
        }
    }

    /// Inserts a resting order at the back of its price-level queue.
    ///
    /// # Panics
    ///
    /// Panics if an order with the same id already rests on the book; the
    /// matching engine rejects duplicates before insertion.
    pub(crate) fn insert(&mut self, order: Order) {
        let prior = self.index.insert(order.id, (order.side, order.price));
        assert!(prior.is_none(), "duplicate order id {}", order.id);
        self.side_levels_mut(order.side)
            .entry(order.price)
            .or_default()
            .push_back(order);
    }

    /// Removes a resting order, returning it if present.
    pub(crate) fn remove(&mut self, id: OrderId) -> Option<Order> {
        let (side, price) = self.index.remove(&id)?;
        let levels = self.side_levels_mut(side);
        let level = levels.get_mut(&price)?;
        let pos = level.queue.iter().position(|o| o.id == id)?;
        let order = level.queue.remove(pos).expect("position just found");
        level.total -= order.remaining;
        if level.queue.is_empty() {
            levels.remove(&price);
        }
        Some(order)
    }

    /// Peeks at the front (oldest) order at the best level of `side`.
    pub(crate) fn front(&self, side: Side) -> Option<&Order> {
        let levels = self.side_levels(side);
        let level = match side {
            Side::Bid => levels.values().next_back(),
            Side::Ask => levels.values().next(),
        }?;
        level.queue.front()
    }

    /// Reduces the front order at the best level of `side` by `fill`,
    /// removing it when fully filled. Returns the order's id.
    ///
    /// # Panics
    ///
    /// Panics if the side is empty or `fill` exceeds the front order's
    /// remaining quantity.
    pub(crate) fn fill_front(&mut self, side: Side, fill: Qty) -> OrderId {
        let (id, emptied_order, emptied_level, price) = {
            let levels = self.side_levels_mut(side);
            let (&price, level) = match side {
                Side::Bid => levels.iter_mut().next_back(),
                Side::Ask => levels.iter_mut().next(),
            }
            .expect("fill_front on empty side");
            let front = level.queue.front_mut().expect("non-empty level");
            assert!(fill <= front.remaining, "over-fill of {}", front.id);
            front.remaining -= fill;
            level.total -= fill;
            let id = front.id;
            let emptied_order = front.remaining.is_zero();
            if emptied_order {
                level.queue.pop_front();
            }
            (id, emptied_order, level.queue.is_empty(), price)
        };
        if emptied_order {
            self.index.remove(&id);
            if emptied_level {
                self.side_levels_mut(side).remove(&price);
            }
        }
        id
    }

    /// Total resting quantity on `side` at prices that cross `limit`
    /// (used for fill-or-kill feasibility checks).
    pub(crate) fn crossable_qty(&self, side: Side, limit: Price) -> Qty {
        let levels = self.side_levels(side);
        let crossing = |(&price, level): (&Price, &Level)| {
            if side.crosses(price, limit) {
                Some(level.total)
            } else {
                None
            }
        };
        match side {
            Side::Bid => levels.iter().rev().map_while(crossing).sum(),
            Side::Ask => levels.iter().map_while(crossing).sum(),
        }
    }

    fn side_levels(&self, side: Side) -> &BTreeMap<Price, Level> {
        match side {
            Side::Bid => &self.bids,
            Side::Ask => &self.asks,
        }
    }

    fn side_levels_mut(&mut self, side: Side) -> &mut BTreeMap<Price, Level> {
        match side {
            Side::Bid => &mut self.bids,
            Side::Ask => &mut self.asks,
        }
    }
}

impl BookStore for ReferenceBook {
    fn len(&self) -> usize {
        ReferenceBook::len(self)
    }

    fn best_bid(&self) -> Option<Price> {
        ReferenceBook::best_bid(self)
    }

    fn best_ask(&self) -> Option<Price> {
        ReferenceBook::best_ask(self)
    }

    fn qty_at(&self, side: Side, price: Price) -> Qty {
        ReferenceBook::qty_at(self, side, price)
    }

    fn order(&self, id: OrderId) -> Option<&Order> {
        ReferenceBook::order(self, id)
    }

    fn contains(&self, id: OrderId) -> bool {
        ReferenceBook::contains(self, id)
    }

    fn for_each_level<F: FnMut(LevelView)>(&self, side: Side, depth: usize, f: F) {
        ReferenceBook::for_each_level(self, side, depth, f);
    }

    fn insert(&mut self, order: Order) {
        ReferenceBook::insert(self, order);
    }

    fn remove(&mut self, id: OrderId) -> Option<Order> {
        ReferenceBook::remove(self, id)
    }

    fn front(&self, side: Side) -> Option<&Order> {
        ReferenceBook::front(self, side)
    }

    fn fill_front(&mut self, side: Side, fill: Qty) -> OrderId {
        ReferenceBook::fill_front(self, side, fill)
    }

    fn crossable_qty(&self, side: Side, limit: Price) -> Qty {
        ReferenceBook::crossable_qty(self, side, limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order(id: u64, side: Side, price: i64, qty: u64, seq: u64) -> Order {
        Order {
            id: OrderId::new(id),
            side,
            price: Price::new(price),
            remaining: Qty::new(qty),
            original: Qty::new(qty),
            arrival: Timestamp::from_nanos(seq),
            seq,
        }
    }

    #[test]
    fn empty_book_has_no_best_prices() {
        let book = ReferenceBook::new();
        assert!(book.is_empty());
        assert_eq!(book.best_bid(), None);
        assert_eq!(book.best_ask(), None);
        assert_eq!(book.spread(), None);
        assert_eq!(book.mid_price_x2(), None);
        assert!(!book.is_crossed());
    }

    #[test]
    fn best_prices_and_spread() {
        let mut book = ReferenceBook::new();
        book.insert(order(1, Side::Bid, 99, 5, 1));
        book.insert(order(2, Side::Bid, 98, 5, 2));
        book.insert(order(3, Side::Ask, 101, 5, 3));
        book.insert(order(4, Side::Ask, 102, 5, 4));
        assert_eq!(book.best_bid(), Some(Price::new(99)));
        assert_eq!(book.best_ask(), Some(Price::new(101)));
        assert_eq!(book.spread(), Some(2));
        assert_eq!(book.mid_price_x2(), Some(200));
        assert_eq!(book.len(), 4);
    }

    #[test]
    fn level_aggregation_and_order_lookup() {
        let mut book = ReferenceBook::new();
        book.insert(order(1, Side::Bid, 99, 5, 1));
        book.insert(order(2, Side::Bid, 99, 7, 2));
        assert_eq!(book.qty_at(Side::Bid, Price::new(99)), Qty::new(12));
        assert_eq!(book.qty_at(Side::Bid, Price::new(98)), Qty::ZERO);
        let levels = book.levels(Side::Bid, 10);
        assert_eq!(levels.len(), 1);
        assert_eq!(levels[0].orders, 2);
        assert_eq!(book.order(OrderId::new(2)).unwrap().remaining, Qty::new(7));
        assert!(book.order(OrderId::new(9)).is_none());
    }

    #[test]
    fn levels_are_ordered_most_aggressive_first() {
        let mut book = ReferenceBook::new();
        for (i, p) in [97, 99, 98].iter().enumerate() {
            book.insert(order(i as u64 + 1, Side::Bid, *p, 1, i as u64));
        }
        for (i, p) in [103, 101, 102].iter().enumerate() {
            book.insert(order(i as u64 + 10, Side::Ask, *p, 1, i as u64));
        }
        let bid_prices: Vec<i64> = book
            .levels(Side::Bid, 10)
            .iter()
            .map(|l| l.price.ticks())
            .collect();
        let ask_prices: Vec<i64> = book
            .levels(Side::Ask, 10)
            .iter()
            .map(|l| l.price.ticks())
            .collect();
        assert_eq!(bid_prices, vec![99, 98, 97]);
        assert_eq!(ask_prices, vec![101, 102, 103]);
        // Depth limiting.
        assert_eq!(book.levels(Side::Bid, 2).len(), 2);
    }

    #[test]
    fn remove_clears_empty_levels() {
        let mut book = ReferenceBook::new();
        book.insert(order(1, Side::Ask, 101, 5, 1));
        let removed = book.remove(OrderId::new(1)).unwrap();
        assert_eq!(removed.remaining, Qty::new(5));
        assert!(book.is_empty());
        assert_eq!(book.best_ask(), None);
        assert!(book.remove(OrderId::new(1)).is_none(), "idempotent");
    }

    #[test]
    fn fill_front_respects_fifo() {
        let mut book = ReferenceBook::new();
        book.insert(order(1, Side::Bid, 99, 5, 1));
        book.insert(order(2, Side::Bid, 99, 5, 2));
        // Partial fill leaves order 1 at the front.
        assert_eq!(book.fill_front(Side::Bid, Qty::new(3)), OrderId::new(1));
        assert_eq!(book.order(OrderId::new(1)).unwrap().remaining, Qty::new(2));
        // Completing order 1 exposes order 2.
        assert_eq!(book.fill_front(Side::Bid, Qty::new(2)), OrderId::new(1));
        assert!(!book.contains(OrderId::new(1)));
        assert_eq!(book.front(Side::Bid).unwrap().id, OrderId::new(2));
        assert_eq!(book.qty_at(Side::Bid, Price::new(99)), Qty::new(5));
    }

    #[test]
    fn crossable_qty_stops_at_limit() {
        let mut book = ReferenceBook::new();
        book.insert(order(1, Side::Ask, 101, 5, 1));
        book.insert(order(2, Side::Ask, 102, 5, 2));
        book.insert(order(3, Side::Ask, 105, 5, 3));
        // An incoming bid at 102 can reach the first two levels only.
        assert_eq!(book.crossable_qty(Side::Ask, Price::new(102)), Qty::new(10));
        assert_eq!(book.crossable_qty(Side::Ask, Price::new(100)), Qty::ZERO);
        assert_eq!(book.crossable_qty(Side::Ask, Price::new(200)), Qty::new(15));
    }

    #[test]
    #[should_panic(expected = "duplicate order id")]
    fn duplicate_insert_panics() {
        let mut book = ReferenceBook::new();
        book.insert(order(1, Side::Bid, 99, 5, 1));
        book.insert(order(1, Side::Bid, 98, 5, 2));
    }
}
