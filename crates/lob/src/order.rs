//! Order representations accepted by the matching engine.

use crate::types::{OrderId, Price, Qty, Side, Timestamp};
use serde::{Deserialize, Serialize};

/// How long an order remains eligible to rest on the book.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum TimeInForce {
    /// Good-till-cancel: rests until filled or cancelled (the default).
    #[default]
    Gtc,
    /// Immediate-or-cancel: any unfilled remainder is cancelled instead of
    /// resting.
    Ioc,
    /// Fill-or-kill: either fills completely and immediately or is rejected
    /// without trading at all.
    Fok,
}

/// A new order as submitted by a market participant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NewOrder {
    /// Participant-assigned identifier; must be unique per engine.
    pub id: OrderId,
    /// Buy or sell.
    pub side: Side,
    /// Limit price in ticks.
    pub price: Price,
    /// Total quantity to trade.
    pub qty: Qty,
    /// Time-in-force policy.
    pub tif: TimeInForce,
}

impl NewOrder {
    /// Creates a good-till-cancel limit order.
    pub fn limit(id: OrderId, side: Side, price: Price, qty: Qty) -> Self {
        NewOrder {
            id,
            side,
            price,
            qty,
            tif: TimeInForce::Gtc,
        }
    }

    /// Creates an immediate-or-cancel limit order (used for aggressive
    /// "take" orders in the trading engine).
    pub fn ioc(id: OrderId, side: Side, price: Price, qty: Qty) -> Self {
        NewOrder {
            id,
            side,
            price,
            qty,
            tif: TimeInForce::Ioc,
        }
    }

    /// Creates a fill-or-kill limit order.
    pub fn fok(id: OrderId, side: Side, price: Price, qty: Qty) -> Self {
        NewOrder {
            id,
            side,
            price,
            qty,
            tif: TimeInForce::Fok,
        }
    }
}

/// An order resting on the book.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Order {
    /// Participant-assigned identifier.
    pub id: OrderId,
    /// Buy or sell.
    pub side: Side,
    /// Limit price in ticks.
    pub price: Price,
    /// Remaining (unfilled) quantity.
    pub remaining: Qty,
    /// Original submitted quantity.
    pub original: Qty,
    /// Engine arrival time; earlier orders at a level fill first.
    pub arrival: Timestamp,
    /// Monotone sequence number used to break arrival-time ties
    /// deterministically.
    pub seq: u64,
}

impl Order {
    /// Quantity filled so far.
    pub fn filled(&self) -> Qty {
        self.original - self.remaining
    }

    /// True once the order has no remaining quantity.
    pub fn is_filled(&self) -> bool {
        self.remaining.is_zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_tif() {
        let id = OrderId::new(7);
        let p = Price::new(10);
        let q = Qty::new(5);
        assert_eq!(NewOrder::limit(id, Side::Bid, p, q).tif, TimeInForce::Gtc);
        assert_eq!(NewOrder::ioc(id, Side::Bid, p, q).tif, TimeInForce::Ioc);
        assert_eq!(NewOrder::fok(id, Side::Bid, p, q).tif, TimeInForce::Fok);
        assert_eq!(TimeInForce::default(), TimeInForce::Gtc);
    }

    #[test]
    fn filled_tracks_remaining() {
        let o = Order {
            id: OrderId::new(1),
            side: Side::Ask,
            price: Price::new(10),
            remaining: Qty::new(2),
            original: Qty::new(5),
            arrival: Timestamp::ZERO,
            seq: 0,
        };
        assert_eq!(o.filled(), Qty::new(3));
        assert!(!o.is_filled());
    }
}
