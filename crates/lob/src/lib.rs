//! Limit order books and a price/time-priority matching engine.
//!
//! This crate is the exchange-side substrate of the LightTrader
//! reproduction. It provides:
//!
//! * strongly typed market primitives ([`Price`], [`Qty`], [`Side`],
//!   [`OrderId`], [`Timestamp`], [`Symbol`]),
//! * a [`Book`] holding resting orders in price/time priority — the
//!   contiguous, zero-steady-state-allocation [`LadderBook`] on the hot
//!   path, with the map-based [`ReferenceBook`] kept as the behavioral
//!   oracle behind the shared [`BookStore`] trait,
//! * a [`MatchingEngine`] that accepts new,
//!   cancel, and replace orders and emits [`MarketEvent`]
//!   tick data exactly the way an exchange's market-data feed would,
//! * [`LobSnapshot`], the ten-level book view that the
//!   trading pipeline converts into DNN input feature maps (paper §II-B).
//!
//! # Example
//!
//! ```
//! use lt_lob::prelude::*;
//!
//! let mut engine = MatchingEngine::new(Symbol::new("ESU6"));
//! let ts = Timestamp::from_nanos(1);
//! engine.submit(NewOrder::limit(OrderId::new(1), Side::Bid, Price::new(5000), Qty::new(3)), ts);
//! engine.submit(NewOrder::limit(OrderId::new(2), Side::Ask, Price::new(5001), Qty::new(2)), ts);
//! let snap = engine.book().snapshot(10, ts);
//! assert_eq!(snap.best_bid().unwrap().price, Price::new(5000));
//! assert_eq!(snap.best_ask().unwrap().price, Price::new(5001));
//! ```

pub mod analytics;
pub mod book;
pub mod events;
pub mod execution;
pub mod hash;
pub mod ladder;
pub mod matching;
pub mod order;
pub mod snapshot;
pub mod store;
pub mod types;

/// The default hot-path book; the map-based oracle is [`ReferenceBook`].
pub type Book = ladder::LadderBook;

pub use book::{LevelView, ReferenceBook};
pub use events::{BookDelta, MarketEvent, Trade};
pub use execution::{fill_ioc, FeeModel, Fill, FillModel, OrderIntent};
pub use hash::IdHashBuilder;
pub use ladder::{LadderBook, PriceLadder};
pub use matching::{
    ExecutionReport, MatchOutcome, MatchingEngine, ReferenceMatchingEngine, RejectReason,
};
pub use order::{NewOrder, Order, TimeInForce};
pub use snapshot::{LobSnapshot, SnapshotLevel};
pub use store::BookStore;
pub use types::{OrderId, Price, Qty, Side, Symbol, Timestamp};

/// Convenient single-line import of every name a LOB user typically needs.
pub mod prelude {
    pub use crate::book::{LevelView, ReferenceBook};
    pub use crate::events::{BookDelta, MarketEvent, Trade};
    pub use crate::execution::{fill_ioc, FeeModel, Fill, FillModel, OrderIntent};
    pub use crate::ladder::{LadderBook, PriceLadder};
    pub use crate::matching::{
        ExecutionReport, MatchOutcome, MatchingEngine, ReferenceMatchingEngine, RejectReason,
    };
    pub use crate::order::{NewOrder, Order, TimeInForce};
    pub use crate::snapshot::{LobSnapshot, SnapshotLevel};
    pub use crate::store::BookStore;
    pub use crate::types::{OrderId, Price, Qty, Side, Symbol, Timestamp};
    pub use crate::Book;
}
