//! Limit order books and a price/time-priority matching engine.
//!
//! This crate is the exchange-side substrate of the LightTrader
//! reproduction. It provides:
//!
//! * strongly typed market primitives ([`Price`], [`Qty`], [`Side`],
//!   [`OrderId`], [`Timestamp`], [`Symbol`]),
//! * a [`Book`] holding resting orders in price/time priority,
//! * a [`MatchingEngine`] that accepts new,
//!   cancel, and replace orders and emits [`MarketEvent`]
//!   tick data exactly the way an exchange's market-data feed would,
//! * [`LobSnapshot`], the ten-level book view that the
//!   trading pipeline converts into DNN input feature maps (paper §II-B).
//!
//! # Example
//!
//! ```
//! use lt_lob::prelude::*;
//!
//! let mut engine = MatchingEngine::new(Symbol::new("ESU6"));
//! let ts = Timestamp::from_nanos(1);
//! engine.submit(NewOrder::limit(OrderId::new(1), Side::Bid, Price::new(5000), Qty::new(3)), ts);
//! engine.submit(NewOrder::limit(OrderId::new(2), Side::Ask, Price::new(5001), Qty::new(2)), ts);
//! let snap = engine.book().snapshot(10, ts);
//! assert_eq!(snap.best_bid().unwrap().price, Price::new(5000));
//! assert_eq!(snap.best_ask().unwrap().price, Price::new(5001));
//! ```

pub mod analytics;
pub mod book;
pub mod events;
pub mod matching;
pub mod order;
pub mod snapshot;
pub mod types;

pub use book::{Book, LevelView};
pub use events::{BookDelta, MarketEvent, Trade};
pub use matching::{ExecutionReport, MatchOutcome, MatchingEngine, RejectReason};
pub use order::{NewOrder, Order, TimeInForce};
pub use snapshot::{LobSnapshot, SnapshotLevel};
pub use types::{OrderId, Price, Qty, Side, Symbol, Timestamp};

/// Convenient single-line import of every name a LOB user typically needs.
pub mod prelude {
    pub use crate::book::{Book, LevelView};
    pub use crate::events::{BookDelta, MarketEvent, Trade};
    pub use crate::matching::{ExecutionReport, MatchOutcome, MatchingEngine, RejectReason};
    pub use crate::order::{NewOrder, Order, TimeInForce};
    pub use crate::snapshot::{LobSnapshot, SnapshotLevel};
    pub use crate::types::{OrderId, Price, Qty, Side, Symbol, Timestamp};
}
