//! Property-based tests of the matching engine's core invariants.

use lt_lob::prelude::*;
use proptest::prelude::*;

/// A random order action the engine must survive.
#[derive(Debug, Clone)]
enum Action {
    New {
        side: Side,
        price: i64,
        qty: u64,
        tif: u8,
    },
    Cancel {
        target: u64,
    },
    Replace {
        target: u64,
        price: i64,
        qty: u64,
    },
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        4 => (any::<bool>(), 90i64..110, 1u64..20, 0u8..3).prop_map(|(bid, price, qty, tif)| {
            Action::New {
                side: if bid { Side::Bid } else { Side::Ask },
                price,
                qty,
                tif,
            }
        }),
        1 => (0u64..64).prop_map(|target| Action::Cancel { target }),
        1 => (0u64..64, 90i64..110, 0u64..20).prop_map(|(target, price, qty)| Action::Replace {
            target,
            price,
            qty
        }),
    ]
}

fn run(actions: Vec<Action>) -> (MatchingEngine, Vec<MarketEvent>) {
    let mut engine = MatchingEngine::new(Symbol::new("ESU6"));
    let mut events = Vec::new();
    let mut next_id = 1u64;
    let mut known = Vec::new();
    for (step, action) in actions.into_iter().enumerate() {
        let ts = Timestamp::from_nanos(step as u64 + 1);
        let out = match action {
            Action::New {
                side,
                price,
                qty,
                tif,
            } => {
                let id = OrderId::new(next_id);
                next_id += 1;
                known.push(id);
                let order = match tif {
                    0 => NewOrder::limit(id, side, Price::new(price), Qty::new(qty)),
                    1 => NewOrder::ioc(id, side, Price::new(price), Qty::new(qty)),
                    _ => NewOrder::fok(id, side, Price::new(price), Qty::new(qty)),
                };
                engine.submit(order, ts)
            }
            Action::Cancel { target } => {
                let id = known
                    .get(target as usize % known.len().max(1))
                    .copied()
                    .unwrap_or(OrderId::new(9999));
                engine.cancel(id, ts)
            }
            Action::Replace { target, price, qty } => {
                let id = known
                    .get(target as usize % known.len().max(1))
                    .copied()
                    .unwrap_or(OrderId::new(9999));
                engine.replace(id, Price::new(price), Qty::new(qty), ts)
            }
        };
        events.extend(out.events);
    }
    (engine, events)
}

proptest! {
    /// After any sequence of actions, the book is never crossed: the
    /// matching engine must have traded away any overlap.
    #[test]
    fn book_never_crossed(actions in proptest::collection::vec(action_strategy(), 1..120)) {
        let (engine, _) = run(actions);
        prop_assert!(!engine.book().is_crossed(),
            "best bid {:?} >= best ask {:?}",
            engine.book().best_bid(), engine.book().best_ask());
    }

    /// Market-data sequence numbers are strictly increasing with no gaps.
    #[test]
    fn event_seq_strictly_increasing(actions in proptest::collection::vec(action_strategy(), 1..120)) {
        let (_, events) = run(actions);
        for pair in events.windows(2) {
            prop_assert!(pair[0].seq < pair[1].seq);
        }
    }

    /// Every trade prints at the resting (maker) order's price, which must
    /// be weakly better for the taker than their own limit.
    #[test]
    fn trades_print_inside_taker_limit(actions in proptest::collection::vec(action_strategy(), 1..120)) {
        // Track submitted limits so trades can be validated against them.
        let mut engine = MatchingEngine::new(Symbol::new("ESU6"));
        let mut limits = std::collections::HashMap::new();
        let mut next_id = 1u64;
        for (step, action) in actions.into_iter().enumerate() {
            let ts = Timestamp::from_nanos(step as u64 + 1);
            if let Action::New { side, price, qty, tif } = action {
                let id = OrderId::new(next_id);
                next_id += 1;
                limits.insert(id, (side, Price::new(price)));
                let order = match tif {
                    0 => NewOrder::limit(id, side, Price::new(price), Qty::new(qty)),
                    1 => NewOrder::ioc(id, side, Price::new(price), Qty::new(qty)),
                    _ => NewOrder::fok(id, side, Price::new(price), Qty::new(qty)),
                };
                let out = engine.submit(order, ts);
                for trade in out.events.iter().filter_map(MarketEvent::as_trade) {
                    let (side, limit) = limits[&trade.taker];
                    match side {
                        Side::Bid => prop_assert!(trade.price <= limit),
                        Side::Ask => prop_assert!(trade.price >= limit),
                    }
                }
            }
        }
    }

    /// Quantity is conserved: submitted = traded + resting + cancelled.
    #[test]
    fn quantity_conserved(actions in proptest::collection::vec(action_strategy(), 1..120)) {
        let mut engine = MatchingEngine::new(Symbol::new("ESU6"));
        let mut submitted = 0u64;
        let mut traded_x2 = 0u64; // each trade consumes qty from both sides
        let mut cancelled = 0u64;
        let mut next_id = 1u64;
        let mut known = Vec::new();
        for (step, action) in actions.into_iter().enumerate() {
            let ts = Timestamp::from_nanos(step as u64 + 1);
            match action {
                Action::New { side, price, qty, tif } => {
                    let id = OrderId::new(next_id);
                    next_id += 1;
                    known.push(id);
                    let order = match tif {
                        0 => NewOrder::limit(id, side, Price::new(price), Qty::new(qty)),
                        1 => NewOrder::ioc(id, side, Price::new(price), Qty::new(qty)),
                        _ => NewOrder::fok(id, side, Price::new(price), Qty::new(qty)),
                    };
                    let out = engine.submit(order, ts);
                    if !out.report.is_rejected() {
                        submitted += qty;
                    }
                    if let ExecutionReport::Cancelled { filled } = out.report {
                        cancelled += (Qty::new(qty) - filled).contracts();
                    }
                    for t in out.events.iter().filter_map(MarketEvent::as_trade) {
                        traded_x2 += 2 * t.qty.contracts();
                    }
                }
                Action::Cancel { target } => {
                    let id = known.get(target as usize % known.len().max(1)).copied()
                        .unwrap_or(OrderId::new(9999));
                    let before = engine.book().order(id).map(|o| o.remaining.contracts());
                    let out = engine.cancel(id, ts);
                    if !out.report.is_rejected() {
                        cancelled += before.unwrap_or(0);
                    }
                }
                Action::Replace { .. } => {
                    // Replace churns identity; skip it for this conservation
                    // check (covered by dedicated unit tests).
                }
            }
        }
        let resting: u64 = [Side::Bid, Side::Ask]
            .iter()
            .flat_map(|&s| engine.book().levels(s, usize::MAX))
            .map(|l| l.qty.contracts())
            .sum();
        prop_assert_eq!(submitted, traded_x2 + resting + cancelled);
    }

    /// Snapshot levels are sorted and never overlap (bid < ask).
    #[test]
    fn snapshot_well_formed(actions in proptest::collection::vec(action_strategy(), 1..120)) {
        let (engine, _) = run(actions);
        let snap = engine.book().snapshot(10, Timestamp::from_nanos(0));
        for pair in snap.bids.windows(2) {
            prop_assert!(pair[0].price > pair[1].price, "bids descending");
        }
        for pair in snap.asks.windows(2) {
            prop_assert!(pair[0].price < pair[1].price, "asks ascending");
        }
        if let (Some(b), Some(a)) = (snap.best_bid(), snap.best_ask()) {
            prop_assert!(b.price < a.price);
        }
        prop_assert!(snap.bids.len() <= 10 && snap.asks.len() <= 10);
    }
}
