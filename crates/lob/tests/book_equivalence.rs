//! Differential suite pinning [`LadderBook`] to [`ReferenceBook`].
//!
//! The contiguous ladder replaces the map-based book on the hot path; its
//! contract is *bit-identical behavior* — same execution reports, same
//! market-data events, same snapshots, level views, and features — over
//! any action stream. Both books are driven through identical
//! [`MatchingEngine`] instances and compared after every single action,
//! mirroring the `forward_reference` pattern that pinned the PR 1 kernels.

use lt_lob::prelude::*;
use proptest::prelude::*;

/// A random order action both engines must process identically.
#[derive(Debug, Clone)]
enum Action {
    New {
        side: Side,
        price: i64,
        qty: u64,
        tif: u8,
    },
    Cancel {
        target: u64,
    },
    Replace {
        target: u64,
        price: i64,
        qty: u64,
    },
}

/// Banded prices with occasional multi-thousand-tick excursions so streams
/// exercise the ladder's rehoming path, not just the warm band.
fn price_strategy() -> impl Strategy<Value = i64> {
    prop_oneof![
        8 => 9_990i64..10_010,
        1 => 8_000i64..12_000,
        1 => 1i64..20_000,
    ]
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        5 => (any::<bool>(), price_strategy(), 1u64..20, 0u8..3).prop_map(
            |(bid, price, qty, tif)| Action::New {
                side: if bid { Side::Bid } else { Side::Ask },
                price,
                qty,
                tif,
            }
        ),
        2 => (0u64..96).prop_map(|target| Action::Cancel { target }),
        2 => (0u64..96, price_strategy(), 0u64..20).prop_map(|(target, price, qty)| {
            Action::Replace { target, price, qty }
        }),
    ]
}

/// Applies one action to an engine, tracking ids exactly like the property
/// suite does so both engines see the same id stream.
fn apply<B: BookStore>(
    engine: &mut MatchingEngine<B>,
    next_id: &mut u64,
    known: &mut Vec<OrderId>,
    step: usize,
    action: &Action,
) -> MatchOutcome {
    let ts = Timestamp::from_nanos(step as u64 + 1);
    match *action {
        Action::New {
            side,
            price,
            qty,
            tif,
        } => {
            let id = OrderId::new(*next_id);
            *next_id += 1;
            known.push(id);
            let order = match tif {
                0 => NewOrder::limit(id, side, Price::new(price), Qty::new(qty)),
                1 => NewOrder::ioc(id, side, Price::new(price), Qty::new(qty)),
                _ => NewOrder::fok(id, side, Price::new(price), Qty::new(qty)),
            };
            engine.submit(order, ts)
        }
        Action::Cancel { target } => {
            let id = known
                .get(target as usize % known.len().max(1))
                .copied()
                .unwrap_or(OrderId::new(9999));
            engine.cancel(id, ts)
        }
        Action::Replace { target, price, qty } => {
            let id = known
                .get(target as usize % known.len().max(1))
                .copied()
                .unwrap_or(OrderId::new(9999));
            engine.replace(id, Price::new(price), Qty::new(qty), ts)
        }
    }
}

/// Asserts every observable surface of the two books agrees.
fn assert_books_match(
    step: usize,
    known: &[OrderId],
    ladder: &MatchingEngine<LadderBook>,
    reference: &ReferenceMatchingEngine,
) {
    let lb = ladder.book();
    let rb = reference.book();
    assert_eq!(lb.len(), rb.len(), "step {step}: order count");
    assert_eq!(lb.best_bid(), rb.best_bid(), "step {step}: best bid");
    assert_eq!(lb.best_ask(), rb.best_ask(), "step {step}: best ask");
    assert_eq!(lb.spread(), rb.spread(), "step {step}: spread");
    assert_eq!(lb.mid_price_x2(), rb.mid_price_x2(), "step {step}: mid");
    assert_eq!(lb.is_crossed(), rb.is_crossed(), "step {step}: crossed");
    for side in [Side::Bid, Side::Ask] {
        assert_eq!(
            lb.levels(side, usize::MAX),
            rb.levels(side, usize::MAX),
            "step {step}: full {side:?} depth"
        );
    }
    let ts = Timestamp::from_nanos(step as u64 + 1);
    for depth in [1usize, 3, 10] {
        let ls = lb.snapshot(depth, ts);
        let rs = rb.snapshot(depth, ts);
        assert_eq!(ls, rs, "step {step}: snapshot depth {depth}");
        assert_eq!(
            ls.to_features(depth),
            rs.to_features(depth),
            "step {step}: features depth {depth}"
        );
        let mut written = vec![f32::NAN; LobSnapshot::feature_count(depth)];
        ls.write_features(depth, &mut written);
        assert_eq!(
            written,
            rs.to_features(depth),
            "step {step}: in-place features depth {depth}"
        );
        // Direct book→buffer extraction (no snapshot) on both stores.
        written.fill(f32::NAN);
        lb.write_features(depth, &mut written);
        assert_eq!(
            written,
            rs.to_features(depth),
            "step {step}: ladder direct features depth {depth}"
        );
        written.fill(f32::NAN);
        rb.write_features(depth, &mut written);
        assert_eq!(
            written,
            rs.to_features(depth),
            "step {step}: reference direct features depth {depth}"
        );
    }
    for &id in known {
        assert_eq!(
            lb.contains(id),
            rb.contains(id),
            "step {step}: contains {id}"
        );
        assert_eq!(
            lb.order(id).copied(),
            rb.order(id).copied(),
            "step {step}: order {id}"
        );
    }
    assert_eq!(
        ladder.trade_count(),
        reference.trade_count(),
        "step {step}: trades"
    );
    assert_eq!(
        ladder.traded_volume(),
        reference.traded_volume(),
        "step {step}: volume"
    );
}

/// Drives both engines through `actions`, comparing outcomes and full book
/// state after every action.
fn run_differential(actions: &[Action]) {
    let mut ladder = MatchingEngine::new(Symbol::new("ESU6"));
    let mut reference = MatchingEngine::new_reference(Symbol::new("ESU6"));
    let mut ladder_ids = (1u64, Vec::new());
    let mut reference_ids = (1u64, Vec::new());
    for (step, action) in actions.iter().enumerate() {
        let lout = apply(
            &mut ladder,
            &mut ladder_ids.0,
            &mut ladder_ids.1,
            step,
            action,
        );
        let rout = apply(
            &mut reference,
            &mut reference_ids.0,
            &mut reference_ids.1,
            step,
            action,
        );
        assert_eq!(lout, rout, "step {step}: outcome for {action:?}");
        assert_books_match(step, &ladder_ids.1, &ladder, &reference);
    }
}

fn new(side: Side, price: i64, qty: u64) -> Action {
    Action::New {
        side,
        price,
        qty,
        tif: 0,
    }
}

proptest! {
    /// Random streams (with rehoming excursions) behave identically on
    /// both books, checked action by action.
    #[test]
    fn random_streams_are_equivalent(
        actions in proptest::collection::vec(action_strategy(), 1..80)
    ) {
        run_differential(&actions);
    }

    /// Tight-band, high-churn streams — the steady-state hot path.
    #[test]
    fn banded_churn_is_equivalent(
        actions in proptest::collection::vec(
            prop_oneof![
                3 => (any::<bool>(), 99i64..102, 1u64..5, 0u8..3).prop_map(
                    |(bid, price, qty, tif)| Action::New {
                        side: if bid { Side::Bid } else { Side::Ask },
                        price, qty, tif,
                    }),
                2 => (0u64..96).prop_map(|target| Action::Cancel { target }),
                2 => (0u64..96, 99i64..102, 0u64..5).prop_map(
                    |(target, price, qty)| Action::Replace { target, price, qty }),
            ],
            1..120,
        )
    ) {
        run_differential(&actions);
    }
}

#[test]
fn cancel_of_unknown_and_double_cancel() {
    run_differential(&[
        Action::Cancel { target: 7 },
        new(Side::Bid, 10_000, 5),
        Action::Cancel { target: 0 },
        Action::Cancel { target: 0 },
        Action::Replace {
            target: 0,
            price: 10_001,
            qty: 3,
        },
    ]);
}

#[test]
fn replace_to_cross_trades_identically() {
    run_differential(&[
        new(Side::Ask, 10_005, 4),
        new(Side::Ask, 10_006, 2),
        new(Side::Bid, 9_995, 3),
        // Replace the bid up through both ask levels: delete + sweep.
        Action::Replace {
            target: 2,
            price: 10_006,
            qty: 6,
        },
    ]);
}

#[test]
fn pivot_shifting_price_jumps() {
    run_differential(&[
        new(Side::Bid, 10_000, 5),
        new(Side::Ask, 10_002, 5),
        // Thousands of ticks away in both directions: forces rehomes.
        new(Side::Bid, 8_000, 2),
        new(Side::Ask, 12_000, 2),
        new(Side::Bid, 1, 1),
        new(Side::Ask, 19_999, 1),
        // Aggressive orders sweep across the rehomed band.
        Action::New {
            side: Side::Bid,
            price: 12_000,
            qty: 9,
            tif: 1,
        },
        Action::New {
            side: Side::Ask,
            price: 1,
            qty: 9,
            tif: 1,
        },
    ]);
}

#[test]
fn empty_and_one_sided_snapshots() {
    run_differential(&[
        // Empty book: cancel misses, snapshots compared while both sides
        // are empty.
        Action::Cancel { target: 3 },
        // One-sided book.
        new(Side::Bid, 10_000, 5),
        new(Side::Bid, 9_999, 2),
        // Sweep the side empty again with an aggressive IOC.
        Action::New {
            side: Side::Ask,
            price: 9_999,
            qty: 7,
            tif: 1,
        },
    ]);
}

#[test]
fn fok_duplicate_and_zero_qty_rejects() {
    run_differential(&[
        new(Side::Ask, 10_001, 2),
        // FOK for more than is crossable: rejected on both.
        Action::New {
            side: Side::Bid,
            price: 10_001,
            qty: 5,
            tif: 2,
        },
        // FOK that fills exactly.
        Action::New {
            side: Side::Bid,
            price: 10_001,
            qty: 2,
            tif: 2,
        },
        Action::New {
            side: Side::Bid,
            price: 10_000,
            qty: 0,
            tif: 0,
        },
    ]);
}

#[test]
fn queue_priority_preserved_across_partial_fills() {
    run_differential(&[
        new(Side::Ask, 10_001, 3),
        new(Side::Ask, 10_001, 4),
        new(Side::Ask, 10_001, 5),
        // Partial sweeps peel the FIFO in arrival order on both books.
        Action::New {
            side: Side::Bid,
            price: 10_001,
            qty: 2,
            tif: 1,
        },
        Action::New {
            side: Side::Bid,
            price: 10_001,
            qty: 4,
            tif: 1,
        },
        Action::Cancel { target: 1 },
        Action::New {
            side: Side::Bid,
            price: 10_001,
            qty: 6,
            tif: 1,
        },
    ]);
}
