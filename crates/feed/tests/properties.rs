//! Property tests for the feed substrate: trace persistence, session
//! generation, and normalization.

use lt_feed::trace_io::{decode_trace, encode_trace};
use lt_feed::{NormStats, SessionBuilder, TickTrace};
use lt_lob::snapshot::SnapshotLevel;
use lt_lob::{LobSnapshot, Price, Qty, Symbol, Timestamp};
use proptest::prelude::*;

fn snapshot_strategy() -> impl Strategy<Value = LobSnapshot> {
    let level = (any::<i64>(), any::<u64>()).prop_map(|(p, q)| SnapshotLevel {
        price: Price::new(p),
        qty: Qty::new(q),
    });
    (
        any::<u64>(),
        proptest::collection::vec(level.clone(), 0..10),
        proptest::collection::vec(level, 0..10),
    )
        .prop_map(|(ts, bids, asks)| LobSnapshot {
            ts: Timestamp::from_nanos(ts),
            bids,
            asks,
        })
}

fn trace_strategy() -> impl Strategy<Value = TickTrace> {
    proptest::collection::vec((0u64..1 << 40, snapshot_strategy()), 0..40).prop_map(|mut ticks| {
        ticks.sort_by_key(|(ts, _)| *ts);
        let mut trace = TickTrace::new(Symbol::new("ESU6"));
        for (ts, snapshot) in ticks {
            trace.push(Timestamp::from_nanos(ts), snapshot);
        }
        trace
    })
}

proptest! {
    /// The LTTR binary format round-trips arbitrary traces exactly.
    #[test]
    fn lttr_round_trips(trace in trace_strategy()) {
        let bytes = encode_trace(&trace);
        let back = decode_trace(&bytes).unwrap();
        prop_assert_eq!(back, trace);
    }

    /// Any single-byte corruption of an encoded trace is rejected.
    #[test]
    fn lttr_detects_any_flip(
        trace in trace_strategy(),
        at in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let mut bytes = encode_trace(&trace);
        let pos = at.index(bytes.len());
        bytes[pos] ^= flip;
        prop_assert!(decode_trace(&bytes).is_err());
    }

    /// Decoding arbitrary garbage never panics.
    #[test]
    fn lttr_survives_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_trace(&bytes);
    }

    /// Sessions of any duration/seed produce ordered, two-sided ticks and
    /// fit stats of the right width.
    #[test]
    fn sessions_are_well_formed(seed in 0u64..500, ms in 20u64..200) {
        let session = SessionBuilder::calm_traffic()
            .duration_secs(ms as f64 / 1000.0)
            .seed(seed)
            .build();
        for pair in session.trace.ticks.windows(2) {
            prop_assert!(pair[0].ts <= pair[1].ts);
        }
        prop_assert_eq!(session.norm.width(), 40);
        if !session.trace.is_empty() {
            // Normalization over the fitted session stays finite.
            let mut f = session.trace.ticks[0].snapshot.to_features(10);
            session.norm.normalize(&mut f);
            prop_assert!(f.iter().all(|v| v.is_finite()));
        }
    }

    /// Normalize/denormalize is the identity (within float tolerance) for
    /// stats fitted on any session.
    #[test]
    fn norm_round_trips(seed in 0u64..200) {
        let session = SessionBuilder::calm_traffic()
            .duration_secs(0.1)
            .seed(seed)
            .build();
        prop_assume!(session.trace.len() > 10);
        let stats = NormStats::fit(&session.trace, 10);
        let original = session.trace.ticks[5].snapshot.to_features(10);
        let mut f = original.clone();
        stats.normalize(&mut f);
        stats.denormalize(&mut f);
        for (a, b) in original.iter().zip(&f) {
            let tol = 1e-2_f32.max(a.abs() * 1e-3);
            prop_assert!((a - b).abs() < tol, "{} vs {}", a, b);
        }
    }
}
