//! One-call market session generation.
//!
//! A [`SessionBuilder`] wires the Hawkes arrival process to the agent
//! order flow and records the resulting tick trace plus the historical
//! normalization statistics the offload engine needs. Presets bundle the
//! calibrated traffic intensities used by the evaluation harness.

use crate::agents::{AgentFlow, AgentParams};
use crate::bursts::{merge_sorted, FlashParams};
use crate::hawkes::{HawkesParams, HawkesProcess};
use crate::stats::NormStats;
use crate::trace::TickTrace;
use lt_lob::{Symbol, Timestamp};

/// Book depth recorded in every trace (the paper's ten levels, §III-A).
pub const TRACE_DEPTH: usize = 10;

/// A generated market session: the trace plus fitted normalization stats.
#[derive(Debug, Clone)]
pub struct MarketSession {
    /// The replayable tick trace.
    pub trace: TickTrace,
    /// Z-score statistics fitted over the whole session (standing in for
    /// the paper's "historical market data" profile).
    pub norm: NormStats,
}

/// Builder for [`MarketSession`]s.
///
/// # Example
///
/// ```
/// use lt_feed::SessionBuilder;
///
/// let session = SessionBuilder::normal_traffic()
///     .duration_secs(0.5)
///     .seed(7)
///     .build();
/// assert!(session.trace.len() > 100);
/// ```
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    symbol: Symbol,
    seed: u64,
    duration_secs: f64,
    hawkes: HawkesParams,
    agents: AgentParams,
    flash: Option<FlashParams>,
}

impl SessionBuilder {
    /// Starts a builder with explicit Hawkes parameters.
    pub fn new(hawkes: HawkesParams) -> Self {
        SessionBuilder {
            symbol: Symbol::new("ESU6"),
            seed: 0,
            duration_secs: 1.0,
            hawkes,
            agents: AgentParams::default(),
            flash: None,
        }
    }

    /// Calm traffic: a few hundred ticks per second, mild clustering.
    pub fn calm_traffic() -> Self {
        SessionBuilder::new(HawkesParams::new(200.0, 30.0, 100.0))
    }

    /// The default evaluation traffic: ~2 000 ticks/s mean with strong
    /// self-excitation (branching ratio 0.8), producing the µs-to-ms gap
    /// range the paper's scheduler experiments stress.
    pub fn normal_traffic() -> Self {
        SessionBuilder::new(HawkesParams::new(400.0, 160.0, 200.0))
    }

    /// Stressed traffic: flash-crash-like cascades (branching ratio 0.9).
    pub fn stressed_traffic() -> Self {
        SessionBuilder::new(HawkesParams::new(300.0, 270.0, 300.0))
    }

    /// Sets the traded symbol (default `ESU6`).
    pub fn symbol(mut self, symbol: Symbol) -> Self {
        self.symbol = symbol;
        self
    }

    /// Sets the RNG seed shared by arrivals and agent flow.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the session length in simulated seconds (default 1.0).
    ///
    /// # Panics
    ///
    /// Panics if `secs` is not positive.
    pub fn duration_secs(mut self, secs: f64) -> Self {
        assert!(secs > 0.0, "duration must be positive");
        self.duration_secs = secs;
        self
    }

    /// Overrides the agent-flow parameters.
    pub fn agent_params(mut self, params: AgentParams) -> Self {
        self.agents = params;
        self
    }

    /// Overrides the Hawkes parameters.
    pub fn hawkes_params(mut self, params: HawkesParams) -> Self {
        self.hawkes = params;
        self
    }

    /// Injects flash bursts (machine-speed order cascades) on top of the
    /// Hawkes background; see [`FlashParams`].
    pub fn flash_bursts(mut self, params: FlashParams) -> Self {
        self.flash = Some(params);
        self
    }

    /// Generates the session.
    pub fn build(&self) -> MarketSession {
        let mut process = HawkesProcess::new(self.hawkes, self.seed);
        let mut arrivals = process.sample_for(self.duration_secs);
        if let Some(flash) = self.flash {
            let bursts = flash.sample_for(self.duration_secs, self.seed.wrapping_add(17));
            arrivals = merge_sorted(arrivals, bursts);
        }
        let mut flow = AgentFlow::new(self.symbol, self.agents, self.seed.wrapping_add(1));
        let mut trace = TickTrace::new(self.symbol);
        for t in arrivals {
            let ts = Timestamp::from_nanos((t * 1e9) as u64);
            let events = flow.step(ts);
            debug_assert!(!events.is_empty());
            let snapshot = flow.engine().book().snapshot(TRACE_DEPTH, ts);
            trace.push(ts, snapshot);
        }
        let norm = if trace.is_empty() {
            NormStats::identity(TRACE_DEPTH)
        } else {
            NormStats::fit(&trace, TRACE_DEPTH)
        };
        MarketSession { trace, norm }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_ordered_trace() {
        let session = SessionBuilder::normal_traffic()
            .duration_secs(0.25)
            .seed(3)
            .build();
        assert!(session.trace.len() > 50);
        for pair in session.trace.ticks.windows(2) {
            assert!(pair[0].ts <= pair[1].ts);
        }
        assert_eq!(session.norm.depth(), TRACE_DEPTH);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SessionBuilder::normal_traffic()
            .duration_secs(0.1)
            .seed(5)
            .build();
        let b = SessionBuilder::normal_traffic()
            .duration_secs(0.1)
            .seed(5)
            .build();
        assert_eq!(a.trace, b.trace);
        let c = SessionBuilder::normal_traffic()
            .duration_secs(0.1)
            .seed(6)
            .build();
        assert_ne!(a.trace, c.trace);
    }

    #[test]
    fn traffic_presets_are_ordered_by_rate() {
        let rate = |b: SessionBuilder| {
            b.duration_secs(2.0)
                .seed(1)
                .build()
                .trace
                .stats()
                .mean_rate()
        };
        let calm = rate(SessionBuilder::calm_traffic());
        let normal = rate(SessionBuilder::normal_traffic());
        let stressed = rate(SessionBuilder::stressed_traffic());
        assert!(calm < normal, "calm {calm} vs normal {normal}");
        assert!(normal < stressed, "normal {normal} vs stressed {stressed}");
    }

    #[test]
    fn normal_traffic_is_bursty() {
        let session = SessionBuilder::normal_traffic()
            .duration_secs(2.0)
            .seed(3)
            .build();
        let stats = session.trace.stats();
        assert!(stats.cv > 1.2, "cv {}", stats.cv);
        // Gaps span at least three orders of magnitude.
        assert!(stats.max_gap_nanos / stats.min_gap_nanos.max(1) > 100);
    }

    #[test]
    fn snapshots_are_two_sided_everywhere() {
        let session = SessionBuilder::normal_traffic()
            .duration_secs(0.2)
            .seed(8)
            .build();
        for tick in &session.trace {
            assert!(tick.snapshot.best_bid().is_some());
            assert!(tick.snapshot.best_ask().is_some());
        }
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn zero_duration_rejected() {
        let _ = SessionBuilder::calm_traffic().duration_secs(0.0);
    }
}
