//! Correlated multi-instrument market sessions.
//!
//! A real HFT deployment subscribes to many instruments at once, and
//! their order flow is *correlated*: index futures, their options, and
//! the large constituents burst together when the market moves. The
//! [`MultiSessionBuilder`] models this with one **shared market-factor
//! Hawkes stream** — sampled once and merged into every symbol's own
//! arrivals — plus a per-symbol idiosyncratic Hawkes process with its own
//! seed. A Zipf-style `skew` knob concentrates traffic on the leading
//! symbols (the realistic case: one hot contract and a long tail), while
//! `skew = 0` splits load evenly.
//!
//! The per-symbol traces stay independent, replayable artefacts; the
//! [`MultiMarketSession::merged`] view k-way-merges them into one
//! time-ordered stream with a parallel shard map, which is exactly what
//! the sharded back-test core consumes.

use crate::agents::{AgentFlow, AgentParams};
use crate::bursts::{merge_sorted, FlashParams};
use crate::hawkes::{HawkesParams, HawkesProcess};
use crate::session::{MarketSession, TRACE_DEPTH};
use crate::stats::NormStats;
use crate::trace::TickTrace;
use lt_lob::{Symbol, Timestamp};

/// Largest symbol count the builder accepts: shard ids travel as `u16`
/// and symbol names are two decimal digits ("S00".."S98").
pub const MAX_SYMBOLS: usize = 99;

/// Zipf-style traffic weights: `w_i ∝ (i+1)^-skew`, normalized so the
/// weights sum to `n`. With `skew = 0` every weight is exactly 1.0, so
/// each symbol carries the single-instrument base load and aggregate
/// traffic scales linearly with the symbol count.
pub fn zipf_weights(n: usize, skew: f64) -> Vec<f64> {
    assert!(n >= 1, "need at least one symbol");
    assert!(skew >= 0.0 && skew.is_finite(), "skew must be >= 0");
    let raw: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-skew)).collect();
    let sum: f64 = raw.iter().sum();
    raw.iter().map(|w| w * n as f64 / sum).collect()
}

/// Deterministic symbol name for shard `i`: "S00", "S01", ...
pub fn symbol_for(i: usize) -> Symbol {
    assert!(i < MAX_SYMBOLS, "symbol index out of range");
    let bytes = [b'S', b'0' + (i / 10) as u8, b'0' + (i % 10) as u8];
    Symbol::new(std::str::from_utf8(&bytes).expect("ascii"))
}

/// A generated multi-instrument session: one [`MarketSession`] per
/// symbol, index position = shard id.
#[derive(Debug, Clone)]
pub struct MultiMarketSession {
    /// Per-symbol sessions; `sessions[i]` is shard `i`.
    pub sessions: Vec<MarketSession>,
}

impl MultiMarketSession {
    /// Number of instruments.
    pub fn n_symbols(&self) -> usize {
        self.sessions.len()
    }

    /// The traded symbols in shard order.
    pub fn symbols(&self) -> Vec<Symbol> {
        self.sessions.iter().map(|s| s.trace.symbol).collect()
    }

    /// K-way-merges the per-symbol traces into one time-ordered stream
    /// plus a parallel shard map (`map[k]` is the shard of merged tick
    /// `k`). Timestamp ties break by shard index, so the merge is fully
    /// deterministic. For a single-symbol session the merged trace is the
    /// symbol's own trace, tick for tick.
    pub fn merged(&self) -> (TickTrace, Vec<u16>) {
        let n = self.sessions.len();
        let total: usize = self.sessions.iter().map(|s| s.trace.len()).sum();
        let mut merged = TickTrace::new(self.sessions[0].trace.symbol);
        merged.ticks.reserve(total);
        let mut shards = Vec::with_capacity(total);
        let mut cursors = vec![0usize; n];
        for _ in 0..total {
            // Linear scan over <= MAX_SYMBOLS cursors: the lowest shard
            // index wins timestamp ties.
            let mut best: Option<(usize, Timestamp)> = None;
            for (i, &c) in cursors.iter().enumerate() {
                if let Some(tick) = self.sessions[i].trace.ticks.get(c) {
                    if best.is_none_or(|(_, ts)| tick.ts < ts) {
                        best = Some((i, tick.ts));
                    }
                }
            }
            let (i, _) = best.expect("total counts remaining ticks");
            let tick = &self.sessions[i].trace.ticks[cursors[i]];
            merged.push(tick.ts, tick.snapshot.clone());
            shards.push(i as u16);
            cursors[i] += 1;
        }
        (merged, shards)
    }
}

/// Builder for correlated multi-instrument sessions.
///
/// # Example
///
/// ```
/// use lt_feed::MultiSessionBuilder;
///
/// let session = MultiSessionBuilder::normal_traffic()
///     .symbols(4)
///     .skew(1.0)
///     .duration_secs(0.2)
///     .seed(7)
///     .build();
/// assert_eq!(session.n_symbols(), 4);
/// let (trace, shards) = session.merged();
/// assert_eq!(trace.len(), shards.len());
/// ```
#[derive(Debug, Clone)]
pub struct MultiSessionBuilder {
    symbols: usize,
    skew: f64,
    /// Fraction of the baseline intensity carried by the shared
    /// market-factor stream (0 disables correlation).
    shared_fraction: f64,
    seed: u64,
    duration_secs: f64,
    hawkes: HawkesParams,
    agents: AgentParams,
    flash: Option<FlashParams>,
}

impl MultiSessionBuilder {
    /// Starts a builder with explicit per-symbol base Hawkes parameters.
    pub fn new(hawkes: HawkesParams) -> Self {
        MultiSessionBuilder {
            symbols: 1,
            skew: 0.0,
            shared_fraction: 0.25,
            seed: 0,
            duration_secs: 1.0,
            hawkes,
            agents: AgentParams::default(),
            flash: None,
        }
    }

    /// The default evaluation traffic (see [`crate::SessionBuilder`]).
    pub fn normal_traffic() -> Self {
        MultiSessionBuilder::new(HawkesParams::new(400.0, 160.0, 200.0))
    }

    /// Sets the instrument count (1..=[`MAX_SYMBOLS`]).
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero or exceeds [`MAX_SYMBOLS`].
    pub fn symbols(mut self, n: usize) -> Self {
        assert!(n >= 1, "need at least one symbol");
        assert!(n <= MAX_SYMBOLS, "at most {MAX_SYMBOLS} symbols");
        self.symbols = n;
        self
    }

    /// Sets the Zipf traffic-skew exponent (0 = even split).
    ///
    /// # Panics
    ///
    /// Panics on a negative or non-finite skew.
    pub fn skew(mut self, skew: f64) -> Self {
        assert!(skew >= 0.0 && skew.is_finite(), "skew must be >= 0");
        self.skew = skew;
        self
    }

    /// Sets the shared market-factor fraction (default 0.25).
    ///
    /// # Panics
    ///
    /// Panics unless `f` is in `[0, 1)`.
    pub fn shared_fraction(mut self, f: f64) -> Self {
        assert!((0.0..1.0).contains(&f), "shared fraction must be in [0,1)");
        self.shared_fraction = f;
        self
    }

    /// Sets the master RNG seed; per-symbol seeds derive from it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the session length in simulated seconds (default 1.0).
    ///
    /// # Panics
    ///
    /// Panics if `secs` is not positive.
    pub fn duration_secs(mut self, secs: f64) -> Self {
        assert!(secs > 0.0, "duration must be positive");
        self.duration_secs = secs;
        self
    }

    /// Overrides the agent-flow parameters.
    pub fn agent_params(mut self, params: AgentParams) -> Self {
        self.agents = params;
        self
    }

    /// Injects flash bursts on every symbol (per-symbol burst seeds).
    pub fn flash_bursts(mut self, params: FlashParams) -> Self {
        self.flash = Some(params);
        self
    }

    /// Generates the session: one correlated trace per symbol.
    pub fn build(&self) -> MultiMarketSession {
        let weights = zipf_weights(self.symbols, self.skew);
        // The market factor is sampled ONCE from the master seed and
        // merged into every symbol's arrivals: a common burst fires
        // queries on all books at the same instants.
        let shared = if self.shared_fraction > 0.0 {
            let factor = HawkesParams::new(
                self.hawkes.mu * self.shared_fraction,
                self.hawkes.alpha,
                self.hawkes.beta,
            );
            HawkesProcess::new(factor, self.seed).sample_for(self.duration_secs)
        } else {
            Vec::new()
        };
        let own_fraction = 1.0 - self.shared_fraction;
        let sessions = (0..self.symbols)
            .map(|i| {
                let seed_i = self.seed ^ ((i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                let own = HawkesParams::new(
                    (self.hawkes.mu * own_fraction * weights[i]).max(1e-6),
                    self.hawkes.alpha,
                    self.hawkes.beta,
                );
                let mut arrivals = HawkesProcess::new(own, seed_i).sample_for(self.duration_secs);
                arrivals = merge_sorted(arrivals, shared.clone());
                if let Some(flash) = self.flash {
                    let bursts = flash.sample_for(self.duration_secs, seed_i.wrapping_add(17));
                    arrivals = merge_sorted(arrivals, bursts);
                }
                let symbol = symbol_for(i);
                let mut flow = AgentFlow::new(symbol, self.agents, seed_i.wrapping_add(1));
                let mut trace = TickTrace::new(symbol);
                for t in arrivals {
                    let ts = Timestamp::from_nanos((t * 1e9) as u64);
                    let events = flow.step(ts);
                    debug_assert!(!events.is_empty());
                    let snapshot = flow.engine().book().snapshot(TRACE_DEPTH, ts);
                    trace.push(ts, snapshot);
                }
                let norm = if trace.is_empty() {
                    NormStats::identity(TRACE_DEPTH)
                } else {
                    NormStats::fit(&trace, TRACE_DEPTH)
                };
                MarketSession { trace, norm }
            })
            .collect();
        MultiMarketSession { sessions }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_n_and_skew_concentrates() {
        for n in [1usize, 2, 4, 8] {
            for skew in [0.0, 1.0, 2.5] {
                let w = zipf_weights(n, skew);
                let sum: f64 = w.iter().sum();
                assert!((sum - n as f64).abs() < 1e-9, "n={n} skew={skew}");
                assert!(w.windows(2).all(|p| p[0] >= p[1]), "monotone");
            }
        }
        assert_eq!(zipf_weights(4, 0.0), vec![1.0; 4]);
        let skewed = zipf_weights(8, 2.5);
        assert!(skewed[0] > 4.0, "hot symbol dominates: {:?}", skewed[0]);
    }

    #[test]
    fn symbol_names_are_unique_and_short() {
        let names: Vec<Symbol> = (0..MAX_SYMBOLS).map(symbol_for).collect();
        for pair in names.windows(2) {
            assert!(pair[0] < pair[1], "names must be strictly ordered");
        }
        assert_eq!(symbol_for(0).as_str(), "S00");
        assert_eq!(symbol_for(11).as_str(), "S11");
    }

    #[test]
    fn build_is_deterministic_per_seed() {
        let build = |seed| {
            MultiSessionBuilder::normal_traffic()
                .symbols(3)
                .skew(1.0)
                .duration_secs(0.1)
                .seed(seed)
                .build()
        };
        let a = build(9);
        let b = build(9);
        for (sa, sb) in a.sessions.iter().zip(&b.sessions) {
            assert_eq!(sa.trace, sb.trace);
        }
        let c = build(10);
        assert_ne!(a.sessions[0].trace, c.sessions[0].trace);
    }

    #[test]
    fn symbols_share_market_factor_bursts() {
        // With a shared factor, distinct symbols tick at identical
        // instants (the merged common stream); without it they never do
        // (continuous arrival times collide with probability zero).
        let correlated = MultiSessionBuilder::normal_traffic()
            .symbols(2)
            .duration_secs(0.5)
            .seed(4)
            .build();
        let shared_ticks = |s: &MultiMarketSession| {
            let a: std::collections::HashSet<u64> =
                s.sessions[0].trace.iter().map(|t| t.ts.nanos()).collect();
            s.sessions[1]
                .trace
                .iter()
                .filter(|t| a.contains(&t.ts.nanos()))
                .count()
        };
        assert!(shared_ticks(&correlated) > 10, "market factor visible");
        let independent = MultiSessionBuilder::normal_traffic()
            .symbols(2)
            .shared_fraction(0.0)
            .duration_secs(0.5)
            .seed(4)
            .build();
        assert_eq!(shared_ticks(&independent), 0);
    }

    #[test]
    fn skew_concentrates_observed_traffic() {
        let session = MultiSessionBuilder::normal_traffic()
            .symbols(4)
            .skew(2.0)
            .duration_secs(0.5)
            .seed(6)
            .build();
        let lens: Vec<usize> = session.sessions.iter().map(|s| s.trace.len()).collect();
        assert!(
            lens[0] > 2 * lens[3],
            "hot symbol must dominate the tail: {lens:?}"
        );
    }

    #[test]
    fn merged_is_ordered_with_shard_map() {
        let session = MultiSessionBuilder::normal_traffic()
            .symbols(3)
            .duration_secs(0.2)
            .seed(11)
            .build();
        let (trace, shards) = session.merged();
        assert_eq!(trace.len(), shards.len());
        assert_eq!(
            trace.len(),
            session
                .sessions
                .iter()
                .map(|s| s.trace.len())
                .sum::<usize>()
        );
        for pair in trace.ticks.windows(2) {
            assert!(pair[0].ts <= pair[1].ts);
        }
        // Per-shard subsequences reproduce the per-symbol traces exactly.
        for (i, s) in session.sessions.iter().enumerate() {
            let sub: Vec<_> = trace
                .ticks
                .iter()
                .zip(&shards)
                .filter(|(_, &sh)| sh as usize == i)
                .map(|(t, _)| t.clone())
                .collect();
            assert_eq!(sub, s.trace.ticks);
        }
    }

    #[test]
    fn single_symbol_merge_is_identity() {
        let session = MultiSessionBuilder::normal_traffic()
            .symbols(1)
            .duration_secs(0.2)
            .seed(13)
            .build();
        let (trace, shards) = session.merged();
        assert_eq!(trace, session.sessions[0].trace);
        assert!(shards.iter().all(|&s| s == 0));
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_symbols_rejected() {
        let _ = MultiSessionBuilder::normal_traffic().symbols(100);
    }
}
