//! Shared-trace caching for the back-test farm.
//!
//! A sweep grid expands into hundreds of cells, but only a handful of
//! *sessions* back them: every cell sharing a (traffic, duration, seed,
//! symbols) tuple replays the same immutable trace. [`SessionSpec`] is
//! the hashable description of one session build, [`SessionArtifact`]
//! the built result (single- or multi-instrument, with the k-way merge
//! precomputed once for multi), and [`TraceCache`] the concurrent map
//! that guarantees each spec is built exactly once per cache and handed
//! out as a cheap `Arc` clone afterwards, with hit/miss accounting.

use crate::bursts::FlashParams;
use crate::hawkes::HawkesParams;
use crate::multi::{MultiMarketSession, MultiSessionBuilder};
use crate::session::{MarketSession, SessionBuilder};
use crate::trace::TickTrace;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A hashable description of one session build: everything that
/// determines the generated trace(s), nothing else.
///
/// Two specs that compare equal build bit-identical sessions, so a
/// [`TraceCache`] may serve either build for both. Floats participate in
/// equality and hashing through their bit patterns — the spec describes
/// an exact generator input, not an approximate one.
///
/// Single-symbol specs build through [`SessionBuilder`] (the historical
/// evaluation path, bit-identical to `evaluation_session`); multi-symbol
/// specs build through [`MultiSessionBuilder`]. The `skew` and
/// `shared_fraction` knobs only exist for multi-symbol sessions, so
/// [`SessionSpec::with_symbols`] normalizes them to zero when
/// `symbols == 1` — a 1-symbol spec never splits the cache by knobs that
/// cannot affect its build.
#[derive(Debug, Clone, Copy)]
pub struct SessionSpec {
    /// Per-symbol base Hawkes arrival parameters.
    pub hawkes: HawkesParams,
    /// Optional flash-burst overlay.
    pub flash: Option<FlashParams>,
    /// Session length in simulated seconds.
    pub duration_secs: f64,
    /// Master RNG seed.
    pub seed: u64,
    /// Instrument count (1 = the historical single-symbol path).
    pub symbols: usize,
    /// Zipf traffic skew across symbols (0 when `symbols == 1`).
    pub skew: f64,
    /// Shared market-factor fraction (0 when `symbols == 1`).
    pub shared_fraction: f64,
}

/// Default shared market-factor fraction for multi-symbol specs,
/// matching [`MultiSessionBuilder`]'s default.
pub const DEFAULT_SHARED_FRACTION: f64 = 0.25;

impl SessionSpec {
    /// A single-symbol spec with no flash bursts.
    pub fn single(hawkes: HawkesParams, duration_secs: f64, seed: u64) -> Self {
        assert!(duration_secs > 0.0, "duration must be positive");
        SessionSpec {
            hawkes,
            flash: None,
            duration_secs,
            seed,
            symbols: 1,
            skew: 0.0,
            shared_fraction: 0.0,
        }
    }

    /// Adds a flash-burst overlay.
    #[must_use]
    pub fn with_flash(mut self, flash: FlashParams) -> Self {
        self.flash = Some(flash);
        self
    }

    /// Makes this a `symbols`-instrument spec with Zipf skew `skew` and
    /// the default shared market-factor fraction. With `symbols == 1`
    /// the multi-only knobs normalize to zero so the spec stays on (and
    /// hashes onto) the single-symbol build path.
    #[must_use]
    pub fn with_symbols(mut self, symbols: usize, skew: f64) -> Self {
        assert!(symbols >= 1, "need at least one symbol");
        assert!(
            symbols <= crate::multi::MAX_SYMBOLS,
            "at most {} symbols",
            crate::multi::MAX_SYMBOLS
        );
        assert!(skew >= 0.0 && skew.is_finite(), "skew must be >= 0");
        self.symbols = symbols;
        if symbols == 1 {
            self.skew = 0.0;
            self.shared_fraction = 0.0;
        } else {
            self.skew = skew;
            self.shared_fraction = DEFAULT_SHARED_FRACTION;
        }
        self
    }

    /// Overrides the shared market-factor fraction (multi-symbol only).
    ///
    /// # Panics
    ///
    /// Panics on a single-symbol spec (the knob cannot affect its build)
    /// or a fraction outside `[0, 1)`.
    #[must_use]
    pub fn with_shared_fraction(mut self, f: f64) -> Self {
        assert!(
            self.symbols > 1,
            "shared fraction only applies to multi-symbol specs"
        );
        assert!((0.0..1.0).contains(&f), "shared fraction must be in [0,1)");
        self.shared_fraction = f;
        self
    }

    /// Builds the session this spec describes. Deterministic: equal
    /// specs produce bit-identical artifacts.
    pub fn build(&self) -> SessionArtifact {
        if self.symbols == 1 {
            let mut b = SessionBuilder::new(self.hawkes)
                .duration_secs(self.duration_secs)
                .seed(self.seed);
            if let Some(flash) = self.flash {
                b = b.flash_bursts(flash);
            }
            SessionArtifact::Single(b.build())
        } else {
            let mut b = MultiSessionBuilder::new(self.hawkes)
                .symbols(self.symbols)
                .skew(self.skew)
                .shared_fraction(self.shared_fraction)
                .duration_secs(self.duration_secs)
                .seed(self.seed);
            if let Some(flash) = self.flash {
                b = b.flash_bursts(flash);
            }
            let session = b.build();
            let (merged, shards) = session.merged();
            SessionArtifact::Multi {
                session,
                merged,
                shards,
            }
        }
    }
}

impl PartialEq for SessionSpec {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for SessionSpec {}

impl Hash for SessionSpec {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.key().hash(state);
    }
}

impl SessionSpec {
    /// The spec's identity as plain bits (floats by `to_bits`), shared
    /// by `Eq` and `Hash` so the two can never disagree.
    #[allow(clippy::type_complexity)]
    fn key(&self) -> ([u64; 3], Option<[u64; 3]>, u64, u64, usize, u64, u64) {
        (
            [
                self.hawkes.mu.to_bits(),
                self.hawkes.alpha.to_bits(),
                self.hawkes.beta.to_bits(),
            ],
            self.flash.map(|f| {
                [
                    f.bursts_per_sec.to_bits(),
                    f.mean_size.to_bits(),
                    f.intra_gap_secs.to_bits(),
                ]
            }),
            self.duration_secs.to_bits(),
            self.seed,
            self.symbols,
            self.skew.to_bits(),
            self.shared_fraction.to_bits(),
        )
    }
}

/// A built session: the immutable replay input one or more back-test
/// cells share.
#[derive(Debug, Clone)]
pub enum SessionArtifact {
    /// A single-instrument session (the historical evaluation path).
    Single(MarketSession),
    /// A multi-instrument session with its deterministic k-way merge
    /// precomputed once — every cell replays the same merged stream
    /// without re-merging.
    Multi {
        /// The per-symbol sessions.
        session: MultiMarketSession,
        /// The time-ordered merged trace.
        merged: TickTrace,
        /// Shard of each merged tick (parallel to `merged`).
        shards: Vec<u16>,
    },
}

impl SessionArtifact {
    /// The replayable trace: the session's own trace for single-symbol
    /// artifacts, the precomputed merge for multi-symbol ones.
    pub fn trace(&self) -> &TickTrace {
        match self {
            SessionArtifact::Single(s) => &s.trace,
            SessionArtifact::Multi { merged, .. } => merged,
        }
    }

    /// Number of instruments in the session.
    pub fn n_symbols(&self) -> usize {
        match self {
            SessionArtifact::Single(_) => 1,
            SessionArtifact::Multi { session, .. } => session.n_symbols(),
        }
    }

    /// The single-instrument session.
    ///
    /// # Panics
    ///
    /// Panics on a multi-symbol artifact.
    pub fn single(&self) -> &MarketSession {
        match self {
            SessionArtifact::Single(s) => s,
            SessionArtifact::Multi { .. } => panic!("multi-symbol artifact has no single session"),
        }
    }
}

/// Hit/miss/occupancy counters of a [`TraceCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from an already-built artifact.
    pub hits: u64,
    /// Lookups that had to build (equals the number of session builds
    /// this cache performed).
    pub misses: u64,
    /// Distinct specs currently held.
    pub entries: usize,
}

/// A concurrent spec-keyed session cache.
///
/// `get_or_build` builds outside the map lock, so a slow session build
/// never blocks workers resolving *other* specs. If two workers race on
/// the same unbuilt spec both build (each counting a miss) and the first
/// insert wins — builds are deterministic, so the duplicates are
/// bit-identical and the race only costs time. The farm runner avoids
/// even that by pre-building the unique specs before fanning out cells.
#[derive(Debug, Default)]
pub struct TraceCache {
    entries: Mutex<HashMap<SessionSpec, Arc<SessionArtifact>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TraceCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the artifact for `spec`, building it exactly once per
    /// cache (modulo the benign same-spec race documented on the type).
    pub fn get_or_build(&self, spec: &SessionSpec) -> Arc<SessionArtifact> {
        if let Some(hit) = self.entries.lock().expect("cache poisoned").get(spec) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(spec.build());
        Arc::clone(
            self.entries
                .lock()
                .expect("cache poisoned")
                .entry(*spec)
                .or_insert(built),
        )
    }

    /// The artifact for `spec` if already built; counts as a hit or miss.
    pub fn get(&self, spec: &SessionSpec) -> Option<Arc<SessionArtifact>> {
        let found = self
            .entries
            .lock()
            .expect("cache poisoned")
            .get(spec)
            .cloned();
        match found {
            Some(a) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(a)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Hit/miss/occupancy counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.entries.lock().expect("cache poisoned").len(),
        }
    }

    /// Number of distinct specs held.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache poisoned").len()
    }

    /// True when no spec has been built yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached artifact (counters are kept).
    pub fn clear(&self) {
        self.entries.lock().expect("cache poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn calm() -> HawkesParams {
        HawkesParams::new(200.0, 30.0, 100.0)
    }

    #[test]
    fn equal_specs_build_identical_sessions() {
        let spec = SessionSpec::single(calm(), 0.2, 7);
        let a = spec.build();
        let b = spec.build();
        assert_eq!(a.trace(), b.trace());
        assert_eq!(a.n_symbols(), 1);
    }

    #[test]
    fn single_spec_matches_session_builder_bit_for_bit() {
        let spec =
            SessionSpec::single(calm(), 0.3, 11).with_flash(FlashParams::new(2.0, 10.0, 1e-5));
        let direct = SessionBuilder::new(calm())
            .flash_bursts(FlashParams::new(2.0, 10.0, 1e-5))
            .duration_secs(0.3)
            .seed(11)
            .build();
        assert_eq!(spec.build().single().trace, direct.trace);
    }

    #[test]
    fn multi_spec_precomputes_the_merge() {
        let spec = SessionSpec::single(calm(), 0.2, 3).with_symbols(3, 1.0);
        let artifact = spec.build();
        assert_eq!(artifact.n_symbols(), 3);
        let SessionArtifact::Multi {
            session,
            merged,
            shards,
        } = &artifact
        else {
            panic!("expected multi artifact");
        };
        let (expect_trace, expect_shards) = session.merged();
        assert_eq!(merged, &expect_trace);
        assert_eq!(shards, &expect_shards);
        assert_eq!(artifact.trace().len(), shards.len());
    }

    #[test]
    fn single_symbol_normalizes_multi_knobs() {
        let a = SessionSpec::single(calm(), 0.5, 1);
        let b = SessionSpec::single(calm(), 0.5, 1).with_symbols(1, 2.5);
        assert_eq!(a, b, "skew cannot split the 1-symbol cache");
        let c = SessionSpec::single(calm(), 0.5, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn cache_builds_once_and_counts() {
        let cache = TraceCache::new();
        let spec_a = SessionSpec::single(calm(), 0.2, 1);
        let spec_b = SessionSpec::single(calm(), 0.2, 2);
        assert!(cache.get(&spec_a).is_none(), "cold lookup misses");
        let first = cache.get_or_build(&spec_a);
        let again = cache.get_or_build(&spec_a);
        assert!(Arc::ptr_eq(&first, &again), "same artifact, not a rebuild");
        let _ = cache.get_or_build(&spec_b);
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.misses, 3, "one get miss + two builds");
        assert_eq!(stats.hits, 1);
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_get_or_build_shares_one_artifact() {
        let cache = TraceCache::new();
        let spec = SessionSpec::single(calm(), 0.2, 9);
        let arcs: Vec<Arc<SessionArtifact>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| cache.get_or_build(&spec)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for pair in arcs.windows(2) {
            assert_eq!(pair[0].trace(), pair[1].trace());
        }
        assert_eq!(cache.len(), 1, "one entry survives the race");
    }

    #[test]
    #[should_panic(expected = "multi-symbol artifact")]
    fn single_accessor_rejects_multi() {
        let artifact = SessionSpec::single(calm(), 0.1, 1)
            .with_symbols(2, 0.0)
            .build();
        let _ = artifact.single();
    }
}
