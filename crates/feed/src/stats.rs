//! Historical normalization statistics for the offload engine.
//!
//! The offload engine "normalizes the LOB data according to the Z-score …
//! in which the mean and standard deviation values are obtained from
//! historical market data" (§III-A). [`NormStats`] plays the role of that
//! historical profile: it is fitted once over a calibration trace and then
//! applied tick-by-tick on the hot path.

use crate::trace::TickTrace;
use serde::{Deserialize, Serialize};

/// Per-feature mean and standard deviation for Z-score normalization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NormStats {
    mean: Vec<f64>,
    std: Vec<f64>,
    depth: usize,
}

impl NormStats {
    /// Fits statistics over every tick of `trace` at book depth `depth`.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty or `depth` is zero.
    pub fn fit(trace: &TickTrace, depth: usize) -> Self {
        assert!(depth > 0, "depth must be positive");
        assert!(!trace.is_empty(), "cannot fit stats on an empty trace");
        let width = depth * 4;
        let mut sum = vec![0.0f64; width];
        let mut sq = vec![0.0f64; width];
        for tick in trace {
            let features = tick.snapshot.to_features(depth);
            for (i, &f) in features.iter().enumerate() {
                sum[i] += f as f64;
                sq[i] += (f as f64) * (f as f64);
            }
        }
        let n = trace.len() as f64;
        let mean: Vec<f64> = sum.iter().map(|s| s / n).collect();
        let std: Vec<f64> = sq
            .iter()
            .zip(&mean)
            .map(|(&s, &m)| {
                let var = (s / n - m * m).max(0.0);
                // Guard degenerate features (constant over the window): use a
                // unit scale so normalization is a pure shift.
                let sd = var.sqrt();
                if sd < 1e-9 {
                    1.0
                } else {
                    sd
                }
            })
            .collect();
        NormStats { mean, std, depth }
    }

    /// Creates identity statistics (zero mean, unit std) for `depth`
    /// levels; normalization becomes a no-op. Useful in tests.
    pub fn identity(depth: usize) -> Self {
        let width = depth * 4;
        NormStats {
            mean: vec![0.0; width],
            std: vec![1.0; width],
            depth,
        }
    }

    /// The book depth these statistics were fitted at.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of features per tick (`4 * depth`).
    pub fn width(&self) -> usize {
        self.mean.len()
    }

    /// Z-score-normalizes a raw feature vector in place.
    ///
    /// # Panics
    ///
    /// Panics if `features.len()` differs from [`Self::width`].
    pub fn normalize(&self, features: &mut [f32]) {
        assert_eq!(
            features.len(),
            self.width(),
            "feature width mismatch: got {}, stats fitted for {}",
            features.len(),
            self.width()
        );
        for (i, f) in features.iter_mut().enumerate() {
            *f = ((*f as f64 - self.mean[i]) / self.std[i]) as f32;
        }
    }

    /// Inverts [`Self::normalize`] (used by tests and diagnostics).
    pub fn denormalize(&self, features: &mut [f32]) {
        assert_eq!(features.len(), self.width());
        for (i, f) in features.iter_mut().enumerate() {
            *f = (*f as f64 * self.std[i] + self.mean[i]) as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_lob::snapshot::SnapshotLevel;
    use lt_lob::{LobSnapshot, Price, Qty, Symbol, Timestamp};

    fn snap(mid: i64, qty: u64) -> LobSnapshot {
        LobSnapshot {
            ts: Timestamp::ZERO,
            bids: vec![SnapshotLevel {
                price: Price::new(mid - 1),
                qty: Qty::new(qty),
            }],
            asks: vec![SnapshotLevel {
                price: Price::new(mid + 1),
                qty: Qty::new(qty + 2),
            }],
        }
    }

    fn trace() -> TickTrace {
        let mut t = TickTrace::new(Symbol::new("ESU6"));
        for i in 0..50u64 {
            t.push(
                Timestamp::from_micros(i),
                snap(100 + (i as i64 % 7), 1 + i % 5),
            );
        }
        t
    }

    #[test]
    fn normalized_features_have_zero_mean_unit_std() {
        let trace = trace();
        let stats = NormStats::fit(&trace, 1);
        let mut all: Vec<Vec<f32>> = Vec::new();
        for tick in &trace {
            let mut f = tick.snapshot.to_features(1);
            stats.normalize(&mut f);
            all.push(f);
        }
        for col in 0..stats.width() {
            let vals: Vec<f64> = all.iter().map(|row| row[col] as f64).collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
            assert!(mean.abs() < 1e-3, "col {col} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "col {col} var {var}");
        }
    }

    #[test]
    fn round_trip_normalize_denormalize() {
        let trace = trace();
        let stats = NormStats::fit(&trace, 1);
        let original = trace.ticks[7].snapshot.to_features(1);
        let mut f = original.clone();
        stats.normalize(&mut f);
        stats.denormalize(&mut f);
        for (a, b) in original.iter().zip(&f) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn identity_is_noop() {
        let stats = NormStats::identity(2);
        assert_eq!(stats.width(), 8);
        assert_eq!(stats.depth(), 2);
        let mut f = vec![5.0f32; 8];
        stats.normalize(&mut f);
        assert_eq!(f, vec![5.0f32; 8]);
    }

    #[test]
    fn degenerate_constant_feature_uses_unit_scale() {
        // All snapshots identical: std would be 0; fit must guard it.
        let mut t = TickTrace::new(Symbol::new("ESU6"));
        for i in 0..10u64 {
            t.push(Timestamp::from_micros(i), snap(100, 3));
        }
        let stats = NormStats::fit(&t, 1);
        let mut f = t.ticks[0].snapshot.to_features(1);
        stats.normalize(&mut f);
        assert!(f.iter().all(|v| v.is_finite()));
        assert!(f.iter().all(|v| v.abs() < 1e-6), "pure shift to zero");
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn width_mismatch_panics() {
        let stats = NormStats::identity(2);
        let mut f = vec![0.0f32; 4];
        stats.normalize(&mut f);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_panics() {
        let t = TickTrace::new(Symbol::new("ESU6"));
        let _ = NormStats::fit(&t, 1);
    }
}
