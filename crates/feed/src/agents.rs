//! Zero-intelligence agent order flow.
//!
//! Each tick arrival produced by the Hawkes process is realized as one
//! order action against a real matching engine: mostly passive limit
//! orders near the touch, a fraction of cancels/replaces of resting
//! orders, and a fraction of aggressive marketable orders that consume
//! liquidity and print trades. The resulting LOB evolution has realistic
//! structure (non-degenerate spread, depth imbalances, trade clustering)
//! without modeling strategic behaviour — the standard zero-intelligence
//! market-microstructure setup.

use lt_lob::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Tuning knobs of the agent flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AgentParams {
    /// Probability an action is an aggressive (marketable) order.
    pub p_market: f64,
    /// Probability an action cancels a random resting order.
    pub p_cancel: f64,
    /// Maximum distance (ticks) from the touch for passive orders.
    pub max_depth_ticks: i64,
    /// Largest order size in contracts (uniform in `1..=max_qty`).
    pub max_qty: u64,
    /// Price around which the book is seeded at start.
    pub initial_mid: Price,
    /// Quantity placed per level when seeding the book.
    pub seed_qty: Qty,
    /// Levels per side seeded at start.
    pub seed_levels: i64,
}

impl Default for AgentParams {
    fn default() -> Self {
        AgentParams {
            p_market: 0.12,
            p_cancel: 0.25,
            max_depth_ticks: 12,
            max_qty: 10,
            // E-mini S&P 500 around 4500.00 points = 18_000 quarter-ticks.
            initial_mid: Price::new(18_000),
            seed_qty: Qty::new(25),
            seed_levels: 10,
        }
    }
}

/// Generates order flow and applies it to an owned matching engine.
#[derive(Debug, Clone)]
pub struct AgentFlow {
    params: AgentParams,
    engine: MatchingEngine,
    rng: StdRng,
    next_id: u64,
    /// Resting ids the agents may cancel. Lazily pruned.
    live_orders: Vec<OrderId>,
}

impl AgentFlow {
    /// Creates a flow over a freshly seeded book.
    pub fn new(symbol: Symbol, params: AgentParams, seed: u64) -> Self {
        let mut flow = AgentFlow {
            params,
            engine: MatchingEngine::new(symbol),
            rng: StdRng::seed_from_u64(seed),
            next_id: 1,
            live_orders: Vec::new(),
        };
        flow.seed_book();
        flow
    }

    /// The engine (and thus the current book).
    pub fn engine(&self) -> &MatchingEngine {
        &self.engine
    }

    fn seed_book(&mut self) {
        let mid = self.params.initial_mid;
        for lvl in 1..=self.params.seed_levels {
            for (side, price) in [(Side::Bid, mid - lvl), (Side::Ask, mid + lvl)] {
                let id = self.alloc_id();
                let out = self.engine.submit(
                    NewOrder::limit(id, side, price, self.params.seed_qty),
                    Timestamp::ZERO,
                );
                debug_assert!(!out.report.is_rejected());
                self.live_orders.push(id);
            }
        }
    }

    fn alloc_id(&mut self) -> OrderId {
        let id = OrderId::new(self.next_id);
        self.next_id += 1;
        id
    }

    /// Executes one random action at `ts`, returning the emitted market
    /// events (at least one for any non-rejected action).
    pub fn step(&mut self, ts: Timestamp) -> Vec<MarketEvent> {
        let roll: f64 = self.rng.gen();
        let events = if roll < self.params.p_cancel && !self.live_orders.is_empty() {
            self.cancel_random(ts)
        } else if roll < self.params.p_cancel + self.params.p_market {
            self.aggressive_order(ts)
        } else {
            self.passive_order(ts)
        };
        if events.is_empty() {
            // The action degenerated (e.g. stale cancel). Fall back to a
            // passive add so every tick changes the book.
            self.passive_order(ts)
        } else {
            events
        }
    }

    fn cancel_random(&mut self, ts: Timestamp) -> Vec<MarketEvent> {
        // Prune stale ids opportunistically.
        while !self.live_orders.is_empty() {
            let idx = self.rng.gen_range(0..self.live_orders.len());
            let id = self.live_orders.swap_remove(idx);
            if self.engine.book().contains(id) {
                return self.engine.cancel(id, ts).events;
            }
        }
        Vec::new()
    }

    fn passive_order(&mut self, ts: Timestamp) -> Vec<MarketEvent> {
        let side = if self.rng.gen::<bool>() {
            Side::Bid
        } else {
            Side::Ask
        };
        let depth = self.rng.gen_range(1..=self.params.max_depth_ticks);
        let reference = match side {
            Side::Bid => self
                .engine
                .book()
                .best_ask()
                .unwrap_or(self.params.initial_mid),
            Side::Ask => self
                .engine
                .book()
                .best_bid()
                .unwrap_or(self.params.initial_mid),
        };
        let price = match side {
            Side::Bid => reference - depth,
            Side::Ask => reference + depth,
        };
        let qty = Qty::new(self.rng.gen_range(1..=self.params.max_qty));
        let id = self.alloc_id();
        let out = self
            .engine
            .submit(NewOrder::limit(id, side, price, qty), ts);
        if matches!(out.report, ExecutionReport::Resting { .. }) {
            self.live_orders.push(id);
        }
        out.events
    }

    fn aggressive_order(&mut self, ts: Timestamp) -> Vec<MarketEvent> {
        let side = if self.rng.gen::<bool>() {
            Side::Bid
        } else {
            Side::Ask
        };
        let touch = match side {
            Side::Bid => self.engine.book().best_ask(),
            Side::Ask => self.engine.book().best_bid(),
        };
        let Some(touch) = touch else {
            return self.passive_order(ts);
        };
        let qty = Qty::new(self.rng.gen_range(1..=self.params.max_qty));
        let id = self.alloc_id();
        // IOC at the touch: consumes top-of-book liquidity, never rests.
        self.engine
            .submit(NewOrder::ioc(id, side, touch, qty), ts)
            .events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(seed: u64) -> AgentFlow {
        AgentFlow::new(Symbol::new("ESU6"), AgentParams::default(), seed)
    }

    #[test]
    fn seeded_book_is_two_sided() {
        let f = flow(1);
        let book = f.engine().book();
        assert!(book.best_bid().is_some());
        assert!(book.best_ask().is_some());
        assert!(!book.is_crossed());
        assert_eq!(book.spread(), Some(2));
    }

    #[test]
    fn every_step_emits_events() {
        let mut f = flow(2);
        for i in 0..2_000u64 {
            let events = f.step(Timestamp::from_micros(i));
            assert!(!events.is_empty(), "step {i} emitted nothing");
        }
        assert!(!f.engine().book().is_crossed());
    }

    #[test]
    fn flow_produces_trades_and_book_changes() {
        let mut f = flow(3);
        let mut trades = 0;
        let mut book_changes = 0;
        for i in 0..5_000u64 {
            for e in f.step(Timestamp::from_micros(i)) {
                if e.is_trade() {
                    trades += 1;
                } else {
                    book_changes += 1;
                }
            }
        }
        assert!(trades > 50, "only {trades} trades");
        assert!(book_changes > 1_000);
    }

    #[test]
    fn deterministic_under_seed() {
        let run = |seed| {
            let mut f = flow(seed);
            let mut all = Vec::new();
            for i in 0..500u64 {
                all.extend(f.step(Timestamp::from_micros(i)));
            }
            all
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn book_stays_populated_over_long_run() {
        let mut f = flow(4);
        for i in 0..20_000u64 {
            f.step(Timestamp::from_micros(i));
        }
        let book = f.engine().book();
        assert!(book.best_bid().is_some(), "bid side drained");
        assert!(book.best_ask().is_some(), "ask side drained");
        // Price should not have wandered absurdly far from the seed mid.
        let mid = book.mid_price_x2().unwrap() / 2;
        assert!((mid - 18_000).abs() < 4_000, "mid drifted to {mid}");
    }
}
