//! Binary persistence for tick traces.
//!
//! Back-tests must be "reliable and re-runnable" (§IV-A); this module
//! gives [`TickTrace`] a compact binary file format (`LTTR`) so recorded
//! sessions can be archived and replayed bit-for-bit: a magic/version
//! header, the symbol, a tick count, fixed-layout tick records, and a
//! trailing checksum that detects truncation or corruption.

use crate::trace::{TickRecord, TickTrace};
use bytes::{Buf, BufMut, BytesMut};
use lt_lob::snapshot::SnapshotLevel;
use lt_lob::{LobSnapshot, Price, Qty, Symbol, Timestamp};
use std::fmt;
use std::io::{self, Read, Write};

/// File magic: `LTTR`.
const MAGIC: [u8; 4] = *b"LTTR";
/// Current format version.
const VERSION: u16 = 1;

/// Why a trace file failed to load.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not an `LTTR` file.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// The trailing checksum did not match (truncation/corruption).
    BadChecksum,
    /// The payload ended mid-record.
    Truncated,
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "i/o error: {e}"),
            TraceIoError::BadMagic => f.write_str("not an LTTR trace file"),
            TraceIoError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceIoError::BadChecksum => f.write_str("trace checksum mismatch"),
            TraceIoError::Truncated => f.write_str("trace file truncated"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

fn checksum(bytes: &[u8]) -> u64 {
    // FNV-1a, 64-bit: simple, dependency-free, adequate for corruption
    // detection (not cryptographic).
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Serializes a trace into the `LTTR` binary format.
pub fn encode_trace(trace: &TickTrace) -> Vec<u8> {
    let mut body = BytesMut::with_capacity(32 + trace.len() * 128);
    body.put_slice(&MAGIC);
    body.put_u16_le(VERSION);
    let sym = trace.symbol.as_str().as_bytes();
    body.put_u8(sym.len() as u8);
    body.put_slice(sym);
    body.put_u64_le(trace.len() as u64);
    for tick in trace {
        body.put_u64_le(tick.ts.nanos());
        body.put_u64_le(tick.snapshot.ts.nanos());
        body.put_u8(tick.snapshot.bids.len() as u8);
        body.put_u8(tick.snapshot.asks.len() as u8);
        for level in tick.snapshot.bids.iter().chain(&tick.snapshot.asks) {
            body.put_i64_le(level.price.ticks());
            body.put_u64_le(level.qty.contracts());
        }
    }
    let sum = checksum(&body);
    body.put_u64_le(sum);
    body.to_vec()
}

/// Deserializes a trace from the `LTTR` binary format.
///
/// # Errors
///
/// Returns [`TraceIoError`] on any malformed input; never panics on
/// untrusted bytes.
pub fn decode_trace(bytes: &[u8]) -> Result<TickTrace, TraceIoError> {
    if bytes.len() < MAGIC.len() + 2 + 1 + 8 + 8 {
        return Err(TraceIoError::Truncated);
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let expected = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    if checksum(body) != expected {
        return Err(TraceIoError::BadChecksum);
    }
    let mut buf = body;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if magic != MAGIC {
        return Err(TraceIoError::BadMagic);
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(TraceIoError::BadVersion(version));
    }
    let sym_len = buf.get_u8() as usize;
    if buf.remaining() < sym_len {
        return Err(TraceIoError::Truncated);
    }
    let mut sym = vec![0u8; sym_len];
    buf.copy_to_slice(&mut sym);
    let symbol = Symbol::new(std::str::from_utf8(&sym).map_err(|_| TraceIoError::BadMagic)?);
    let count = buf.get_u64_le() as usize;
    let mut trace = TickTrace::new(symbol);
    for _ in 0..count {
        if buf.remaining() < 8 + 8 + 2 {
            return Err(TraceIoError::Truncated);
        }
        let ts = Timestamp::from_nanos(buf.get_u64_le());
        let snap_ts = Timestamp::from_nanos(buf.get_u64_le());
        let nbids = buf.get_u8() as usize;
        let nasks = buf.get_u8() as usize;
        if buf.remaining() < (nbids + nasks) * 16 {
            return Err(TraceIoError::Truncated);
        }
        let read_levels = |n: usize, buf: &mut &[u8]| {
            (0..n)
                .map(|_| SnapshotLevel {
                    price: Price::new(buf.get_i64_le()),
                    qty: Qty::new(buf.get_u64_le()),
                })
                .collect::<Vec<_>>()
        };
        let bids = read_levels(nbids, &mut buf);
        let asks = read_levels(nasks, &mut buf);
        trace.ticks.push(TickRecord {
            ts,
            snapshot: LobSnapshot {
                ts: snap_ts,
                bids,
                asks,
            },
        });
    }
    Ok(trace)
}

impl TickTrace {
    /// Writes the trace to `writer` in the `LTTR` binary format.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_to<W: Write>(&self, mut writer: W) -> Result<(), TraceIoError> {
        writer.write_all(&encode_trace(self))?;
        Ok(())
    }

    /// Reads a trace from `reader`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceIoError`] on I/O failure or malformed content.
    pub fn read_from<R: Read>(mut reader: R) -> Result<Self, TraceIoError> {
        let mut bytes = Vec::new();
        reader.read_to_end(&mut bytes)?;
        decode_trace(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::SessionBuilder;

    fn trace() -> TickTrace {
        SessionBuilder::calm_traffic()
            .duration_secs(0.3)
            .seed(9)
            .build()
            .trace
    }

    #[test]
    fn round_trips_exactly() {
        let t = trace();
        let bytes = encode_trace(&t);
        let back = decode_trace(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn io_round_trip_through_buffer() {
        let t = trace();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let back = TickTrace::read_from(&buf[..]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn detects_corruption_anywhere() {
        let t = trace();
        let bytes = encode_trace(&t);
        for pos in [0, 5, bytes.len() / 2, bytes.len() - 1] {
            let mut corrupted = bytes.clone();
            corrupted[pos] ^= 0xA5;
            assert!(
                decode_trace(&corrupted).is_err(),
                "corruption at {pos} undetected"
            );
        }
    }

    #[test]
    fn detects_truncation() {
        let t = trace();
        let bytes = encode_trace(&t);
        for cut in [3, 20, bytes.len() - 9] {
            assert!(decode_trace(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn rejects_wrong_magic_and_version() {
        let t = trace();
        // Wrong magic: flip a magic byte and fix the checksum.
        let mut bytes = encode_trace(&t);
        bytes[0] = b'X';
        let body_len = bytes.len() - 8;
        let sum = checksum(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(decode_trace(&bytes), Err(TraceIoError::BadMagic)));

        let mut bytes = encode_trace(&t);
        bytes[4] = 99; // version low byte
        let sum = checksum(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            decode_trace(&bytes),
            Err(TraceIoError::BadVersion(99))
        ));
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = TickTrace::new(Symbol::new("ESU6"));
        let back = decode_trace(&encode_trace(&t)).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn error_display_is_informative() {
        assert!(TraceIoError::BadChecksum.to_string().contains("checksum"));
        assert!(TraceIoError::BadVersion(7).to_string().contains('7'));
    }
}
