//! Flash-burst injection.
//!
//! On top of ordinary self-excited clustering, real tick streams contain
//! rare *flash events* — "even a small number of orders can trigger a
//! massive number of orders … this kind of market disruption occurred
//! more than once a day" (§II-C). These machine-speed cascades arrive as
//! trains of back-to-back packets with microsecond gaps and are exactly
//! what stresses an HFT system's throughput. [`FlashParams`] injects such
//! trains into a generated session at Poisson times.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the injected flash bursts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlashParams {
    /// Mean bursts per second (Poisson).
    pub bursts_per_sec: f64,
    /// Mean burst length in events (geometric).
    pub mean_size: f64,
    /// Gap between consecutive events inside a burst, in seconds.
    pub intra_gap_secs: f64,
}

impl FlashParams {
    /// Creates parameters, validating positivity.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive or `mean_size < 1`.
    pub fn new(bursts_per_sec: f64, mean_size: f64, intra_gap_secs: f64) -> Self {
        assert!(bursts_per_sec > 0.0, "burst rate must be positive");
        assert!(mean_size >= 1.0, "mean burst size must be at least 1");
        assert!(intra_gap_secs > 0.0, "intra-burst gap must be positive");
        FlashParams {
            bursts_per_sec,
            mean_size,
            intra_gap_secs,
        }
    }

    /// Long-run event rate contributed by the bursts.
    pub fn mean_event_rate(&self) -> f64 {
        self.bursts_per_sec * self.mean_size
    }

    /// Samples every flash-burst event time in `[0, horizon_secs)`,
    /// ascending. At storm intensities one burst's train can outlast the
    /// next burst's start, so the concatenated trains are re-sorted; the
    /// sort is the identity on non-overlapping (already ordered) streams.
    pub fn sample_for(&self, horizon_secs: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        let mut t = 0.0;
        loop {
            // Next burst start: exponential inter-arrival.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / self.bursts_per_sec;
            if t >= horizon_secs {
                break;
            }
            // Geometric size with the configured mean (support >= 1).
            let p = 1.0 / self.mean_size;
            let mut size = 1usize;
            while rng.gen_range(0.0..1.0) > p && size < 10_000 {
                size += 1;
            }
            for k in 0..size {
                let at = t + k as f64 * self.intra_gap_secs;
                if at < horizon_secs {
                    out.push(at);
                }
            }
        }
        out.sort_by(f64::total_cmp);
        out
    }
}

/// Merges two ascending event-time streams into one ascending stream.
pub fn merge_sorted(a: Vec<f64>, b: Vec<f64>) -> Vec<f64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_events_are_ordered_and_bounded() {
        let p = FlashParams::new(1.0, 20.0, 10e-6);
        let events = p.sample_for(10.0, 42);
        assert!(!events.is_empty());
        for w in events.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(events.iter().all(|&t| (0.0..10.0).contains(&t)));
    }

    #[test]
    fn mean_rate_roughly_matches() {
        let p = FlashParams::new(2.0, 25.0, 10e-6);
        let events = p.sample_for(200.0, 7);
        let rate = events.len() as f64 / 200.0;
        let theory = p.mean_event_rate();
        assert!(
            (rate - theory).abs() / theory < 0.3,
            "rate {rate:.1} vs theory {theory:.1}"
        );
    }

    #[test]
    fn bursts_are_tight_trains() {
        let p = FlashParams::new(0.5, 30.0, 10e-6);
        let events = p.sample_for(60.0, 3);
        // Most consecutive gaps inside the stream are the intra gap.
        let tight = events
            .windows(2)
            .filter(|w| (w[1] - w[0] - 10e-6).abs() < 1e-9)
            .count();
        assert!(tight * 2 > events.len(), "{tight} of {}", events.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let p = FlashParams::new(1.0, 10.0, 5e-6);
        assert_eq!(p.sample_for(5.0, 9), p.sample_for(5.0, 9));
        assert_ne!(p.sample_for(5.0, 9), p.sample_for(5.0, 10));
    }

    #[test]
    fn overlapping_storm_trains_stay_ordered() {
        // Storm intensity: trains long enough that consecutive bursts
        // overlap; the samples must still come out ascending.
        let p = FlashParams::new(12.0, 50.0, 10e-6);
        let events = p.sample_for(20.0, 20230225);
        assert!(events.len() > 1_000);
        for w in events.windows(2) {
            assert!(w[0] <= w[1], "{} > {}", w[0], w[1]);
        }
    }

    #[test]
    fn merge_interleaves() {
        let merged = merge_sorted(vec![1.0, 3.0, 5.0], vec![2.0, 4.0]);
        assert_eq!(merged, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(merge_sorted(vec![], vec![1.0]), vec![1.0]);
        assert_eq!(merge_sorted(vec![1.0], vec![]), vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "burst rate")]
    fn zero_rate_panics() {
        let _ = FlashParams::new(0.0, 10.0, 1e-6);
    }
}
