//! A univariate Hawkes (self-exciting) point process.
//!
//! Tick arrivals in high-frequency markets cluster: "even a small number of
//! orders can trigger a massive number of orders, which again triggers
//! other orders" (§II-C, citing the flash-crash literature). The Hawkes
//! process captures exactly this feedback: its intensity is
//!
//! ```text
//! λ(t) = μ + Σ_{tᵢ < t} α · exp(-β (t - tᵢ))
//! ```
//!
//! where `μ` is the exogenous baseline rate, `α` the excitation each event
//! adds, and `β` the decay rate. The branching ratio `α/β` must be `< 1`
//! for stationarity; the long-run mean rate is `μ / (1 - α/β)`.
//!
//! Sampling uses Ogata's thinning algorithm, which is exact.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of a Hawkes process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HawkesParams {
    /// Baseline (exogenous) intensity in events per second.
    pub mu: f64,
    /// Excitation added by each event, in events per second.
    pub alpha: f64,
    /// Exponential decay rate of the excitation, per second.
    pub beta: f64,
}

impl HawkesParams {
    /// Creates parameters, validating stationarity.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive or if `alpha >= beta`
    /// (non-stationary process).
    pub fn new(mu: f64, alpha: f64, beta: f64) -> Self {
        assert!(mu > 0.0, "mu must be positive");
        assert!(alpha >= 0.0, "alpha must be non-negative");
        assert!(beta > 0.0, "beta must be positive");
        assert!(
            alpha < beta,
            "branching ratio alpha/beta must be < 1 for stationarity"
        );
        HawkesParams { mu, alpha, beta }
    }

    /// The branching ratio `α/β` (the expected number of direct children of
    /// one event).
    pub fn branching_ratio(&self) -> f64 {
        self.alpha / self.beta
    }

    /// The long-run mean event rate `μ / (1 - α/β)` in events per second.
    pub fn mean_rate(&self) -> f64 {
        self.mu / (1.0 - self.branching_ratio())
    }
}

/// A seeded Hawkes process sampler.
///
/// # Example
///
/// ```
/// use lt_feed::hawkes::{HawkesParams, HawkesProcess};
///
/// let params = HawkesParams::new(100.0, 50.0, 80.0); // mean ≈ 267 ev/s
/// let mut process = HawkesProcess::new(params, 42);
/// let arrivals = process.sample_for(1.0); // one simulated second
/// assert!(!arrivals.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct HawkesProcess {
    params: HawkesParams,
    rng: StdRng,
    /// Current time in seconds.
    now: f64,
    /// Current *excess* intensity (above mu) at `now`.
    excitation: f64,
}

impl HawkesProcess {
    /// Creates a sampler with a deterministic seed.
    pub fn new(params: HawkesParams, seed: u64) -> Self {
        HawkesProcess {
            params,
            rng: StdRng::seed_from_u64(seed),
            now: 0.0,
            excitation: 0.0,
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> HawkesParams {
        self.params
    }

    /// Current total intensity λ(now) in events per second.
    pub fn intensity(&self) -> f64 {
        self.params.mu + self.excitation
    }

    /// Samples the next arrival time in seconds (absolute, since process
    /// start) using Ogata thinning.
    pub fn next_arrival(&mut self) -> f64 {
        loop {
            let lambda_bar = self.params.mu + self.excitation;
            // Candidate wait from a homogeneous Poisson at the current
            // intensity upper bound.
            let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
            let wait = -u.ln() / lambda_bar;
            // Decay the excitation over the candidate interval.
            let decayed = self.excitation * (-self.params.beta * wait).exp();
            let lambda_at = self.params.mu + decayed;
            self.now += wait;
            self.excitation = decayed;
            let accept: f64 = self.rng.gen_range(0.0..1.0);
            if accept * lambda_bar <= lambda_at {
                // Register the event: it excites the future.
                self.excitation += self.params.alpha;
                return self.now;
            }
        }
    }

    /// Samples every arrival in the next `horizon_secs` of simulated time,
    /// returned as absolute times in seconds.
    pub fn sample_for(&mut self, horizon_secs: f64) -> Vec<f64> {
        let end = self.now + horizon_secs;
        let mut out = Vec::new();
        loop {
            let t = self.next_arrival();
            if t > end {
                // Rewind: the last candidate overshot the horizon. Keep the
                // decayed state at `end` so subsequent sampling continues
                // seamlessly.
                self.excitation -= self.params.alpha;
                let overshoot = self.now - end;
                self.excitation *= (self.params.beta * overshoot).exp();
                self.now = end;
                break;
            }
            out.push(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_rate_formula() {
        let p = HawkesParams::new(10.0, 5.0, 10.0);
        assert!((p.branching_ratio() - 0.5).abs() < 1e-12);
        assert!((p.mean_rate() - 20.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "stationarity")]
    fn non_stationary_rejected() {
        let _ = HawkesParams::new(10.0, 10.0, 5.0);
    }

    #[test]
    #[should_panic(expected = "mu must be positive")]
    fn zero_mu_rejected() {
        let _ = HawkesParams::new(0.0, 1.0, 2.0);
    }

    #[test]
    fn arrivals_strictly_increase() {
        let mut p = HawkesProcess::new(HawkesParams::new(100.0, 40.0, 60.0), 7);
        let mut last = 0.0;
        for _ in 0..500 {
            let t = p.next_arrival();
            assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn deterministic_under_same_seed() {
        let params = HawkesParams::new(50.0, 20.0, 40.0);
        let a: Vec<f64> = HawkesProcess::new(params, 99).sample_for(2.0);
        let b: Vec<f64> = HawkesProcess::new(params, 99).sample_for(2.0);
        assert_eq!(a, b);
        let c: Vec<f64> = HawkesProcess::new(params, 100).sample_for(2.0);
        assert_ne!(a, c);
    }

    #[test]
    fn empirical_rate_matches_theory() {
        // Long sample: empirical rate within 15% of mu/(1 - a/b).
        let params = HawkesParams::new(200.0, 100.0, 200.0); // mean 400/s
        let mut p = HawkesProcess::new(params, 3);
        let horizon = 50.0;
        let n = p.sample_for(horizon).len() as f64;
        let rate = n / horizon;
        assert!(
            (rate - params.mean_rate()).abs() / params.mean_rate() < 0.15,
            "rate {rate} vs theory {}",
            params.mean_rate()
        );
    }

    #[test]
    fn hawkes_is_burstier_than_poisson() {
        // The coefficient of variation of inter-arrivals must exceed 1
        // (Poisson) when excitation is strong.
        let params = HawkesParams::new(50.0, 180.0, 200.0);
        let mut p = HawkesProcess::new(params, 11);
        let arr = p.sample_for(60.0);
        let gaps: Vec<f64> = arr.windows(2).map(|w| w[1] - w[0]).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(cv > 1.3, "cv = {cv}, expected clustered arrivals");
    }

    #[test]
    fn sample_for_respects_horizon_and_resumes() {
        let mut p = HawkesProcess::new(HawkesParams::new(100.0, 10.0, 50.0), 5);
        let first = p.sample_for(1.0);
        assert!(first.iter().all(|&t| t <= 1.0));
        let second = p.sample_for(1.0);
        assert!(second.iter().all(|&t| t > 1.0 && t <= 2.0));
    }

    #[test]
    fn zero_alpha_degenerates_to_poisson() {
        // With alpha = 0 the intensity is constant mu.
        let params = HawkesParams::new(100.0, 0.0, 1.0);
        assert_eq!(params.mean_rate(), 100.0);
        let mut p = HawkesProcess::new(params, 1);
        let n = p.sample_for(20.0).len() as f64;
        assert!((n / 20.0 - 100.0).abs() < 15.0);
    }
}
