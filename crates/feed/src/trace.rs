//! Replayable tick traces.
//!
//! A [`TickTrace`] is the unit of back-testing: an ordered list of
//! timestamped ten-level LOB snapshots, exactly the "historical market
//! data, including timestamp and LOB snapshot, which consists of the price
//! and volume of each level on the ask and bid side at each tick" the
//! paper's simulation framework consumes (§IV-A). Traces serialize with
//! serde so experiments are re-runnable from disk.

use lt_lob::{LobSnapshot, Symbol, Timestamp};
use serde::{Deserialize, Serialize};

/// One tick: a timestamp plus the book state after the tick applied.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TickRecord {
    /// Exchange timestamp of the tick.
    pub ts: Timestamp,
    /// Ten-level snapshot after the tick.
    pub snapshot: LobSnapshot,
}

/// An ordered, replayable sequence of ticks for one symbol.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TickTrace {
    /// The traded symbol.
    pub symbol: Symbol,
    /// Ticks in non-decreasing timestamp order.
    pub ticks: Vec<TickRecord>,
}

impl TickTrace {
    /// Creates an empty trace.
    pub fn new(symbol: Symbol) -> Self {
        TickTrace {
            symbol,
            ticks: Vec::new(),
        }
    }

    /// Builds a trace from already-ordered records (e.g. a replayed
    /// delivery stream from a degraded ingress path).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the records are not in non-decreasing
    /// timestamp order.
    pub fn from_records(symbol: Symbol, records: Vec<TickRecord>) -> Self {
        debug_assert!(
            records.windows(2).all(|w| w[0].ts <= w[1].ts),
            "ticks must be time-ordered"
        );
        TickTrace {
            symbol,
            ticks: records,
        }
    }

    /// Appends a tick.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `ts` precedes the previous tick.
    pub fn push(&mut self, ts: Timestamp, snapshot: LobSnapshot) {
        debug_assert!(
            self.ticks.last().is_none_or(|last| last.ts <= ts),
            "ticks must be time-ordered"
        );
        self.ticks.push(TickRecord { ts, snapshot });
    }

    /// Number of ticks.
    pub fn len(&self) -> usize {
        self.ticks.len()
    }

    /// True when the trace holds no ticks.
    pub fn is_empty(&self) -> bool {
        self.ticks.is_empty()
    }

    /// Iterates the ticks in time order.
    pub fn iter(&self) -> std::slice::Iter<'_, TickRecord> {
        self.ticks.iter()
    }

    /// Wall-clock span from first to last tick.
    pub fn duration(&self) -> std::time::Duration {
        match (self.ticks.first(), self.ticks.last()) {
            (Some(first), Some(last)) => last.ts.since(first.ts),
            _ => std::time::Duration::ZERO,
        }
    }

    /// Computes arrival statistics over the trace.
    pub fn stats(&self) -> TraceStats {
        let gaps: Vec<f64> = self
            .ticks
            .windows(2)
            .map(|w| w[1].ts.nanos_since(w[0].ts) as f64)
            .collect();
        if gaps.is_empty() {
            return TraceStats::default();
        }
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let min = gaps.iter().copied().fold(f64::INFINITY, f64::min);
        let max = gaps.iter().copied().fold(0.0f64, f64::max);
        TraceStats {
            ticks: self.ticks.len(),
            mean_gap_nanos: mean,
            cv: if mean > 0.0 { var.sqrt() / mean } else { 0.0 },
            min_gap_nanos: min as u64,
            max_gap_nanos: max as u64,
        }
    }
}

impl<'a> IntoIterator for &'a TickTrace {
    type Item = &'a TickRecord;
    type IntoIter = std::slice::Iter<'a, TickRecord>;
    fn into_iter(self) -> Self::IntoIter {
        self.ticks.iter()
    }
}

/// Summary statistics of tick arrivals in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of ticks.
    pub ticks: usize,
    /// Mean inter-tick gap in nanoseconds.
    pub mean_gap_nanos: f64,
    /// Coefficient of variation of inter-tick gaps (1.0 for Poisson; larger
    /// means burstier).
    pub cv: f64,
    /// Smallest gap observed.
    pub min_gap_nanos: u64,
    /// Largest gap observed.
    pub max_gap_nanos: u64,
}

impl TraceStats {
    /// Mean tick rate in events per second.
    pub fn mean_rate(&self) -> f64 {
        if self.mean_gap_nanos > 0.0 {
            1e9 / self.mean_gap_nanos
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_lob::snapshot::SnapshotLevel;
    use lt_lob::{Price, Qty};

    fn snap(mid: i64) -> LobSnapshot {
        LobSnapshot {
            ts: Timestamp::ZERO,
            bids: vec![SnapshotLevel {
                price: Price::new(mid - 1),
                qty: Qty::new(1),
            }],
            asks: vec![SnapshotLevel {
                price: Price::new(mid + 1),
                qty: Qty::new(1),
            }],
        }
    }

    #[test]
    fn push_and_iterate() {
        let mut trace = TickTrace::new(Symbol::new("ESU6"));
        assert!(trace.is_empty());
        trace.push(Timestamp::from_micros(1), snap(100));
        trace.push(Timestamp::from_micros(3), snap(101));
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.duration(), std::time::Duration::from_micros(2));
        let mids: Vec<f64> = trace
            .iter()
            .filter_map(|t| t.snapshot.mid_price())
            .collect();
        assert_eq!(mids, vec![100.0, 101.0]);
        // IntoIterator on &trace works in for loops.
        let mut n = 0;
        for _ in &trace {
            n += 1;
        }
        assert_eq!(n, 2);
    }

    #[test]
    fn stats_computes_gaps() {
        let mut trace = TickTrace::new(Symbol::new("ESU6"));
        for (i, us) in [0u64, 10, 20, 30].iter().enumerate() {
            trace.push(Timestamp::from_micros(*us), snap(100 + i as i64));
        }
        let stats = trace.stats();
        assert_eq!(stats.ticks, 4);
        assert!((stats.mean_gap_nanos - 10_000.0).abs() < 1e-9);
        assert!(stats.cv.abs() < 1e-9, "uniform gaps have zero cv");
        assert_eq!(stats.min_gap_nanos, 10_000);
        assert_eq!(stats.max_gap_nanos, 10_000);
        assert!((stats.mean_rate() - 100_000.0).abs() < 1e-6);
    }

    #[test]
    fn empty_trace_stats_are_zero() {
        let trace = TickTrace::new(Symbol::new("ESU6"));
        assert_eq!(trace.stats(), TraceStats::default());
        assert_eq!(trace.duration(), std::time::Duration::ZERO);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_push_panics() {
        let mut trace = TickTrace::new(Symbol::new("ESU6"));
        trace.push(Timestamp::from_micros(5), snap(100));
        trace.push(Timestamp::from_micros(1), snap(100));
    }
}
