//! Synthetic bursty market data for re-runnable back-tests.
//!
//! The paper back-tests LightTrader on CME E-mini S&P 500 tick data whose
//! defining property is *bursty, event-based arrival*: "the time interval
//! between ticks dynamically varies from a few microseconds to a few
//! seconds even if only a single symbol is subscribed" (§II-C). That data
//! is proprietary, so this crate substitutes a statistically faithful
//! synthetic feed:
//!
//! * [`hawkes`] — a self-exciting Hawkes point process (the standard model
//!   for high-frequency order-flow clustering) that generates tick arrival
//!   times with the µs-to-seconds dynamic range the scheduler experiments
//!   require;
//! * [`agents`] — a zero-intelligence agent flow that converts arrival
//!   times into order actions (adds, cancels, aggressive takes) against a
//!   real [`lt_lob::MatchingEngine`], producing genuine LOB evolution;
//! * [`trace`] — a serializable [`TickTrace`] of
//!   timestamped ten-level snapshots so every experiment is re-runnable
//!   bit-for-bit (the paper's "reliable and re-runnable simulation
//!   framework", §IV-A);
//! * [`stats`] — historical mean/std per feature for the offload engine's
//!   Z-score normalization (§III-A);
//! * [`session`] — one-call builders combining all of the above, with
//!   presets calibrated for the evaluation scenarios.

pub mod agents;
pub mod bursts;
pub mod cache;
pub mod hawkes;
pub mod multi;
pub mod session;
pub mod stats;
pub mod trace;
pub mod trace_io;

pub use agents::{AgentFlow, AgentParams};
pub use bursts::FlashParams;
pub use cache::{CacheStats, SessionArtifact, SessionSpec, TraceCache};
pub use hawkes::{HawkesParams, HawkesProcess};
pub use multi::{MultiMarketSession, MultiSessionBuilder};
pub use session::{MarketSession, SessionBuilder};
pub use stats::NormStats;
pub use trace::{TickRecord, TickTrace, TraceStats};
pub use trace_io::TraceIoError;
