//! Back-test farm benchmarks: grid expansion, cached vs rebuilt session
//! handling, and the legacy flat sweep for reference.
//!
//! For the machine-readable throughput report (and the 2x farm-vs-naive
//! speedup floor on a 216-cell grid) see the `bench_sweep` binary,
//! which emits `BENCH_sweep.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use lighttrader::dnn::ModelKind;
use lighttrader::prelude::*;
use lighttrader::sim::farm::GridDeadline;
use lighttrader::sim::try_run_sweep;
use std::hint::black_box;

const SECS: f64 = 0.25;

/// A small grid: 24 cells over 2 sessions.
fn grid() -> SweepGrid {
    SweepGrid::evaluation(SECS)
        .models([ModelKind::VanillaCnn, ModelKind::DeepLob])
        .accel_counts([1, 2])
        .policies([Policy::Baseline, Policy::WorkloadScheduling, Policy::Both])
        .deadline(GridDeadline::Scheduling)
        .seeds([7, 8])
}

fn bench_expand(c: &mut Criterion) {
    let g = grid();
    c.bench_function("farm/expand_24_cells", |b| b.iter(|| black_box(g.expand())));
}

fn bench_farm_cached(c: &mut Criterion) {
    let g = grid();
    c.bench_function("farm/run_24_cells_cached", |b| {
        b.iter(|| black_box(FarmRunner::new().run(&g)))
    });
}

fn bench_farm_naive(c: &mut Criterion) {
    let g = grid();
    c.bench_function("farm/run_24_cells_naive_rebuild", |b| {
        b.iter(|| black_box(FarmRunner::new().without_trace_reuse().run(&g)))
    });
}

fn bench_flat_sweep(c: &mut Criterion) {
    // The legacy surface: one shared trace, a flat config batch.
    let session = SessionBuilder::calm_traffic()
        .duration_secs(SECS)
        .seed(7)
        .build();
    let configs: Vec<BacktestConfig> = [Policy::Baseline, Policy::Both]
        .into_iter()
        .flat_map(|p| {
            ModelKind::ALL
                .map(|kind| BacktestConfig::new(kind, 2, PowerCondition::Sufficient).with_policy(p))
        })
        .collect();
    c.bench_function("farm/flat_try_run_sweep_6_configs", |b| {
        b.iter(|| black_box(try_run_sweep(&session.trace, &configs, 0).expect("clean sweep")))
    });
}

criterion_group!(
    benches,
    bench_expand,
    bench_farm_cached,
    bench_farm_naive,
    bench_flat_sweep
);
criterion_main!(benches);
