//! Criterion benches regenerating (miniature versions of) every measured
//! artifact of the paper's evaluation. Each group runs the same code path
//! as the full-length `tables` binary on a short session, so `cargo
//! bench` both regenerates the series and times the harness itself.
//!
//! The printed paper-vs-measured rows come from
//! `cargo run --release -p lt-bench --bin tables`; full-length results
//! are recorded in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lighttrader::accel::PowerCondition;
use lighttrader::dnn::ModelKind;
use lighttrader::experiments;
use lighttrader::sched::Policy;
use lighttrader::sim::traffic::{
    evaluation_deadline, evaluation_trace, scheduling_deadline, EVALUATION_SEED,
};
use lighttrader::sim::{run_lighttrader, run_single_device, BacktestConfig, SingleDeviceSystem};

const SECS: f64 = 2.0;

/// Table II: the analytic op counter over the paper-scale specs.
fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2/op_counter", |b| {
        b.iter(|| {
            let rows = experiments::table2();
            assert_eq!(rows.len(), 3);
            rows
        })
    });
}

/// Table III: the static clock/power plan across the full grid.
fn bench_table3(c: &mut Criterion) {
    c.bench_function("table3/static_plan_grid", |b| {
        b.iter(|| {
            let rows = experiments::table3();
            assert_eq!(rows.len(), 10);
            rows
        })
    });
}

/// Fig. 8: single-accelerator response rate across the M1..M5 ladder.
fn bench_fig8(c: &mut Criterion) {
    let trace = evaluation_trace(SECS, EVALUATION_SEED);
    let mut group = c.benchmark_group("fig8_response_rate");
    group.sample_size(10);
    for (label, latency_us) in [("M1", 60.0), ("M3", 200.0), ("M5", 600.0)] {
        let system = SingleDeviceSystem::custom(label, latency_us, 25.0);
        group.bench_with_input(BenchmarkId::from_parameter(label), &system, |b, sys| {
            b.iter(|| {
                run_single_device(
                    &trace,
                    sys,
                    ModelKind::VanillaCnn,
                    evaluation_deadline(),
                    100,
                    64,
                )
            })
        });
    }
    group.finish();
}

/// Fig. 11: batch-1 back-tests of the three systems (DeepLOB column).
fn bench_fig11(c: &mut Criterion) {
    let trace = evaluation_trace(SECS, EVALUATION_SEED);
    let mut group = c.benchmark_group("fig11_non_batching");
    group.sample_size(10);
    group.bench_function("lighttrader", |b| {
        let cfg = BacktestConfig::new(ModelKind::DeepLob, 1, PowerCondition::Sufficient);
        b.iter(|| run_lighttrader(&trace, &cfg))
    });
    group.bench_function("gpu", |b| {
        let sys = SingleDeviceSystem::gpu();
        b.iter(|| {
            run_single_device(
                &trace,
                &sys,
                ModelKind::DeepLob,
                evaluation_deadline(),
                100,
                64,
            )
        })
    });
    group.bench_function("fpga", |b| {
        let sys = SingleDeviceSystem::fpga();
        b.iter(|| {
            run_single_device(
                &trace,
                &sys,
                ModelKind::DeepLob,
                evaluation_deadline(),
                100,
                64,
            )
        })
    });
    group.finish();
}

/// Fig. 12: accelerator-count scaling (TransLOB, sufficient power).
fn bench_fig12(c: &mut Criterion) {
    let trace = evaluation_trace(SECS, EVALUATION_SEED);
    let mut group = c.benchmark_group("fig12_scaling");
    group.sample_size(10);
    for n in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let cfg = BacktestConfig::new(ModelKind::TransLob, n, PowerCondition::Sufficient);
            b.iter(|| run_lighttrader(&trace, &cfg))
        });
    }
    group.finish();
}

/// Fig. 13: the four scheduling policies (Vanilla CNN x2, limited).
fn bench_fig13(c: &mut Criterion) {
    let trace = evaluation_trace(SECS, EVALUATION_SEED);
    let mut group = c.benchmark_group("fig13_scheduling");
    group.sample_size(10);
    for policy in Policy::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.label()),
            &policy,
            |b, &policy| {
                let cfg = BacktestConfig::new(ModelKind::VanillaCnn, 2, PowerCondition::Limited)
                    .with_policy(policy)
                    .with_t_avail(scheduling_deadline());
                b.iter(|| run_lighttrader(&trace, &cfg))
            },
        );
    }
    group.finish();
}

criterion_group!(
    paper,
    bench_table2,
    bench_table3,
    bench_fig8,
    bench_fig11,
    bench_fig12,
    bench_fig13
);
criterion_main!(paper);
