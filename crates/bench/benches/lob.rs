//! Ladder-vs-reference order-book benchmarks: the book maintenance +
//! feature-extraction hot path replayed through the shared [`BookStore`]
//! interface, plus feature extraction on a resting book in isolation.
//!
//! For the machine-readable speedup report (and the 3x regression floor)
//! see the `bench_lob` binary, which emits `BENCH_lob.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use lt_lob::prelude::*;
use lt_lob::Order;
use std::hint::black_box;

const N_OPS: usize = 10_000;
const DEPTH: usize = 10;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state >> 12;
    *state ^= *state << 25;
    *state ^= *state >> 27;
    state.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

enum BookOp {
    Insert(Order),
    Remove(OrderId),
    Sweep(Side, Qty),
}

/// Same dense-touch mix as `bench_lob`: 60% passive adds within 8 ticks
/// of the touch, 20% cancels, 20% FIFO sweeps.
fn generate_book_ops(n: usize) -> Vec<BookOp> {
    let mut state = 0x243f_6a88_85a3_08d3u64;
    let mut live: Vec<OrderId> = Vec::new();
    let mut next_id = 1u64;
    let mut ops = Vec::with_capacity(n);
    for i in 0..n {
        let roll = xorshift(&mut state) % 10;
        if roll < 6 || live.is_empty() {
            let side = if xorshift(&mut state).is_multiple_of(2) {
                Side::Bid
            } else {
                Side::Ask
            };
            let base = if side == Side::Bid { 9_992 } else { 10_001 };
            let id = OrderId::new(next_id);
            next_id += 1;
            live.push(id);
            let qty = Qty::new(1 + xorshift(&mut state) % 9);
            ops.push(BookOp::Insert(Order {
                id,
                side,
                price: Price::new(base + (xorshift(&mut state) % 8) as i64),
                remaining: qty,
                original: qty,
                arrival: Timestamp::from_nanos(i as u64 + 1),
                seq: i as u64 + 1,
            }));
        } else if roll < 8 {
            let id = live.swap_remove((xorshift(&mut state) % live.len() as u64) as usize);
            ops.push(BookOp::Remove(id));
        } else {
            let side = if xorshift(&mut state).is_multiple_of(2) {
                Side::Bid
            } else {
                Side::Ask
            };
            ops.push(BookOp::Sweep(side, Qty::new(1 + xorshift(&mut state) % 12)));
        }
    }
    ops
}

fn apply_op<B: BookStore>(book: &mut B, op: &BookOp) {
    match op {
        BookOp::Insert(order) => book.insert(*order),
        BookOp::Remove(id) => {
            black_box(book.remove(*id));
        }
        BookOp::Sweep(side, qty) => {
            let mut left = *qty;
            while !left.is_zero() && book.best(*side).is_some() {
                let avail = book.front(*side).expect("non-empty side").remaining;
                let fill = avail.min(left);
                black_box(book.fill_front(*side, fill));
                left -= fill;
            }
        }
    }
}

/// Replay with a depth-10 feature row per op — the floored path.
fn bench_book_replay(c: &mut Criterion) {
    let ops = generate_book_ops(N_OPS);
    let mut g = c.benchmark_group("lob/replay");
    let mut features = vec![0.0f32; LobSnapshot::feature_count(DEPTH)];
    g.bench_function("ladder", |b| {
        b.iter(|| {
            let mut book = LadderBook::default();
            for op in &ops {
                apply_op(&mut book, op);
                book.write_features(DEPTH, &mut features);
            }
            features[0]
        })
    });
    g.bench_function("reference", |b| {
        b.iter(|| {
            let mut book = ReferenceBook::new();
            for (i, op) in ops.iter().enumerate() {
                apply_op(&mut book, op);
                let snap = book.snapshot(DEPTH, Timestamp::from_nanos(i as u64 + 1));
                black_box(snap.to_features(DEPTH));
            }
            book.len()
        })
    });
    g.finish();
}

/// Feature extraction alone, on a resting book built from the op stream.
fn bench_feature_extraction(c: &mut Criterion) {
    let ops = generate_book_ops(N_OPS);
    let mut ladder = LadderBook::default();
    let mut reference = ReferenceBook::new();
    for op in &ops {
        apply_op(&mut ladder, op);
        apply_op(&mut reference, op);
    }
    let mut features = vec![0.0f32; LobSnapshot::feature_count(DEPTH)];
    let mut g = c.benchmark_group("lob/features");
    g.bench_function("ladder_write", |b| {
        b.iter(|| {
            ladder.write_features(DEPTH, &mut features);
            features[0]
        })
    });
    g.bench_function("reference_snapshot", |b| {
        b.iter(|| {
            let snap = reference.snapshot(DEPTH, Timestamp::from_nanos(1));
            black_box(snap.to_features(DEPTH))
        })
    });
    g.finish();
}

criterion_group!(lob, bench_book_replay, bench_feature_extraction);
criterion_main!(lob);
