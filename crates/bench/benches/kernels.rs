//! Fast-vs-naive kernel benchmarks: each group times a layer's naive
//! `forward_reference` against the im2col / blocked-GEMM / register-tiled
//! `forward_scratch` path (with a reused scratch pad, the steady-state
//! regime), plus the three benchmark models' full forward passes.
//!
//! For the machine-readable speedup report see the `bench_kernels`
//! binary, which emits `BENCH_kernels.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use lighttrader::dnn::models::{CnnSpec, DeepLobSpec, QuantizedCnn, TransLobSpec};
use lighttrader::dnn::ops::{Conv2d, Linear, LinearInt8, Lstm, MultiHeadAttention};
use lighttrader::dnn::{Model, ScratchPad, Tensor};

fn bench_conv2d(c: &mut Criterion) {
    // DeepLOB-trunk-shaped: temporal k=4 over a 16-channel map.
    let conv = Conv2d::new(16, 16, (4, 1), (1, 1), (0, 0), 1);
    let x = Tensor::random(&[16, 64, 10], 1.0, 2);
    let mut g = c.benchmark_group("kernels/conv2d");
    g.bench_function("naive", |b| b.iter(|| conv.forward_reference(&x)));
    let mut pad = ScratchPad::new();
    g.bench_function("fast", |b| b.iter(|| conv.forward_scratch(&x, &mut pad)));
    g.finish();
}

fn bench_linear(c: &mut Criterion) {
    let layer = Linear::new(256, 128, 1);
    let x = Tensor::random(&[256], 1.0, 2);
    let mut g = c.benchmark_group("kernels/linear");
    g.bench_function("naive", |b| b.iter(|| layer.forward_reference(&x)));
    let mut pad = ScratchPad::new();
    g.bench_function("fast", |b| b.iter(|| layer.forward_scratch(&x, &mut pad)));
    g.finish();
}

fn bench_linear_int8(c: &mut Criterion) {
    let layer = LinearInt8::from_linear(&Linear::new(256, 128, 1));
    let x = Tensor::random(&[256], 1.0, 2);
    let mut g = c.benchmark_group("kernels/linear_int8");
    g.bench_function("naive", |b| b.iter(|| layer.forward_reference(&x)));
    let mut pad = ScratchPad::new();
    g.bench_function("fast", |b| b.iter(|| layer.forward_scratch(&x, &mut pad)));
    g.finish();
}

fn bench_lstm(c: &mut Criterion) {
    let lstm = Lstm::new(48, 64, 1);
    let x = Tensor::random(&[16, 48], 1.0, 2);
    let mut g = c.benchmark_group("kernels/lstm");
    g.bench_function("naive", |b| b.iter(|| lstm.forward_reference(&x)));
    let mut pad = ScratchPad::new();
    g.bench_function("fast", |b| b.iter(|| lstm.forward_scratch(&x, &mut pad)));
    g.finish();
}

fn bench_attention(c: &mut Criterion) {
    let mha = MultiHeadAttention::new(64, 4, 1);
    let x = Tensor::random(&[32, 64], 1.0, 2);
    let mut g = c.benchmark_group("kernels/attention");
    g.bench_function("naive", |b| b.iter(|| mha.forward_reference(&x)));
    let mut pad = ScratchPad::new();
    g.bench_function("fast", |b| b.iter(|| mha.forward_scratch(&x, &mut pad)));
    g.finish();
}

fn bench_models(c: &mut Criterion) {
    let vanilla = CnnSpec::tiny().build(3);
    let quant = QuantizedCnn::from_float(&vanilla);
    let deeplob = DeepLobSpec::tiny().build(3);
    let translob = TransLobSpec::tiny().build(3);
    let x20 = Tensor::random(&[20, 40], 1.0, 5);
    let x24 = Tensor::random(&[24, 40], 1.0, 5);
    let x16 = Tensor::random(&[16, 40], 1.0, 5);

    let mut g = c.benchmark_group("models/vanilla_cnn");
    g.bench_function("naive", |b| b.iter(|| vanilla.forward_reference(&x20)));
    let mut pad = ScratchPad::new();
    g.bench_function("fast", |b| {
        b.iter(|| vanilla.forward_scratch(&x20, &mut pad))
    });
    g.finish();

    let mut g = c.benchmark_group("models/quantized_cnn");
    g.bench_function("naive", |b| b.iter(|| quant.forward_reference(&x20)));
    let mut pad = ScratchPad::new();
    g.bench_function("fast", |b| b.iter(|| quant.forward_scratch(&x20, &mut pad)));
    g.finish();

    let mut g = c.benchmark_group("models/deeplob");
    g.bench_function("naive", |b| b.iter(|| deeplob.forward_reference(&x24)));
    let mut pad = ScratchPad::new();
    g.bench_function("fast", |b| {
        b.iter(|| deeplob.forward_scratch(&x24, &mut pad))
    });
    g.finish();

    let mut g = c.benchmark_group("models/translob");
    g.bench_function("naive", |b| b.iter(|| translob.forward_reference(&x16)));
    let mut pad = ScratchPad::new();
    g.bench_function("fast", |b| {
        b.iter(|| translob.forward_scratch(&x16, &mut pad))
    });
    g.finish();
}

criterion_group!(
    kernels,
    bench_conv2d,
    bench_linear,
    bench_linear_int8,
    bench_lstm,
    bench_attention,
    bench_models
);
criterion_main!(kernels);
