//! Batched-inference benchmarks: for each benchmark model and batch
//! size, the packed batched forward (`forward_batch_scratch` over
//! prepacked weight panels) against looping `forward_scratch` per
//! query. Both paths are bit-identical per sample (pinned by
//! `lt-dnn/tests/batch_equivalence.rs`), so the delta is pure
//! throughput.
//!
//! For the machine-readable speedup report with the enforced DeepLOB
//! batch-16 floor see the `bench_batch` binary, which emits
//! `BENCH_batch.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lighttrader::dnn::models::{CnnSpec, DeepLobSpec, TransLobSpec};
use lighttrader::dnn::{Model, Prediction, ScratchPad, Tensor};

fn sweep(c: &mut Criterion, name: &str, model: &dyn Model) {
    let packed = model.pack_weights();
    let mut g = c.benchmark_group(format!("batch/{name}"));
    for batch in [1usize, 4, 16] {
        let inputs: Vec<Tensor> = (0..batch)
            .map(|i| Tensor::random(&[model.window(), model.features()], 1.0, 90 + i as u64))
            .collect();
        g.throughput(Throughput::Elements(batch as u64));
        let mut pad = ScratchPad::new();
        let mut out: Vec<Prediction> = Vec::new();
        g.bench_with_input(BenchmarkId::new("looped", batch), &inputs, |b, inputs| {
            b.iter(|| model.forward_batch_looped(inputs, &mut pad, &mut out))
        });
        let mut pad = ScratchPad::new();
        let mut out: Vec<Prediction> = Vec::new();
        g.bench_with_input(BenchmarkId::new("batched", batch), &inputs, |b, inputs| {
            b.iter(|| model.forward_batch_scratch(inputs, &packed, &mut pad, &mut out))
        });
    }
    g.finish();
}

fn bench_batch_models(c: &mut Criterion) {
    sweep(c, "vanilla_cnn", &CnnSpec::tiny().build(3));
    sweep(c, "deeplob", &DeepLobSpec::tiny().build(3));
    sweep(c, "translob", &TransLobSpec::tiny().build(3));
}

criterion_group!(batch, bench_batch_models);
criterion_main!(batch);
