//! Component micro-benchmarks: the hot-path costs of the trading
//! pipeline, codecs, models, and scheduler — the numbers a latency
//! engineer would profile on real hardware.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lighttrader::accel::cgra::{CgraSim, GridConfig};
use lighttrader::accel::{DeviceProfile, DvfsTable, PowerCondition};
use lighttrader::dnn::models::build_tiny;
use lighttrader::dnn::{ModelKind, Tensor};
use lighttrader::feed::{NormStats, SessionBuilder};
use lighttrader::pipeline::{OffloadEngine, PacketParser};
use lighttrader::prelude::*;
use lighttrader::protocol::framing::Datagram;
use lighttrader::protocol::sbe::{SbeDecoder, SbeEncoder};
use lighttrader::sched::schedule_workload;
use std::time::Duration;

fn bench_matching_engine(c: &mut Criterion) {
    c.bench_function("lob/submit_and_match", |b| {
        b.iter_with_setup(
            || {
                let mut e = MatchingEngine::new(Symbol::new("ESU6"));
                for i in 0..10 {
                    e.submit(
                        NewOrder::limit(
                            OrderId::new(i + 1),
                            Side::Ask,
                            Price::new(18_001 + i as i64),
                            Qty::new(5),
                        ),
                        Timestamp::ZERO,
                    );
                }
                (e, 100u64)
            },
            |(mut e, id)| {
                e.submit(
                    NewOrder::limit(OrderId::new(id), Side::Bid, Price::new(18_003), Qty::new(7)),
                    Timestamp::from_nanos(1),
                )
            },
        )
    });
}

fn bench_codec(c: &mut Criterion) {
    let event = MarketEvent {
        seq: 7,
        ts: Timestamp::from_nanos(100),
        kind: lighttrader::lob::events::MarketEventKind::Book(BookDelta::Add {
            id: OrderId::new(1),
            side: Side::Bid,
            price: Price::new(18_000),
            qty: Qty::new(3),
        }),
    };
    let encoder = SbeEncoder::new();
    let decoder = SbeDecoder::new();
    let bytes = encoder.encode(&event);
    c.bench_function("protocol/sbe_encode", |b| b.iter(|| encoder.encode(&event)));
    c.bench_function("protocol/sbe_decode", |b| b.iter(|| decoder.decode(&bytes)));

    let datagram = Datagram::new(1, Timestamp::from_nanos(1), 1, bytes.clone()).encode();
    c.bench_function("pipeline/parser_ingest", |b| {
        b.iter_with_setup(PacketParser::new, |mut p| p.ingest(&datagram))
    });
}

fn bench_offload_engine(c: &mut Criterion) {
    let session = SessionBuilder::calm_traffic()
        .duration_secs(0.2)
        .seed(1)
        .build();
    let snapshot = &session.trace.ticks[50].snapshot;
    c.bench_function("pipeline/offload_on_tick", |b| {
        b.iter_with_setup(
            || {
                let mut o = OffloadEngine::new(session.norm.clone(), 100, 64);
                for t in session.trace.iter().take(99) {
                    o.on_tick(&t.snapshot, t.ts);
                }
                o
            },
            |mut o| o.on_tick(snapshot, Timestamp::from_millis(1)),
        )
    });
}

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("dnn/tiny_forward");
    for kind in ModelKind::ALL {
        let model = build_tiny(kind, 1);
        let input = Tensor::random(&[model.window(), model.features()], 1.0, 2);
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &input,
            |b, input| b.iter(|| model.forward(input)),
        );
    }
    group.finish();
}

fn bench_cgra(c: &mut Criterion) {
    let a = Tensor::random(&[32, 32], 1.0, 3);
    let bm = Tensor::random(&[32, 32], 1.0, 4);
    c.bench_function("accel/cgra_matmul_32", |b| {
        b.iter_with_setup(
            || CgraSim::new(GridConfig::lighttrader()),
            |mut sim| sim.matmul(&a, &bm),
        )
    });
}

fn bench_scheduler_decision(c: &mut Criterion) {
    let profile = DeviceProfile::lighttrader();
    let table = DvfsTable::evaluation();
    c.bench_function("sched/algorithm1_decision", |b| {
        b.iter(|| {
            schedule_workload(
                &profile,
                ModelKind::TransLob,
                8,
                Duration::from_micros(620),
                PowerCondition::Sufficient.accelerator_budget_w(),
                &table,
            )
        })
    });
}

fn bench_session_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("feed/session_generation");
    group.sample_size(10);
    group.bench_function("one_second", |b| {
        b.iter(|| {
            SessionBuilder::calm_traffic()
                .duration_secs(1.0)
                .seed(5)
                .build()
        })
    });
    group.finish();
    // Normalization fit on a fixed trace.
    let session = SessionBuilder::calm_traffic()
        .duration_secs(1.0)
        .seed(6)
        .build();
    c.bench_function("feed/norm_fit", |b| {
        b.iter(|| NormStats::fit(&session.trace, 10))
    });
}

criterion_group!(
    components,
    bench_matching_engine,
    bench_codec,
    bench_offload_engine,
    bench_models,
    bench_cgra,
    bench_scheduler_decision,
    bench_session_generation
);
criterion_main!(components);
