//! Ablation benches for the design choices DESIGN.md calls out:
//! the custom C2C link vs an Interlaken-style baseline (Fig. 9's 2.4x),
//! batching (the Algorithm 1 lever), DVFS operating points, INT8 vs
//! BF16 precision, and the WS risk guard.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lighttrader::accel::c2c::{C2cLink, InterlakenLink};
use lighttrader::accel::{DeviceProfile, DvfsTable, OperatingPoint, PowerCondition};
use lighttrader::dnn::{ModelKind, Precision};
use lighttrader::sched::Policy;
use lighttrader::sim::traffic::{evaluation_trace, scheduling_deadline, EVALUATION_SEED};
use lighttrader::sim::{run_lighttrader, BacktestConfig};

/// The Fig. 9 link ablation: report both links' modeled transfer time for
/// a batch-16 input bundle (the bench times the model itself; the 2.4x
/// bandwidth ratio is asserted by unit tests and printed by `tables`).
fn bench_c2c_ablation(c: &mut Criterion) {
    let bytes = 16 * 100 * 40 * 2; // batch-16 BF16 input bundle
    let custom = C2cLink::lighttrader();
    let baseline = InterlakenLink::interlaken_150g();
    println!(
        "c2c ablation: custom {:?} vs interlaken {:?} for {bytes} bytes ({:.2}x bandwidth)",
        custom.transfer_time(bytes),
        baseline.transfer_time(bytes),
        custom.payload_bits_per_sec() / baseline.payload_bits_per_sec(),
    );
    let mut group = c.benchmark_group("c2c_ablation");
    group.bench_function("custom_link", |b| b.iter(|| custom.transfer_time(bytes)));
    group.bench_function("interlaken_150g", |b| {
        b.iter(|| baseline.transfer_time(bytes))
    });
    group.finish();
}

/// Batching ablation: per-query service time shrinks with batch size on
/// the calibrated latency model — the gain Algorithm 1 exploits.
fn bench_batching_ablation(c: &mut Criterion) {
    let profile = DeviceProfile::lighttrader();
    let point = OperatingPoint::at_freq(2.0);
    for batch in [1u32, 4, 16] {
        let t = profile.t_total(ModelKind::DeepLob, batch, point);
        println!(
            "batching ablation: DeepLOB batch {batch}: {:?} total, {:?} per query",
            t,
            t / batch
        );
    }
    let mut group = c.benchmark_group("batching_ablation");
    for batch in [1u32, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| profile.t_total(ModelKind::DeepLob, batch, point))
        });
    }
    group.finish();
}

/// Precision ablation: INT8's 4x throughput on the latency model.
fn bench_precision_ablation(c: &mut Criterion) {
    let bf16 = DeviceProfile::lighttrader();
    let int8 = DeviceProfile::lighttrader().with_precision(Precision::Int8);
    let point = OperatingPoint::at_freq(2.0);
    println!(
        "precision ablation: DeepLOB bf16 {:?} vs int8 {:?}",
        bf16.t_infer(ModelKind::DeepLob, 1, point),
        int8.t_infer(ModelKind::DeepLob, 1, point),
    );
    let mut group = c.benchmark_group("precision_ablation");
    group.bench_function("bf16", |b| {
        b.iter(|| bf16.t_infer(ModelKind::DeepLob, 1, point))
    });
    group.bench_function("int8", |b| {
        b.iter(|| int8.t_infer(ModelKind::DeepLob, 1, point))
    });
    group.finish();
}

/// DVFS ablation: the PPW landscape across the operating-point table.
fn bench_dvfs_ablation(c: &mut Criterion) {
    let profile = DeviceProfile::lighttrader();
    for p in DvfsTable::evaluation().points().iter().step_by(4) {
        println!(
            "dvfs ablation: TransLOB @ {p}: t={:?}, {:.2} W, ppw {:.0}",
            profile.t_infer(ModelKind::TransLob, 1, *p),
            profile.power_w(ModelKind::TransLob, 1, *p),
            profile.ppw(ModelKind::TransLob, 1, *p),
        );
    }
    c.bench_function("dvfs_ablation/ppw_table_scan", |b| {
        b.iter(|| {
            DvfsTable::evaluation()
                .points()
                .iter()
                .map(|p| profile.ppw(ModelKind::TransLob, 1, *p))
                .sum::<f64>()
        })
    });
}

/// Scheduling ablation on a real session: the full policy matrix at one
/// interesting configuration (the bench times the simulator; the
/// miss-rate matrix itself comes from `tables -- fig13`).
fn bench_policy_ablation(c: &mut Criterion) {
    let trace = evaluation_trace(2.0, EVALUATION_SEED);
    let mut group = c.benchmark_group("policy_ablation");
    group.sample_size(10);
    for policy in Policy::ALL {
        let cfg = BacktestConfig::new(ModelKind::TransLob, 4, PowerCondition::Limited)
            .with_policy(policy)
            .with_t_avail(scheduling_deadline());
        let miss = run_lighttrader(&trace, &cfg).miss_rate();
        println!(
            "policy ablation: TransLOB x4 limited, {}: {:.1}% miss",
            policy.label(),
            miss * 100.0
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.label()),
            &cfg,
            |b, cfg| b.iter(|| run_lighttrader(&trace, cfg)),
        );
    }
    group.finish();
}

criterion_group!(
    ablations,
    bench_c2c_ablation,
    bench_batching_ablation,
    bench_precision_ablation,
    bench_dvfs_ablation,
    bench_policy_ablation
);
criterion_main!(ablations);
