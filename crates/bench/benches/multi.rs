//! Multi-symbol sharded back-test benchmarks: session generation,
//! coalesced cross-symbol back-test, and the independent per-symbol
//! fleet it replaces.
//!
//! For the machine-readable scaling report (and the 1.5x aggregate
//! throughput floor at 8 symbols) see the `bench_multi` binary, which
//! emits `BENCH_multi.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use lighttrader::dnn::ModelKind;
use lighttrader::feed::{MultiMarketSession, MultiSessionBuilder};
use lighttrader::prelude::*;
use lighttrader::sim::traffic::scheduling_deadline_for;
use lighttrader::sim::{run_lighttrader, run_multi};
use std::hint::black_box;

const SECS: f64 = 0.25;
const SYMBOLS: usize = 4;
const SKEW: f64 = 2.5;

fn session() -> MultiMarketSession {
    MultiSessionBuilder::normal_traffic()
        .symbols(SYMBOLS)
        .skew(SKEW)
        .duration_secs(SECS)
        .seed(7)
        .build()
}

fn cfg(n_accels: usize) -> BacktestConfig {
    BacktestConfig::new(ModelKind::DeepLob, n_accels, PowerCondition::Sufficient)
        .with_policy(Policy::Both)
        .with_t_avail(scheduling_deadline_for(ModelKind::DeepLob))
}

fn bench_session_generation(c: &mut Criterion) {
    c.bench_function("multi/generate_4sym", |b| b.iter(|| black_box(session())));
}

fn bench_merge(c: &mut Criterion) {
    let s = session();
    c.bench_function("multi/merge_4sym", |b| b.iter(|| black_box(s.merged())));
}

fn bench_coalesced(c: &mut Criterion) {
    let s = session();
    let cfg = cfg(SYMBOLS).with_symbols(SYMBOLS, SKEW);
    c.bench_function("multi/coalesced_backtest_4sym", |b| {
        b.iter(|| black_box(run_multi(&s, &cfg)))
    });
}

fn bench_independent(c: &mut Criterion) {
    let s = session();
    let cfg = cfg(1);
    c.bench_function("multi/independent_backtests_4sym", |b| {
        b.iter(|| {
            let responded: u64 = s
                .sessions
                .iter()
                .map(|sym| run_lighttrader(&sym.trace, &cfg).responded)
                .sum();
            black_box(responded)
        })
    });
}

criterion_group!(
    benches,
    bench_session_generation,
    bench_merge,
    bench_coalesced,
    bench_independent
);
criterion_main!(benches);
