//! Rendering helpers shared by the `tables` binary and the Criterion
//! benches: each function formats one paper artifact (table or figure)
//! as paper-vs-measured text.

use lighttrader::accel::PowerCondition;
use lighttrader::dnn::ModelKind;
use lighttrader::experiments::{self, Fig11, Fig13};
use lighttrader::report::{ingress_table, percent, ratio, stage_latency_table, TextTable};
use lighttrader::sched::Policy;
use lighttrader::sim::farm::{FarmRunner, GridDeadline, SweepGrid};
use lighttrader::sim::traffic::{scheduling_deadline_for, shared_trace_cache};
use lighttrader::sim::{run_lighttrader, BacktestConfig, FaultRates, IngressFaults};

/// Renders Table I (accelerator specification).
pub fn render_table1() -> String {
    let spec = experiments::table1();
    let mut t = TextTable::new(vec!["field", "value", "paper (Table I)"]);
    t.push_row(vec!["process".into(), spec.process.into(), "7 nm".into()]);
    t.push_row(vec![
        "package".into(),
        format!("{:.1} mm x {:.1} mm", spec.package_mm, spec.package_mm),
        "8.7 mm x 8.7 mm".into(),
    ]);
    t.push_row(vec![
        "voltage".into(),
        format!("{:.2}-{:.2} V", spec.voltage_range.0, spec.voltage_range.1),
        "0.68-1.16 V".into(),
    ]);
    t.push_row(vec![
        "frequency".into(),
        format!("up to {:.1} GHz", spec.freq_range_ghz.1),
        "up to 2.2 GHz".into(),
    ]);
    t.push_row(vec![
        "power".into(),
        format!("up to {:.1} W", spec.max_power_w),
        "up to 10.8 W".into(),
    ]);
    t.push_row(vec![
        "peak BF16 / INT8".into(),
        format!(
            "{:.0} TFLOPS / {:.0} TOPS",
            spec.peak_tflops_bf16, spec.peak_tops_int8
        ),
        "16 TFLOPS / 64 TOPS".into(),
    ]);
    format!(
        "== Table I: single AI accelerator specification ==\n{}",
        t.render()
    )
}

/// Renders Table II (model op counts).
pub fn render_table2() -> String {
    let mut t = TextTable::new(vec![
        "model",
        "network",
        "computed OPs",
        "paper OPs",
        "error",
    ]);
    for row in experiments::table2() {
        let err = (row.computed_ops as f64 - row.paper_ops as f64).abs() / row.paper_ops as f64;
        t.push_row(vec![
            row.kind.name().into(),
            row.kind.network_family().into(),
            format!("{:.1}G", row.computed_ops as f64 / 1e9),
            format!("{:.1}G", row.paper_ops as f64 / 1e9),
            format!("{:.3}%", err * 100.0),
        ]);
    }
    format!(
        "== Table II: HFT DNN models (analytic op counter) ==\n{}",
        t.render()
    )
}

/// Renders Table III (static clock & power configuration).
pub fn render_table3() -> String {
    let mut t = TextTable::new(vec![
        "condition",
        "#accels",
        "available (W)",
        "CNN (GHz)",
        "TransLOB (GHz)",
        "DeepLOB (GHz)",
    ]);
    for row in experiments::table3() {
        t.push_row(vec![
            format!("{}", row.condition),
            row.n_accels.to_string(),
            format!("{:.1}", row.available_w),
            format!("{:.1}", row.freq_ghz[0]),
            format!("{:.1}", row.freq_ghz[1]),
            format!("{:.1}", row.freq_ghz[2]),
        ]);
    }
    format!(
        "== Table III: clock frequency & available power (paper grid reproduced) ==\n{}",
        t.render()
    )
}

/// Renders Fig. 8 (response rate vs model complexity).
pub fn render_fig8(secs: f64, seed: u64) -> String {
    let mut t = TextTable::new(vec!["model", "latency (us)", "response rate"]);
    for row in experiments::fig8(secs, seed) {
        t.push_row(vec![
            row.label.into(),
            format!("{:.0}", row.latency_us),
            percent(row.response_rate),
        ]);
    }
    format!(
        "== Fig. 8: response rate vs model complexity (M1 simplest .. M5) ==\n{}",
        t.render()
    )
}

/// Renders Fig. 11 (non-batching performance) plus headline ratios.
pub fn render_fig11(secs: f64, seed: u64) -> String {
    let f: Fig11 = experiments::fig11(secs, seed);
    let mut t = TextTable::new(vec![
        "system",
        "model",
        "latency (us)",
        "response",
        "paper resp.",
        "TFLOPS/W",
    ]);
    let paper_resp = |system: &str, kind: ModelKind| -> String {
        let v = match (system, kind) {
            ("LightTrader", ModelKind::VanillaCnn) => 0.942,
            ("LightTrader", ModelKind::TransLob) => 0.919,
            ("LightTrader", ModelKind::DeepLob) => 0.871,
            _ => return "-".into(),
        };
        percent(v)
    };
    for row in &f.rows {
        t.push_row(vec![
            row.system.into(),
            row.kind.name().into(),
            format!("{:.0}", row.latency_us),
            percent(row.response_rate),
            paper_resp(row.system, row.kind),
            format!("{:.4}", row.tflops_per_watt),
        ]);
    }
    format!(
        "== Fig. 11: non-batching performance ==\n{}\n\
         speed-up vs GPU:  {} (paper 13.92x)\n\
         speed-up vs FPGA: {} (paper 7.28x)\n\
         TFLOPS/W vs GPU:  {} (paper 23.6x)\n\
         TFLOPS/W vs FPGA: {} (paper 11.6x)\n",
        t.render(),
        ratio(f.speedup_vs_gpu),
        ratio(f.speedup_vs_fpga),
        ratio(f.efficiency_vs_gpu),
        ratio(f.efficiency_vs_fpga),
    )
}

/// Renders Fig. 12 (response rate vs accelerator count).
pub fn render_fig12(secs: f64, seed: u64) -> String {
    let rows = experiments::fig12(secs, seed);
    let mut t = TextTable::new(vec!["condition", "model", "x1", "x2", "x4", "x8", "x16"]);
    for condition in [PowerCondition::Sufficient, PowerCondition::Limited] {
        for kind in ModelKind::ALL {
            let mut cells = vec![format!("{condition}"), kind.name().into()];
            for n in [1usize, 2, 4, 8, 16] {
                let r = rows
                    .iter()
                    .find(|r| r.condition == condition && r.kind == kind && r.n_accels == n)
                    .expect("cell");
                cells.push(percent(r.response_rate));
            }
            t.push_row(cells);
        }
    }
    format!(
        "== Fig. 12: response rate vs #accelerators (paper: suff. x8 = 99.5/98.7/95.9%) ==\n{}",
        t.render()
    )
}

/// Renders the tight-window Fig. 12 variant (the x16 decline regime).
pub fn render_fig12_tight(secs: f64, seed: u64) -> String {
    let rows = experiments::fig12_tight(secs, seed);
    let mut t = TextTable::new(vec!["condition", "model", "x1", "x2", "x4", "x8", "x16"]);
    for condition in [PowerCondition::Sufficient, PowerCondition::Limited] {
        for kind in ModelKind::ALL {
            let mut cells = vec![format!("{condition}"), kind.name().into()];
            for n in [1usize, 2, 4, 8, 16] {
                let r = rows
                    .iter()
                    .find(|r| r.condition == condition && r.kind == kind && r.n_accels == n)
                    .expect("cell");
                cells.push(percent(r.response_rate));
            }
            t.push_row(cells);
        }
    }
    format!(
        "== Fig. 12 (tight window, 1.5x service): the paper's x16 saturation/decline ==\n{}",
        t.render()
    )
}

/// Renders the per-stage tick-to-trade telemetry (p50/p99/p99.9 per
/// pipeline stage for each system), plus the per-run JSON lines.
pub fn render_stage_latency(secs: f64, seed: u64) -> String {
    let rows = experiments::stage_latency(secs, seed);
    let mut out = String::from("== Per-stage tick-to-trade telemetry (p50/p99/p99.9) ==\n");
    for row in &rows {
        out.push_str(&format!(
            "-- {} / {} --\n{}",
            row.run,
            row.kind.name(),
            stage_latency_table(&row.stages).render()
        ));
    }
    out.push_str("\nper-run JSON:\n");
    for row in &rows {
        out.push_str(&row.to_json());
        out.push('\n');
    }
    out
}

/// Renders Fig. 13 (miss rate under the four scheduling policies).
pub fn render_fig13(secs: f64, seed: u64) -> String {
    let f: Fig13 = experiments::fig13(secs, seed);
    let mut out = String::from("== Fig. 13: miss rate by scheduling policy ==\n");
    for condition in [PowerCondition::Sufficient, PowerCondition::Limited] {
        for kind in ModelKind::ALL {
            let mut t = TextTable::new(vec!["policy", "x1", "x2", "x4", "x8", "x16"]);
            for policy in Policy::ALL {
                let mut cells = vec![policy.label().to_string()];
                for n in [1usize, 2, 4, 8, 16] {
                    let r = f
                        .rows
                        .iter()
                        .find(|r| {
                            r.condition == condition
                                && r.kind == kind
                                && r.n_accels == n
                                && r.policy == policy
                        })
                        .expect("cell");
                    cells.push(percent(r.miss_rate));
                }
                t.push_row(cells);
            }
            out.push_str(&format!("-- {kind}, {condition} --\n{}", t.render()));
        }
    }
    let fmt3 = |v: [f64; 3]| format!("{} / {} / {}", percent(v[0]), percent(v[1]), percent(v[2]));
    out.push_str(&format!(
        "\nWS reduction @ small N (CNN/TransLOB/DeepLOB): {} (paper 21.4/18.4/17.6%)\n\
         DS reduction @ large N:                        {} (paper 19.6/23.1/17.1%)\n\
         WS+DS reduction @ all N:                       {} (paper 25.1/23.7/20.7%)\n",
        fmt3(f.ws_small_n_reduction),
        fmt3(f.ds_large_n_reduction),
        fmt3(f.both_all_n_reduction),
    ));
    out
}

/// Renders the ingress fault sweep: loss rate vs recovery accounting,
/// response rate, and tick-to-trade degradation, plus the full ingress
/// ledger of one exemplar degraded run.
pub fn render_faults(secs: f64, seed: u64) -> String {
    let rows = experiments::fault_sweep(secs, seed);
    let mut t = TextTable::new(vec![
        "loss/feed",
        "offered",
        "recovered",
        "lost",
        "response",
        "mean t2t (us)",
        "p99 t2t (us)",
    ]);
    for r in &rows {
        t.push_row(vec![
            percent(r.loss_rate),
            r.offered.to_string(),
            r.recovered.to_string(),
            r.lost.to_string(),
            percent(r.response_rate),
            format!("{:.2}", r.mean_t2t_us),
            format!("{:.2}", r.p99_t2t_us),
        ]);
    }
    let mut out = format!(
        "== Fault sweep: symmetric A/B packet loss vs back-test degradation ==\n{}",
        t.render()
    );
    // One exemplar ledger at the heaviest sweep point, for the per-feed
    // view the summary rows aggregate away.
    let heaviest = rows.last().map(|r| r.loss_rate).unwrap_or(0.1);
    let trace = lighttrader::sim::traffic::evaluation_trace(secs, seed);
    let cfg = BacktestConfig::new(ModelKind::DeepLob, 4, PowerCondition::Limited)
        .with_t_avail(scheduling_deadline_for(ModelKind::DeepLob))
        .with_faults(IngressFaults::symmetric(
            FaultRates {
                drop: heaviest,
                reorder: heaviest,
                reorder_delay_ns: 5_000,
                ..FaultRates::lossless()
            },
            seed,
        ));
    let m = run_lighttrader(&trace, &cfg);
    if let Some(report) = m.ingress {
        out.push_str(&format!(
            "\n-- ingress ledger at {} loss/feed --\n{}",
            percent(heaviest),
            ingress_table(&report).render()
        ));
    }
    out
}

/// The demonstration grid behind `tables -- grid`: a compact slice of
/// the paper's full evaluation surface (2 models × {1, 4} accelerators
/// × 2 power conditions × baseline-vs-full scheduling × 2 seeds) that
/// shares its sessions through the process-wide trace cache.
fn demo_grid(secs: f64, seed: u64) -> SweepGrid {
    SweepGrid::evaluation(secs)
        .models([ModelKind::VanillaCnn, ModelKind::DeepLob])
        .accel_counts([1, 4])
        .conditions([PowerCondition::Sufficient, PowerCondition::Limited])
        .policies([Policy::Baseline, Policy::Both])
        .deadline(GridDeadline::Scheduling)
        .seeds([seed, seed.wrapping_add(1)])
}

/// Runs the demonstration grid on the back-test farm and renders the
/// per-cell summary table plus the deterministic grid JSON (the
/// machine-readable artifact `tables -- grid` writes to disk).
pub fn render_grid(secs: f64, seed: u64) -> (String, String) {
    let grid = demo_grid(secs, seed);
    let results = FarmRunner::new().cache(shared_trace_cache()).run(&grid);
    let mut t = TextTable::new(vec![
        "cell",
        "response",
        "miss",
        "p99 t2t (us)",
        "energy (J)",
        "mean batch",
    ]);
    for (i, cell) in results.cells().iter().enumerate() {
        let s = results.summary(i);
        t.push_row(vec![
            cell.id.clone(),
            percent(s.response_rate()),
            percent(s.miss_rate()),
            format!("{:.1}", s.p99_ns as f64 / 1_000.0),
            format!("{:.3}", s.energy_j),
            format!("{:.2}", s.mean_batch()),
        ]);
    }
    let table = format!(
        "== Back-test farm grid: {} cells over {} shared sessions ==\n{}",
        results.len(),
        grid.n_sessions(),
        t.render()
    );
    (table, results.to_grid_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_tables_render() {
        let t1 = render_table1();
        assert!(t1.contains("7 nm") && t1.contains("10.8"));
        let t2 = render_table2();
        assert!(t2.contains("93.0G") && t2.contains("DeepLOB"));
        let t3 = render_table3();
        assert!(t3.contains("sufficient") && t3.contains("1.6"));
    }

    #[test]
    fn figure_renderers_run_on_short_sessions() {
        let f8 = render_fig8(2.0, 1);
        assert!(f8.contains("M5"));
        let f11 = render_fig11(2.0, 1);
        assert!(f11.contains("13.92x"));
    }

    #[test]
    fn grid_artifact_renders_table_and_json() {
        let (table, json) = render_grid(2.0, 3);
        assert!(table.contains("32 cells over 2 shared sessions"), "{table}");
        assert!(table.contains("m=deeplob"), "{table}");
        assert!(json.contains("\"n_cells\": 32"), "{json}");
        // Long enough to clear the feature window: cells carry real data.
        assert!(json.contains("\"responded\""), "{json}");
        assert!(
            !table.contains("p=baseline.f=0.s=1x0.seed=3      0.0%"),
            "{table}"
        );
        // Deterministic artifact: a rerun is byte-identical.
        let (_, again) = render_grid(2.0, 3);
        assert_eq!(json, again);
    }

    #[test]
    fn fault_sweep_renders_sweep_and_ledger() {
        let out = render_faults(2.0, 1);
        assert!(out.contains("Fault sweep"));
        assert!(out.contains("10.0%"), "heaviest sweep point present");
        assert!(out.contains("ingress ledger"));
        assert!(out.contains("lost on both"));
    }
}
