//! Kernel-regression benchmark: times every naive `forward_reference`
//! against its fast `forward_scratch` counterpart and emits a
//! machine-readable `BENCH_kernels.json` in the current directory.
//!
//! ```text
//! cargo run --release -p lt-bench --bin bench_kernels
//! ```
//!
//! Exits nonzero if the DeepLOB full-forward speedup falls below the
//! 5x regression floor, so CI catches fast-path regressions.

use std::time::Instant;

use lighttrader::dnn::kernels::{
    gemm_bt_bias_rows_bf16, gemm_packed_bt_bias_rows_bf16, pack_bt_panels,
};
use lighttrader::dnn::models::{CnnSpec, DeepLobSpec, QuantizedCnn, TransLobSpec};
use lighttrader::dnn::ops::{Conv2d, Linear, LinearInt8, Lstm, MultiHeadAttention};
use lighttrader::dnn::{Model, ScratchPad, Tensor};

/// Minimum acceptable DeepLOB full-forward speedup (fast vs naive).
const DEEPLOB_SPEEDUP_FLOOR: f64 = 5.0;
/// Target wall time per measurement, nanoseconds.
const TARGET_NS: u128 = 100_000_000;

/// Times `f` adaptively: calibrates an iteration count that fills
/// roughly [`TARGET_NS`], runs three repetitions, and returns the best
/// (least-noisy) per-iteration nanoseconds.
fn time_ns<F: FnMut()>(mut f: F) -> f64 {
    // Warm-up + calibration.
    let start = Instant::now();
    let mut calib = 0u32;
    while start.elapsed().as_nanos() < TARGET_NS / 10 {
        f();
        calib += 1;
    }
    let iters = calib.max(1);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
        best = best.min(per_iter);
    }
    best
}

struct Row {
    name: &'static str,
    naive_ns: f64,
    fast_ns: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.naive_ns / self.fast_ns
    }

    fn json(&self) -> String {
        format!(
            "    {{\"name\": \"{}\", \"naive_ns\": {:.1}, \"fast_ns\": {:.1}, \"speedup\": {:.2}}}",
            self.name,
            self.naive_ns,
            self.fast_ns,
            self.speedup()
        )
    }
}

fn measure(name: &'static str, mut naive: impl FnMut(), mut fast: impl FnMut()) -> Row {
    let naive_ns = time_ns(&mut naive);
    let fast_ns = time_ns(&mut fast);
    let row = Row {
        name,
        naive_ns,
        fast_ns,
    };
    println!(
        "{:<16} naive {:>12.0} ns   fast {:>12.0} ns   speedup {:>6.2}x",
        name,
        naive_ns,
        fast_ns,
        row.speedup()
    );
    row
}

fn main() {
    let mut kernels = Vec::new();

    let conv = Conv2d::new(16, 16, (4, 1), (1, 1), (0, 0), 1);
    let xc = Tensor::random(&[16, 64, 10], 1.0, 2);
    let mut pad = ScratchPad::new();
    kernels.push(measure(
        "conv2d",
        || {
            let _ = conv.forward_reference(&xc);
        },
        || {
            let out = conv.forward_scratch(&xc, &mut pad);
            pad.give_tensor(out);
        },
    ));

    let linear = Linear::new(256, 128, 1);
    let xl = Tensor::random(&[256], 1.0, 2);
    let mut pad = ScratchPad::new();
    kernels.push(measure(
        "linear",
        || {
            let _ = linear.forward_reference(&xl);
        },
        || {
            let out = linear.forward_scratch(&xl, &mut pad);
            pad.give_tensor(out);
        },
    ));

    let linear_q = LinearInt8::from_linear(&linear);
    let mut pad = ScratchPad::new();
    kernels.push(measure(
        "linear_int8",
        || {
            let _ = linear_q.forward_reference(&xl);
        },
        || {
            let out = linear_q.forward_scratch(&xl, &mut pad);
            pad.give_tensor(out);
        },
    ));

    let lstm = Lstm::new(48, 64, 1);
    let xs = Tensor::random(&[16, 48], 1.0, 2);
    let mut pad = ScratchPad::new();
    kernels.push(measure(
        "lstm",
        || {
            let _ = lstm.forward_reference(&xs);
        },
        || {
            let out = lstm.forward_scratch(&xs, &mut pad);
            pad.give_tensor(out);
        },
    ));

    let mha = MultiHeadAttention::new(64, 4, 1);
    let xa = Tensor::random(&[32, 64], 1.0, 2);
    let mut pad = ScratchPad::new();
    kernels.push(measure(
        "attention",
        || {
            let _ = mha.forward_reference(&xa);
        },
        || {
            let out = mha.forward_scratch(&xa, &mut pad);
            pad.give_tensor(out);
        },
    ));

    // Batch sweep: the packed-panel GEMM against the row-major GEMM on
    // a batch-stacked output (DeepLOB trunk geometry: 16 output
    // channels over k=64, 24 positions per sample, n = batch x 24).
    for (name, batch) in [
        ("gemm_packed_b1", 1usize),
        ("gemm_packed_b4", 4),
        ("gemm_packed_b16", 16),
    ] {
        let (m, k, positions) = (16usize, 64usize, 24usize);
        let n = batch * positions;
        let a = Tensor::random(&[m, k], 1.0, 7);
        let b = Tensor::random(&[n, k], 1.0, 8);
        let bias = vec![0.1f32; m];
        let mut packed = Vec::new();
        pack_bt_panels(a.data(), m, k, &mut packed);
        let mut out_naive = vec![0.0f32; m * n];
        let mut out_fast = vec![0.0f32; m * n];
        kernels.push(measure(
            name,
            || gemm_bt_bias_rows_bf16(a.data(), b.data(), &bias, m, n, k, &mut out_naive),
            || gemm_packed_bt_bias_rows_bf16(&packed, b.data(), &bias, m, n, k, &mut out_fast),
        ));
    }

    let mut models = Vec::new();
    let vanilla = CnnSpec::tiny().build(3);
    let quant = QuantizedCnn::from_float(&vanilla);
    let deeplob = DeepLobSpec::tiny().build(3);
    let translob = TransLobSpec::tiny().build(3);
    let x20 = Tensor::random(&[20, 40], 1.0, 5);
    let x24 = Tensor::random(&[24, 40], 1.0, 5);
    let x16 = Tensor::random(&[16, 40], 1.0, 5);

    let mut pad = ScratchPad::new();
    models.push(measure(
        "vanilla_cnn",
        || {
            let _ = vanilla.forward_reference(&x20);
        },
        || {
            let _ = vanilla.forward_scratch(&x20, &mut pad);
        },
    ));
    let mut pad = ScratchPad::new();
    models.push(measure(
        "quantized_cnn",
        || {
            let _ = quant.forward_reference(&x20);
        },
        || {
            let _ = quant.forward_scratch(&x20, &mut pad);
        },
    ));
    let mut pad = ScratchPad::new();
    models.push(measure(
        "deeplob",
        || {
            let _ = deeplob.forward_reference(&x24);
        },
        || {
            let _ = deeplob.forward_scratch(&x24, &mut pad);
        },
    ));
    let mut pad = ScratchPad::new();
    models.push(measure(
        "translob",
        || {
            let _ = translob.forward_reference(&x16);
        },
        || {
            let _ = translob.forward_scratch(&x16, &mut pad);
        },
    ));

    let deeplob_speedup = models
        .iter()
        .find(|r| r.name == "deeplob")
        .map(|r| r.speedup())
        .unwrap_or(0.0);

    let kernel_rows: Vec<String> = kernels.iter().map(Row::json).collect();
    let model_rows: Vec<String> = models.iter().map(Row::json).collect();
    let json = format!
        ("{{\n  \"kernels\": [\n{}\n  ],\n  \"models\": [\n{}\n  ],\n  \"deeplob_speedup\": {:.2},\n  \"deeplob_speedup_floor\": {:.1}\n}}\n",
        kernel_rows.join(",\n"),
        model_rows.join(",\n"),
        deeplob_speedup,
        DEEPLOB_SPEEDUP_FLOOR,
    );
    std::fs::write("BENCH_kernels.json", &json).expect("write BENCH_kernels.json");
    println!("\nwrote BENCH_kernels.json");

    if deeplob_speedup < DEEPLOB_SPEEDUP_FLOOR {
        eprintln!(
            "REGRESSION: DeepLOB speedup {deeplob_speedup:.2}x below the \
             {DEEPLOB_SPEEDUP_FLOOR:.1}x floor"
        );
        std::process::exit(1);
    }
}
