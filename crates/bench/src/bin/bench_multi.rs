//! Multi-symbol scaling benchmark: cross-symbol batched offload vs
//! independent per-symbol pipelines, on the same accelerator fleet.
//!
//! ```text
//! cargo run --release -p lt-bench --bin bench_multi [-- --secs N]
//! ```
//!
//! For each symbol count N in {1, 2, 4, 8} the harness generates one
//! correlated multi-instrument session (Zipf skew concentrates traffic
//! on the leading symbol) and back-tests it two ways with an N-chip
//! accelerator fleet:
//!
//! * **coalesced** — ONE sharded LightTrader: every symbol's feature
//!   rows feed a single tensor queue, the workload scheduler batches
//!   across symbols, and the whole fleet absorbs any symbol's burst;
//! * **independent** — N single-symbol LightTraders, each statically
//!   pinned to 1/N-th of the fleet (one chip each), replaying its own
//!   symbol's trace in isolation.
//!
//! Throughput is *simulated* and therefore deterministic: in-time
//! responses per simulated second, summed over symbols. The skewed load
//! overwhelms the hot symbol's private chip while the tail's chips sit
//! idle — exactly the fragmentation cross-symbol coalescing removes —
//! so at 8 symbols the coalesced pipeline must beat the independent
//! fleet by at least [`AGGREGATE_FLOOR`]. Emits `BENCH_multi.json` and
//! exits nonzero when the floor is violated.

use lighttrader::dnn::ModelKind;
use lighttrader::feed::MultiSessionBuilder;
use lighttrader::prelude::*;
use lighttrader::sim::traffic::scheduling_deadline_for;
use lighttrader::sim::{run_lighttrader, run_multi};

/// Minimum acceptable coalesced/independent aggregate-throughput ratio
/// at the largest symbol count.
const AGGREGATE_FLOOR: f64 = 1.5;
/// Symbol counts swept (the fleet always has one chip per symbol).
const SYMBOL_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Zipf skew: the hot symbol carries ~6x its even share at 8 symbols.
const SKEW: f64 = 2.5;
/// Session seed (the determinism suite pins the same constant).
const SEED: u64 = 4242;
/// Default simulated session length in seconds.
const DEFAULT_SECS: f64 = 2.0;

/// One point of the scaling curve.
struct Point {
    symbols: usize,
    coalesced_per_sec: f64,
    independent_per_sec: f64,
    ratio: f64,
    coalesced_mean_batch: f64,
}

fn cfg(kind: ModelKind, n_accels: usize) -> BacktestConfig {
    BacktestConfig::new(kind, n_accels, PowerCondition::Sufficient)
        .with_policy(Policy::Both)
        .with_t_avail(scheduling_deadline_for(kind))
}

fn measure(symbols: usize, secs: f64) -> Point {
    let session = MultiSessionBuilder::normal_traffic()
        .symbols(symbols)
        .skew(SKEW)
        .duration_secs(secs)
        .seed(SEED)
        .build();
    let duration = secs;

    // Coalesced: one sharded system, the full fleet behind one queue.
    let coalesced = run_multi(
        &session,
        &cfg(ModelKind::DeepLob, symbols).with_symbols(symbols, SKEW),
    );
    let coalesced_per_sec = coalesced.aggregate.responded as f64 / duration;

    // Independent: one chip per symbol, each replaying its own trace.
    let independent_responded: u64 = session
        .sessions
        .iter()
        .map(|s| run_lighttrader(&s.trace, &cfg(ModelKind::DeepLob, 1)).responded)
        .sum();
    let independent_per_sec = independent_responded as f64 / duration;

    Point {
        symbols,
        coalesced_per_sec,
        independent_per_sec,
        ratio: coalesced_per_sec / independent_per_sec,
        coalesced_mean_batch: coalesced.aggregate.mean_batch(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut secs = DEFAULT_SECS;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--secs" {
            secs = it
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--secs needs a number");
        }
    }

    println!(
        "{:>8} {:>16} {:>16} {:>8} {:>12}",
        "symbols", "coalesced/s", "independent/s", "ratio", "mean batch"
    );
    let curve: Vec<Point> = SYMBOL_COUNTS.iter().map(|&n| measure(n, secs)).collect();
    for p in &curve {
        println!(
            "{:>8} {:>16.0} {:>16.0} {:>7.2}x {:>12.2}",
            p.symbols, p.coalesced_per_sec, p.independent_per_sec, p.ratio, p.coalesced_mean_batch
        );
    }

    let last = curve.last().expect("non-empty sweep");
    let rows: Vec<String> = curve
        .iter()
        .map(|p| {
            format!(
                "    {{\"symbols\": {}, \"coalesced_per_sec\": {:.0}, \
                 \"independent_per_sec\": {:.0}, \"ratio\": {:.3}, \
                 \"coalesced_mean_batch\": {:.3}}}",
                p.symbols,
                p.coalesced_per_sec,
                p.independent_per_sec,
                p.ratio,
                p.coalesced_mean_batch
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"curve\": [\n{}\n  ],\n  \"skew\": {SKEW},\n  \"secs\": {secs},\n  \
         \"ratio_at_max_symbols\": {:.3},\n  \"ratio_floor\": {AGGREGATE_FLOOR}\n}}\n",
        rows.join(",\n"),
        last.ratio,
    );
    std::fs::write("BENCH_multi.json", &json).expect("write BENCH_multi.json");
    println!("\nwrote BENCH_multi.json");

    if last.ratio < AGGREGATE_FLOOR {
        eprintln!(
            "REGRESSION: coalesced/independent aggregate throughput {:.2}x at \
             {} symbols is below the {AGGREGATE_FLOOR:.1}x floor",
            last.ratio, last.symbols
        );
        std::process::exit(1);
    }
}
