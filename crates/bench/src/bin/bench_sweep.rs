//! Back-test farm throughput benchmark: shared-trace grid runs vs the
//! naive per-cell session rebuild they replace.
//!
//! ```text
//! cargo run --release -p lt-bench --bin bench_sweep [-- --secs N]
//! ```
//!
//! The workload is the paper's evaluation grid shape: 3 models × 3
//! accelerator counts × 2 power conditions × 4 policies × 3 seeds =
//! 216 cells backed by only 3 distinct sessions. Both sides run on the
//! SAME work-stealing worker pool with the SAME engine; the only
//! difference is session handling:
//!
//! * **farm** — each distinct session is built exactly once through the
//!   `TraceCache` and every cell replays a shared immutable `Arc`;
//! * **naive** — every cell regenerates its session from the spec, the
//!   way the pre-farm experiment helpers did.
//!
//! Both sides must produce byte-identical grid JSON (asserted), so the
//! speedup is pure redundant-work elimination. Emits `BENCH_sweep.json`
//! with a cells/sec number and exits nonzero when the farm-vs-naive
//! speedup falls below [`SPEEDUP_FLOOR`].

use lighttrader::dnn::ModelKind;
use lighttrader::prelude::*;
use lighttrader::sim::farm::GridDeadline;
use std::time::Instant;

/// Minimum acceptable farm-vs-naive wall-clock speedup.
const SPEEDUP_FLOOR: f64 = 2.0;
/// Default simulated session length in seconds.
const DEFAULT_SECS: f64 = 2.0;
/// Session seeds (3 distinct sessions behind 216 cells).
const SEEDS: [u64; 3] = [11, 12, 13];

fn grid(secs: f64) -> SweepGrid {
    SweepGrid::evaluation(secs)
        .models(ModelKind::ALL)
        .accel_counts([1, 2, 4])
        .conditions([PowerCondition::Sufficient, PowerCondition::Limited])
        .policies(Policy::ALL)
        .deadline(GridDeadline::Scheduling)
        .seeds(SEEDS)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut secs = DEFAULT_SECS;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--secs" {
            secs = it
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--secs needs a number");
        }
    }

    let grid = grid(secs);
    let n_cells = grid.n_cells();
    let n_sessions = grid.n_sessions();
    assert!(
        n_cells >= 200,
        "speedup floor is defined on a >=200-cell grid"
    );

    // Naive first so the farm cannot inherit a warmed allocator.
    let start = Instant::now();
    let naive = FarmRunner::new().without_trace_reuse().run(&grid);
    let naive_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let farm = FarmRunner::new().run(&grid);
    let farm_secs = start.elapsed().as_secs_f64();

    // The comparison is only meaningful if both sides computed the same
    // thing, bit for bit.
    assert_eq!(
        farm.to_grid_json(),
        naive.to_grid_json(),
        "farm and naive runs diverged"
    );

    let cells_per_sec = n_cells as f64 / farm_secs;
    let naive_cells_per_sec = n_cells as f64 / naive_secs;
    let speedup = naive_secs / farm_secs;
    let floor_met = speedup >= SPEEDUP_FLOOR;

    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>10}",
        "cells", "sessions", "wall (s)", "cells/sec", "speedup"
    );
    println!(
        "{:>10} {:>10} {:>12.3} {:>12.1} {:>9}x  (naive rebuild)",
        n_cells, n_cells, naive_secs, naive_cells_per_sec, "1.00"
    );
    println!(
        "{:>10} {:>10} {:>12.3} {:>12.1} {:>9.2}x  (farm, shared traces)",
        n_cells, n_sessions, farm_secs, cells_per_sec, speedup
    );

    let json = format!(
        "{{\n  \"n_cells\": {n_cells},\n  \"n_sessions\": {n_sessions},\n  \
         \"session_secs\": {secs},\n  \"farm_wall_secs\": {farm_secs:.4},\n  \
         \"naive_wall_secs\": {naive_secs:.4},\n  \"cells_per_sec\": {cells_per_sec:.2},\n  \
         \"naive_cells_per_sec\": {naive_cells_per_sec:.2},\n  \"speedup\": {speedup:.3},\n  \
         \"speedup_floor\": {SPEEDUP_FLOOR},\n  \"floor_met\": {floor_met}\n}}\n"
    );
    std::fs::write("BENCH_sweep.json", &json).expect("write BENCH_sweep.json");
    println!("\nwrote BENCH_sweep.json");

    if !floor_met {
        eprintln!(
            "REGRESSION: farm speedup {speedup:.2}x over naive per-cell rebuild is \
             below the {SPEEDUP_FLOOR:.1}x floor on a {n_cells}-cell grid"
        );
        std::process::exit(1);
    }
}
