//! Deadline-sweep benchmark: the deadline-aware tier scheduler vs every
//! fixed-model policy under a burst-storm workload.
//!
//! ```text
//! cargo run --release -p lt-bench --bin bench_deadline [-- --secs N]
//! ```
//!
//! The workload is [`burst_storm_trace`]: flash cascades an order of
//! magnitude denser than the calibrated evaluation traffic. Every system
//! prefers DeepLOB and gets the same aggressive 450 µs per-tick budget
//! to score against; the four fixed policies must serve DeepLOB for
//! every query, while `DeadlineTiered` (on the Both machinery, with the
//! full CNN → TransLOB → DeepLOB degradation ladder) may degrade to a
//! cheaper tier — or shed a doomed query — whenever the predicted cost
//! blows the remaining budget.
//!
//! Emits `BENCH_deadline.json` and exits nonzero unless the tiered
//! scheduler's deadline-hit-rate beats the best fixed policy by at least
//! [`HIT_RATE_FLOOR`]x.

use lighttrader::prelude::*;
use lighttrader::sim::traffic::{burst_storm_trace, scheduling_deadline_for};
use std::time::Duration;

/// Minimum tiered-over-best-fixed deadline-hit-rate ratio.
const HIT_RATE_FLOOR: f64 = 1.2;
/// Default simulated session length in seconds.
const DEFAULT_SECS: f64 = 4.0;
/// Storm seed (distinct from the calibrated evaluation seed; the storm
/// is a stress profile, not a figure reproduction).
const STORM_SEED: u64 = 7_0823;
/// The aggressive per-tick budget every policy is scored against.
const BUDGET: Duration = Duration::from_micros(450);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut secs = DEFAULT_SECS;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--secs" {
            secs = it
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--secs needs a number");
        }
    }

    let kind = ModelKind::DeepLob;
    let t_avail = scheduling_deadline_for(kind);
    let trace = burst_storm_trace(secs, STORM_SEED);
    let base = BacktestConfig::new(kind, 2, PowerCondition::Limited).with_t_avail(t_avail);

    println!(
        "{:>10} {:>10} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "policy", "hit-rate", "resp", "late", "dropped", "degraded", "hits"
    );

    let mut rows: Vec<String> = Vec::new();
    let mut best_fixed: f64 = 0.0;
    for policy in Policy::ALL {
        let m = run_lighttrader(&trace, &base.with_policy(policy));
        let rate = m.deadline_hit_rate(BUDGET);
        best_fixed = best_fixed.max(rate);
        print_row(policy.label(), &m, rate);
        rows.push(row_json(policy.label(), &m, rate));
    }

    let tiered_cfg = base.with_deadline_tiered(Some(BUDGET));
    let tiered = run_lighttrader(&trace, &tiered_cfg);
    let tiered_rate = tiered.deadline_hit_rate(BUDGET);
    print_row("tiered", &tiered, tiered_rate);
    rows.push(row_json("tiered", &tiered, tiered_rate));

    let ratio = if best_fixed > 0.0 {
        tiered_rate / best_fixed
    } else if tiered_rate > 0.0 {
        f64::INFINITY
    } else {
        0.0
    };
    let floor_met = ratio >= HIT_RATE_FLOOR;

    println!(
        "\ntiered {tiered_rate:.4} vs best fixed {best_fixed:.4}: {ratio:.2}x (floor {HIT_RATE_FLOOR}x)"
    );

    let json = format!(
        "{{\n  \"session_secs\": {secs},\n  \"seed\": {STORM_SEED},\n  \
         \"budget_us\": {},\n  \"t_avail_us\": {},\n  \"kind\": \"{kind:?}\",\n  \
         \"policies\": [\n{}\n  ],\n  \"best_fixed_hit_rate\": {best_fixed:.6},\n  \
         \"tiered_hit_rate\": {tiered_rate:.6},\n  \"ratio\": {ratio:.4},\n  \
         \"hit_rate_floor\": {HIT_RATE_FLOOR},\n  \"floor_met\": {floor_met}\n}}\n",
        BUDGET.as_micros(),
        t_avail.as_micros(),
        rows.join(",\n"),
    );
    std::fs::write("BENCH_deadline.json", &json).expect("write BENCH_deadline.json");
    println!("wrote BENCH_deadline.json");

    if !floor_met {
        eprintln!(
            "REGRESSION: tiered deadline-hit-rate {tiered_rate:.4} is only {ratio:.2}x the \
             best fixed policy's {best_fixed:.4}, below the {HIT_RATE_FLOOR}x floor"
        );
        std::process::exit(1);
    }
}

fn print_row(label: &str, m: &BacktestMetrics, rate: f64) {
    println!(
        "{:>10} {:>10.4} {:>8} {:>8} {:>8} {:>10} {:>10}",
        label,
        rate,
        m.responded,
        m.late,
        m.dropped_full + m.dropped_stale + m.dropped_deadline,
        m.tiers.degraded,
        m.deadline_hits(BUDGET),
    );
}

fn row_json(label: &str, m: &BacktestMetrics, rate: f64) -> String {
    format!(
        "    {{\"policy\": \"{label}\", \"hit_rate\": {rate:.6}, \"hits\": {}, \
         \"total\": {}, \"responded\": {}, \"late\": {}, \"dropped_full\": {}, \
         \"dropped_stale\": {}, \"dropped_deadline\": {}, \"deferred\": {}, \
         \"served_cnn\": {}, \"served_translob\": {}, \"served_deeplob\": {}, \
         \"degraded\": {}}}",
        m.deadline_hits(BUDGET),
        m.total(),
        m.responded,
        m.late,
        m.dropped_full,
        m.dropped_stale,
        m.dropped_deadline,
        m.deferred,
        m.tiers.served_at(ModelKind::VanillaCnn),
        m.tiers.served_at(ModelKind::TransLob),
        m.tiers.served_at(ModelKind::DeepLob),
        m.tiers.degraded,
    )
}
