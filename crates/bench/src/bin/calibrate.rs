//! Grid-searches the synthetic-traffic parameters against the paper's
//! Fig. 11(b) response-rate targets. A development tool: the winning
//! parameters are frozen into `lt_sim::traffic` and this binary can
//! verify they stay near-optimal after model changes.
//!
//! Traffic = mild Hawkes background (sets the GPU/FPGA load) + rare
//! machine-speed flash bursts (sets the LightTrader loss; §II-C's
//! "market disruption occurred more than once a day").

use lighttrader::accel::PowerCondition;
use lighttrader::dnn::ModelKind;
use lighttrader::feed::{FlashParams, HawkesParams, SessionBuilder};
use lighttrader::sim::{run_lighttrader, run_single_device, BacktestConfig, SingleDeviceSystem};
use std::time::Duration;

/// Paper Fig. 11(b): LightTrader response rates, and the same divided by
/// the reported average advantages (1.31x over GPU, 1.20x over FPGA).
const TARGET_LT: [f64; 3] = [0.942, 0.919, 0.871];
const TARGET_GPU: [f64; 3] = [0.719, 0.702, 0.665];
const TARGET_FPGA: [f64; 3] = [0.785, 0.766, 0.726];

fn main() {
    let secs: f64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(30.0);
    let deadline = Duration::from_millis(5);
    let mut best: Option<(f64, String)> = None;

    for mu in [70.0, 80.0, 90.0] {
        for branching in [0.10, 0.15, 0.20] {
            for burst_rate in [0.8, 1.0, 1.3] {
                for burst_size in [25.0, 30.0, 40.0] {
                    let hawkes = HawkesParams::new(mu, branching * 3_000.0, 3_000.0);
                    let flash = FlashParams::new(burst_rate, burst_size, 10e-6);
                    let trace = SessionBuilder::new(hawkes)
                        .flash_bursts(flash)
                        .duration_secs(secs)
                        .seed(20230225)
                        .build()
                        .trace;
                    let mut err = 0.0;
                    let mut report =
                        format!("mu={mu} br={branching} burst={burst_rate}/s size={burst_size}: ");
                    for (i, kind) in ModelKind::ALL.into_iter().enumerate() {
                        let cfg = BacktestConfig::new(kind, 1, PowerCondition::Sufficient)
                            .with_t_avail(deadline);
                        let lt = run_lighttrader(&trace, &cfg).response_rate();
                        let gpu = run_single_device(
                            &trace,
                            &SingleDeviceSystem::gpu(),
                            kind,
                            deadline,
                            100,
                            64,
                        )
                        .response_rate();
                        let fpga = run_single_device(
                            &trace,
                            &SingleDeviceSystem::fpga(),
                            kind,
                            deadline,
                            100,
                            64,
                        )
                        .response_rate();
                        err += (lt - TARGET_LT[i]).powi(2)
                            + (gpu - TARGET_GPU[i]).powi(2)
                            + (fpga - TARGET_FPGA[i]).powi(2);
                        report.push_str(&format!(
                            "[{} lt={:.3} gpu={:.3} fpga={:.3}] ",
                            kind.name(),
                            lt,
                            gpu,
                            fpga
                        ));
                    }
                    report.push_str(&format!("err={err:.4}"));
                    println!("{report}");
                    if best.as_ref().is_none_or(|(b, _)| err < *b) {
                        best = Some((err, report));
                    }
                }
            }
        }
    }
    let (err, report) = best.expect("grid is non-empty");
    println!("\nBEST (err {err:.4}):\n{report}");
}
