//! Fill-model benchmark: assume-fill accounting vs venue-side fills
//! under a burst-storm workload, across every scheduling policy.
//!
//! ```text
//! cargo run --release -p lt-bench --bin bench_fills [-- --secs N]
//! ```
//!
//! Every policy trades the same oracle momentum signal twice: once under
//! `AssumeFill` (the historical fiction — every order fills its full
//! quantity at the decision-time limit) and once under `SweepVisible`
//! (the order arrives after the full tick-to-trade latency and sweeps
//! whatever the book still shows inside its limit). The IOC is priced at
//! the decision-time touch, so it misses exactly when the signal was
//! right and the market ran — adverse selection that assume-fill cannot
//! see, which is why it overstates P&L on every policy.
//!
//! Emits `BENCH_fills.json` and exits nonzero unless (a) assume-fill
//! overstates the realistic final equity by at least
//! [`OVERSTATE_FLOOR_HALF`] half-ticks on every policy, and (b) the
//! deadline-tiered scheduler's realistic equity beats every fixed
//! policy's — faster orders find fresher books.

use lighttrader::prelude::*;
use lighttrader::sim::traffic::{burst_storm_trace, scheduling_deadline_for};
use std::time::Duration;

/// Minimum assume-fill-minus-realistic equity gap per policy, half-ticks.
const OVERSTATE_FLOOR_HALF: i64 = 1;
/// Default simulated session length in seconds.
const DEFAULT_SECS: f64 = 4.0;
/// Storm seed (distinct from the calibrated evaluation seed; the storm
/// is a stress profile, not a figure reproduction).
const STORM_SEED: u64 = 7_0823;
/// The per-tick budget handed to the deadline-tiered scheduler.
const BUDGET: Duration = Duration::from_micros(450);
/// The benchmark's signal: perfect foresight over large moves only, so
/// every decision has positive edge net of the crossed spread and the
/// P&L difference between runs is *purely* an execution effect.
const SIGNAL: SignalConfig = SignalConfig {
    horizon_ticks: 100,
    threshold_half: 4,
    accuracy_pm: 1000,
    seed: 1,
};

/// Only trade into one-tick-wide books: the storm's median spread, so
/// the half-spread paid at entry stays below the signalled move.
fn bench_limits() -> lighttrader::pipeline::RiskLimits {
    lighttrader::pipeline::RiskLimits {
        max_spread_ticks: 1,
        ..Default::default()
    }
}

struct Row {
    label: &'static str,
    assume: ExecutionStats,
    real: ExecutionStats,
}

impl Row {
    fn overstatement_half(&self) -> i64 {
        self.assume.equity_half - self.real.equity_half
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut secs = DEFAULT_SECS;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--secs" {
            secs = it
                .next()
                .and_then(|v| v.parse().ok())
                .expect("--secs needs a number");
        }
    }

    let kind = ModelKind::DeepLob;
    let t_avail = scheduling_deadline_for(kind);
    let trace = burst_storm_trace(secs, STORM_SEED);
    let base = BacktestConfig::new(kind, 2, PowerCondition::Limited).with_t_avail(t_avail);

    println!(
        "{:>10} {:>8} {:>8} {:>8} {:>8} {:>12} {:>12} {:>12}",
        "policy", "sent", "filled", "partial", "missed", "assume-eq", "real-eq", "overstate"
    );

    let mut rows: Vec<Row> = Vec::new();
    for policy in Policy::ALL {
        rows.push(run_pair(policy.label(), &trace, &base.with_policy(policy)));
    }
    rows.push(run_pair(
        "tiered",
        &trace,
        &base.with_deadline_tiered(Some(BUDGET)),
    ));

    for r in &rows {
        print_row(r);
    }

    let best_fixed_real = rows[..rows.len() - 1]
        .iter()
        .map(|r| r.real.equity_half)
        .max()
        .unwrap();
    let tiered_real = rows.last().unwrap().real.equity_half;
    let min_overstatement = rows.iter().map(Row::overstatement_half).min().unwrap();
    let overstated = min_overstatement >= OVERSTATE_FLOOR_HALF;
    let tiered_edge = tiered_real >= best_fixed_real;
    let floor_met = overstated && tiered_edge;

    println!(
        "\nmin overstatement {min_overstatement} half-ticks (floor {OVERSTATE_FLOOR_HALF}); \
         tiered realistic equity {tiered_real} vs best fixed {best_fixed_real}"
    );

    let json_rows: Vec<String> = rows.iter().map(row_json).collect();
    let json = format!(
        "{{\n  \"session_secs\": {secs},\n  \"seed\": {STORM_SEED},\n  \
         \"budget_us\": {},\n  \"t_avail_us\": {},\n  \"kind\": \"{kind:?}\",\n  \
         \"policies\": [\n{}\n  ],\n  \"min_overstatement_half\": {min_overstatement},\n  \
         \"overstate_floor_half\": {OVERSTATE_FLOOR_HALF},\n  \
         \"best_fixed_real_equity_half\": {best_fixed_real},\n  \
         \"tiered_real_equity_half\": {tiered_real},\n  \"floor_met\": {floor_met}\n}}\n",
        BUDGET.as_micros(),
        t_avail.as_micros(),
        json_rows.join(",\n"),
    );
    std::fs::write("BENCH_fills.json", &json).expect("write BENCH_fills.json");
    println!("wrote BENCH_fills.json");

    if !floor_met {
        if !overstated {
            eprintln!(
                "REGRESSION: assume-fill overstates realistic equity by only \
                 {min_overstatement} half-ticks on the worst policy, below the \
                 {OVERSTATE_FLOOR_HALF} half-tick floor"
            );
        }
        if !tiered_edge {
            eprintln!(
                "REGRESSION: tiered realistic equity {tiered_real} fell below the best \
                 fixed policy's {best_fixed_real}"
            );
        }
        std::process::exit(1);
    }
}

fn run_pair(label: &'static str, trace: &TickTrace, cfg: &BacktestConfig) -> Row {
    let assume = run_lighttrader(
        trace,
        &cfg.with_execution(
            ExecutionConfig::assume_fill()
                .with_signal(SIGNAL)
                .with_limits(bench_limits()),
        ),
    )
    .execution
    .expect("assume-fill run must report execution stats");
    let real = run_lighttrader(
        trace,
        &cfg.with_execution(
            ExecutionConfig::realistic()
                .with_signal(SIGNAL)
                .with_limits(bench_limits()),
        ),
    )
    .execution
    .expect("realistic run must report execution stats");
    assume.assert_tiles();
    real.assert_tiles();
    Row {
        label,
        assume,
        real,
    }
}

fn print_row(r: &Row) {
    println!(
        "{:>10} {:>8} {:>8} {:>8} {:>8} {:>12} {:>12} {:>12}",
        r.label,
        r.real.orders_sent,
        r.real.filled,
        r.real.partial,
        r.real.missed,
        r.assume.equity_half,
        r.real.equity_half,
        r.overstatement_half(),
    );
}

fn row_json(r: &Row) -> String {
    format!(
        "    {{\"policy\": \"{}\", \"orders_sent\": {}, \"filled\": {}, \
         \"partial\": {}, \"missed\": {}, \"fill_rate\": {:.6}, \
         \"assume_equity_half\": {}, \"real_equity_half\": {}, \
         \"overstatement_half\": {}, \"real_slippage_half\": {}}}",
        r.label,
        r.real.orders_sent,
        r.real.filled,
        r.real.partial,
        r.real.missed,
        r.real.fill_rate(),
        r.assume.equity_half,
        r.real.equity_half,
        r.overstatement_half(),
        r.real.slippage_half,
    )
}
