//! Batched-inference regression benchmark: times the packed batched
//! forward (`forward_batch_scratch` over prepacked weight panels)
//! against looping `forward_scratch` per query, across every benchmark
//! model and a batch-size sweep, and emits a machine-readable
//! `BENCH_batch.json` in the current directory.
//!
//! ```text
//! cargo run --release -p lt-bench --bin bench_batch
//! ```
//!
//! Exits nonzero if the DeepLOB per-query speedup at batch 16 falls
//! below the 2x regression floor, so CI catches batched-path
//! regressions. Both paths produce bit-identical predictions (pinned by
//! `lt-dnn/tests/batch_equivalence.rs`), so this measures pure
//! throughput.

use std::time::Instant;

use lighttrader::dnn::models::{CnnSpec, DeepLobSpec, TransLobSpec};
use lighttrader::dnn::{Model, Prediction, ScratchPad, Tensor};

/// Minimum acceptable DeepLOB per-query speedup at batch 16.
const DEEPLOB_BATCH16_FLOOR: f64 = 2.0;
/// Batch sizes swept per model.
const BATCHES: [usize; 3] = [1, 4, 16];
/// Target wall time per measurement, nanoseconds.
const TARGET_NS: u128 = 100_000_000;

/// Times `f` adaptively: calibrates an iteration count that fills
/// roughly [`TARGET_NS`], runs three repetitions, and returns the best
/// (least-noisy) per-iteration nanoseconds.
fn time_ns<F: FnMut()>(mut f: F) -> f64 {
    let start = Instant::now();
    let mut calib = 0u32;
    while start.elapsed().as_nanos() < TARGET_NS / 10 {
        f();
        calib += 1;
    }
    let iters = calib.max(1);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
        best = best.min(per_iter);
    }
    best
}

struct Row {
    model: &'static str,
    batch: usize,
    looped_ns_per_query: f64,
    batched_ns_per_query: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.looped_ns_per_query / self.batched_ns_per_query
    }

    fn json(&self) -> String {
        format!(
            "    {{\"model\": \"{}\", \"batch\": {}, \"looped_ns_per_query\": {:.1}, \
             \"batched_ns_per_query\": {:.1}, \"speedup\": {:.2}}}",
            self.model,
            self.batch,
            self.looped_ns_per_query,
            self.batched_ns_per_query,
            self.speedup()
        )
    }
}

fn sweep(model: &dyn Model, name: &'static str, rows: &mut Vec<Row>) {
    let packed = model.pack_weights();
    for batch in BATCHES {
        let inputs: Vec<Tensor> = (0..batch)
            .map(|i| {
                Tensor::random(
                    &[model.window(), model.features()],
                    1.0,
                    17 + batch as u64 * 100 + i as u64,
                )
            })
            .collect();
        let mut pad = ScratchPad::new();
        let mut out: Vec<Prediction> = Vec::new();
        // Warm both paths so pads and panels are steady-state.
        model.forward_batch_looped(&inputs, &mut pad, &mut out);
        model.forward_batch_scratch(&inputs, &packed, &mut pad, &mut out);
        let looped =
            time_ns(|| model.forward_batch_looped(&inputs, &mut pad, &mut out)) / batch as f64;
        let batched = time_ns(|| model.forward_batch_scratch(&inputs, &packed, &mut pad, &mut out))
            / batch as f64;
        let row = Row {
            model: name,
            batch,
            looped_ns_per_query: looped,
            batched_ns_per_query: batched,
        };
        println!(
            "{:<12} b={:<3} looped {:>10.0} ns/q   batched {:>10.0} ns/q   speedup {:>5.2}x",
            name,
            batch,
            looped,
            batched,
            row.speedup()
        );
        rows.push(row);
    }
}

fn main() {
    let mut rows = Vec::new();
    sweep(&CnnSpec::tiny().build(3), "vanilla_cnn", &mut rows);
    sweep(&DeepLobSpec::tiny().build(3), "deeplob", &mut rows);
    sweep(&TransLobSpec::tiny().build(3), "translob", &mut rows);

    let deeplob16 = rows
        .iter()
        .find(|r| r.model == "deeplob" && r.batch == 16)
        .map(Row::speedup)
        .unwrap_or(0.0);
    let floor_met = deeplob16 >= DEEPLOB_BATCH16_FLOOR;

    let row_json: Vec<String> = rows.iter().map(Row::json).collect();
    let json = format!(
        "{{\n  \"rows\": [\n{}\n  ],\n  \"deeplob_batch16_speedup\": {:.2},\n  \
         \"deeplob_batch16_floor\": {:.1},\n  \"floor_met\": {}\n}}\n",
        row_json.join(",\n"),
        deeplob16,
        DEEPLOB_BATCH16_FLOOR,
        floor_met,
    );
    std::fs::write("BENCH_batch.json", &json).expect("write BENCH_batch.json");
    println!("\nwrote BENCH_batch.json");

    if !floor_met {
        eprintln!(
            "REGRESSION: DeepLOB batch-16 per-query speedup {deeplob16:.2}x below the \
             {DEEPLOB_BATCH16_FLOOR:.1}x floor"
        );
        std::process::exit(1);
    }
}
