//! Order-book replay benchmark: drives the contiguous-ladder hot path
//! ([`LadderBook`] + `snapshot_into` + `write_features`) and the map-based
//! oracle ([`ReferenceBook`] + `snapshot` + `to_features`) through the same
//! deterministic streams, and emits a machine-readable `BENCH_lob.json`
//! in the current directory.
//!
//! ```text
//! cargo run --release -p lt-bench --bin bench_lob
//! ```
//!
//! Two sections:
//!
//! * `book` — the book maintenance + feature-extraction path itself,
//!   replayed through the [`BookStore`] write interface (insert, cancel,
//!   FIFO sweeps) with a depth-10 snapshot and feature row per op. This
//!   is the path the ladder rework targets and it carries the 3x
//!   regression floor.
//! * `engine` — full [`MatchingEngine`] replay (order validation +
//!   matching + tick-event emission on top of the book). Informational:
//!   the engine's per-order event buffers are identical on both sides
//!   and dilute the book speedup.
//!
//! Exits nonzero if the `book` replay speedup falls below the floor, so
//! CI catches hot-path regressions.

use std::hint::black_box;
use std::time::Instant;

use lt_lob::prelude::*;
use lt_lob::Order;

/// Minimum acceptable book-path replay speedup (ladder vs reference).
const SPEEDUP_FLOOR: f64 = 3.0;
/// Operations per replay.
const N_OPS: usize = 50_000;
/// Feature depth per tick (the paper's ten-level snapshot).
const DEPTH: usize = 10;
/// Interleaved timed repetition pairs; throughput is best-of, the
/// speedup is the median of per-pair ratios.
const REPS: usize = 9;

/// Deterministic xorshift64* generator shared by both stream builders.
fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state >> 12;
    *state ^= *state << 25;
    *state ^= *state >> 27;
    state.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

// ---------------------------------------------------------------------
// Section 1: the book path (floored).
// ---------------------------------------------------------------------

/// One pre-resolved book operation, identical for both stores.
enum BookOp {
    /// Rest a passive order (never crosses: bids <= 9_999, asks >= 10_001).
    Insert(Order),
    /// Cancel by id (may already be gone — a no-op on both stores).
    Remove(OrderId),
    /// Aggress into `side` for up to `qty`, peeling FIFO fronts.
    Sweep(Side, Qty),
}

fn generate_book_ops(n: usize) -> Vec<BookOp> {
    let mut state = 0x243f_6a88_85a3_08d3u64;
    let mut live: Vec<OrderId> = Vec::new();
    let mut next_id = 1u64;
    let mut ops = Vec::with_capacity(n);
    for i in 0..n {
        let roll = xorshift(&mut state) % 10;
        if roll < 6 || live.is_empty() {
            let side = if xorshift(&mut state).is_multiple_of(2) {
                Side::Bid
            } else {
                Side::Ask
            };
            let base = if side == Side::Bid { 9_992 } else { 10_001 };
            let id = OrderId::new(next_id);
            next_id += 1;
            live.push(id);
            let qty = Qty::new(1 + xorshift(&mut state) % 9);
            ops.push(BookOp::Insert(Order {
                id,
                side,
                price: Price::new(base + (xorshift(&mut state) % 8) as i64),
                remaining: qty,
                original: qty,
                arrival: Timestamp::from_nanos(i as u64 + 1),
                seq: i as u64 + 1,
            }));
        } else if roll < 8 {
            let id = live.swap_remove((xorshift(&mut state) % live.len() as u64) as usize);
            ops.push(BookOp::Remove(id));
        } else {
            let side = if xorshift(&mut state).is_multiple_of(2) {
                Side::Bid
            } else {
                Side::Ask
            };
            ops.push(BookOp::Sweep(side, Qty::new(1 + xorshift(&mut state) % 12)));
        }
    }
    ops
}

/// Applies one op to a store. Sweeps peel the FIFO front of the best
/// level exactly like the matching engine's inner fill loop.
fn apply_op<B: BookStore>(book: &mut B, op: &BookOp) {
    match op {
        BookOp::Insert(order) => book.insert(*order),
        BookOp::Remove(id) => {
            black_box(book.remove(*id));
        }
        BookOp::Sweep(side, qty) => {
            let mut left = *qty;
            while !left.is_zero() && book.best(*side).is_some() {
                let avail = book.front(*side).expect("non-empty side").remaining;
                let fill = avail.min(left);
                black_box(book.fill_front(*side, fill));
                left -= fill;
            }
        }
    }
}

/// The hot path under test: ladder store, direct book→buffer feature
/// extraction into a reusable row — no allocation per op.
fn replay_book_ladder(ops: &[BookOp], features: &mut [f32]) -> f32 {
    let mut book = LadderBook::default();
    let mut checksum = 0.0f32;
    for op in ops.iter() {
        apply_op(&mut book, op);
        book.write_features(DEPTH, features);
        checksum += features[0];
    }
    checksum
}

/// The pre-ladder baseline: map-based store, allocating snapshot and
/// feature vector on every op.
fn replay_book_reference(ops: &[BookOp]) -> f32 {
    let mut book = ReferenceBook::new();
    let mut checksum = 0.0f32;
    for (i, op) in ops.iter().enumerate() {
        apply_op(&mut book, op);
        let snap = book.snapshot(DEPTH, Timestamp::from_nanos(i as u64 + 1));
        let features = snap.to_features(DEPTH);
        checksum += features[0];
    }
    checksum
}

// ---------------------------------------------------------------------
// Section 2: full matching-engine replay (informational).
// ---------------------------------------------------------------------

enum Action {
    New(NewOrder),
    Cancel(OrderId),
    Replace(OrderId, Price, Qty),
}

/// Passive adds around the touch, cancels, replaces, and aggressive IOC
/// sweeps — the same mix the equivalence suite uses.
fn generate_actions(n: usize) -> Vec<Action> {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut live: Vec<OrderId> = Vec::new();
    let mut next_id = 1u64;
    let mut actions = Vec::with_capacity(n);
    for _ in 0..n {
        let roll = xorshift(&mut state) % 10;
        if roll < 5 || live.is_empty() {
            let side = if xorshift(&mut state).is_multiple_of(2) {
                Side::Bid
            } else {
                Side::Ask
            };
            let base = if side == Side::Bid { 9_992 } else { 10_001 };
            let price = Price::new(base + (xorshift(&mut state) % 8) as i64);
            let id = OrderId::new(next_id);
            next_id += 1;
            live.push(id);
            actions.push(Action::New(NewOrder::limit(
                id,
                side,
                price,
                Qty::new(1 + xorshift(&mut state) % 9),
            )));
        } else if roll < 7 {
            let id = live.swap_remove((xorshift(&mut state) % live.len() as u64) as usize);
            actions.push(Action::Cancel(id));
        } else if roll < 8 {
            let id = live[(xorshift(&mut state) % live.len() as u64) as usize];
            let base = if xorshift(&mut state).is_multiple_of(2) {
                9_992
            } else {
                10_001
            };
            actions.push(Action::Replace(
                id,
                Price::new(base + (xorshift(&mut state) % 8) as i64),
                Qty::new(1 + xorshift(&mut state) % 9),
            ));
        } else {
            let side = if xorshift(&mut state).is_multiple_of(2) {
                Side::Bid
            } else {
                Side::Ask
            };
            let price = Price::new(if side == Side::Bid { 10_004 } else { 9_996 });
            let id = OrderId::new(next_id);
            next_id += 1;
            actions.push(Action::New(NewOrder::ioc(
                id,
                side,
                price,
                Qty::new(1 + xorshift(&mut state) % 12),
            )));
        }
    }
    actions
}

fn step<B: BookStore>(engine: &mut MatchingEngine<B>, action: &Action, ts: Timestamp) {
    match action {
        Action::New(order) => {
            black_box(engine.submit(*order, ts));
        }
        Action::Cancel(id) => {
            black_box(engine.cancel(*id, ts));
        }
        Action::Replace(id, price, qty) => {
            black_box(engine.replace(*id, *price, *qty, ts));
        }
    }
}

fn replay_engine_ladder(actions: &[Action], snap: &mut LobSnapshot, features: &mut [f32]) -> f32 {
    let mut engine = MatchingEngine::new(Symbol::new("ESU6"));
    let mut checksum = 0.0f32;
    for (i, action) in actions.iter().enumerate() {
        let ts = Timestamp::from_nanos(i as u64 + 1);
        step(&mut engine, action, ts);
        engine.book().snapshot_into(DEPTH, ts, snap);
        snap.write_features(DEPTH, features);
        checksum += features[0];
    }
    checksum
}

fn replay_engine_reference(actions: &[Action]) -> f32 {
    let mut engine = MatchingEngine::new_reference(Symbol::new("ESU6"));
    let mut checksum = 0.0f32;
    for (i, action) in actions.iter().enumerate() {
        let ts = Timestamp::from_nanos(i as u64 + 1);
        step(&mut engine, action, ts);
        let snap = engine.book().snapshot(DEPTH, ts);
        let features = snap.to_features(DEPTH);
        checksum += features[0];
    }
    checksum
}

// ---------------------------------------------------------------------
// Measurement plumbing.
// ---------------------------------------------------------------------

/// One timed execution of `f`, in nanoseconds.
fn time_once<F: FnMut() -> f32>(f: &mut F) -> f64 {
    let start = Instant::now();
    black_box(f());
    start.elapsed().as_nanos() as f64
}

/// Times two replays as interleaved pairs so machine-load drift hits
/// both sides equally, and returns `(best_a_ns, best_b_ns,
/// median_pairwise_b_over_a)`. The median of per-pair ratios is robust
/// to a noisy neighbor stealing one rep.
fn time_pair<A: FnMut() -> f32, B: FnMut() -> f32>(mut a: A, mut b: B) -> (f64, f64, f64) {
    let mut best_a = f64::INFINITY;
    let mut best_b = f64::INFINITY;
    let mut ratios = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let ta = time_once(&mut a);
        let tb = time_once(&mut b);
        best_a = best_a.min(ta);
        best_b = best_b.min(tb);
        ratios.push(tb / ta);
    }
    ratios.sort_by(|x, y| x.partial_cmp(y).expect("finite ratios"));
    (best_a, best_b, ratios[ratios.len() / 2])
}

/// Per-event latencies (ns) for one instrumented replay, into a buffer
/// preallocated so instrumentation does not allocate mid-replay.
fn per_event_ns<F: FnMut(usize)>(n: usize, mut event: F) -> Vec<u64> {
    let mut lat = Vec::with_capacity(n);
    for i in 0..n {
        let start = Instant::now();
        event(i);
        lat.push(start.elapsed().as_nanos() as u64);
    }
    lat.sort_unstable();
    lat
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

struct Measurement {
    events_per_sec: f64,
    p50_ns: u64,
    p99_ns: u64,
}

impl Measurement {
    fn new(n: usize, total_ns: f64, sorted_lat: &[u64]) -> Self {
        Measurement {
            events_per_sec: n as f64 / (total_ns / 1e9),
            p50_ns: percentile(sorted_lat, 0.50),
            p99_ns: percentile(sorted_lat, 0.99),
        }
    }

    fn json(&self, name: &str) -> String {
        format!(
            "    \"{}\": {{\"events_per_sec\": {:.0}, \"p50_ns\": {}, \"p99_ns\": {}}}",
            name, self.events_per_sec, self.p50_ns, self.p99_ns
        )
    }

    fn print(&self, section: &str, name: &str) {
        println!(
            "{section:<8} {name:<10} {:>12.0} events/s   p50 {:>6} ns   p99 {:>6} ns",
            self.events_per_sec, self.p50_ns, self.p99_ns
        );
    }
}

fn main() {
    let ops = generate_book_ops(N_OPS);
    let actions = generate_actions(N_OPS);
    let mut snap = LobSnapshot::default();
    let mut features = vec![0.0f32; LobSnapshot::feature_count(DEPTH)];

    // Warm-up; also proves each pair of replays computes the same thing.
    assert_eq!(
        replay_book_ladder(&ops, &mut features),
        replay_book_reference(&ops),
        "book replays must agree"
    );
    assert_eq!(
        replay_engine_ladder(&actions, &mut snap, &mut features),
        replay_engine_reference(&actions),
        "engine replays must agree"
    );

    // Section 1: book path.
    let (ladder_ns, reference_ns, book_speedup) = time_pair(
        || replay_book_ladder(&ops, &mut features),
        || replay_book_reference(&ops),
    );
    let mut book = LadderBook::default();
    let ladder_lat = per_event_ns(ops.len(), |i| {
        apply_op(&mut book, &ops[i]);
        book.write_features(DEPTH, &mut features);
    });
    let mut book = ReferenceBook::new();
    let reference_lat = per_event_ns(ops.len(), |i| {
        apply_op(&mut book, &ops[i]);
        let snap = book.snapshot(DEPTH, Timestamp::from_nanos(i as u64 + 1));
        black_box(snap.to_features(DEPTH));
    });
    let book_ladder = Measurement::new(ops.len(), ladder_ns, &ladder_lat);
    let book_reference = Measurement::new(ops.len(), reference_ns, &reference_lat);

    // Section 2: engine replay.
    let (ladder_ns, reference_ns, engine_speedup) = time_pair(
        || replay_engine_ladder(&actions, &mut snap, &mut features),
        || replay_engine_reference(&actions),
    );
    let mut engine = MatchingEngine::new(Symbol::new("ESU6"));
    let ladder_lat = per_event_ns(actions.len(), |i| {
        let ts = Timestamp::from_nanos(i as u64 + 1);
        step(&mut engine, &actions[i], ts);
        engine.book().snapshot_into(DEPTH, ts, &mut snap);
        snap.write_features(DEPTH, &mut features);
    });
    let mut engine = MatchingEngine::new_reference(Symbol::new("ESU6"));
    let reference_lat = per_event_ns(actions.len(), |i| {
        let ts = Timestamp::from_nanos(i as u64 + 1);
        step(&mut engine, &actions[i], ts);
        let snap = engine.book().snapshot(DEPTH, ts);
        black_box(snap.to_features(DEPTH));
    });
    let engine_ladder = Measurement::new(actions.len(), ladder_ns, &ladder_lat);
    let engine_reference = Measurement::new(actions.len(), reference_ns, &reference_lat);

    book_ladder.print("book", "ladder");
    book_reference.print("book", "reference");
    println!("book     speedup    {book_speedup:>10.2}x (floor {SPEEDUP_FLOOR:.1}x)");
    engine_ladder.print("engine", "ladder");
    engine_reference.print("engine", "reference");
    println!("engine   speedup    {engine_speedup:>10.2}x (informational)");

    let json = format!(
        "{{\n  \"book\": {{\n{},\n{},\n    \"speedup\": {:.2}\n  }},\n  \"engine\": {{\n{},\n{},\n    \"speedup\": {:.2}\n  }},\n  \"events\": {},\n  \"speedup\": {:.2},\n  \"speedup_floor\": {:.1}\n}}\n",
        book_ladder.json("ladder"),
        book_reference.json("reference"),
        book_speedup,
        engine_ladder.json("ladder"),
        engine_reference.json("reference"),
        engine_speedup,
        N_OPS,
        book_speedup,
        SPEEDUP_FLOOR,
    );
    std::fs::write("BENCH_lob.json", &json).expect("write BENCH_lob.json");
    println!("\nwrote BENCH_lob.json");

    if book_speedup < SPEEDUP_FLOOR {
        eprintln!(
            "REGRESSION: book replay speedup {book_speedup:.2}x below the \
             {SPEEDUP_FLOOR:.1}x floor"
        );
        std::process::exit(1);
    }
}
