//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p lt-bench --bin tables -- [artifact] [--secs N] [--seed N]
//! ```
//!
//! `artifact` is one of `table1 table2 table3 fig8 fig11 fig12
//! fig12tight fig13 stages faults grid all` (default `all`). `--secs`
//! sets the simulated session length (default 60), `--seed` the session
//! seed. `grid` additionally writes the machine-readable
//! `GRID_sweep.json`.

use lighttrader::sim::traffic::EVALUATION_SEED;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut artifact = "all".to_string();
    let mut secs = lighttrader::experiments::DEFAULT_SECS;
    let mut seed = EVALUATION_SEED;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--secs" => {
                secs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--secs needs a number");
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs a number");
            }
            other if !other.starts_with("--") => artifact = other.to_string(),
            other => panic!("unknown flag {other}"),
        }
    }

    let run = |name: &str| artifact == "all" || artifact == name;
    if run("table1") {
        println!("{}", lt_bench::render_table1());
    }
    if run("table2") {
        println!("{}", lt_bench::render_table2());
    }
    if run("table3") {
        println!("{}", lt_bench::render_table3());
    }
    if run("fig8") {
        println!("{}", lt_bench::render_fig8(secs, seed));
    }
    if run("fig11") {
        println!("{}", lt_bench::render_fig11(secs, seed));
    }
    if run("fig12") {
        println!("{}", lt_bench::render_fig12(secs, seed));
    }
    if run("fig12tight") {
        println!("{}", lt_bench::render_fig12_tight(secs, seed));
    }
    if run("fig13") {
        println!("{}", lt_bench::render_fig13(secs, seed));
    }
    if run("stages") {
        println!("{}", lt_bench::render_stage_latency(secs, seed));
    }
    if run("faults") {
        println!("{}", lt_bench::render_faults(secs, seed));
    }
    if run("grid") {
        let (table, json) = lt_bench::render_grid(secs, seed);
        println!("{table}");
        std::fs::write("GRID_sweep.json", &json).expect("write GRID_sweep.json");
        println!("wrote GRID_sweep.json");
    }
}
