//! The multi-symbol sharded back-test.
//!
//! [`run_multi`] replays a correlated multi-instrument session
//! ([`lt_feed::MultiMarketSession`]) through ONE LightTrader system
//! model: per-symbol book shards feed a single coalesced tensor queue,
//! so one accelerator batch mixes rows from many instruments and the
//! whole fleet absorbs any one symbol's burst. The per-symbol traces are
//! k-way-merged into a single time-ordered stream whose shard map routes
//! every tick to its feature shard; completions fan back to the right
//! shard through the ticket's shard id.
//!
//! With one symbol the sharded core degenerates to the historical
//! single-instrument back-test **bit for bit** — the aggregate metrics
//! of `run_multi` on a 1-symbol session serialize byte-identically to
//! [`crate::run_lighttrader`] on the same trace.

use crate::config::BacktestConfig;
use crate::engine;
use crate::execution::ExecutionStats;
use crate::lighttrader::build_state;
use crate::metrics::{BacktestMetrics, TierOutcomes};
use lt_feed::MultiMarketSession;
use lt_lob::Symbol;
use serde::{Deserialize, Serialize};

/// Outcome tallies for one symbol of a sharded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SymbolOutcome {
    /// The traded symbol.
    pub symbol: Symbol,
    /// Trace ticks ingested for this symbol (including feature warm-up).
    pub ticks: u64,
    /// Queries answered within the available time.
    pub responded: u64,
    /// Queries whose answer arrived after the deadline.
    pub late: u64,
    /// Queries dropped at admission (shared queue full).
    pub dropped_full: u64,
    /// Queries dropped while queued (deadline lapsed before issue).
    pub dropped_stale: u64,
    /// Queries shed by the deadline-tier planner (no tier fit the
    /// remaining budget).
    pub dropped_deadline: u64,
    /// Queries deferred to the conventional pipeline by Algorithm 1.
    pub deferred: u64,
    /// Per-tier serving outcomes of this symbol's scored queries.
    pub tiers: TierOutcomes,
    /// Execution & portfolio outcomes of this symbol, when the run
    /// traded; `None` for latency-only runs.
    pub execution: Option<ExecutionStats>,
}

impl SymbolOutcome {
    /// Total queries this symbol contributed across all outcome buckets.
    pub fn total(&self) -> u64 {
        self.responded
            + self.late
            + self.dropped_full
            + self.dropped_stale
            + self.dropped_deadline
            + self.deferred
    }

    /// Fraction of this symbol's queries answered in time.
    pub fn response_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        self.responded as f64 / total as f64
    }
}

/// Metrics of a multi-symbol run: the fleet-wide aggregate plus the
/// per-symbol breakdown. The aggregate is a plain [`BacktestMetrics`]
/// (same serialization as single-instrument runs); the breakdown rides
/// alongside instead of inside it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiMetrics {
    /// Fleet-wide metrics over the merged stream.
    pub aggregate: BacktestMetrics,
    /// Per-symbol tallies, index position = shard id.
    pub per_symbol: Vec<SymbolOutcome>,
}

impl MultiMetrics {
    /// Panics unless every aggregate outcome counter equals the sum of
    /// its per-symbol attributions — the invariant that makes the
    /// breakdown trustworthy.
    pub fn assert_consistent(&self) {
        let sum = |f: fn(&SymbolOutcome) -> u64| self.per_symbol.iter().map(f).sum::<u64>();
        assert_eq!(self.aggregate.responded, sum(|s| s.responded), "responded");
        assert_eq!(self.aggregate.late, sum(|s| s.late), "late");
        assert_eq!(
            self.aggregate.dropped_full,
            sum(|s| s.dropped_full),
            "dropped_full"
        );
        assert_eq!(
            self.aggregate.dropped_stale,
            sum(|s| s.dropped_stale),
            "dropped_stale"
        );
        assert_eq!(
            self.aggregate.dropped_deadline,
            sum(|s| s.dropped_deadline),
            "dropped_deadline"
        );
        assert_eq!(self.aggregate.deferred, sum(|s| s.deferred), "deferred");
        let mut tiers = TierOutcomes::default();
        for s in &self.per_symbol {
            tiers.merge(&s.tiers);
        }
        assert_eq!(self.aggregate.tiers, tiers, "tiers");
        if let Some(agg) = self.aggregate.execution {
            // Fill outcomes tile per symbol, and the per-symbol stats sum
            // exactly to the fleet aggregate.
            agg.assert_tiles();
            let mut sum = ExecutionStats::default();
            for s in &self.per_symbol {
                let e = s
                    .execution
                    .expect("trading run must attribute execution per symbol");
                e.assert_tiles();
                sum.merge(&e);
            }
            assert_eq!(agg, sum, "execution");
        } else {
            assert!(
                self.per_symbol.iter().all(|s| s.execution.is_none()),
                "latency-only run must not carry per-symbol execution"
            );
        }
    }
}

/// Replays a multi-instrument session through one sharded LightTrader
/// configuration and reports aggregate plus per-symbol metrics.
///
/// The accelerator fleet, power condition, and scheduling policy come
/// from `cfg` exactly as in [`crate::run_lighttrader`]; `cfg.symbols`
/// must match the session's symbol count.
///
/// # Panics
///
/// Panics if the configuration is invalid, if `cfg.symbols` disagrees
/// with the session, or if the configuration carries ingress faults —
/// the fault-injected A/B ingress models a single feed pair and is not
/// defined for merged multi-symbol streams.
pub fn run_multi(session: &MultiMarketSession, cfg: &BacktestConfig) -> MultiMetrics {
    let (trace, tick_shards) = session.merged();
    run_multi_merged(session, &trace, &tick_shards, cfg)
}

/// [`run_multi`] with the k-way merge precomputed by the caller.
///
/// `merged` and `tick_shards` must be exactly what
/// [`MultiMarketSession::merged`] returns for `session` — the back-test
/// farm caches that pair per session so hundreds of cells replay it
/// without re-merging. Bit-identical to [`run_multi`] by construction
/// (the latter is now a thin wrapper).
///
/// # Panics
///
/// As [`run_multi`], plus if `merged` and `tick_shards` disagree in
/// length.
pub fn run_multi_merged(
    session: &MultiMarketSession,
    merged: &lt_feed::TickTrace,
    tick_shards: &[u16],
    cfg: &BacktestConfig,
) -> MultiMetrics {
    cfg.validate();
    assert_eq!(
        cfg.symbols,
        session.n_symbols(),
        "config symbol count must match the session"
    );
    assert!(
        !cfg.faults.enabled(),
        "ingress fault injection is defined per feed pair, not for merged \
         multi-symbol streams; use a lossless fault profile"
    );
    assert_eq!(
        merged.len(),
        tick_shards.len(),
        "shard map must cover the merged trace"
    );
    let n = session.n_symbols();
    let mut state = build_state(cfg, n, tick_shards.to_vec());
    state.arm_execution(&cfg.execution, merged, tick_shards, n);
    let aggregate = engine::run(&mut state, merged);
    let per_symbol = session
        .symbols()
        .into_iter()
        .enumerate()
        .map(|(i, symbol)| {
            let score = state.shard_scores()[i];
            let counters = state.shard_counters(i);
            SymbolOutcome {
                symbol,
                ticks: score.ticks,
                responded: score.responded,
                late: score.late,
                dropped_full: counters.dropped_full,
                dropped_stale: counters.dropped_stale,
                dropped_deadline: counters.dropped_deadline,
                deferred: counters.deferred,
                tiers: score.tiers,
                execution: state.shard_execution(i),
            }
        })
        .collect();
    let metrics = MultiMetrics {
        aggregate,
        per_symbol,
    };
    metrics.assert_consistent();
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{multi_evaluation_session, scheduling_deadline_for};
    use lt_accel::PowerCondition;
    use lt_dnn::ModelKind;
    use lt_sched::Policy;

    fn quick_cfg(symbols: usize, skew: f64) -> BacktestConfig {
        BacktestConfig::new(ModelKind::DeepLob, 4, PowerCondition::Sufficient)
            .with_policy(Policy::Both)
            .with_t_avail(scheduling_deadline_for(ModelKind::DeepLob))
            .with_symbols(symbols, skew)
    }

    #[test]
    fn shards_fan_back_to_their_symbols() {
        let session = multi_evaluation_session(2.0, 42, 4, 1.0);
        let m = run_multi(&session, &quick_cfg(4, 1.0));
        assert_eq!(m.per_symbol.len(), 4);
        // Every symbol both contributed ticks and got answers.
        for s in &m.per_symbol {
            assert!(s.ticks > 0, "{:?}", s.symbol);
            assert!(s.responded > 0, "{:?}", s.symbol);
        }
        // assert_consistent ran inside run_multi; spot-check the tick sum.
        let ticks: u64 = m.per_symbol.iter().map(|s| s.ticks).sum();
        let session_ticks: usize = session.sessions.iter().map(|s| s.trace.len()).sum();
        assert_eq!(ticks, session_ticks as u64);
    }

    #[test]
    fn skew_shows_up_in_per_symbol_tallies() {
        let session = multi_evaluation_session(2.0, 42, 4, 2.0);
        let m = run_multi(&session, &quick_cfg(4, 2.0));
        assert!(
            m.per_symbol[0].ticks > 2 * m.per_symbol[3].ticks,
            "hot symbol must dominate: {:?}",
            m.per_symbol.iter().map(|s| s.ticks).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "must match the session")]
    fn symbol_count_mismatch_rejected() {
        let session = multi_evaluation_session(0.1, 1, 2, 0.0);
        let _ = run_multi(&session, &quick_cfg(4, 0.0));
    }

    #[test]
    #[should_panic(expected = "lossless fault profile")]
    fn faulted_config_rejected() {
        let session = multi_evaluation_session(0.1, 1, 2, 0.0);
        let mut cfg = quick_cfg(2, 0.0);
        cfg.faults.feed_a.drop = 0.1;
        let _ = run_multi(&session, &cfg);
    }
}
