//! Back-test outcome accounting.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Aggregated results of one back-test run.
///
/// Every tick that produces an inference query (i.e. every tick after the
/// feature window warms up) ends in exactly one of the outcome buckets;
/// `responded` is the only success. The paper's **response rate** is
/// `responded / total`; its **miss rate** is the complement.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BacktestMetrics {
    /// Queries answered within the available time.
    pub responded: u64,
    /// Queries whose answer arrived after the deadline.
    pub late: u64,
    /// Queries dropped at admission (offload queue full).
    pub dropped_full: u64,
    /// Queries dropped while queued (deadline lapsed before issue).
    pub dropped_stale: u64,
    /// Queries deferred to the conventional pipeline by Algorithm 1.
    pub deferred: u64,
    /// Tick-to-trade latencies of answered (in-time) queries, in nanos.
    latencies_ns: Vec<u64>,
    /// Total energy the accelerator pool consumed, in joules.
    pub energy_j: f64,
    /// Total batches issued.
    pub batches: u64,
    /// Sum of issued batch sizes (for mean batch size).
    pub batched_queries: u64,
}

impl BacktestMetrics {
    /// Creates empty metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an in-time response with its tick-to-trade latency.
    pub fn record_response(&mut self, tick_to_trade: Duration) {
        self.responded += 1;
        self.latencies_ns.push(tick_to_trade.as_nanos() as u64);
    }

    /// Total queries across all outcome buckets.
    pub fn total(&self) -> u64 {
        self.responded + self.late + self.dropped_full + self.dropped_stale + self.deferred
    }

    /// Fraction of queries answered in time (Fig. 11(b)/Fig. 12 metric).
    pub fn response_rate(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.responded as f64 / self.total() as f64
    }

    /// Fraction of queries missed (Fig. 13 metric).
    pub fn miss_rate(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        1.0 - self.response_rate()
    }

    /// Mean batch size over all issued batches.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.batched_queries as f64 / self.batches as f64
    }

    /// Mean tick-to-trade of in-time responses.
    pub fn mean_latency(&self) -> Duration {
        if self.latencies_ns.is_empty() {
            return Duration::ZERO;
        }
        let sum: u64 = self.latencies_ns.iter().sum();
        Duration::from_nanos(sum / self.latencies_ns.len() as u64)
    }

    /// The `q`-quantile (0.0–1.0) of in-time tick-to-trade latencies.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn latency_quantile(&self, q: f64) -> Duration {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.latencies_ns.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.latencies_ns.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        Duration::from_nanos(sorted[idx])
    }

    /// Number of recorded response latencies (equals [`Self::responded`]).
    pub fn latency_samples(&self) -> usize {
        self.latencies_ns.len()
    }
}

impl std::fmt::Display for BacktestMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} queries: {:.1}% responded (late {}, full {}, stale {}, deferred {}), \
             mean t2t {:?}, mean batch {:.2}",
            self.total(),
            self.response_rate() * 100.0,
            self.late,
            self.dropped_full,
            self.dropped_stale,
            self.deferred,
            self.mean_latency(),
            self.mean_batch(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_sum_to_one() {
        let mut m = BacktestMetrics::new();
        m.record_response(Duration::from_micros(100));
        m.record_response(Duration::from_micros(200));
        m.late = 1;
        m.dropped_full = 1;
        m.dropped_stale = 1;
        m.deferred = 1;
        assert_eq!(m.total(), 6);
        assert!((m.response_rate() - 2.0 / 6.0).abs() < 1e-12);
        assert!((m.response_rate() + m.miss_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_are_safe() {
        let m = BacktestMetrics::new();
        assert_eq!(m.response_rate(), 0.0);
        assert_eq!(m.miss_rate(), 0.0);
        assert_eq!(m.mean_latency(), Duration::ZERO);
        assert_eq!(m.latency_quantile(0.99), Duration::ZERO);
        assert_eq!(m.mean_batch(), 0.0);
    }

    #[test]
    fn latency_statistics() {
        let mut m = BacktestMetrics::new();
        for us in [100u64, 200, 300, 400, 500] {
            m.record_response(Duration::from_micros(us));
        }
        assert_eq!(m.mean_latency(), Duration::from_micros(300));
        assert_eq!(m.latency_quantile(0.0), Duration::from_micros(100));
        assert_eq!(m.latency_quantile(1.0), Duration::from_micros(500));
        assert_eq!(m.latency_quantile(0.5), Duration::from_micros(300));
        assert_eq!(m.latency_samples(), 5);
    }

    #[test]
    fn mean_batch_accounts_issued_sizes() {
        let mut m = BacktestMetrics::new();
        m.batches = 2;
        m.batched_queries = 6;
        assert_eq!(m.mean_batch(), 3.0);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn bad_quantile_panics() {
        let m = BacktestMetrics::new();
        let _ = m.latency_quantile(1.5);
    }
}
