//! Back-test outcome accounting.

use crate::execution::ExecutionStats;
use crate::ingress::IngressReport;
use crate::telemetry::{Stage, StageBreakdown};
use lt_dnn::ModelKind;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Per-tier serving outcomes of the deadline-aware scheduler. All-zero
/// for fixed-model policies (which never consult the tier planner).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierOutcomes {
    /// Scored queries served per model tier, [`ModelKind::ALL`] order.
    pub served: [u64; 3],
    /// Scored queries served below the preferred tier (a subset of the
    /// `served` tally on cheaper tiers).
    pub degraded: u64,
}

impl TierOutcomes {
    fn slot(kind: ModelKind) -> usize {
        ModelKind::ALL
            .iter()
            .position(|&k| k == kind)
            .expect("every kind has a slot")
    }

    /// Records one scored query served at `kind`; `degraded` marks a
    /// below-preferred tier.
    pub fn record(&mut self, kind: ModelKind, degraded: bool) {
        self.served[Self::slot(kind)] += 1;
        if degraded {
            self.degraded += 1;
        }
    }

    /// Scored queries served at `kind`.
    pub fn served_at(&self, kind: ModelKind) -> u64 {
        self.served[Self::slot(kind)]
    }

    /// Scored queries across all tiers.
    pub fn served_total(&self) -> u64 {
        self.served.iter().sum()
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &TierOutcomes) {
        for (a, b) in self.served.iter_mut().zip(other.served) {
            *a += b;
        }
        self.degraded += other.degraded;
    }
}

/// Per-stage latency samples, parallel to the end-to-end latency stream.
///
/// `samples[s][i]` is the time response `i` spent in stage `s`, so for
/// every response the stage column sums to the recorded tick-to-trade
/// exactly (the decomposition is exact by construction, see
/// [`crate::telemetry::QueryTimeline::breakdown`]).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct StageSamples {
    network_rx: Vec<u64>,
    parse: Vec<u64>,
    book_update: Vec<u64>,
    offload: Vec<u64>,
    queue_wait: Vec<u64>,
    dvfs_switch: Vec<u64>,
    inference: Vec<u64>,
    egress: Vec<u64>,
}

impl StageSamples {
    fn column(&self, stage: Stage) -> &Vec<u64> {
        match stage {
            Stage::NetworkRx => &self.network_rx,
            Stage::Parse => &self.parse,
            Stage::BookUpdate => &self.book_update,
            Stage::Offload => &self.offload,
            Stage::QueueWait => &self.queue_wait,
            Stage::DvfsSwitch => &self.dvfs_switch,
            Stage::Inference => &self.inference,
            Stage::Egress => &self.egress,
        }
    }

    fn column_mut(&mut self, stage: Stage) -> &mut Vec<u64> {
        match stage {
            Stage::NetworkRx => &mut self.network_rx,
            Stage::Parse => &mut self.parse,
            Stage::BookUpdate => &mut self.book_update,
            Stage::Offload => &mut self.offload,
            Stage::QueueWait => &mut self.queue_wait,
            Stage::DvfsSwitch => &mut self.dvfs_switch,
            Stage::Inference => &mut self.inference,
            Stage::Egress => &mut self.egress,
        }
    }
}

/// p50/p99/p99.9 of one stage's latency distribution (report row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageSummary {
    /// Stable stage name (snake_case).
    pub stage: &'static str,
    /// Median stage latency, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile stage latency, nanoseconds.
    pub p99_ns: u64,
    /// 99.9th-percentile stage latency, nanoseconds.
    pub p999_ns: u64,
}

/// Aggregated results of one back-test run.
///
/// Every tick that produces an inference query (i.e. every tick after the
/// feature window warms up) ends in exactly one of the outcome buckets;
/// `responded` is the only success. The paper's **response rate** is
/// `responded / total`; its **miss rate** is the complement.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BacktestMetrics {
    /// Queries answered within the available time.
    pub responded: u64,
    /// Queries whose answer arrived after the deadline.
    pub late: u64,
    /// Queries dropped at admission (offload queue full).
    pub dropped_full: u64,
    /// Queries dropped while queued (deadline lapsed before issue).
    pub dropped_stale: u64,
    /// Queries deferred to the conventional pipeline by Algorithm 1.
    pub deferred: u64,
    /// Queries dropped by the deadline-tier planner (no registered tier's
    /// predicted cost fit the remaining budget). Zero for fixed policies.
    pub dropped_deadline: u64,
    /// Per-tier serving outcomes of the deadline-aware scheduler. For
    /// fixed policies every scored query lands on the configured kind.
    pub tiers: TierOutcomes,
    /// Tick-to-trade latencies of answered (in-time) queries, in nanos.
    latencies_ns: Vec<u64>,
    /// Per-stage decomposition of `latencies_ns` (one column per stage,
    /// one row per response). Empty for legacy recorders.
    stages: StageSamples,
    /// Total energy the accelerator pool consumed, in joules.
    pub energy_j: f64,
    /// Total batches issued.
    pub batches: u64,
    /// Sum of issued batch sizes (for mean batch size).
    pub batched_queries: u64,
    /// What the fault-injected ingress did to the feed, when the run was
    /// degraded; `None` for a clean (lossless) run.
    pub ingress: Option<IngressReport>,
    /// Execution & portfolio outcomes, when the run traded
    /// ([`crate::execution::ExecutionConfig::enabled`]); `None` for the
    /// historical latency-only runs.
    pub execution: Option<ExecutionStats>,
}

impl BacktestMetrics {
    /// Creates empty metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an in-time response with its tick-to-trade latency.
    pub fn record_response(&mut self, tick_to_trade: Duration) {
        self.responded += 1;
        self.latencies_ns.push(tick_to_trade.as_nanos() as u64);
    }

    /// Total queries across all outcome buckets.
    pub fn total(&self) -> u64 {
        self.responded
            + self.late
            + self.dropped_full
            + self.dropped_stale
            + self.deferred
            + self.dropped_deadline
    }

    /// Fraction of queries answered in time (Fig. 11(b)/Fig. 12 metric).
    pub fn response_rate(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.responded as f64 / self.total() as f64
    }

    /// Fraction of queries missed (Fig. 13 metric).
    pub fn miss_rate(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        1.0 - self.response_rate()
    }

    /// Queries whose answer wired out within `budget` of the tick: the
    /// count of recorded tick-to-trade latencies at or under the budget.
    /// Late and dropped queries never hit (a budget is at most
    /// `t_avail`, and late answers already exceeded `t_avail`).
    pub fn deadline_hits(&self, budget: Duration) -> u64 {
        let budget_ns = budget.as_nanos() as u64;
        self.latencies_ns
            .iter()
            .filter(|&&ns| ns <= budget_ns)
            .count() as u64
    }

    /// Fraction of all queries answered within `budget` of their tick —
    /// the deadline-hit-rate the tiered scheduler optimizes. Computable
    /// for fixed policies too, which is what makes them comparable.
    pub fn deadline_hit_rate(&self, budget: Duration) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.deadline_hits(budget) as f64 / self.total() as f64
    }

    /// Mean batch size over all issued batches.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.batched_queries as f64 / self.batches as f64
    }

    /// Mean tick-to-trade of in-time responses.
    pub fn mean_latency(&self) -> Duration {
        if self.latencies_ns.is_empty() {
            return Duration::ZERO;
        }
        let sum: u64 = self.latencies_ns.iter().sum();
        Duration::from_nanos(sum / self.latencies_ns.len() as u64)
    }

    /// The `q`-quantile (0.0–1.0) of in-time tick-to-trade latencies.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn latency_quantile(&self, q: f64) -> Duration {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.latencies_ns.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.latencies_ns.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        Duration::from_nanos(sorted[idx])
    }

    /// Number of recorded response latencies (equals [`Self::responded`]).
    pub fn latency_samples(&self) -> usize {
        self.latencies_ns.len()
    }

    /// The raw tick-to-trade latencies (nanoseconds) in recording order.
    pub fn latencies(&self) -> &[u64] {
        &self.latencies_ns
    }

    /// Records an in-time response with its exact per-stage split; the
    /// end-to-end latency is the breakdown's total.
    pub fn record_breakdown(&mut self, b: &StageBreakdown) {
        self.responded += 1;
        self.latencies_ns.push(b.total().as_nanos() as u64);
        for stage in Stage::ALL {
            self.stages
                .column_mut(stage)
                .push(b.get(stage).as_nanos() as u64);
        }
    }

    /// True when every response carries a per-stage decomposition.
    pub fn has_stage_samples(&self) -> bool {
        !self.latencies_ns.is_empty() && self.stages.network_rx.len() == self.latencies_ns.len()
    }

    /// The raw samples of one stage (nanoseconds, recording order).
    pub fn stage_samples(&self, stage: Stage) -> &[u64] {
        self.stages.column(stage)
    }

    /// The `q`-quantile (0.0–1.0) of one stage's latency distribution.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn stage_quantile(&self, stage: Stage, q: f64) -> Duration {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let col = self.stages.column(stage);
        if col.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = col.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        Duration::from_nanos(sorted[idx])
    }

    /// p50/p99/p99.9 per stage, in pipeline order (the report surface;
    /// serializable per run).
    pub fn stage_summaries(&self) -> Vec<StageSummary> {
        Stage::ALL
            .iter()
            .map(|&stage| StageSummary {
                stage: stage.name(),
                p50_ns: self.stage_quantile(stage, 0.50).as_nanos() as u64,
                p99_ns: self.stage_quantile(stage, 0.99).as_nanos() as u64,
                p999_ns: self.stage_quantile(stage, 0.999).as_nanos() as u64,
            })
            .collect()
    }

    /// Verifies that every response's stage column sums to its recorded
    /// end-to-end latency within `tolerance_ns`. The engine's greedy
    /// decomposition makes this exact (tolerance 0 passes); the method
    /// exists so tests and reports can assert it.
    pub fn stage_sums_reconcile(&self, tolerance_ns: u64) -> bool {
        if !self.has_stage_samples() {
            return self.latencies_ns.is_empty();
        }
        (0..self.latencies_ns.len()).all(|i| {
            let sum: u64 = Stage::ALL.iter().map(|&s| self.stages.column(s)[i]).sum();
            sum.abs_diff(self.latencies_ns[i]) <= tolerance_ns
        })
    }
}

impl std::fmt::Display for BacktestMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} queries: {:.1}% responded (late {}, full {}, stale {}, deferred {}), \
             mean t2t {:?}, mean batch {:.2}",
            self.total(),
            self.response_rate() * 100.0,
            self.late,
            self.dropped_full,
            self.dropped_stale,
            self.deferred,
            self.mean_latency(),
            self.mean_batch(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_sum_to_one() {
        let mut m = BacktestMetrics::new();
        m.record_response(Duration::from_micros(100));
        m.record_response(Duration::from_micros(200));
        m.late = 1;
        m.dropped_full = 1;
        m.dropped_stale = 1;
        m.deferred = 1;
        assert_eq!(m.total(), 6);
        assert!((m.response_rate() - 2.0 / 6.0).abs() < 1e-12);
        assert!((m.response_rate() + m.miss_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_are_safe() {
        let m = BacktestMetrics::new();
        assert_eq!(m.response_rate(), 0.0);
        assert_eq!(m.miss_rate(), 0.0);
        assert_eq!(m.mean_latency(), Duration::ZERO);
        assert_eq!(m.latency_quantile(0.99), Duration::ZERO);
        assert_eq!(m.mean_batch(), 0.0);
    }

    #[test]
    fn latency_statistics() {
        let mut m = BacktestMetrics::new();
        for us in [100u64, 200, 300, 400, 500] {
            m.record_response(Duration::from_micros(us));
        }
        assert_eq!(m.mean_latency(), Duration::from_micros(300));
        assert_eq!(m.latency_quantile(0.0), Duration::from_micros(100));
        assert_eq!(m.latency_quantile(1.0), Duration::from_micros(500));
        assert_eq!(m.latency_quantile(0.5), Duration::from_micros(300));
        assert_eq!(m.latency_samples(), 5);
    }

    #[test]
    fn deadline_hit_rate_counts_in_budget_responses() {
        let mut m = BacktestMetrics::new();
        for us in [100u64, 200, 300, 400, 500] {
            m.record_response(Duration::from_micros(us));
        }
        m.late = 3;
        m.dropped_deadline = 2;
        assert_eq!(m.total(), 10);
        assert_eq!(m.deadline_hits(Duration::from_micros(300)), 3);
        assert!((m.deadline_hit_rate(Duration::from_micros(300)) - 0.3).abs() < 1e-12);
        assert_eq!(m.deadline_hits(Duration::from_micros(50)), 0);
        assert_eq!(
            BacktestMetrics::new().deadline_hit_rate(Duration::from_micros(1)),
            0.0
        );
    }

    #[test]
    fn tier_outcomes_tally_and_merge() {
        let mut t = TierOutcomes::default();
        t.record(ModelKind::DeepLob, false);
        t.record(ModelKind::VanillaCnn, true);
        t.record(ModelKind::VanillaCnn, true);
        assert_eq!(t.served_at(ModelKind::VanillaCnn), 2);
        assert_eq!(t.served_at(ModelKind::DeepLob), 1);
        assert_eq!(t.served_total(), 3);
        assert_eq!(t.degraded, 2);
        let mut other = TierOutcomes::default();
        other.record(ModelKind::TransLob, true);
        t.merge(&other);
        assert_eq!(t.served_total(), 4);
        assert_eq!(t.degraded, 3);
        // dropped_deadline participates in the outcome tiling.
        let mut m = BacktestMetrics::new();
        m.responded = 2;
        m.dropped_deadline = 3;
        assert_eq!(m.total(), 5);
    }

    #[test]
    fn mean_batch_accounts_issued_sizes() {
        let mut m = BacktestMetrics::new();
        m.batches = 2;
        m.batched_queries = 6;
        assert_eq!(m.mean_batch(), 3.0);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn bad_quantile_panics() {
        let m = BacktestMetrics::new();
        let _ = m.latency_quantile(1.5);
    }

    use crate::telemetry::QueryTimeline;
    use lt_lob::Timestamp;
    use lt_pipeline::PipelineLatencies;

    /// A well-ordered timeline whose queue wait is `wait_ns`.
    fn timeline(wait_ns: u64) -> QueryTimeline {
        let stages = PipelineLatencies::fpga();
        let stamp = stages.ingress_stamp();
        let tick_ts = Timestamp::from_nanos(1_000);
        let ready_at = tick_ts + stamp.total();
        let issue = ready_at + Duration::from_nanos(wait_ns);
        QueryTimeline {
            ingress: stamp,
            tick_ts,
            ready_at,
            issue,
            completion: issue + Duration::from_micros(100),
            dvfs_switch: Duration::ZERO,
            egress: stages.egress(),
        }
    }

    #[test]
    fn breakdowns_feed_both_latency_and_stage_streams() {
        let mut m = BacktestMetrics::new();
        m.record_breakdown(&timeline(500).breakdown());
        m.record_breakdown(&timeline(2_500).breakdown());
        assert_eq!(m.responded, 2);
        assert_eq!(m.latency_samples(), 2);
        assert!(m.has_stage_samples());
        assert_eq!(m.stage_samples(Stage::QueueWait), &[500, 2_500]);
        // Each response's stage column sums to its end-to-end latency.
        assert!(m.stage_sums_reconcile(0), "decomposition must be exact");
    }

    #[test]
    fn stage_quantiles_and_summaries() {
        let mut m = BacktestMetrics::new();
        for wait in [100u64, 200, 300, 400, 500] {
            m.record_breakdown(&timeline(wait).breakdown());
        }
        assert_eq!(
            m.stage_quantile(Stage::QueueWait, 0.5),
            Duration::from_nanos(300)
        );
        assert_eq!(
            m.stage_quantile(Stage::QueueWait, 1.0),
            Duration::from_nanos(500)
        );
        // The ingress stages are constant, so every quantile agrees.
        let stamp = PipelineLatencies::fpga().ingress_stamp();
        assert_eq!(m.stage_quantile(Stage::Parse, 0.99), stamp.parse);
        let summaries = m.stage_summaries();
        assert_eq!(summaries.len(), Stage::ALL.len());
        let wait = summaries.iter().find(|s| s.stage == "queue_wait").unwrap();
        assert_eq!(wait.p50_ns, 300);
        assert_eq!(wait.p99_ns, 500);
        assert_eq!(wait.p999_ns, 500);
    }

    #[test]
    fn legacy_recording_has_no_stage_samples() {
        let mut m = BacktestMetrics::new();
        m.record_response(Duration::from_micros(100));
        assert!(!m.has_stage_samples());
        assert!(!m.stage_sums_reconcile(0), "latency without stages");
        assert_eq!(m.stage_quantile(Stage::Inference, 0.5), Duration::ZERO);
        let empty = BacktestMetrics::new();
        assert!(empty.stage_sums_reconcile(0), "vacuously reconciled");
    }
}
