//! Back-test configuration.

use crate::execution::ExecutionConfig;
use crate::ingress::IngressFaults;
use lt_accel::PowerCondition;
use lt_dnn::ModelKind;
use lt_pipeline::PipelineLatencies;
use lt_sched::{Policy, TierLadder};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Parameters of the deadline-aware model-tier scheduler, active when
/// the policy is [`Policy::DeadlineTiered`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierParams {
    /// The fixed configuration whose WS/DS machinery the tiered
    /// scheduler runs on top of (one of the four Fig. 13 policies).
    pub base: Policy,
    /// Per-tick deadline budget the planner fits tiers into. `None`
    /// means unbounded: the planner always serves the best registered
    /// tier — with a single-tier ladder this reduces *exactly* to the
    /// base policy.
    pub budget: Option<Duration>,
    /// The registered model tiers; the best (most expensive) entry must
    /// be the config's preferred `kind`.
    pub ladder: TierLadder,
}

impl TierParams {
    /// The exact-reduction parameters for a preferred `kind`: only that
    /// tier registered, no budget. With these, `DeadlineTiered` behaves
    /// byte-identically to `base`.
    pub fn passthrough(kind: ModelKind, base: Policy) -> Self {
        TierParams {
            base,
            budget: None,
            ladder: TierLadder::single(kind),
        }
    }
}

/// Configuration of one LightTrader back-test run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BacktestConfig {
    /// The DNN benchmark being served.
    pub kind: ModelKind,
    /// Number of AI accelerators on the card (1–16 in the evaluation).
    pub n_accels: usize,
    /// Co-location power condition.
    pub condition: PowerCondition,
    /// Active scheduling schemes.
    pub policy: Policy,
    /// Available time per query (prediction-horizon validity window).
    pub t_avail: Duration,
    /// Offload-engine tensor queue capacity.
    pub queue_capacity: usize,
    /// Feature-window length (ticks) before queries start.
    pub window: usize,
    /// Conventional-pipeline stage budget (ingress stamps + egress).
    pub stages: PipelineLatencies,
    /// Ingress fault injection for the redundant A/B feed pair. Defaults
    /// to lossless, which bypasses the ingress stage entirely — a config
    /// without faults behaves bit-identically to one predating the field.
    /// (The shim serde derive has no `default` attribute, so configs are
    /// always serialized in full.)
    pub faults: IngressFaults,
    /// Number of instruments served by the sharded pipeline. The default
    /// of 1 is the historical single-instrument configuration and stays
    /// bit-identical to configs predating the field.
    pub symbols: usize,
    /// Zipf traffic-skew exponent across symbols (0 = even split); only
    /// meaningful when `symbols > 1`.
    pub symbol_skew: f64,
    /// Deadline-tier scheduler parameters; only consulted when `policy`
    /// is [`Policy::DeadlineTiered`].
    pub tier: TierParams,
    /// The execution & portfolio layer. Disabled by default — and even
    /// enabled it never touches the latency/outcome surface (fills push
    /// no events), so configs predating the field stay bit-identical.
    pub execution: ExecutionConfig,
}

impl BacktestConfig {
    /// The evaluation defaults for `kind` with `n_accels` accelerators.
    pub fn new(kind: ModelKind, n_accels: usize, condition: PowerCondition) -> Self {
        BacktestConfig {
            kind,
            n_accels,
            condition,
            policy: Policy::Baseline,
            t_avail: crate::traffic::evaluation_deadline(),
            queue_capacity: 64,
            window: 100,
            stages: PipelineLatencies::fpga(),
            faults: IngressFaults::lossless(),
            symbols: 1,
            symbol_skew: 0.0,
            tier: TierParams::passthrough(kind, Policy::Both),
            execution: ExecutionConfig::default(),
        }
    }

    /// Sets the scheduling policy.
    #[must_use]
    pub fn with_policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the per-query available time.
    #[must_use]
    pub fn with_t_avail(mut self, t_avail: Duration) -> Self {
        self.t_avail = t_avail;
        self
    }

    /// Overrides the conventional-pipeline stage budget.
    #[must_use]
    pub fn with_stages(mut self, stages: PipelineLatencies) -> Self {
        self.stages = stages;
        self
    }

    /// Injects ingress faults on the redundant A/B feed pair.
    #[must_use]
    pub fn with_faults(mut self, faults: IngressFaults) -> Self {
        self.faults = faults;
        self
    }

    /// Serves `symbols` instruments with a Zipf traffic skew of `skew`
    /// through the sharded pipeline (see [`crate::run_multi`]).
    #[must_use]
    pub fn with_symbols(mut self, symbols: usize, skew: f64) -> Self {
        self.symbols = symbols;
        self.symbol_skew = skew;
        self
    }

    /// Enables deadline-aware model-tier scheduling: the full degradation
    /// ladder up to the preferred `kind`, the Both (WS+DS) machinery as
    /// the base, and a per-tick deadline `budget` (`None` = unbounded).
    #[must_use]
    pub fn with_deadline_tiered(mut self, budget: Option<Duration>) -> Self {
        self.policy = Policy::DeadlineTiered;
        self.tier = TierParams {
            base: Policy::Both,
            budget,
            ladder: TierLadder::up_to(self.kind),
        };
        self
    }

    /// Overrides the tiered scheduler's base (fixed) policy.
    #[must_use]
    pub fn with_tier_base(mut self, base: Policy) -> Self {
        self.tier.base = base;
        self
    }

    /// Overrides the tiered scheduler's registered ladder.
    #[must_use]
    pub fn with_tier_ladder(mut self, ladder: TierLadder) -> Self {
        self.tier.ladder = ladder;
        self
    }

    /// Enables the execution & portfolio layer with `execution`.
    #[must_use]
    pub fn with_execution(mut self, execution: ExecutionConfig) -> Self {
        self.execution = execution;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on zero accelerators, zero capacity, a zero window, or a
    /// stage budget with a zero-latency stage.
    pub fn validate(&self) {
        assert!(self.n_accels > 0, "need at least one accelerator");
        assert!(self.queue_capacity > 0, "queue capacity must be positive");
        assert!(self.window > 0, "window must be positive");
        assert!(self.t_avail > Duration::ZERO, "t_avail must be positive");
        if let Err(stage) = self.stages.validate() {
            panic!("pipeline stage '{stage}' has zero latency");
        }
        assert!(self.symbols >= 1, "need at least one symbol");
        assert!(
            self.symbols <= lt_feed::multi::MAX_SYMBOLS,
            "at most {} symbols",
            lt_feed::multi::MAX_SYMBOLS
        );
        assert!(
            self.symbol_skew >= 0.0 && self.symbol_skew.is_finite(),
            "symbol skew must be >= 0"
        );
        if self.policy == Policy::DeadlineTiered {
            assert!(
                matches!(
                    self.tier.base,
                    Policy::Baseline
                        | Policy::WorkloadScheduling
                        | Policy::DvfsScheduling
                        | Policy::Both
                ),
                "tier base must be a fixed policy"
            );
            assert!(
                !self.tier.ladder.is_empty(),
                "tier ladder must be non-empty"
            );
            assert!(
                self.tier.ladder.best() == Some(self.kind),
                "the preferred kind must be the ladder's best tier"
            );
            if let Some(budget) = self.tier.budget {
                assert!(budget > Duration::ZERO, "tier budget must be positive");
                assert!(budget <= self.t_avail, "tier budget cannot exceed t_avail");
            }
        }
        self.faults.validate();
        self.execution.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes() {
        let cfg = BacktestConfig::new(ModelKind::DeepLob, 4, PowerCondition::Limited)
            .with_policy(Policy::Both)
            .with_t_avail(Duration::from_millis(2));
        assert_eq!(cfg.kind, ModelKind::DeepLob);
        assert_eq!(cfg.n_accels, 4);
        assert_eq!(cfg.policy, Policy::Both);
        assert_eq!(cfg.t_avail, Duration::from_millis(2));
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "at least one accelerator")]
    fn zero_accels_invalid() {
        let mut cfg = BacktestConfig::new(ModelKind::VanillaCnn, 1, PowerCondition::Sufficient);
        cfg.n_accels = 0;
        cfg.validate();
    }

    #[test]
    fn deadline_tiered_builder_composes() {
        let cfg = BacktestConfig::new(ModelKind::DeepLob, 4, PowerCondition::Limited)
            .with_deadline_tiered(Some(Duration::from_micros(450)));
        assert_eq!(cfg.policy, Policy::DeadlineTiered);
        assert_eq!(cfg.tier.base, Policy::Both);
        assert_eq!(cfg.tier.budget, Some(Duration::from_micros(450)));
        assert_eq!(cfg.tier.ladder, TierLadder::up_to(ModelKind::DeepLob));
        cfg.validate();
        let pass = BacktestConfig::new(ModelKind::TransLob, 2, PowerCondition::Sufficient)
            .with_deadline_tiered(None)
            .with_tier_base(Policy::Baseline)
            .with_tier_ladder(TierLadder::single(ModelKind::TransLob));
        assert_eq!(
            pass.tier,
            TierParams::passthrough(ModelKind::TransLob, Policy::Baseline)
        );
        pass.validate();
    }

    #[test]
    #[should_panic(expected = "ladder's best tier")]
    fn ladder_must_top_out_at_preferred_kind() {
        let cfg = BacktestConfig::new(ModelKind::TransLob, 2, PowerCondition::Sufficient)
            .with_deadline_tiered(None)
            .with_tier_ladder(TierLadder::single(ModelKind::DeepLob));
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "cannot exceed t_avail")]
    fn tier_budget_capped_by_t_avail() {
        let cfg = BacktestConfig::new(ModelKind::DeepLob, 2, PowerCondition::Sufficient)
            .with_t_avail(Duration::from_micros(400))
            .with_deadline_tiered(Some(Duration::from_micros(500)));
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "tier base must be a fixed policy")]
    fn tier_base_cannot_recurse() {
        let cfg = BacktestConfig::new(ModelKind::DeepLob, 2, PowerCondition::Sufficient)
            .with_deadline_tiered(None)
            .with_tier_base(Policy::DeadlineTiered);
        cfg.validate();
    }
}
