//! The GPU-based and FPGA-based comparison systems (§II-D, §IV-A).
//!
//! Both baselines are profiled single-device systems: a fixed per-model
//! inference latency (no batching — "most job batch sizes in AI-enabled
//! HFT are set to single"), a software or FPGA conventional pipeline, and
//! an input queue with the same stale-management as LightTrader's offload
//! engine. Latency profiles are scaled from LightTrader's measured
//! anchors by per-model factors whose averages equal the paper's reported
//! speed-ups (13.92x over GPU, 7.28x over FPGA); device powers are
//! calibrated so the Fig. 11(c) energy-efficiency ratios (23.6x / 11.6x)
//! come out.

use crate::engine::{self, EngineCtx, Event, PendingOrder, SimModel};
use crate::metrics::BacktestMetrics;
use crate::telemetry::QueryTimeline;
use lt_accel::device::BatchId;
use lt_dnn::ModelKind;
use lt_feed::NormStats;
use lt_feed::{TickRecord, TickTrace};
use lt_lob::Timestamp;
use lt_pipeline::{OffloadEngine, PipelineLatencies};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// A profiled single-device system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SingleDeviceSystem {
    /// Display name ("GPU-based" / "FPGA-based").
    pub name: &'static str,
    /// Batch-1 inference latency per model.
    latency_us: [f64; 3],
    /// Average device power during inference, in watts.
    pub power_w: f64,
    /// Conventional-pipeline stage costs.
    pub stages: PipelineLatencies,
}

impl SingleDeviceSystem {
    /// The GPU-based system: i7-11700 + X2522 NIC + Tesla V100.
    ///
    /// Per-model slowdowns (16.0x, 14.5x, 11.26x) average the paper's
    /// 13.92x; power is calibrated to Fig. 11(c) (see module docs).
    pub fn gpu() -> Self {
        SingleDeviceSystem {
            name: "GPU-based",
            latency_us: [119.0 * 16.0, 160.0 * 14.5, 296.0 * 11.26],
            power_w: 41.9,
            stages: PipelineLatencies::software(),
        }
    }

    /// The FPGA-based system: i7-11700 + Alveo U250.
    ///
    /// Per-model slowdowns (8.2x, 7.3x, 6.34x) average the paper's 7.28x.
    pub fn fpga() -> Self {
        SingleDeviceSystem {
            name: "FPGA-based",
            latency_us: [119.0 * 8.2, 160.0 * 7.3, 296.0 * 6.34],
            power_w: 39.4,
            stages: PipelineLatencies::fpga(),
        }
    }

    /// A custom profiled device serving every model kind at the same
    /// latency — used by the Fig. 8 model-complexity ladder (M1..M5).
    pub fn custom(name: &'static str, latency_us: f64, power_w: f64) -> Self {
        SingleDeviceSystem {
            name,
            latency_us: [latency_us; 3],
            power_w,
            stages: PipelineLatencies::fpga(),
        }
    }

    /// Batch-1 inference latency for `kind`.
    pub fn inference_latency(&self, kind: ModelKind) -> Duration {
        let us = match kind {
            ModelKind::VanillaCnn => self.latency_us[0],
            ModelKind::TransLob => self.latency_us[1],
            ModelKind::DeepLob => self.latency_us[2],
        };
        Duration::from_nanos((us * 1_000.0) as u64)
    }

    /// Effective TFLOPS/W at batch 1 (Fig. 11(c) metric), using the same
    /// per-inference workload convention as the accelerator profile.
    pub fn effective_tflops_per_watt(&self, kind: ModelKind) -> f64 {
        let ops = lt_accel::latency::LatencyModel::ops_per_inference(kind);
        let t = self.inference_latency(kind).as_secs_f64();
        ops / t / 1e12 / self.power_w
    }
}

/// The single-device back-test as a [`SimModel`]: one FIFO device, no
/// batching, stale management at issue time.
struct SingleDeviceModel<'a> {
    system: &'a SingleDeviceSystem,
    kind: ModelKind,
    service: Duration,
    egress: Duration,
    stale_budget: Duration,
    t_avail: Duration,
    offload: OffloadEngine,
    /// The device is free from this time onward.
    device_free: Timestamp,
}

impl SingleDeviceModel<'_> {
    /// Issues queued queries whose start time has arrived; schedules a
    /// [`Event::BatchIssue`] wake-up when the device is idle but the
    /// oldest tensor is not ready yet (the completion event resumes the
    /// busy case).
    fn try_issue(&mut self, ctx: &mut EngineCtx) {
        let now = ctx.now;
        loop {
            // Work through queued tensors while the device can start.
            let start = self
                .device_free
                .max(self.offload.oldest().map_or(now, |t| t.ready_at));
            if start > now {
                if self.device_free <= now {
                    // Idle device waiting on tensor readiness: wake up
                    // exactly then. (A busy device resumes at its
                    // completion event instead.)
                    ctx.queue.push_at(start, Event::BatchIssue { aid: 0 });
                }
                break;
            }
            // Stale management at issue time.
            let stale = self.offload.drop_stale(start, self.stale_budget);
            ctx.metrics.dropped_stale += stale.len() as u64;
            let Some(ticket) = self.offload.pop_ticket() else {
                break;
            };
            let issue = start.max(ticket.ready_at);
            let completion = issue + self.service;
            ctx.metrics.batches += 1;
            ctx.metrics.batched_queries += 1;
            self.device_free = completion;
            let breakdown = QueryTimeline {
                ingress: ticket.ingress,
                tick_ts: ticket.tick_ts,
                ready_at: ticket.ready_at,
                issue,
                completion,
                dvfs_switch: Duration::ZERO,
                egress: self.egress,
            }
            .breakdown();
            ctx.queue.push_at(
                completion + self.egress,
                Event::OrderOut {
                    orders: vec![PendingOrder {
                        tick_ts: ticket.tick_ts,
                        deadline: ticket.tick_ts + self.t_avail,
                        breakdown,
                        shard: 0,
                        tier: self.kind,
                        intent: None,
                    }],
                },
            );
            ctx.queue.push_at(
                completion,
                Event::BatchComplete {
                    aid: 0,
                    batch: BatchId::default(),
                },
            );
        }
    }
}

impl SimModel for SingleDeviceModel<'_> {
    fn on_tick(&mut self, tick: &TickRecord, ctx: &mut EngineCtx) {
        let before_full = self.offload.dropped_full();
        self.offload
            .on_tick_staged(&tick.snapshot, tick.ts, &self.system.stages);
        ctx.metrics.dropped_full += self.offload.dropped_full() - before_full;
        self.try_issue(ctx);
    }

    fn on_batch_issue(&mut self, _aid: usize, ctx: &mut EngineCtx) {
        self.try_issue(ctx);
    }

    fn on_batch_complete(&mut self, _aid: usize, _batch: BatchId, ctx: &mut EngineCtx) {
        // A single FIFO device never re-times a batch, so every
        // completion token is current.
        self.try_issue(ctx);
    }

    fn on_order_scored(&mut self, order: &PendingOrder, _in_time: bool, ctx: &mut EngineCtx) {
        // A single device serves one fixed model: never degraded.
        ctx.metrics
            .tiers
            .record(order.tier, order.tier != self.kind);
    }

    fn on_finish(&mut self, ctx: &mut EngineCtx) {
        ctx.metrics.energy_j =
            self.system.power_w * self.service.as_secs_f64() * ctx.metrics.batches as f64;
    }
}

/// Replays `trace` through a single-device system and reports metrics.
///
/// The device serves queries one at a time in FIFO order; queued queries
/// whose deadline lapses are dropped (stale management); the queue is
/// capacity-bounded like the offload engine.
pub fn run_single_device(
    trace: &TickTrace,
    system: &SingleDeviceSystem,
    kind: ModelKind,
    t_avail: Duration,
    window: usize,
    queue_capacity: usize,
) -> BacktestMetrics {
    let service = system.inference_latency(kind);
    let egress = system.stages.egress();
    let mut model = SingleDeviceModel {
        system,
        kind,
        service,
        egress,
        stale_budget: t_avail.saturating_sub(egress + service),
        t_avail,
        offload: OffloadEngine::new(NormStats::identity(10), window, queue_capacity),
        device_free: Timestamp::ZERO,
    };
    engine::run(&mut model, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_feed::SessionBuilder;

    #[test]
    fn latency_factors_average_to_paper_speedups() {
        let lt = [119.0, 160.0, 296.0];
        let gpu = SingleDeviceSystem::gpu();
        let fpga = SingleDeviceSystem::fpga();
        let avg = |sys: &SingleDeviceSystem| {
            ModelKind::ALL
                .iter()
                .zip(lt)
                .map(|(k, base)| sys.inference_latency(*k).as_nanos() as f64 / (base * 1_000.0))
                .sum::<f64>()
                / 3.0
        };
        assert!((avg(&gpu) - 13.92).abs() < 0.01, "gpu avg {:.3}", avg(&gpu));
        assert!(
            (avg(&fpga) - 7.28).abs() < 0.01,
            "fpga avg {:.3}",
            avg(&fpga)
        );
    }

    #[test]
    fn gpu_slower_than_fpga_slower_than_nothing() {
        for kind in ModelKind::ALL {
            assert!(
                SingleDeviceSystem::gpu().inference_latency(kind)
                    > SingleDeviceSystem::fpga().inference_latency(kind)
            );
        }
    }

    #[test]
    fn calm_traffic_yields_high_response_rate() {
        let trace = SessionBuilder::calm_traffic()
            .duration_secs(5.0)
            .seed(1)
            .build()
            .trace;
        let m = run_single_device(
            &trace,
            &SingleDeviceSystem::fpga(),
            ModelKind::VanillaCnn,
            Duration::from_millis(5),
            10,
            64,
        );
        assert!(m.total() > 100);
        assert!(
            m.response_rate() > 0.9,
            "calm traffic, fast system: {:.3}",
            m.response_rate()
        );
    }

    #[test]
    fn overload_yields_low_response_rate() {
        // Stressed traffic (thousands of ticks/s) vs a 3.3 ms service
        // time: the GPU system must miss most queries.
        let trace = SessionBuilder::stressed_traffic()
            .duration_secs(2.0)
            .seed(2)
            .build()
            .trace;
        let m = run_single_device(
            &trace,
            &SingleDeviceSystem::gpu(),
            ModelKind::DeepLob,
            Duration::from_millis(5),
            10,
            64,
        );
        assert!(m.response_rate() < 0.2, "got {:.3}", m.response_rate());
        assert!(m.total() > 1_000);
    }

    #[test]
    fn deterministic_replay() {
        let trace = SessionBuilder::calm_traffic()
            .duration_secs(2.0)
            .seed(3)
            .build()
            .trace;
        let run = || {
            run_single_device(
                &trace,
                &SingleDeviceSystem::gpu(),
                ModelKind::TransLob,
                Duration::from_millis(5),
                10,
                64,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.responded, b.responded);
        assert_eq!(a.total(), b.total());
    }
}
