//! The calibrated evaluation traffic and deadline.
//!
//! The paper back-tests on CME E-mini S&P 500 tick data; our substitute
//! is a synthetic session (see `lt-feed`) with two components:
//!
//! * a mildly self-excited Hawkes background (`µ = 70/s`, branching 0.1,
//!   decay 3 000/s) that sets the sustained load the baseline systems
//!   queue against, and
//! * rare machine-speed **flash bursts** (1.3/s, geometric mean 25
//!   events, 10 µs intra-burst gaps) — the paper's "market disruption
//!   occurred more than once a day" cascades — which stress LightTrader's
//!   own throughput.
//!
//! The parameters were fitted by `lt-bench`'s `calibrate` binary so that
//! single-accelerator response rates land on Fig. 11(b): measured
//! LightTrader 96.5/93.2/87.3% vs paper 94.2/91.9/87.1%, GPU
//! 74.7/72.5/60.5% vs ~71.9/70.2/66.5%, FPGA 79.4/78.5/74.9% vs
//! ~78.5/76.6/72.6% (30 s session). EXPERIMENTS.md records the
//! full-length runs.

use lt_feed::{
    FlashParams, HawkesParams, MarketSession, SessionArtifact, SessionBuilder, SessionSpec,
    TraceCache,
};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Seed used by every headline experiment (re-runnable back-tests).
pub const EVALUATION_SEED: u64 = 20230225; // HPCA 2023 conference date

/// The per-query available time (`t_avail`): the prediction-horizon
/// validity window within which an answer still has value (§II-C).
pub fn evaluation_deadline() -> Duration {
    Duration::from_millis(5)
}

/// The tighter available time used by the scheduling study (Fig. 13):
/// a genuinely constrained horizon makes Algorithm 1's batching and
/// Algorithm 2's boosting decisions matter, as in the paper's miss-rate
/// experiments. (The 5 ms response window above is what lets the GPU
/// baseline participate in Fig. 11 at all.)
pub fn scheduling_deadline() -> Duration {
    Duration::from_micros(620)
}

/// Per-model scheduling horizon: four times the model's batch-1 reference
/// service. LOB models are trained for horizons measured in *tick steps*,
/// and heavier models target proportionally longer horizons (the DeepLOB
/// paper evaluates k = 10..100); scaling the validity window with the
/// model keeps every benchmark in the regime where scheduling decisions
/// are neither trivial nor hopeless.
pub fn scheduling_deadline_for(kind: lt_dnn::ModelKind) -> Duration {
    match kind {
        lt_dnn::ModelKind::VanillaCnn => Duration::from_micros(480),
        lt_dnn::ModelKind::TransLob => Duration::from_micros(640),
        lt_dnn::ModelKind::DeepLob => Duration::from_micros(1_200),
    }
}

/// The calibrated Hawkes background.
pub fn evaluation_hawkes() -> HawkesParams {
    HawkesParams::new(70.0, 300.0, 3_000.0)
}

/// The calibrated flash-burst component.
pub fn evaluation_flash() -> FlashParams {
    FlashParams::new(1.3, 25.0, 10e-6)
}

/// The burst-storm stress profile: flash cascades an order of magnitude
/// more frequent and twice as deep as the calibrated evaluation traffic.
/// This is the deadline-tier scheduler's design workload — sustained
/// machine-speed storms where a fixed heavyweight model blows through
/// per-tick budgets and only graceful degradation keeps answers flowing.
pub fn burst_storm_flash() -> FlashParams {
    FlashParams::new(12.0, 50.0, 10e-6)
}

/// Generates the burst-storm session: the calibrated Hawkes background
/// overlaid with [`burst_storm_flash`] cascades.
pub fn burst_storm_session(secs: f64, seed: u64) -> MarketSession {
    SessionBuilder::new(evaluation_hawkes())
        .flash_bursts(burst_storm_flash())
        .duration_secs(secs)
        .seed(seed)
        .build()
}

/// Convenience: just the trace of [`burst_storm_session`].
pub fn burst_storm_trace(secs: f64, seed: u64) -> lt_feed::TickTrace {
    burst_storm_session(secs, seed).trace
}

/// Generates the shared evaluation session: `secs` of synthetic E-mini
/// trading plus fitted normalization statistics.
pub fn evaluation_session(secs: f64, seed: u64) -> MarketSession {
    SessionBuilder::new(evaluation_hawkes())
        .flash_bursts(evaluation_flash())
        .duration_secs(secs)
        .seed(seed)
        .build()
}

/// Convenience: just the trace of [`evaluation_session`].
///
/// Deliberately uncached: the determinism suite relies on independently
/// regenerated traces to cover the whole feed → engine → metrics
/// pipeline. Callers that want sharing go through
/// [`cached_evaluation_session`].
pub fn evaluation_trace(secs: f64, seed: u64) -> lt_feed::TickTrace {
    evaluation_session(secs, seed).trace
}

/// The [`SessionSpec`] of [`evaluation_session`]: same traffic, same
/// seed, cacheable. `spec.build()` is bit-identical to the direct
/// builder path.
pub fn evaluation_spec(secs: f64, seed: u64) -> SessionSpec {
    SessionSpec::single(evaluation_hawkes(), secs, seed).with_flash(evaluation_flash())
}

/// The process-wide trace cache shared by the experiment helpers and
/// any farm runner that opts in — one evaluation session build per
/// (secs, seed) per process, however many experiments replay it.
pub fn shared_trace_cache() -> Arc<TraceCache> {
    static CACHE: OnceLock<Arc<TraceCache>> = OnceLock::new();
    Arc::clone(CACHE.get_or_init(|| Arc::new(TraceCache::new())))
}

/// [`evaluation_session`] through [`shared_trace_cache`]: builds once
/// per (secs, seed) per process and hands out shared immutable `Arc`s.
pub fn cached_evaluation_session(secs: f64, seed: u64) -> Arc<SessionArtifact> {
    shared_trace_cache().get_or_build(&evaluation_spec(secs, seed))
}

/// Generates the multi-instrument evaluation session: `symbols`
/// correlated synthetic feeds at the calibrated per-symbol traffic, with
/// a Zipf skew of `skew` concentrating load on the leading symbols.
pub fn multi_evaluation_session(
    secs: f64,
    seed: u64,
    symbols: usize,
    skew: f64,
) -> lt_feed::MultiMarketSession {
    lt_feed::MultiSessionBuilder::new(evaluation_hawkes())
        .flash_bursts(evaluation_flash())
        .symbols(symbols)
        .skew(skew)
        .duration_secs(secs)
        .seed(seed)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_is_bursty_at_the_right_rate() {
        let trace = evaluation_trace(30.0, EVALUATION_SEED);
        let stats = trace.stats();
        let mean_rate = stats.mean_rate();
        let theory = evaluation_hawkes().mean_rate() + evaluation_flash().mean_event_rate();
        assert!(
            (mean_rate - theory).abs() / theory < 0.25,
            "rate {mean_rate:.0}/s vs theory {theory:.0}/s"
        );
        assert!(
            stats.cv > 1.2,
            "cv {} — must be burstier than Poisson",
            stats.cv
        );
        // Gaps must span the paper's µs-to-seconds range.
        assert!(stats.min_gap_nanos < 100_000, "machine-speed gaps exist");
        assert!(stats.max_gap_nanos > 50_000_000, "long quiet periods exist");
    }

    #[test]
    fn deadline_fits_every_system_unloaded() {
        // Each system can answer at least an unqueued query in time,
        // otherwise Fig. 11(b) comparisons are vacuous.
        let deadline = evaluation_deadline();
        assert!(deadline > Duration::from_micros(3_400), "GPU DeepLOB fits");
    }

    #[test]
    fn cached_session_matches_the_direct_build_bit_for_bit() {
        let direct = evaluation_session(2.0, 77);
        let spec = evaluation_spec(2.0, 77);
        assert_eq!(spec.build().single().trace, direct.trace);
        let cached = cached_evaluation_session(2.0, 77);
        assert_eq!(cached.single().trace, direct.trace);
        // A second lookup shares the same artifact, not a rebuild.
        let again = cached_evaluation_session(2.0, 77);
        assert!(std::sync::Arc::ptr_eq(&cached, &again));
    }

    #[test]
    fn burst_storm_is_heavier_than_evaluation_traffic() {
        let eval = evaluation_trace(10.0, EVALUATION_SEED);
        let storm = burst_storm_trace(10.0, EVALUATION_SEED);
        assert!(
            storm.len() as f64 > 1.5 * eval.len() as f64,
            "storm {} ticks vs evaluation {}",
            storm.len(),
            eval.len()
        );
        let tight = |t: &lt_feed::TickTrace| {
            t.ticks
                .windows(2)
                .filter(|w| w[1].ts.nanos_since(w[0].ts) < 20_000)
                .count()
        };
        assert!(
            tight(&storm) > 4 * tight(&eval),
            "storm {} machine-speed gaps vs evaluation {}",
            tight(&storm),
            tight(&eval)
        );
    }

    #[test]
    fn flash_bursts_visible_in_trace() {
        let trace = evaluation_trace(20.0, EVALUATION_SEED);
        // Count 10 µs gaps: the flash-burst signature.
        let tight = trace
            .ticks
            .windows(2)
            .filter(|w| w[1].ts.nanos_since(w[0].ts) < 20_000)
            .count();
        assert!(tight > 100, "only {tight} machine-speed gaps");
    }
}
