//! The LightTrader system model: the discrete-event back-test core.
//!
//! Scheduling semantics (§III-D), as implemented:
//!
//! * **Baseline** — batch 1, every accelerator pinned at the Table III
//!   static clock, exact stale management.
//! * **Workload scheduling (Algorithm 1)** — on every issue opportunity,
//!   enumerate `(dvfs, batch)` pairs, keep the deadline- and power-
//!   feasible ones, commit the max-PPW candidate; when the oldest tensor
//!   cannot meet its deadline at any affordable speed, defer it to the
//!   conventional pipeline ("remove oldest input tensor"). Two
//!   risk-management refinements the bursty traffic forces: candidate
//!   DVFS options never drop below the static plan (under-clocking
//!   gambles on no burst arriving during the longer occupancy), and a
//!   power-blocked queue *waits* for the next completion instead of
//!   deferring (power frees within one batch; the deadline might not).
//! * **DVFS scheduling (Algorithm 2)** — power is accounted by *claims*:
//!   busy chips claim `max(actual draw, reservation)` and idle chips a
//!   reservation equal to their static-plan draw, so the sum of claims
//!   never exceeds the pool budget and a burst activating every chip can
//!   always start at the Table III clock — DVFS scheduling strictly
//!   boosts relative to the baseline. An issue may spend the pool's
//!   unclaimed power on a faster point (including the 2.0–2.2 GHz
//!   headroom the conservative static grid leaves unused), and completed
//!   batches return their excess, which is the save/redistribute cycle
//!   of Algorithm 2 in steady state; a `rebalance` pass
//!   additionally climbs running batches by maximal marginal PPW when
//!   budget frees mid-flight.
//!
//! Every DVFS change pays the PMIC switching delay (and dwell-time
//! penalty) through [`Accelerator::set_point`]; an issue sticks with the
//! accelerator's current point when the chosen one is within a single
//! notch, and mid-flight climbs require at least two notches — "frequent
//! changing in DVFS policy ... increases the risk of a power failure as
//! well as the overall latency" (§III-D).

use crate::config::BacktestConfig;
use crate::engine::{self, EngineCtx, Event, PendingOrder, SimModel};
use crate::execution::{precompute_signals, ExecState, ExecutionConfig};
use crate::metrics::{BacktestMetrics, TierOutcomes};
use crate::telemetry::QueryTimeline;
use lt_accel::device::BatchId;
use lt_accel::dvfs::{static_plan, DvfsTable, OperatingPoint};
use lt_accel::{Accelerator, DeviceProfile};
use lt_dnn::ModelKind;
use lt_feed::{NormStats, TickRecord, TickTrace};
use lt_lob::{OrderIntent, Timestamp};
use lt_pipeline::{MultiOffload, PipelineLatencies, ShardTicket};
use lt_sched::{plan_uprates, schedule_workload, LatencyModel, TierDecision, TierPlanner};
use std::time::Duration;

/// One batch in flight on an accelerator.
#[derive(Debug, Clone)]
struct InFlight {
    completion: Timestamp,
    /// Start of the current power segment (issue or last rescale).
    segment_start: Timestamp,
    /// Energy consumed by finished segments of this batch.
    energy_j: f64,
    batch: u32,
    point: OperatingPoint,
    /// The model tier this batch runs (always the configured kind for
    /// fixed-model policies).
    kind: ModelKind,
    tickets: Vec<ShardTicket>,
    /// Decision-time order intents riding with `tickets` (parallel, one
    /// per ticket); empty when the execution layer is disabled.
    intents: Vec<Option<OrderIntent>>,
    /// Completion token; a rescale invalidates the previous one.
    batch_id: BatchId,
    /// When the batch claimed the accelerator (before the DVFS switch).
    issue_base: Timestamp,
    /// Accumulated PMIC switch + dwell delay charged to this batch.
    switch_total: Duration,
}

/// The deadline-tier scheduler's runtime state: the pure planner plus
/// the online latency model its predictions come from. `None` for the
/// four fixed-model policies.
struct TieredSched {
    planner: TierPlanner,
    latency: LatencyModel,
    /// Per-query wire-out budget on the DNN side (config budget minus
    /// egress); `None` = unbounded (always serve the best tier).
    budget: Option<Duration>,
}

/// Per-shard outcome tallies the engine cannot see (it scores orders
/// shard-blind); drops and defers live in the offload engine's own
/// per-shard counters.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ShardScore {
    /// Raw trace ticks ingested for this shard (including warm-up).
    pub(crate) ticks: u64,
    /// Queries answered within the available time.
    pub(crate) responded: u64,
    /// Queries whose answer arrived after the deadline.
    pub(crate) late: u64,
    /// Per-tier serving outcomes of this shard's scored queries.
    pub(crate) tiers: TierOutcomes,
}

/// The LightTrader system model driven by the shared event engine.
///
/// One instance serves both the single-instrument back-test (one shard,
/// the historical configuration) and the sharded multi-symbol back-test:
/// per-symbol feature windows feed one coalesced tensor queue, and the
/// scheduler batches across symbols off that shared queue.
pub(crate) struct SimState {
    profile: DeviceProfile,
    /// Full candidate table for DVFS decisions.
    table: DvfsTable,
    /// Table restricted to clocks >= the static plan (the WS risk guard).
    ws_table: DvfsTable,
    kind: ModelKind,
    /// Effective Algorithm 1 flag (the base policy's for `DeadlineTiered`).
    ws_on: bool,
    /// Effective Algorithm 2 flag (the base policy's for `DeadlineTiered`).
    dvfs_on: bool,
    /// Deadline-tier scheduler state; `None` for fixed-model policies.
    tiered: Option<TieredSched>,
    t_avail: Duration,
    /// Conventional-pipeline stage budget (ingress stamps + egress).
    stages: PipelineLatencies,
    egress: Duration,
    /// Deadline budget for the DNN pipeline (t_avail minus egress).
    dnn_budget: Duration,
    /// Stale-drop budget (dnn_budget minus the fastest possible service).
    stale_budget: Duration,
    static_point: OperatingPoint,
    pool_budget_w: f64,
    per_accel_budget_w: f64,
    accels: Vec<Accelerator>,
    in_flight: Vec<Option<InFlight>>,
    offload: MultiOffload,
    /// Shard of each trace tick, parallel to the merged trace (empty for
    /// single-instrument runs, where every tick is shard 0).
    tick_shards: Vec<u16>,
    /// Ticks consumed so far (ticks arrive strictly in trace order).
    cursor: usize,
    /// Global tick index (every tick, all shards) — the key into the
    /// execution layer's precomputed signal stream.
    tick_index: usize,
    /// The execution & portfolio layer; `None` when disabled.
    exec: Option<ExecState>,
    /// Per-shard outcome tallies (always at least one entry).
    per_shard: Vec<ShardScore>,
    /// Recycled ticket buffers: batches pop into one of these and settle
    /// returns it, so steady-state issue never allocates ticket storage.
    spare: Vec<Vec<ShardTicket>>,
}

impl SimState {
    /// Rescales a busy accelerator to `target` at `ctx.now`, stretching
    /// or shrinking the remaining compute by the clock ratio, charging
    /// the PMIC switch delay, and re-scheduling the completion event
    /// under a fresh token (the old completion event goes stale).
    fn rescale(&mut self, aid: usize, target: OperatingPoint, ctx: &mut EngineCtx) {
        let now = ctx.now;
        let profile = self.profile;
        let switch = {
            let flight = self.in_flight[aid]
                .as_ref()
                .expect("rescale needs a busy accel");
            if (flight.point.freq_ghz - target.freq_ghz).abs() < 1e-12 {
                return;
            }
            let _ = flight;
            self.accels[aid].set_point(target, now)
        };
        let flight = self.in_flight[aid].as_mut().expect("still busy");
        // Close the current power segment.
        let seg_start = flight.segment_start.min(now);
        flight.energy_j += now.since(seg_start).as_secs_f64()
            * profile.power_w(flight.kind, flight.batch, flight.point);
        let remaining = if flight.completion > now {
            flight.completion.since(now)
        } else {
            Duration::ZERO
        };
        let ratio = flight.point.freq_ghz / target.freq_ghz;
        let stretched = Duration::from_secs_f64(remaining.as_secs_f64() * ratio);
        flight.point = target;
        flight.segment_start = now;
        flight.completion = now + switch + stretched;
        flight.switch_total += switch;
        flight.batch_id = self.accels[aid].retime_batch(flight.completion);
        ctx.queue.push_at(
            flight.completion,
            Event::BatchComplete {
                aid,
                batch: flight.batch_id,
            },
        );
    }

    /// The power reserved for an idle accelerator: its batch-1 draw at
    /// the Table III static clock. Charging this reservation for every
    /// idle chip means a burst that activates the whole pool always
    /// finds at least the no-scheduling configuration startable — DVFS
    /// scheduling can only ever *boost* relative to the baseline, never
    /// starve it (the conservative stance the co-location power
    /// constraint demands).
    fn idle_reservation(&self) -> f64 {
        self.profile
            .idle_power_w(self.kind)
            .max(self.profile.power_w(self.kind, 1, self.static_point))
    }

    /// Distributable power for an issue on `aid`: the pool budget minus
    /// every other accelerator's *claim* — busy chips claim the larger of
    /// their actual draw and the reservation, idle chips their
    /// reservation. Granting at most this keeps the sum of claims within
    /// budget, so a burst activating the whole pool can always start
    /// everyone at the static plan: DVFS scheduling only ever boosts
    /// relative to the baseline. When boosted neighbours leave less than
    /// one reservation of headroom, the issue may still proceed at the
    /// static plan provided the pool's *actual* draw allows it (the
    /// boosted batch finishes shortly and returns its excess).
    fn power_avail_for(&self, aid: usize) -> f64 {
        let reservation = self.idle_reservation();
        let mut claims = 0.0;
        let mut actual = 0.0;
        for i in (0..self.accels.len()).filter(|&i| i != aid) {
            match &self.in_flight[i] {
                Some(f) => {
                    let draw = self.profile.power_w(f.kind, f.batch, f.point);
                    claims += draw.max(reservation);
                    actual += draw;
                }
                None => {
                    claims += reservation;
                    actual += self.profile.idle_power_w(self.kind);
                }
            }
        }
        let by_claims = self.pool_budget_w - claims;
        if by_claims >= reservation {
            return by_claims;
        }
        let by_actual = self.pool_budget_w - actual;
        if by_actual >= reservation {
            reservation
        } else {
            by_claims.max(0.0)
        }
    }

    /// Algorithm 2's redistribution, applied to running batches when
    /// budget frees up: climb the busy accelerator with the highest
    /// marginal PPW gain while the pool (with idle reservations) stays
    /// within budget. Down-rescales never happen mid-flight — stretching
    /// a running batch risks the very deadline it was scheduled against —
    /// and climbs are applied with hysteresis (at least two DVFS notches)
    /// because "frequent changing in DVFS policy ... increases the risk
    /// of a power failure as well as the overall latency" (§III-D).
    fn rebalance(&mut self, ctx: &mut EngineCtx) {
        let now = ctx.now;
        // Pure planning first (Algorithm 2, in lt-sched): desired points
        // per busy accelerator.
        let n = self.accels.len();
        let mut desired: Vec<Option<(u32, OperatingPoint)>> = (0..n)
            .map(|aid| match &self.in_flight[aid] {
                Some(f) if f.completion > now => Some((f.batch, f.point)),
                _ => None,
            })
            .collect();
        plan_uprates(
            &self.profile,
            self.kind,
            self.idle_reservation(),
            self.pool_budget_w,
            &self.table,
            &mut desired,
        );
        // Apply with hysteresis — one jump per accelerator, >= 2 notches
        // — as DVFS-rescale events. They carry the current completion
        // token and fire before any other same-instant event (rank 0),
        // so the re-timing lands before the next completion is examined.
        for (aid, want) in desired.iter().enumerate().take(n) {
            if let (Some(flight), Some((_, target))) = (&self.in_flight[aid], *want) {
                if target.freq_ghz - flight.point.freq_ghz > 0.15 {
                    ctx.queue.push_at(
                        now,
                        Event::DvfsRescale {
                            aid,
                            batch: flight.batch_id,
                            target,
                        },
                    );
                }
            }
        }
    }

    /// Settles one completed batch: accumulates its energy and emits the
    /// order-out event that scores every ticket against the available
    /// time at wire-out.
    fn settle(&mut self, flight: InFlight, ctx: &mut EngineCtx) {
        let seg_start = flight.segment_start.min(flight.completion);
        ctx.metrics.energy_j += flight.energy_j
            + flight.completion.since(seg_start).as_secs_f64()
                * self
                    .profile
                    .power_w(flight.kind, flight.batch, flight.point);
        let order_out = flight.completion + self.egress;
        let orders: Vec<PendingOrder> = flight
            .tickets
            .iter()
            .enumerate()
            .map(|(i, t)| PendingOrder {
                tick_ts: t.ticket.tick_ts,
                deadline: t.ticket.tick_ts + self.t_avail,
                breakdown: QueryTimeline {
                    ingress: t.ticket.ingress,
                    tick_ts: t.ticket.tick_ts,
                    ready_at: t.ticket.ready_at,
                    issue: flight.issue_base,
                    completion: flight.completion,
                    dvfs_switch: flight.switch_total,
                    egress: self.egress,
                }
                .breakdown(),
                shard: t.shard,
                tier: flight.kind,
                intent: flight.intents.get(i).copied().flatten(),
            })
            .collect();
        ctx.queue.push_at(order_out, Event::OrderOut { orders });
        // Feed the online latency model from the batch that just landed.
        if let Some(t) = self.tiered.as_mut() {
            t.latency.observe_slack(flight.switch_total);
            let service = flight
                .completion
                .since(flight.issue_base)
                .saturating_sub(flight.switch_total);
            // Normalize the observed batch service to its batch-1
            // equivalent (profile ratio at the issued point): the
            // planner costs a query against an idle-start serve, and
            // feeding raw batch-16 storm services would inflate the
            // estimate and shed queries a batch-1 issue could still win.
            let t_b = self
                .profile
                .t_total(flight.kind, flight.batch, flight.point);
            let t_1 = self.profile.t_total(flight.kind, 1, flight.point);
            let sample = if t_b.is_zero() {
                service
            } else {
                service.mul_f64(t_1.as_secs_f64() / t_b.as_secs_f64())
            };
            t.latency.observe_service(flight.kind, sample);
            for tk in &flight.tickets {
                if flight.issue_base >= tk.ticket.ready_at {
                    t.latency
                        .observe_wait(flight.issue_base.since(tk.ticket.ready_at));
                }
            }
        }
        // Recycle the ticket buffer for the next issued batch.
        let mut tickets = flight.tickets;
        tickets.clear();
        self.spare.push(tickets);
    }

    /// Issues work onto every idle accelerator at `ctx.now`.
    fn try_issue(&mut self, ctx: &mut EngineCtx) {
        let now = ctx.now;
        'accels: for aid in 0..self.accels.len() {
            if self.in_flight[aid].is_some() {
                continue;
            }
            loop {
                // Stale management before every scheduling attempt. Every
                // queue removal pops the matching decision-time intent —
                // a dropped tensor means the order is never sent.
                let stale = {
                    let exec = &mut self.exec;
                    self.offload.drop_stale_with(now, self.stale_budget, |_| {
                        if let Some(e) = exec.as_mut() {
                            e.discard_intent();
                        }
                    })
                };
                ctx.metrics.dropped_stale += stale;
                let Some(oldest) = self.offload.oldest() else {
                    break 'accels; // queue empty: nothing for any accel
                };
                let deadline = oldest.ticket.tick_ts + self.dnn_budget;
                let effective_now = now.max(oldest.ticket.ready_at);
                let t_remaining = deadline.since(effective_now.min(deadline));
                let queued = self.offload.queue_len() as u32;

                // Tier planning: pick which registered model the oldest
                // query gets, from the remaining per-query budget and the
                // online latency model. Fixed-model policies skip this and
                // always serve the configured kind.
                let tier_decision = self.tiered.as_ref().map(|t| {
                    let remaining = t.budget.map(|b| {
                        let d = oldest.ticket.tick_ts + b;
                        d.since(effective_now.min(d))
                    });
                    let congested = match (remaining, t.budget) {
                        (Some(rem), Some(b)) => {
                            let cheapest = t.planner.ladder().cheapest().expect("non-empty ladder");
                            let best = t.planner.ladder().best().expect("non-empty ladder");
                            // Lagged signal: the observed wait tail
                            // already blows the headroom a cheapest-tier
                            // serve would leave.
                            let waiting = t
                                .latency
                                .congested(rem.saturating_sub(t.latency.predicted_cost(cheapest)));
                            // Proactive signal: draining the present
                            // backlog at the preferred tier would eat
                            // more than one full budget, so the queries
                            // behind this one are doomed unless it
                            // degrades. Catches burst onsets the lagged
                            // wait estimator has not seen yet.
                            let backlog = t.latency.predicted_cost(best).saturating_mul(queued) > b;
                            waiting || backlog
                        }
                        _ => false,
                    };
                    let plan = t
                        .planner
                        .plan(remaining, congested, |k| t.latency.predicted_cost(k));
                    (plan, remaining)
                });
                let (serve_kind, horizon) = match tier_decision {
                    None => (self.kind, t_remaining),
                    // A tiered serve targets the per-query hit budget,
                    // not just the hard t_avail deadline: cap the
                    // scheduling horizon so workload batching cannot
                    // trade the oldest query's hit away for throughput.
                    Some((TierDecision::Serve(k), rem)) => {
                        (k, rem.map_or(t_remaining, |r| t_remaining.min(r)))
                    }
                    Some((TierDecision::Drop, _)) => {
                        // No registered tier fits the remaining budget:
                        // shed the query outright instead of burning
                        // accelerator time on a guaranteed miss.
                        if self.offload.drop_oldest_deadline().is_some() {
                            if let Some(e) = self.exec.as_mut() {
                                e.discard_intent();
                            }
                        }
                        ctx.metrics.dropped_deadline += 1;
                        continue;
                    }
                };

                let decision =
                    self.decide(aid, queued, horizon, serve_kind)
                        .map(|(batch, point)| {
                            let current = self.accels[aid].point();
                            let near = (current.freq_ghz - point.freq_ghz).abs() <= 0.15;
                            let in_range = !self.ws_on
                                || current.freq_ghz >= self.ws_table.min().freq_ghz - 1e-9;
                            if near
                                && in_range
                                && (current.freq_ghz - point.freq_ghz).abs() > 1e-12
                                && self.profile.t_total(serve_kind, batch, current) <= horizon
                            {
                                // Staying put is one notch worse at most but
                                // skips the PMIC switch + dwell cost.
                                (batch, current)
                            } else {
                                (batch, point)
                            }
                        });
                match decision {
                    Some((batch, point)) => {
                        let switch = self.accels[aid].set_point(point, effective_now);
                        let mut tickets = self.spare.pop().unwrap_or_default();
                        self.offload.pop_batch_into(batch as usize, &mut tickets);
                        debug_assert_eq!(tickets.len(), batch as usize);
                        // Intents attach at queue-pop time: batches settle
                        // out of order across accelerators, so matching at
                        // settle time would mispair them.
                        let intents = self
                            .exec
                            .as_mut()
                            .map(|e| e.pop_intents(batch as usize))
                            .unwrap_or_default();
                        let ready = tickets
                            .iter()
                            .map(|t| t.ticket.ready_at)
                            .max()
                            .expect("non-empty batch");
                        let issue_base = effective_now.max(ready);
                        let start = issue_base + switch;
                        let completion = start + self.profile.t_total(serve_kind, batch, point);
                        let batch_id = self.accels[aid].start_batch(start, completion);
                        self.in_flight[aid] = Some(InFlight {
                            completion,
                            segment_start: start,
                            energy_j: 0.0,
                            batch,
                            point,
                            kind: serve_kind,
                            tickets,
                            intents,
                            batch_id,
                            issue_base,
                            switch_total: switch,
                        });
                        ctx.metrics.batches += 1;
                        ctx.metrics.batched_queries += u64::from(batch);
                        ctx.queue.push_at(
                            completion,
                            Event::BatchComplete {
                                aid,
                                batch: batch_id,
                            },
                        );
                        continue 'accels;
                    }
                    None if self.hopeless(aid, t_remaining, serve_kind) => {
                        // The oldest tensor cannot make its deadline at
                        // any affordable speed — defer it to the
                        // conventional pipeline (Algorithm 1's "remove
                        // oldest input tensor") and reschedule.
                        if self.offload.defer_oldest().is_some() {
                            if let Some(e) = self.exec.as_mut() {
                                e.discard_intent();
                            }
                            ctx.metrics.deferred += 1;
                            continue;
                        }
                        break 'accels;
                    }
                    None => {
                        // Power headroom is momentarily insufficient;
                        // the tensor stays queued until a completion
                        // frees budget.
                        continue 'accels;
                    }
                }
            }
        }
        if self.dvfs_on {
            self.rebalance(ctx);
        }
    }

    /// True when the oldest tensor cannot meet its deadline even at the
    /// fastest point the *currently affordable* power allows on `aid` —
    /// the signal to drop it rather than waste accelerator time (or block
    /// the queue) on a doomed query. A power-blocked state (no point
    /// affordable at all) is not hopeless: budget frees at the next
    /// completion.
    fn hopeless(&self, aid: usize, t_remaining: Duration, kind: ModelKind) -> bool {
        if t_remaining.is_zero() {
            return true;
        }
        let grant = if self.dvfs_on {
            self.power_avail_for(aid).max(self.idle_reservation())
        } else {
            self.per_accel_budget_w
        };
        let candidates = if self.ws_on {
            &self.ws_table
        } else {
            &self.table
        };
        let best = candidates
            .points()
            .iter()
            .rev()
            .find(|p| self.profile.power_w(kind, 1, **p) <= grant);
        match best {
            Some(p) => self.profile.t_total(kind, 1, *p) > t_remaining,
            None => false,
        }
    }

    /// Picks `(batch, point)` for accelerator `aid` under the active
    /// policy, or `None` when nothing can be issued.
    fn decide(
        &mut self,
        aid: usize,
        queued: u32,
        t_remaining: Duration,
        kind: ModelKind,
    ) -> Option<(u32, OperatingPoint)> {
        if t_remaining.is_zero() && self.ws_on {
            // The oldest query is at its deadline: Algorithm 1 defers it.
            return None;
        }
        let power_avail = if self.dvfs_on {
            self.power_avail_for(aid)
        } else {
            self.per_accel_budget_w
        };
        if self.ws_on {
            let d = schedule_workload(
                &self.profile,
                kind,
                queued,
                t_remaining,
                power_avail,
                &self.ws_table,
            )?;
            if self.dvfs_on {
                // Algorithm 2 runs after workload scheduling: boost the
                // chosen point to the fastest one the distributable
                // budget allows ("maximize the performance of AI
                // accelerators while fully consuming the constrained
                // power"), keeping the batch.
                let boosted = self
                    .table
                    .points()
                    .iter()
                    .rev()
                    .find(|p| {
                        p.freq_ghz >= d.point.freq_ghz - 1e-12
                            && self.profile.power_w(kind, d.batch, **p) <= power_avail
                    })
                    .copied()
                    .unwrap_or(d.point);
                return Some((d.batch, boosted));
            }
            Some((d.batch, d.point))
        } else if self.dvfs_on {
            // DS without WS: batch stays 1; issue at the fastest point the
            // distributable budget allows (performance-maximizing use of
            // the freed power). The idle reservations guarantee at least
            // the slowest point is always affordable.
            let point = self
                .table
                .points()
                .iter()
                .rev()
                .find(|p| self.profile.power_w(kind, 1, **p) <= power_avail)
                .copied()?;
            if self.profile.t_total(kind, 1, point) > t_remaining {
                return None; // doomed at achievable speed -> None arm
            }
            Some((1, point))
        } else {
            Some((1, self.static_point))
        }
    }
}

impl SimModel for SimState {
    fn on_tick(&mut self, tick: &TickRecord, ctx: &mut EngineCtx) {
        // Ticks arrive strictly in trace order, so the cursor tracks the
        // engine's tick index; single-instrument runs carry no shard map
        // and route everything to shard 0.
        let shard = if self.tick_shards.is_empty() {
            0
        } else {
            let s = self.tick_shards[self.cursor];
            self.cursor += 1;
            s
        };
        self.per_shard[shard as usize].ticks += 1;
        let before_full = self.offload.dropped_full();
        let admitted = self
            .offload
            .on_tick_staged(shard, &tick.snapshot, tick.ts, &self.stages);
        ctx.metrics.dropped_full += self.offload.dropped_full() - before_full;
        if let Some(exec) = self.exec.as_mut() {
            // The strategy decides on every tick (mark-to-market and the
            // kill switch run tick-by-tick), but an intent only enters
            // the venue path when its tensor was actually admitted: a
            // tick dropped at admission never produces an inference,
            // hence never an order.
            let intent = exec.on_tick(shard as usize, self.tick_index, &tick.snapshot);
            if admitted.is_some() {
                exec.push_intent(intent);
            }
        }
        self.tick_index += 1;
        self.try_issue(ctx);
    }

    fn on_order_scored(&mut self, order: &PendingOrder, in_time: bool, ctx: &mut EngineCtx) {
        let score = &mut self.per_shard[order.shard as usize];
        if in_time {
            score.responded += 1;
        } else {
            score.late += 1;
        }
        let degraded = order.tier != self.kind;
        ctx.metrics.tiers.record(order.tier, degraded);
        score.tiers.record(order.tier, degraded);
        // Execution settles at wire-out for in-time AND late orders —
        // a late order still hit the wire; it just finds a book that
        // moved even further. Fills push no events and touch no
        // scheduling state, so the latency surface stays byte-identical.
        if let Some(exec) = self.exec.as_mut() {
            exec.settle_order(order);
        }
    }

    fn on_batch_complete(&mut self, aid: usize, batch: BatchId, ctx: &mut EngineCtx) {
        // A rescale re-timed this batch and invalidated the token the
        // event was scheduled with: the re-scheduled completion event is
        // already in the queue.
        if self.accels[aid].current_batch() != Some(batch) {
            return;
        }
        let flight = self.in_flight[aid].take().expect("in flight");
        debug_assert_eq!(flight.completion, ctx.now);
        self.accels[aid].finish_batch();
        self.settle(flight, ctx);
        self.try_issue(ctx);
    }

    fn on_dvfs_rescale(
        &mut self,
        aid: usize,
        batch: BatchId,
        target: OperatingPoint,
        ctx: &mut EngineCtx,
    ) {
        // Rescale events fire at the instant they are raised (rank 0
        // outruns every other same-instant event), so the flight can not
        // have changed under the token; the guard is pure defence.
        if self.in_flight[aid]
            .as_ref()
            .is_some_and(|f| f.batch_id == batch)
        {
            self.rescale(aid, target, ctx);
        }
    }

    fn on_finish(&mut self, ctx: &mut EngineCtx) {
        // Any tensors still queued at session end can never be answered.
        let leftover = {
            let exec = &mut self.exec;
            self.offload.drain_leftover_with(|_| {
                if let Some(e) = exec.as_mut() {
                    e.discard_intent();
                }
            })
        };
        ctx.metrics.dropped_stale += leftover;
        if let Some(exec) = self.exec.as_mut() {
            exec.finalize();
            ctx.metrics.execution = Some(exec.aggregate());
        }
    }
}

/// Replays `trace` through a LightTrader configuration and reports the
/// back-test metrics.
///
/// When the configuration carries ingress faults
/// ([`BacktestConfig::with_faults`]), the trace is first pushed through
/// the fault-injected A/B ingress ([`crate::ingress::degrade_trace`]):
/// ticks lost on both feeds never reach the book, delayed copies arrive
/// late, and the resulting [`crate::ingress::IngressReport`] is attached
/// to the metrics. A lossless fault profile skips the ingress stage
/// entirely, so the default configuration is bit-identical to the
/// pre-fault behaviour.
///
/// # Panics
///
/// Panics if the configuration is invalid (see
/// [`BacktestConfig::validate`]).
pub fn run_lighttrader(trace: &TickTrace, cfg: &BacktestConfig) -> BacktestMetrics {
    cfg.validate();
    if cfg.faults.enabled() {
        let (degraded, report) = crate::ingress::degrade_trace(trace, &cfg.faults);
        let mut metrics = run_clean(&degraded, cfg);
        metrics.ingress = Some(report);
        return metrics;
    }
    run_clean(trace, cfg)
}

/// The fault-free back-test core: replays an (already degraded or
/// pristine) trace through the system model.
fn run_clean(trace: &TickTrace, cfg: &BacktestConfig) -> BacktestMetrics {
    let mut state = build_state(cfg, 1, Vec::new());
    state.arm_execution(&cfg.execution, trace, &[], 1);
    engine::run(&mut state, trace)
}

/// Builds the system model for `n_shards` instruments sharing one
/// accelerator fleet. `tick_shards` maps every trace tick to its shard
/// (parallel to the merged trace); empty means single-instrument, where
/// everything routes to shard 0 — that path is the exact historical
/// configuration, bit for bit.
pub(crate) fn build_state(
    cfg: &BacktestConfig,
    n_shards: usize,
    tick_shards: Vec<u16>,
) -> SimState {
    let profile = DeviceProfile::lighttrader();
    // DeadlineTiered runs whichever WS/DS machinery its configured base
    // policy enables; the fixed policies use their own flags.
    let (ws_on, dvfs_on) = if cfg.policy == lt_sched::Policy::DeadlineTiered {
        (
            cfg.tier.base.workload_enabled(),
            cfg.tier.base.dvfs_enabled(),
        )
    } else {
        (cfg.policy.workload_enabled(), cfg.policy.dvfs_enabled())
    };
    // The static (conservative) grid is capped at 2.0 GHz — Table III
    // never exceeds it — but the chip itself reaches 2.2 GHz (Table I).
    // DVFS scheduling, which tracks the pool's actual draw, may exploit
    // that headroom; the baseline and plain WS stay within the
    // conservative cap.
    let table = if dvfs_on {
        DvfsTable::full_range()
    } else {
        DvfsTable::evaluation()
    };
    let stages = cfg.stages;
    let plan = static_plan(cfg.kind, cfg.n_accels, cfg.condition);
    let egress = stages.egress();
    // The WS risk guard: never under-clock below the static plan.
    let ws_table = table.at_least(plan.point.freq_ghz);
    // A query is hopeless once even the fastest *affordable* service
    // misses its deadline. "Affordable" depends on the policy: the static
    // share for baseline/WS, or the lone-boost grant (pool budget minus
    // every other accelerator's reservation) when DVFS scheduling can
    // concentrate power.
    let reservation = profile
        .idle_power_w(cfg.kind)
        .max(profile.power_w(cfg.kind, 1, plan.point));
    let best_share = if dvfs_on {
        cfg.condition.accelerator_budget_w() - (cfg.n_accels as f64 - 1.0) * reservation
    } else {
        plan.per_accel_power_w
    };
    let candidate_table = if ws_on { &ws_table } else { &table };
    let fastest_point = candidate_table
        .points()
        .iter()
        .rev()
        .find(|p| profile.power_w(cfg.kind, 1, **p) <= best_share + 1e-9)
        .copied()
        .unwrap_or(plan.point);
    let fastest = profile.t_total(cfg.kind, 1, fastest_point);
    let dnn_budget = cfg.t_avail.saturating_sub(egress);
    let stale_budget = dnn_budget
        .saturating_sub(fastest)
        .max(Duration::from_nanos(1));
    // The tiered scheduler's latency model is seeded with the static-plan
    // batch-1 service times so the very first plan is already sane.
    let tiered = (cfg.policy == lt_sched::Policy::DeadlineTiered).then(|| TieredSched {
        planner: TierPlanner::new(cfg.tier.ladder),
        latency: LatencyModel::with_priors(
            ModelKind::ALL.map(|k| profile.t_total(k, 1, plan.point)),
        ),
        budget: cfg.tier.budget.map(|b| b.saturating_sub(egress)),
    });

    SimState {
        profile,
        table,
        ws_table,
        kind: cfg.kind,
        ws_on,
        dvfs_on,
        tiered,
        t_avail: cfg.t_avail,
        stages,
        egress,
        dnn_budget,
        stale_budget,
        static_point: plan.point,
        pool_budget_w: cfg.condition.accelerator_budget_w(),
        per_accel_budget_w: cfg.condition.accelerator_budget_w() / cfg.n_accels as f64,
        accels: (0..cfg.n_accels)
            .map(|i| Accelerator::new(i, plan.point))
            .collect(),
        in_flight: vec![None; cfg.n_accels],
        offload: MultiOffload::new(
            vec![NormStats::identity(10); n_shards],
            cfg.window,
            cfg.queue_capacity,
        ),
        tick_shards,
        cursor: 0,
        tick_index: 0,
        exec: None,
        per_shard: vec![ShardScore::default(); n_shards],
        spare: Vec::new(),
    }
}

impl SimState {
    /// Per-shard outcome tallies accumulated so far.
    pub(crate) fn shard_scores(&self) -> &[ShardScore] {
        &self.per_shard
    }

    /// Per-shard drop/defer counters from the offload engine.
    pub(crate) fn shard_counters(&self, shard: usize) -> lt_pipeline::ShardCounters {
        self.offload.shard_counters(shard)
    }

    /// Arms the execution & portfolio layer when `cfg` enables it: the
    /// oracle signal stream is precomputed over the (possibly degraded)
    /// trace the engine will actually replay, so decisions and fills see
    /// exactly what arrives.
    pub(crate) fn arm_execution(
        &mut self,
        cfg: &ExecutionConfig,
        trace: &TickTrace,
        tick_shards: &[u16],
        n_shards: usize,
    ) {
        if !cfg.enabled {
            return;
        }
        let signals = precompute_signals(trace, tick_shards, n_shards, &cfg.signal);
        self.exec = Some(ExecState::new(cfg, n_shards, signals));
    }

    /// One shard's finalized execution stats; `None` when the execution
    /// layer is disabled. Only meaningful after the run finished.
    pub(crate) fn shard_execution(&self, shard: usize) -> Option<crate::ExecutionStats> {
        self.exec.as_ref().map(|e| e.shard_stats(shard))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{evaluation_trace, scheduling_deadline};
    use lt_accel::PowerCondition;
    use lt_feed::SessionBuilder;
    use lt_sched::Policy;

    fn quick_trace() -> TickTrace {
        evaluation_trace(8.0, 7)
    }

    #[test]
    fn every_query_is_accounted() {
        let trace = quick_trace();
        let cfg = BacktestConfig::new(ModelKind::DeepLob, 2, PowerCondition::Sufficient);
        let m = run_lighttrader(&trace, &cfg);
        let expected = trace.len() as u64 - (cfg.window as u64 - 1);
        assert_eq!(m.total(), expected, "{m}");
    }

    #[test]
    fn calm_traffic_achieves_high_response() {
        let trace = SessionBuilder::calm_traffic()
            .duration_secs(5.0)
            .seed(3)
            .build()
            .trace;
        let cfg = BacktestConfig::new(ModelKind::VanillaCnn, 4, PowerCondition::Sufficient);
        let m = run_lighttrader(&trace, &cfg);
        assert!(m.response_rate() > 0.95, "{m}");
    }

    #[test]
    fn more_accelerators_do_not_hurt_under_sufficient_power() {
        let trace = quick_trace();
        let rate = |n| {
            let cfg = BacktestConfig::new(ModelKind::DeepLob, n, PowerCondition::Sufficient);
            run_lighttrader(&trace, &cfg).response_rate()
        };
        let r1 = rate(1);
        let r4 = rate(4);
        assert!(r4 >= r1, "1 accel {r1:.3} vs 4 accels {r4:.3}");
    }

    #[test]
    fn workload_scheduling_batches_under_bursts() {
        // The CNN's short service leaves deadline room for batches; the
        // scheduler must exploit it and reduce the miss rate.
        let trace = quick_trace();
        let base = BacktestConfig::new(ModelKind::VanillaCnn, 1, PowerCondition::Sufficient)
            .with_t_avail(scheduling_deadline());
        let ws = base.with_policy(Policy::WorkloadScheduling);
        let m_base = run_lighttrader(&trace, &base);
        let m_ws = run_lighttrader(&trace, &ws);
        assert!(m_base.mean_batch() <= 1.0 + 1e-9);
        assert!(m_ws.mean_batch() > 1.05, "WS never batched: {m_ws}");
        assert!(
            m_ws.miss_rate() < m_base.miss_rate(),
            "WS {:.4} vs baseline {:.4}",
            m_ws.miss_rate(),
            m_base.miss_rate()
        );
    }

    #[test]
    fn workload_scheduling_never_hurts_deeplob() {
        // DeepLOB's 296 µs service leaves little batching room inside the
        // prediction horizon; WS must degrade gracefully to the baseline.
        let trace = quick_trace();
        let base = BacktestConfig::new(ModelKind::DeepLob, 1, PowerCondition::Sufficient)
            .with_t_avail(scheduling_deadline());
        let ws = base.with_policy(Policy::WorkloadScheduling);
        let m_base = run_lighttrader(&trace, &base);
        let m_ws = run_lighttrader(&trace, &ws);
        assert!(
            m_ws.miss_rate() <= m_base.miss_rate() + 0.005,
            "WS {:.4} vs baseline {:.4}",
            m_ws.miss_rate(),
            m_base.miss_rate()
        );
    }

    #[test]
    fn dvfs_scheduling_helps_at_many_accelerators() {
        let trace = quick_trace();
        let base = BacktestConfig::new(ModelKind::TransLob, 8, PowerCondition::Limited)
            .with_t_avail(scheduling_deadline());
        let ds = base.with_policy(Policy::DvfsScheduling);
        let m_base = run_lighttrader(&trace, &base);
        let m_ds = run_lighttrader(&trace, &ds);
        assert!(
            m_ds.miss_rate() <= m_base.miss_rate() + 1e-9,
            "DS {:.4} vs baseline {:.4}",
            m_ds.miss_rate(),
            m_base.miss_rate()
        );
    }

    #[test]
    fn deterministic_replay() {
        let trace = quick_trace();
        let cfg = BacktestConfig::new(ModelKind::TransLob, 4, PowerCondition::Limited)
            .with_policy(Policy::Both)
            .with_t_avail(scheduling_deadline());
        let a = run_lighttrader(&trace, &cfg);
        let b = run_lighttrader(&trace, &cfg);
        assert_eq!(a.responded, b.responded);
        assert_eq!(a.total(), b.total());
        assert_eq!(a.batches, b.batches);
    }

    #[test]
    fn energy_is_positive_and_bounded_by_budget() {
        let trace = quick_trace();
        let cfg = BacktestConfig::new(ModelKind::DeepLob, 4, PowerCondition::Limited);
        let m = run_lighttrader(&trace, &cfg);
        assert!(m.energy_j > 0.0);
        // Busy energy can never exceed budget x wall-clock.
        let wall = trace.duration().as_secs_f64() + 1.0;
        assert!(m.energy_j <= cfg.condition.accelerator_budget_w() * wall);
    }

    #[test]
    fn deadline_of_zero_slack_misses_everything() {
        let trace = quick_trace();
        let cfg = BacktestConfig::new(ModelKind::DeepLob, 4, PowerCondition::Sufficient)
            .with_t_avail(Duration::from_micros(50));
        let m = run_lighttrader(&trace, &cfg);
        assert_eq!(m.responded, 0, "{m}");
        assert!(m.total() > 0);
    }

    /// DS must never let the pool exceed the power budget.
    #[test]
    fn ds_respects_budget_at_sixteen_accels() {
        let trace = quick_trace();
        let cfg = BacktestConfig::new(ModelKind::DeepLob, 16, PowerCondition::Limited)
            .with_policy(Policy::DvfsScheduling)
            .with_t_avail(scheduling_deadline());
        let m = run_lighttrader(&trace, &cfg);
        let wall = trace.duration().as_secs_f64() + 1.0;
        assert!(m.energy_j <= 20.0 * wall, "{} J over {wall} s", m.energy_j);
        assert!(m.total() > 0);
    }
}
