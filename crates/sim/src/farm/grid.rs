//! Declarative sweep grids.
//!
//! A [`SweepGrid`] is the cross product of the evaluation's axes —
//! model × accelerators × power × policy × faults × symbols × seed —
//! plus the traffic that backs it. [`SweepGrid::expand`] turns it into a
//! flat, deterministically ordered list of [`FarmCell`]s, each pairing a
//! ready-to-run [`BacktestConfig`] with the [`SessionSpec`] of the trace
//! it replays; cells sharing a spec share one cached session build.

use crate::config::BacktestConfig;
use crate::execution::ExecutionConfig;
use crate::ingress::IngressFaults;
use crate::traffic;
use lt_accel::PowerCondition;
use lt_dnn::ModelKind;
use lt_feed::{FlashParams, HawkesParams, SessionSpec};
use lt_sched::Policy;
use std::time::Duration;

/// How each cell's available time (`t_avail`) is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GridDeadline {
    /// The 5 ms response window of the Fig. 11 comparisons.
    Evaluation,
    /// The per-model scheduling horizon of the Fig. 13 study
    /// ([`traffic::scheduling_deadline_for`]).
    Scheduling,
    /// One fixed deadline for every cell.
    Fixed(Duration),
}

impl GridDeadline {
    fn resolve(self, kind: ModelKind) -> Duration {
        match self {
            GridDeadline::Evaluation => traffic::evaluation_deadline(),
            GridDeadline::Scheduling => traffic::scheduling_deadline_for(kind),
            GridDeadline::Fixed(d) => d,
        }
    }
}

/// One expanded grid cell: a stable ID, the back-test configuration, and
/// the spec of the session it replays.
#[derive(Debug, Clone)]
pub struct FarmCell {
    /// Position in expansion order (the merge order of results).
    pub index: usize,
    /// Stable human-readable ID, unique within the grid.
    pub id: String,
    /// The ready-to-run configuration.
    pub config: BacktestConfig,
    /// The session this cell replays; equal specs share one build.
    pub spec: SessionSpec,
}

/// A declarative back-test grid over the evaluation's axes.
///
/// Construct with [`SweepGrid::evaluation`], override the axes you
/// sweep, then [`expand`](SweepGrid::expand) (or hand the grid straight
/// to a [`crate::farm::FarmRunner`]). Every axis setter replaces the
/// whole axis; an axis left alone stays a single point, so the cell
/// count is always the product of exactly what you asked for.
///
/// Invalid combinations are pruned rather than expanded: ingress fault
/// injection is defined per A/B feed pair, not for merged multi-symbol
/// streams (see [`crate::run_multi`]), so a fault-enabled profile
/// crossed with a `symbols > 1` axis point produces no cell.
#[derive(Debug, Clone)]
pub struct SweepGrid {
    /// DNN benchmarks served.
    pub models: Vec<ModelKind>,
    /// Accelerator fleet sizes.
    pub accel_counts: Vec<usize>,
    /// Co-location power conditions.
    pub conditions: Vec<PowerCondition>,
    /// Scheduling policies.
    pub policies: Vec<Policy>,
    /// Ingress fault profiles (lossless = clean run).
    pub faults: Vec<IngressFaults>,
    /// `(symbol count, Zipf skew)` axis points.
    pub symbols: Vec<(usize, f64)>,
    /// Session seeds.
    pub seeds: Vec<u64>,
    /// Session length in simulated seconds.
    pub secs: f64,
    /// Deadline scheme applied per cell.
    pub deadline: GridDeadline,
    /// Hawkes background behind every session.
    pub hawkes: HawkesParams,
    /// Optional flash-burst overlay behind every session.
    pub flash: Option<FlashParams>,
    /// Offload-engine queue capacity for every cell.
    pub queue_capacity: usize,
    /// Feature-window length for every cell.
    pub window: usize,
    /// Per-tick deadline budget applied to [`Policy::DeadlineTiered`]
    /// cells (`None` = unbounded); ignored by fixed-policy cells.
    pub tier_budget: Option<Duration>,
    /// Execution & portfolio layer applied to every cell. Disabled by
    /// default (latency-only grid, bit-identical to grids predating the
    /// field).
    pub execution: ExecutionConfig,
}

impl SweepGrid {
    /// A single-cell grid at the calibrated evaluation point: DeepLOB,
    /// one accelerator, sufficient power, WS+DS, lossless, one symbol,
    /// [`traffic::EVALUATION_SEED`], the 5 ms evaluation deadline, and
    /// the calibrated Hawkes + flash-burst traffic.
    pub fn evaluation(secs: f64) -> Self {
        SweepGrid {
            models: vec![ModelKind::DeepLob],
            accel_counts: vec![1],
            conditions: vec![PowerCondition::Sufficient],
            policies: vec![Policy::Both],
            faults: vec![IngressFaults::lossless()],
            symbols: vec![(1, 0.0)],
            seeds: vec![traffic::EVALUATION_SEED],
            secs,
            deadline: GridDeadline::Evaluation,
            hawkes: traffic::evaluation_hawkes(),
            flash: Some(traffic::evaluation_flash()),
            queue_capacity: 64,
            window: 100,
            tier_budget: None,
            execution: ExecutionConfig::default(),
        }
    }

    /// Sets the execution & portfolio layer for every cell.
    #[must_use]
    pub fn execution(mut self, execution: ExecutionConfig) -> Self {
        self.execution = execution;
        self
    }

    /// Sets the deadline budget for [`Policy::DeadlineTiered`] cells.
    #[must_use]
    pub fn tier_budget(mut self, budget: Option<Duration>) -> Self {
        self.tier_budget = budget;
        self
    }

    /// Replaces the model axis.
    #[must_use]
    pub fn models(mut self, models: impl IntoIterator<Item = ModelKind>) -> Self {
        self.models = models.into_iter().collect();
        self
    }

    /// Replaces the accelerator-count axis.
    #[must_use]
    pub fn accel_counts(mut self, counts: impl IntoIterator<Item = usize>) -> Self {
        self.accel_counts = counts.into_iter().collect();
        self
    }

    /// Replaces the power-condition axis.
    #[must_use]
    pub fn conditions(mut self, conditions: impl IntoIterator<Item = PowerCondition>) -> Self {
        self.conditions = conditions.into_iter().collect();
        self
    }

    /// Replaces the policy axis.
    #[must_use]
    pub fn policies(mut self, policies: impl IntoIterator<Item = Policy>) -> Self {
        self.policies = policies.into_iter().collect();
        self
    }

    /// Replaces the ingress-fault axis.
    #[must_use]
    pub fn faults(mut self, faults: impl IntoIterator<Item = IngressFaults>) -> Self {
        self.faults = faults.into_iter().collect();
        self
    }

    /// Replaces the `(symbols, skew)` axis.
    #[must_use]
    pub fn symbols(mut self, symbols: impl IntoIterator<Item = (usize, f64)>) -> Self {
        self.symbols = symbols.into_iter().collect();
        self
    }

    /// Replaces the seed axis.
    #[must_use]
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Sets the deadline scheme.
    #[must_use]
    pub fn deadline(mut self, deadline: GridDeadline) -> Self {
        self.deadline = deadline;
        self
    }

    /// Overrides the session traffic (Hawkes background + optional
    /// flash bursts).
    #[must_use]
    pub fn traffic(mut self, hawkes: HawkesParams, flash: Option<FlashParams>) -> Self {
        self.hawkes = hawkes;
        self.flash = flash;
        self
    }

    /// Number of cells [`expand`](Self::expand) will produce (invalid
    /// fault × multi-symbol combinations excluded).
    pub fn n_cells(&self) -> usize {
        let per_session = self.models.len()
            * self.accel_counts.len()
            * self.conditions.len()
            * self.policies.len();
        let faulted = self.faults.iter().filter(|f| f.enabled()).count();
        let clean = self.faults.len() - faulted;
        let multi = self.symbols.iter().filter(|(n, _)| *n > 1).count();
        let single = self.symbols.len() - multi;
        per_session * self.seeds.len() * (self.faults.len() * single + clean * multi)
    }

    /// Number of distinct sessions backing the grid — the build count a
    /// shared [`lt_feed::TraceCache`] pays.
    pub fn n_sessions(&self) -> usize {
        let specs: std::collections::HashSet<SessionSpec> =
            self.expand().into_iter().map(|c| c.spec).collect();
        specs.len()
    }

    /// Expands the grid into cells, in a deterministic nested-axis
    /// order (seed ▸ symbols ▸ faults ▸ model ▸ accelerators ▸ power ▸
    /// policy, innermost last). Cell IDs are stable across runs and
    /// worker counts: they encode only axis values, never timing.
    ///
    /// # Panics
    ///
    /// Panics on an empty axis or a non-positive duration.
    pub fn expand(&self) -> Vec<FarmCell> {
        assert!(self.secs > 0.0, "grid duration must be positive");
        for (axis, len) in [
            ("models", self.models.len()),
            ("accel_counts", self.accel_counts.len()),
            ("conditions", self.conditions.len()),
            ("policies", self.policies.len()),
            ("faults", self.faults.len()),
            ("symbols", self.symbols.len()),
            ("seeds", self.seeds.len()),
        ] {
            assert!(len > 0, "grid axis '{axis}' is empty");
        }
        let mut cells = Vec::with_capacity(self.n_cells());
        for &seed in &self.seeds {
            for &(symbols, skew) in &self.symbols {
                let mut spec = SessionSpec::single(self.hawkes, self.secs, seed);
                if let Some(flash) = self.flash {
                    spec = spec.with_flash(flash);
                }
                let spec = spec.with_symbols(symbols, skew);
                for (fault_idx, &faults) in self.faults.iter().enumerate() {
                    if faults.enabled() && symbols > 1 {
                        // Ingress faults model one A/B feed pair; a merged
                        // multi-symbol stream has no such pair to degrade.
                        continue;
                    }
                    for &kind in &self.models {
                        for &n_accels in &self.accel_counts {
                            for &condition in &self.conditions {
                                for &policy in &self.policies {
                                    let mut config = BacktestConfig::new(kind, n_accels, condition)
                                        .with_policy(policy)
                                        .with_t_avail(self.deadline.resolve(kind))
                                        .with_faults(faults)
                                        .with_symbols(symbols, skew);
                                    if policy == Policy::DeadlineTiered {
                                        config = config.with_deadline_tiered(self.tier_budget);
                                    }
                                    config.queue_capacity = self.queue_capacity;
                                    config.window = self.window;
                                    config.execution = self.execution;
                                    let id = cell_id(
                                        kind, n_accels, condition, policy, fault_idx, symbols,
                                        skew, seed,
                                    );
                                    cells.push(FarmCell {
                                        index: cells.len(),
                                        id,
                                        config,
                                        spec,
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }
}

/// Short stable slug per model for cell IDs.
fn model_slug(kind: ModelKind) -> &'static str {
    match kind {
        ModelKind::VanillaCnn => "cnn",
        ModelKind::TransLob => "translob",
        ModelKind::DeepLob => "deeplob",
    }
}

/// Short stable slug per power condition for cell IDs.
fn condition_slug(condition: PowerCondition) -> &'static str {
    match condition {
        PowerCondition::Sufficient => "suff",
        PowerCondition::Limited => "lim",
    }
}

#[allow(clippy::too_many_arguments)]
fn cell_id(
    kind: ModelKind,
    n_accels: usize,
    condition: PowerCondition,
    policy: Policy,
    fault_idx: usize,
    symbols: usize,
    skew: f64,
    seed: u64,
) -> String {
    format!(
        "m={}.n={}.c={}.p={}.f={}.s={}x{}.seed={}",
        model_slug(kind),
        n_accels,
        condition_slug(condition),
        policy.label(),
        fault_idx,
        symbols,
        skew,
        seed
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_protocol::netem::FaultRates;

    fn lossy() -> IngressFaults {
        IngressFaults::symmetric(
            FaultRates {
                drop: 0.05,
                ..FaultRates::default()
            },
            7,
        )
    }

    #[test]
    fn expansion_is_the_axis_product() {
        let grid = SweepGrid::evaluation(1.0)
            .models(ModelKind::ALL)
            .accel_counts([1, 2, 4])
            .conditions([PowerCondition::Sufficient, PowerCondition::Limited])
            .policies(Policy::ALL)
            .seeds([1, 2, 3]);
        assert_eq!(grid.n_cells(), 3 * 3 * 2 * 4 * 3);
        let cells = grid.expand();
        assert_eq!(cells.len(), grid.n_cells());
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }

    #[test]
    fn cell_ids_are_unique_and_stable() {
        let grid = SweepGrid::evaluation(1.0)
            .models(ModelKind::ALL)
            .policies(Policy::ALL)
            .seeds([1, 2]);
        let a = grid.expand();
        let b = grid.expand();
        let ids: std::collections::HashSet<&str> = a.iter().map(|c| c.id.as_str()).collect();
        assert_eq!(ids.len(), a.len(), "IDs are unique");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id, "IDs are stable across expansions");
        }
        assert_eq!(a[0].id, "m=cnn.n=1.c=suff.p=baseline.f=0.s=1x0.seed=1");
    }

    #[test]
    fn fault_times_multi_symbol_is_pruned() {
        let grid = SweepGrid::evaluation(1.0)
            .faults([IngressFaults::lossless(), lossy()])
            .symbols([(1, 0.0), (4, 1.0)]);
        // 1 symbol point takes both fault profiles; the 4-symbol point
        // only the lossless one.
        assert_eq!(grid.n_cells(), 3);
        let cells = grid.expand();
        assert_eq!(cells.len(), 3);
        assert!(cells
            .iter()
            .all(|c| !(c.config.faults.enabled() && c.config.symbols > 1)));
    }

    #[test]
    fn sessions_are_shared_across_config_axes() {
        let grid = SweepGrid::evaluation(1.0)
            .models(ModelKind::ALL)
            .policies(Policy::ALL)
            .seeds([1, 2, 3]);
        assert_eq!(grid.n_cells(), 36);
        assert_eq!(grid.n_sessions(), 3, "config axes never split a session");
    }

    #[test]
    fn scheduling_deadline_tracks_the_model() {
        let cells = SweepGrid::evaluation(1.0)
            .models(ModelKind::ALL)
            .deadline(GridDeadline::Scheduling)
            .expand();
        for c in &cells {
            assert_eq!(
                c.config.t_avail,
                traffic::scheduling_deadline_for(c.config.kind)
            );
        }
    }

    #[test]
    #[should_panic(expected = "axis 'seeds' is empty")]
    fn empty_axis_rejected() {
        let _ = SweepGrid::evaluation(1.0).seeds([]).expand();
    }

    #[test]
    fn tiered_cells_carry_the_grid_budget() {
        let budget = Duration::from_micros(450);
        let cells = SweepGrid::evaluation(1.0)
            .policies([Policy::Both, Policy::DeadlineTiered])
            .tier_budget(Some(budget))
            .expand();
        assert_eq!(cells.len(), 2);
        let fixed = &cells[0].config;
        let tiered = &cells[1].config;
        assert_eq!(fixed.policy, Policy::Both);
        assert_eq!(tiered.policy, Policy::DeadlineTiered);
        assert_eq!(tiered.tier.budget, Some(budget));
        assert!(cells[1].id.contains("p=tiered"));
        tiered.validate();
    }
}
