//! The farm runner: cached session builds + work-stealing cell scatter.
//!
//! A run has two phases. Phase one resolves the grid's *distinct*
//! session specs and builds each exactly once through the shared
//! [`TraceCache`] (itself in parallel — session generation is the
//! expensive part a naive sweep repeats per cell). Phase two scatters
//! the cells over the worker pool; every cell replays its session's
//! immutable `Arc`'d artifact through the serial engine, so results are
//! bit-identical to [`run_lighttrader`] / [`crate::run_multi`] on the
//! same inputs, at any worker count, merged back in expansion order.

use super::grid::{FarmCell, SweepGrid};
use super::pool::scatter;
use super::results::FarmResults;
use crate::config::BacktestConfig;
use crate::lighttrader::run_lighttrader;
use crate::metrics::BacktestMetrics;
use crate::multi::run_multi_merged;
use lt_feed::{SessionArtifact, SessionSpec, TraceCache};
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

/// Which cells keep their full [`BacktestMetrics`] (latency samples,
/// stage decompositions) next to the scalar columns.
#[derive(Debug, Clone, Default)]
pub enum RetainFull {
    /// Columns only — the cheap default for big grids.
    #[default]
    None,
    /// Every cell (small grids, parity tests).
    All,
    /// The designated cell indices (expansion order).
    Cells(Vec<usize>),
}

impl RetainFull {
    fn wants(&self, index: usize) -> bool {
        match self {
            RetainFull::None => false,
            RetainFull::All => true,
            RetainFull::Cells(cells) => cells.contains(&index),
        }
    }
}

/// One failed cell of a farm run.
#[derive(Debug, Clone)]
pub struct CellFailure {
    /// Position in expansion order.
    pub index: usize,
    /// The cell's stable ID.
    pub id: String,
    /// The configuration that failed.
    pub config: BacktestConfig,
    /// The original panic message.
    pub message: String,
}

/// Every failure of a farm run — not just the first. With hundreds of
/// cells per grid a lone first failure hiding nine more is undebuggable.
#[derive(Debug, Clone)]
pub struct FarmFailures {
    /// Total cells attempted.
    pub total: usize,
    /// The failures, in expansion order.
    pub failures: Vec<CellFailure>,
}

impl fmt::Display for FarmFailures {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} of {} farm cells failed:",
            self.failures.len(),
            self.total
        )?;
        for c in &self.failures {
            writeln!(
                f,
                "farm cell #{} [{}] panicked: {}\n  config: {:?}",
                c.index, c.id, c.message, c.config
            )?;
        }
        Ok(())
    }
}

impl std::error::Error for FarmFailures {}

/// Runs a [`SweepGrid`] over the worker pool with shared-trace caching.
///
/// ```no_run
/// use lt_sim::farm::{FarmRunner, SweepGrid};
/// let grid = SweepGrid::evaluation(10.0).seeds([1, 2, 3]);
/// let results = FarmRunner::new().run(&grid);
/// assert_eq!(results.len(), 3);
/// ```
#[derive(Debug, Default)]
pub struct FarmRunner {
    workers: usize,
    retain: RetainFull,
    cache: Option<Arc<TraceCache>>,
    reuse_traces: bool,
}

impl FarmRunner {
    /// A runner with auto worker count, no full-metrics retention, a
    /// private trace cache, and trace reuse on.
    pub fn new() -> Self {
        FarmRunner {
            workers: 0,
            retain: RetainFull::None,
            cache: None,
            reuse_traces: true,
        }
    }

    /// Caps the worker count (0 = one per available CPU).
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Chooses which cells retain full metrics.
    #[must_use]
    pub fn retain(mut self, retain: RetainFull) -> Self {
        self.retain = retain;
        self
    }

    /// Shares an external [`TraceCache`] (e.g. the process-wide
    /// [`crate::traffic::shared_trace_cache`]) so multiple grids reuse
    /// each other's session builds.
    #[must_use]
    pub fn cache(mut self, cache: Arc<TraceCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Disables trace reuse: every cell rebuilds its session from the
    /// spec, exactly like the pre-farm per-experiment helpers. Only
    /// useful as the baseline of the farm-vs-naive benchmark.
    #[must_use]
    pub fn without_trace_reuse(mut self) -> Self {
        self.reuse_traces = false;
        self
    }

    /// Expands the grid and runs every cell.
    ///
    /// # Errors
    ///
    /// Returns [`FarmFailures`] naming every failed cell when any cell
    /// panics; the remaining cells still ran.
    pub fn try_run(&self, grid: &SweepGrid) -> Result<FarmResults, FarmFailures> {
        self.try_run_cells(grid.expand())
    }

    /// [`Self::try_run`] on pre-expanded cells.
    pub fn try_run_cells(&self, cells: Vec<FarmCell>) -> Result<FarmResults, FarmFailures> {
        if cells.is_empty() {
            return Ok(FarmResults::default());
        }
        let cache = self
            .cache
            .clone()
            .unwrap_or_else(|| Arc::new(TraceCache::new()));

        if self.reuse_traces {
            // Phase 1: build each distinct session exactly once, in
            // parallel. Build panics are swallowed here — the failing
            // cell's own run re-triggers the build and reports it with
            // the cell's identity attached.
            let specs: Vec<SessionSpec> = {
                let mut seen = HashSet::new();
                cells
                    .iter()
                    .map(|c| c.spec)
                    .filter(|s| seen.insert(*s))
                    .collect()
            };
            let _ = scatter(specs.len(), self.workers, |i| cache.get_or_build(&specs[i]));
        }

        // Phase 2: scatter the cells; each replays an immutable artifact.
        let outcomes = scatter(cells.len(), self.workers, |i| {
            let artifact = if self.reuse_traces {
                cache.get_or_build(&cells[i].spec)
            } else {
                Arc::new(cells[i].spec.build())
            };
            run_cell(&cells[i].config, &artifact)
        });

        let total = cells.len();
        let mut results = FarmResults::with_capacity(total);
        let mut failures = Vec::new();
        for (cell, outcome) in cells.into_iter().zip(outcomes) {
            match outcome {
                Ok(metrics) => {
                    let full = self.retain.wants(cell.index).then(|| metrics.clone());
                    results.push(cell, &metrics, full);
                }
                Err(message) => failures.push(CellFailure {
                    index: cell.index,
                    id: cell.id,
                    config: cell.config,
                    message,
                }),
            }
        }
        if failures.is_empty() {
            Ok(results)
        } else {
            Err(FarmFailures { total, failures })
        }
    }

    /// [`Self::try_run`], panicking with the full failure report.
    ///
    /// # Panics
    ///
    /// Panics when any cell fails, naming every failed cell.
    pub fn run(&self, grid: &SweepGrid) -> FarmResults {
        self.try_run(grid).unwrap_or_else(|f| panic!("{f}"))
    }
}

/// Replays one cell: single-symbol artifacts through the historical
/// [`run_lighttrader`] path (bit-parity with every existing experiment),
/// multi-symbol ones through the sharded engine on the precomputed
/// merge.
fn run_cell(config: &BacktestConfig, artifact: &SessionArtifact) -> BacktestMetrics {
    match artifact {
        SessionArtifact::Single(session) => run_lighttrader(&session.trace, config),
        SessionArtifact::Multi {
            session,
            merged,
            shards,
        } => run_multi_merged(session, merged, shards, config).aggregate,
    }
}

/// Runs `grid` with a default-configured [`FarmRunner`] at `workers`.
///
/// # Errors
///
/// Returns [`FarmFailures`] naming every failed cell.
pub fn try_run_farm(grid: &SweepGrid, workers: usize) -> Result<FarmResults, FarmFailures> {
    FarmRunner::new().workers(workers).try_run(grid)
}

/// [`try_run_farm`], panicking with the full failure report.
///
/// # Panics
///
/// Panics when any cell fails, naming every failed cell.
pub fn run_farm(grid: &SweepGrid, workers: usize) -> FarmResults {
    try_run_farm(grid, workers).unwrap_or_else(|f| panic!("{f}"))
}
