//! The back-test farm: declarative grids, shared-trace caching, and a
//! work-stealing runner with structure-of-arrays results.
//!
//! The paper's evaluation is a grid — 3 models × accelerator counts ×
//! 2 power conditions × 4 policies × seeds — and every result axis the
//! simulator has grown since (fault profiles, symbol counts, deadline
//! schemes) multiplies it. The farm makes that grid the unit of work:
//!
//! ```text
//!   SweepGrid ──expand──▶ [FarmCell]          (config, session spec)+id
//!       │                     │
//!       │              distinct specs
//!       ▼                     ▼
//!   TraceCache ◀──build once── phase 1        (lt-feed, Arc'd sessions)
//!       │
//!       ▼
//!   FarmRunner ──scatter──▶ worker pool       work-stealing over cells,
//!       │                                     disjoint result slots
//!       ▼
//!   FarmResults ◀──merge in expansion order── SoA columns (+ retained
//!                                             full metrics on request)
//! ```
//!
//! Correctness is pinned by construction and by test: each cell replays
//! an immutable session through the same serial engine as
//! [`crate::run_lighttrader`], so farm results are bit-identical to
//! serial runs per cell at any worker count, and reruns are
//! byte-identical.

mod grid;
mod pool;
mod results;
mod runner;

pub use grid::{FarmCell, GridDeadline, SweepGrid};
pub use results::{CellSummary, FarmResults};
pub use runner::{run_farm, try_run_farm, CellFailure, FarmFailures, FarmRunner, RetainFull};

pub(crate) use pool::scatter;
