//! Structure-of-arrays farm results.
//!
//! A thousand-cell grid must not hold a thousand heavyweight
//! [`BacktestMetrics`] (each carries every latency sample and its full
//! per-stage decomposition). [`FarmResults`] keeps one scalar *column*
//! per headline statistic — outcome counters, latency quantiles,
//! energy, batching — indexed by cell in expansion order, and retains
//! the full metrics only for the cells the caller designated. The
//! columns of a retained cell tile its full metrics exactly
//! ([`FarmResults::assert_full_consistent`]).

use super::grid::FarmCell;
use crate::metrics::BacktestMetrics;

/// The scalar summary of one cell — one row across the SoA columns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSummary {
    /// Queries answered within the available time.
    pub responded: u64,
    /// Queries whose answer arrived after the deadline.
    pub late: u64,
    /// Queries dropped at admission (offload queue full).
    pub dropped_full: u64,
    /// Queries dropped while queued (deadline lapsed before issue).
    pub dropped_stale: u64,
    /// Queries shed by the deadline-tier planner.
    pub dropped_deadline: u64,
    /// Queries deferred to the conventional pipeline.
    pub deferred: u64,
    /// Mean in-time tick-to-trade, nanoseconds.
    pub mean_t2t_ns: u64,
    /// Median in-time tick-to-trade, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile in-time tick-to-trade, nanoseconds.
    pub p99_ns: u64,
    /// 99.9th-percentile in-time tick-to-trade, nanoseconds.
    pub p999_ns: u64,
    /// Accelerator-pool energy, joules.
    pub energy_j: f64,
    /// Batches issued.
    pub batches: u64,
    /// Sum of issued batch sizes.
    pub batched_queries: u64,
    /// Orders wired out by the execution layer (0 for latency-only cells).
    pub orders_sent: u64,
    /// Orders fully filled at the venue.
    pub filled: u64,
    /// Orders that crossed nothing at arrival (complete miss).
    pub missed: u64,
    /// Contracts filled across all orders.
    pub contracts_filled: u64,
    /// Final mark-to-market equity, half-ticks × contracts.
    pub equity_half: i64,
    /// Total fees paid, half-ticks × contracts.
    pub fees_half: i64,
}

impl CellSummary {
    /// Extracts the scalar row from full metrics. This is the ONLY path
    /// that fills columns, so columns and retained metrics cannot drift.
    pub fn from_metrics(m: &BacktestMetrics) -> Self {
        let exec = m.execution.unwrap_or_default();
        CellSummary {
            responded: m.responded,
            late: m.late,
            dropped_full: m.dropped_full,
            dropped_stale: m.dropped_stale,
            dropped_deadline: m.dropped_deadline,
            deferred: m.deferred,
            mean_t2t_ns: m.mean_latency().as_nanos() as u64,
            p50_ns: m.latency_quantile(0.50).as_nanos() as u64,
            p99_ns: m.latency_quantile(0.99).as_nanos() as u64,
            p999_ns: m.latency_quantile(0.999).as_nanos() as u64,
            energy_j: m.energy_j,
            batches: m.batches,
            batched_queries: m.batched_queries,
            orders_sent: exec.orders_sent,
            filled: exec.filled,
            missed: exec.missed,
            contracts_filled: exec.contracts_filled,
            equity_half: exec.equity_half,
            fees_half: exec.fees_half,
        }
    }

    /// Total queries across all outcome buckets.
    pub fn total(&self) -> u64 {
        self.responded
            + self.late
            + self.dropped_full
            + self.dropped_stale
            + self.dropped_deadline
            + self.deferred
    }

    /// Fraction of queries answered in time.
    pub fn response_rate(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.responded as f64 / self.total() as f64
    }

    /// Fraction of queries missed.
    pub fn miss_rate(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        1.0 - self.response_rate()
    }

    /// Mean issued batch size.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        self.batched_queries as f64 / self.batches as f64
    }
}

/// Results of one farm run: cells in expansion order, scalar columns
/// per statistic, and optional full-metrics retention per cell.
#[derive(Debug, Clone, Default)]
pub struct FarmResults {
    cells: Vec<FarmCell>,
    responded: Vec<u64>,
    late: Vec<u64>,
    dropped_full: Vec<u64>,
    dropped_stale: Vec<u64>,
    dropped_deadline: Vec<u64>,
    deferred: Vec<u64>,
    mean_t2t_ns: Vec<u64>,
    p50_ns: Vec<u64>,
    p99_ns: Vec<u64>,
    p999_ns: Vec<u64>,
    energy_j: Vec<f64>,
    batches: Vec<u64>,
    batched_queries: Vec<u64>,
    orders_sent: Vec<u64>,
    filled: Vec<u64>,
    missed: Vec<u64>,
    contracts_filled: Vec<u64>,
    equity_half: Vec<i64>,
    fees_half: Vec<i64>,
    full: Vec<Option<BacktestMetrics>>,
}

impl FarmResults {
    /// An empty result set with room for `capacity` cells.
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        FarmResults {
            cells: Vec::with_capacity(capacity),
            responded: Vec::with_capacity(capacity),
            late: Vec::with_capacity(capacity),
            dropped_full: Vec::with_capacity(capacity),
            dropped_stale: Vec::with_capacity(capacity),
            dropped_deadline: Vec::with_capacity(capacity),
            deferred: Vec::with_capacity(capacity),
            mean_t2t_ns: Vec::with_capacity(capacity),
            p50_ns: Vec::with_capacity(capacity),
            p99_ns: Vec::with_capacity(capacity),
            p999_ns: Vec::with_capacity(capacity),
            energy_j: Vec::with_capacity(capacity),
            batches: Vec::with_capacity(capacity),
            batched_queries: Vec::with_capacity(capacity),
            orders_sent: Vec::with_capacity(capacity),
            filled: Vec::with_capacity(capacity),
            missed: Vec::with_capacity(capacity),
            contracts_filled: Vec::with_capacity(capacity),
            equity_half: Vec::with_capacity(capacity),
            fees_half: Vec::with_capacity(capacity),
            full: Vec::with_capacity(capacity),
        }
    }

    /// Appends one cell's outcome; `full` is the metrics object to
    /// retain, if this cell was designated.
    pub(crate) fn push(
        &mut self,
        cell: FarmCell,
        metrics: &BacktestMetrics,
        full: Option<BacktestMetrics>,
    ) {
        let s = CellSummary::from_metrics(metrics);
        self.cells.push(cell);
        self.responded.push(s.responded);
        self.late.push(s.late);
        self.dropped_full.push(s.dropped_full);
        self.dropped_stale.push(s.dropped_stale);
        self.dropped_deadline.push(s.dropped_deadline);
        self.deferred.push(s.deferred);
        self.mean_t2t_ns.push(s.mean_t2t_ns);
        self.p50_ns.push(s.p50_ns);
        self.p99_ns.push(s.p99_ns);
        self.p999_ns.push(s.p999_ns);
        self.energy_j.push(s.energy_j);
        self.batches.push(s.batches);
        self.batched_queries.push(s.batched_queries);
        self.orders_sent.push(s.orders_sent);
        self.filled.push(s.filled);
        self.missed.push(s.missed);
        self.contracts_filled.push(s.contracts_filled);
        self.equity_half.push(s.equity_half);
        self.fees_half.push(s.fees_half);
        self.full.push(full);
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the run produced no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The cells, in expansion order.
    pub fn cells(&self) -> &[FarmCell] {
        &self.cells
    }

    /// One cell's scalar row, reassembled from the columns.
    pub fn summary(&self, i: usize) -> CellSummary {
        CellSummary {
            responded: self.responded[i],
            late: self.late[i],
            dropped_full: self.dropped_full[i],
            dropped_stale: self.dropped_stale[i],
            dropped_deadline: self.dropped_deadline[i],
            deferred: self.deferred[i],
            mean_t2t_ns: self.mean_t2t_ns[i],
            p50_ns: self.p50_ns[i],
            p99_ns: self.p99_ns[i],
            p999_ns: self.p999_ns[i],
            energy_j: self.energy_j[i],
            batches: self.batches[i],
            batched_queries: self.batched_queries[i],
            orders_sent: self.orders_sent[i],
            filled: self.filled[i],
            missed: self.missed[i],
            contracts_filled: self.contracts_filled[i],
            equity_half: self.equity_half[i],
            fees_half: self.fees_half[i],
        }
    }

    /// The `responded` column.
    pub fn responded(&self) -> &[u64] {
        &self.responded
    }

    /// The p99 tick-to-trade column, nanoseconds.
    pub fn p99_ns(&self) -> &[u64] {
        &self.p99_ns
    }

    /// The energy column, joules.
    pub fn energy_j(&self) -> &[f64] {
        &self.energy_j
    }

    /// The final-equity column, half-ticks × contracts (0 for
    /// latency-only cells).
    pub fn equity_half(&self) -> &[i64] {
        &self.equity_half
    }

    /// The orders-sent column (0 for latency-only cells).
    pub fn orders_sent(&self) -> &[u64] {
        &self.orders_sent
    }

    /// The retained full metrics of cell `i`, when designated.
    pub fn full_metrics(&self, i: usize) -> Option<&BacktestMetrics> {
        self.full[i].as_ref()
    }

    /// Number of cells that retained full metrics.
    pub fn n_retained(&self) -> usize {
        self.full.iter().filter(|f| f.is_some()).count()
    }

    /// Panics unless, for every cell with retained full metrics, the
    /// scalar columns equal [`CellSummary::from_metrics`] of the
    /// retained object — the invariant that the cheap columns really
    /// tile the expensive metrics.
    pub fn assert_full_consistent(&self) {
        for (i, full) in self.full.iter().enumerate() {
            if let Some(m) = full {
                let expect = CellSummary::from_metrics(m);
                let got = self.summary(i);
                assert!(
                    got == expect && got.energy_j.to_bits() == expect.energy_j.to_bits(),
                    "cell #{i} [{}]: columns {got:?} drifted from retained metrics {expect:?}",
                    self.cells[i].id
                );
            }
        }
    }

    /// Renders the grid as deterministic JSON: one row per cell with its
    /// ID, axis values, and scalar columns. Formatting is fixed-notation
    /// (no float shortest-round-trip), so equal results are equal bytes.
    pub fn to_grid_json(&self) -> String {
        let rows: Vec<String> = self
            .cells
            .iter()
            .enumerate()
            .map(|(i, cell)| {
                let s = self.summary(i);
                format!(
                    "    {{\"id\": \"{}\", \"model\": \"{:?}\", \"n_accels\": {}, \
                     \"condition\": \"{:?}\", \"policy\": \"{}\", \"symbols\": {}, \
                     \"seed\": {}, \"responded\": {}, \"late\": {}, \"dropped_full\": {}, \
                     \"dropped_stale\": {}, \"dropped_deadline\": {}, \"deferred\": {}, \
                     \"response_rate\": {:.6}, \
                     \"mean_t2t_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \
                     \"energy_j\": {:.6}, \"batches\": {}, \"mean_batch\": {:.4}, \
                     \"orders_sent\": {}, \"filled\": {}, \"missed\": {}, \
                     \"contracts_filled\": {}, \"equity_half\": {}, \"fees_half\": {}}}",
                    cell.id,
                    cell.config.kind,
                    cell.config.n_accels,
                    cell.config.condition,
                    cell.config.policy.label(),
                    cell.config.symbols,
                    cell.spec.seed,
                    s.responded,
                    s.late,
                    s.dropped_full,
                    s.dropped_stale,
                    s.dropped_deadline,
                    s.deferred,
                    s.response_rate(),
                    s.mean_t2t_ns,
                    s.p50_ns,
                    s.p99_ns,
                    s.p999_ns,
                    s.energy_j,
                    s.batches,
                    s.mean_batch(),
                    s.orders_sent,
                    s.filled,
                    s.missed,
                    s.contracts_filled,
                    s.equity_half,
                    s.fees_half,
                )
            })
            .collect();
        format!(
            "{{\n  \"n_cells\": {},\n  \"cells\": [\n{}\n  ]\n}}\n",
            self.len(),
            rows.join(",\n")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::farm::SweepGrid;
    use std::time::Duration;

    fn metrics(responded: u64) -> BacktestMetrics {
        let mut m = BacktestMetrics::new();
        for i in 0..responded {
            m.record_response(Duration::from_micros(100 + i));
        }
        m.late = 2;
        m.deferred = 1;
        m.energy_j = 1.25 * responded as f64;
        m.batches = responded;
        m.batched_queries = responded * 2;
        m
    }

    fn cell(index: usize) -> FarmCell {
        let mut c = SweepGrid::evaluation(1.0).expand().remove(0);
        c.index = index;
        c.id = format!("cell-{index}");
        c
    }

    #[test]
    fn columns_round_trip_through_summary() {
        let mut r = FarmResults::with_capacity(2);
        let m = metrics(5);
        r.push(cell(0), &m, None);
        r.push(cell(1), &metrics(3), Some(metrics(3)));
        assert_eq!(r.len(), 2);
        assert_eq!(r.summary(0), CellSummary::from_metrics(&m));
        assert_eq!(r.responded(), &[5, 3]);
        assert_eq!(r.n_retained(), 1);
        assert!(r.full_metrics(0).is_none());
        assert!(r.full_metrics(1).is_some());
        r.assert_full_consistent();
    }

    #[test]
    fn summary_rates_match_metrics() {
        let m = metrics(7);
        let s = CellSummary::from_metrics(&m);
        assert_eq!(s.total(), m.total());
        assert!((s.response_rate() - m.response_rate()).abs() < 1e-12);
        assert!((s.miss_rate() - m.miss_rate()).abs() < 1e-12);
        assert!((s.mean_batch() - m.mean_batch()).abs() < 1e-12);
        assert_eq!(s.p99_ns, m.latency_quantile(0.99).as_nanos() as u64);
    }

    #[test]
    #[should_panic(expected = "drifted")]
    fn drifted_columns_are_caught() {
        let mut r = FarmResults::with_capacity(1);
        r.push(cell(0), &metrics(4), Some(metrics(4)));
        r.responded[0] += 1;
        r.assert_full_consistent();
    }

    #[test]
    fn grid_json_is_deterministic() {
        let mut a = FarmResults::with_capacity(1);
        a.push(cell(0), &metrics(4), None);
        let mut b = FarmResults::with_capacity(1);
        b.push(cell(0), &metrics(4), None);
        assert_eq!(a.to_grid_json(), b.to_grid_json());
        assert!(a.to_grid_json().contains("\"n_cells\": 1"));
        assert!(a.to_grid_json().contains("\"id\": \"cell-0\""));
    }
}
