//! The farm's worker pool: work-stealing scatter into disjoint slots.
//!
//! One helper backs both the farm runner and the legacy sweep: `jobs`
//! indices are claimed off a shared atomic counter by `workers` scoped
//! threads, and each outcome is written straight into its own
//! pre-allocated slot. No collector channel, no second pass over a
//! `Vec<Option<_>>` — a slot is a `OnceLock` only its claiming worker
//! ever touches, so the scatter is race-free by construction and the
//! results come back in input order for free.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Extracts a printable message from a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

/// Resolves a worker-count request: 0 means one worker per available
/// CPU, and the pool never exceeds the job count.
pub(crate) fn resolve_workers(jobs: usize, workers: usize) -> usize {
    let workers = if workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        workers
    };
    workers.min(jobs).max(1)
}

/// Runs `run(i)` for every `i in 0..jobs` across `workers` threads
/// (0 = auto), returning per-job outcomes in input order. A panicking
/// job becomes `Err(panic message)` in its slot; the other jobs keep
/// running.
pub(crate) fn scatter<T, F>(jobs: usize, workers: usize, run: F) -> Vec<Result<T, String>>
where
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    if jobs == 0 {
        return Vec::new();
    }
    let workers = resolve_workers(jobs, workers);
    let slots: Vec<OnceLock<Result<T, String>>> = (0..jobs).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            let slots = &slots;
            let next = &next;
            let run = &run;
            scope.spawn(move |_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let outcome = catch_unwind(AssertUnwindSafe(|| run(i)))
                    .map_err(|payload| panic_message(payload.as_ref()).to_owned());
                slots[i].set(outcome).unwrap_or_else(|_| {
                    unreachable!("slot {i} is written once by its claiming worker")
                });
            });
        }
    })
    .expect("scatter workers never propagate panics");
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every claimed slot is filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_preserves_input_order() {
        let out = scatter(100, 7, |i| i * i);
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap(), &(i * i));
        }
    }

    #[test]
    fn scatter_isolates_panics_per_job() {
        let out = scatter(10, 3, |i| {
            if i % 4 == 1 {
                panic!("job {i} exploded");
            }
            i
        });
        for (i, r) in out.iter().enumerate() {
            if i % 4 == 1 {
                assert_eq!(r.as_ref().unwrap_err(), &format!("job {i} exploded"));
            } else {
                assert_eq!(r.as_ref().unwrap(), &i);
            }
        }
    }

    #[test]
    fn scatter_empty_and_worker_resolution() {
        assert!(scatter(0, 4, |i| i).is_empty());
        assert_eq!(resolve_workers(3, 8), 3, "never more workers than jobs");
        assert_eq!(resolve_workers(8, 3), 3);
        assert!(resolve_workers(8, 0) >= 1, "auto resolves to at least one");
    }
}
