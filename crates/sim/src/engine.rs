//! The shared discrete-event engine driving every back-test core.
//!
//! Both back-test cores — the single-device baselines and the full
//! LightTrader model — used to hand-roll their own virtual time,
//! completion ordering, and deadline scoring. This module extracts that
//! machinery once: a virtual clock, a typed binary-heap event queue, and
//! the [`SimModel`] trait a system model implements to be driven by
//! [`run`]. Future device models (fault injection, new accelerators)
//! are one `SimModel` implementation each.
//!
//! # Event ordering
//!
//! The heap orders events by `(timestamp, kind, tie, seq)`:
//!
//! | rank | event          | why this rank                                  |
//! |------|----------------|------------------------------------------------|
//! | 0    | `DvfsRescale`  | a rescale decided while handling one completion must re-time flights *before* any other same-instant completion is examined (it may move that completion) |
//! | 1    | `BatchComplete`| completions at `t` settle before the tick at `t` is ingested (ties broken by accelerator id, matching "lowest device first") |
//! | 2    | `BatchIssue`   | deferred issue opportunities run after the completion that may have freed the device |
//! | 3    | `OrderOut`     | deadline scoring happens at wire-out time       |
//! | 4    | `TickArrival`  | a tick at `t` sees every consequence of events at `t` |
//!
//! `seq` (insertion order) breaks remaining ties, so equal-priority
//! events replay deterministically in the order the model raised them.

use crate::metrics::BacktestMetrics;
use crate::telemetry::StageBreakdown;
use lt_accel::device::BatchId;
use lt_accel::OperatingPoint;
use lt_dnn::ModelKind;
use lt_feed::{TickRecord, TickTrace};
use lt_lob::Timestamp;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One answered query en route to the wire: scored against its deadline
/// by the engine when its `OrderOut` event fires.
#[derive(Debug, Clone)]
pub struct PendingOrder {
    /// Exchange timestamp of the triggering tick.
    pub tick_ts: Timestamp,
    /// Latest acceptable wire-out time (`tick_ts + t_avail`).
    pub deadline: Timestamp,
    /// Exact per-stage split of `order_out - tick_ts`.
    pub breakdown: StageBreakdown,
    /// Symbol shard the triggering tick belonged to (0 for
    /// single-instrument runs), so completions fan back out to the right
    /// shard's accounting.
    pub shard: u16,
    /// The model tier that served the query (always the configured kind
    /// for fixed-model policies; the planner's pick under
    /// `DeadlineTiered`).
    pub tier: ModelKind,
    /// The order the strategy decided to send on this tick, captured at
    /// decision time; `None` when the strategy held (or the execution
    /// layer is disabled). Settled against the arrival-time book when
    /// this order wires out.
    pub intent: Option<lt_lob::OrderIntent>,
}

/// A scheduled simulation event.
#[derive(Debug, Clone)]
pub enum Event {
    /// The next trace tick reaches the system (engine-generated; models
    /// receive it through [`SimModel::on_tick`]).
    TickArrival {
        /// Index into the trace.
        idx: usize,
    },
    /// A deferred issue opportunity (e.g. the oldest tensor becomes
    /// ready while the device sits idle).
    BatchIssue {
        /// Accelerator the opportunity belongs to.
        aid: usize,
    },
    /// An in-flight batch finishes — if `batch` still matches the
    /// device's current token (a DVFS rescale invalidates it).
    BatchComplete {
        /// Accelerator the batch ran on.
        aid: usize,
        /// Completion token from [`lt_accel::Accelerator::start_batch`].
        batch: BatchId,
    },
    /// A scheduler decision to re-time a running batch at a new
    /// operating point.
    DvfsRescale {
        /// Accelerator to rescale.
        aid: usize,
        /// Token of the flight the decision was made against.
        batch: BatchId,
        /// The new operating point.
        target: OperatingPoint,
    },
    /// Answered queries leaving on the wire; the engine scores each
    /// against its deadline and records the stage breakdown.
    OrderOut {
        /// The orders going out at this instant, in settlement order.
        orders: Vec<PendingOrder>,
    },
}

impl Event {
    /// Same-timestamp priority (lower runs first); see module docs.
    fn rank(&self) -> u8 {
        match self {
            Event::DvfsRescale { .. } => 0,
            Event::BatchComplete { .. } => 1,
            Event::BatchIssue { .. } => 2,
            Event::OrderOut { .. } => 3,
            Event::TickArrival { .. } => 4,
        }
    }

    /// Same-timestamp, same-rank tie key: completions settle lowest
    /// accelerator first (the order the hand-rolled loops used).
    fn tie(&self) -> u64 {
        match self {
            Event::BatchComplete { aid, .. } => *aid as u64,
            _ => 0,
        }
    }
}

struct Entry {
    ts: Timestamp,
    rank: u8,
    tie: u64,
    seq: u64,
    event: Event,
}

impl Entry {
    fn key(&self) -> (Timestamp, u8, u64, u64) {
        (self.ts, self.rank, self.tie, self.seq)
    }
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        other.key().cmp(&self.key())
    }
}

/// The typed event queue (min-heap over `(ts, rank, tie, seq)`).
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Entry>,
    seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at `ts`.
    pub fn push_at(&mut self, ts: Timestamp, event: Event) {
        let entry = Entry {
            ts,
            rank: event.rank(),
            tie: event.tie(),
            seq: self.seq,
            event,
        };
        self.seq += 1;
        self.heap.push(entry);
    }

    /// Pops the earliest event, if any.
    fn pop(&mut self) -> Option<(Timestamp, Event)> {
        self.heap.pop().map(|e| (e.ts, e.event))
    }

    /// Events still scheduled.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// What a model sees while handling an event: the virtual clock, the
/// event queue to schedule against, and the run's metrics.
pub struct EngineCtx<'a> {
    /// The virtual clock (timestamp of the event being handled).
    pub now: Timestamp,
    /// The event queue; push follow-up events here.
    pub queue: &'a mut EventQueue,
    /// The run's metrics (outcome counters; the engine itself records
    /// responses and lateness when `OrderOut` events fire).
    pub metrics: &'a mut BacktestMetrics,
}

/// A system model driven by the engine: the per-event behaviour of one
/// back-test core. All bookkeeping that is *not* model-specific (virtual
/// time, event ordering, deadline scoring, latency recording) lives in
/// [`run`].
pub trait SimModel {
    /// A trace tick reaches the system.
    fn on_tick(&mut self, tick: &TickRecord, ctx: &mut EngineCtx);

    /// A previously scheduled issue opportunity fires.
    fn on_batch_issue(&mut self, _aid: usize, _ctx: &mut EngineCtx) {}

    /// A batch completion event fires. The model must ignore it if
    /// `batch` no longer matches the device's current token.
    fn on_batch_complete(&mut self, aid: usize, batch: BatchId, ctx: &mut EngineCtx);

    /// A scheduled DVFS rescale fires.
    fn on_dvfs_rescale(
        &mut self,
        _aid: usize,
        _batch: BatchId,
        _target: OperatingPoint,
        _ctx: &mut EngineCtx,
    ) {
    }

    /// The engine scored one wired-out order against its deadline
    /// (`in_time` is the verdict it already recorded in the metrics).
    /// Models that track per-shard outcomes hook in here; the default is
    /// a no-op.
    fn on_order_scored(&mut self, _order: &PendingOrder, _in_time: bool, _ctx: &mut EngineCtx) {}

    /// The event queue has drained: account for whatever never ran.
    fn on_finish(&mut self, ctx: &mut EngineCtx);
}

/// Replays `trace` through `model` and returns the run's metrics.
///
/// The engine owns the virtual clock and the metrics; it feeds ticks in
/// trace order, dispatches model events in `(ts, rank, tie, seq)` order,
/// scores `OrderOut` events against their deadlines (recording the
/// per-stage breakdown of in-time responses), and calls
/// [`SimModel::on_finish`] once every event has drained.
pub fn run<M: SimModel>(model: &mut M, trace: &TickTrace) -> BacktestMetrics {
    let mut queue = EventQueue::new();
    let mut metrics = BacktestMetrics::new();
    let ticks = &trace.ticks;
    if let Some(first) = ticks.first() {
        queue.push_at(first.ts, Event::TickArrival { idx: 0 });
    }
    let mut clock = Timestamp::ZERO;
    while let Some((ts, event)) = queue.pop() {
        debug_assert!(ts >= clock, "event queue went backwards");
        clock = ts;
        let mut ctx = EngineCtx {
            now: ts,
            queue: &mut queue,
            metrics: &mut metrics,
        };
        match event {
            Event::TickArrival { idx } => {
                if let Some(next) = ticks.get(idx + 1) {
                    ctx.queue
                        .push_at(next.ts, Event::TickArrival { idx: idx + 1 });
                }
                model.on_tick(&ticks[idx], &mut ctx);
            }
            Event::BatchIssue { aid } => model.on_batch_issue(aid, &mut ctx),
            Event::BatchComplete { aid, batch } => model.on_batch_complete(aid, batch, &mut ctx),
            Event::DvfsRescale { aid, batch, target } => {
                model.on_dvfs_rescale(aid, batch, target, &mut ctx)
            }
            Event::OrderOut { orders } => {
                for order in orders {
                    let in_time = ts <= order.deadline;
                    if in_time {
                        ctx.metrics.record_breakdown(&order.breakdown);
                    } else {
                        ctx.metrics.late += 1;
                    }
                    model.on_order_scored(&order, in_time, &mut ctx);
                }
            }
        }
    }
    let mut ctx = EngineCtx {
        now: clock,
        queue: &mut queue,
        metrics: &mut metrics,
    };
    model.on_finish(&mut ctx);
    metrics
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(ns: u64) -> Timestamp {
        Timestamp::from_nanos(ns)
    }

    #[test]
    fn events_pop_in_time_then_rank_then_tie_then_seq_order() {
        let mut q = EventQueue::new();
        q.push_at(ts(200), Event::TickArrival { idx: 1 });
        q.push_at(ts(100), Event::TickArrival { idx: 0 });
        q.push_at(ts(200), Event::BatchIssue { aid: 7 });
        q.push_at(ts(200), Event::OrderOut { orders: vec![] });
        let order: Vec<u8> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| e.rank())
            .collect();
        // t=100 tick first, then at t=200: issue (2) < order-out (3) < tick (4).
        assert_eq!(order, vec![4, 2, 3, 4]);
    }

    #[test]
    fn completions_tie_break_by_accelerator_id() {
        let mut q = EventQueue::new();
        let mut a = lt_accel::Accelerator::new(0, OperatingPoint::at_freq(2.0));
        let b2 = a.start_batch(ts(0), ts(50));
        a.finish_batch();
        let b1 = a.start_batch(ts(60), ts(90));
        q.push_at(ts(100), Event::BatchComplete { aid: 3, batch: b1 });
        q.push_at(ts(100), Event::BatchComplete { aid: 1, batch: b2 });
        let aids: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::BatchComplete { aid, .. } => aid,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(aids, vec![1, 3]);
    }

    #[test]
    fn same_key_events_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..5 {
            q.push_at(ts(10), Event::BatchIssue { aid: i });
        }
        let aids: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::BatchIssue { aid } => aid,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(aids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn rescale_outranks_pending_completion_at_same_instant() {
        let mut q = EventQueue::new();
        let mut a = lt_accel::Accelerator::new(0, OperatingPoint::at_freq(2.0));
        let b = a.start_batch(ts(0), ts(50));
        q.push_at(ts(50), Event::BatchComplete { aid: 0, batch: b });
        q.push_at(
            ts(50),
            Event::DvfsRescale {
                aid: 0,
                batch: b,
                target: OperatingPoint::at_freq(2.2),
            },
        );
        let (_, first) = q.pop().unwrap();
        assert!(matches!(first, Event::DvfsRescale { .. }));
    }
}
