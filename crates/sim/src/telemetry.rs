//! Per-stage tick-to-trade attribution.
//!
//! Every answered query's end-to-end latency is decomposed into the
//! stages it actually crossed: the four ingress stages stamped by the
//! offload engine ([`lt_pipeline::IngressStamp`]), the queue-wait /
//! DVFS-switch / inference time the event engine observes, and the
//! egress (order generation + transmit). The decomposition is *exact by
//! construction*: [`QueryTimeline::breakdown`] allocates the integer
//! nanoseconds of `order_out - tick_ts` greedily across the stages, so
//! the stage sums always reconcile with the recorded tick-to-trade to
//! the nanosecond.

use lt_lob::Timestamp;
use lt_pipeline::IngressStamp;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// The stages of the tick-to-trade decomposition, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stage {
    /// Ethernet MAC + UDP/IP receive path.
    NetworkRx,
    /// SBE decode of one message.
    Parse,
    /// Local LOB update.
    BookUpdate,
    /// Offload engine: normalization + FIFO push + tensor registration.
    Offload,
    /// Tensor queued, waiting for an accelerator to issue.
    QueueWait,
    /// PMIC switching (and dwell) delay charged to this batch.
    DvfsSwitch,
    /// DNN pipeline occupancy (DMA + inference).
    Inference,
    /// Trading engine post-processing + order transmit.
    Egress,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 8] = [
        Stage::NetworkRx,
        Stage::Parse,
        Stage::BookUpdate,
        Stage::Offload,
        Stage::QueueWait,
        Stage::DvfsSwitch,
        Stage::Inference,
        Stage::Egress,
    ];

    /// Stable snake_case name (report and serialization key).
    pub fn name(self) -> &'static str {
        match self {
            Stage::NetworkRx => "network_rx",
            Stage::Parse => "parse",
            Stage::BookUpdate => "book_update",
            Stage::Offload => "offload",
            Stage::QueueWait => "queue_wait",
            Stage::DvfsSwitch => "dvfs_switch",
            Stage::Inference => "inference",
            Stage::Egress => "egress",
        }
    }
}

/// One answered query's exact per-stage latency split, in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageBreakdown {
    /// Nanoseconds per stage, indexed in [`Stage::ALL`] order.
    ns: [u64; 8],
}

impl StageBreakdown {
    /// The time attributed to `stage`.
    pub fn get(&self, stage: Stage) -> Duration {
        Duration::from_nanos(self.ns[stage as usize])
    }

    /// Raw nanoseconds in [`Stage::ALL`] order.
    pub fn as_ns(&self) -> &[u64; 8] {
        &self.ns
    }

    /// Sum of every stage — always exactly the query's tick-to-trade.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.ns.iter().sum())
    }
}

/// The timing facts the simulator knows about one answered query; the
/// input to the stage decomposition.
#[derive(Debug, Clone, Copy)]
pub struct QueryTimeline {
    /// Per-stage ingress latency stamped on the ticket.
    pub ingress: IngressStamp,
    /// Exchange timestamp of the triggering tick.
    pub tick_ts: Timestamp,
    /// When the input tensor became ready (end of ingress).
    pub ready_at: Timestamp,
    /// When the batch claimed the accelerator (before any DVFS switch).
    pub issue: Timestamp,
    /// When the batch's results came back.
    pub completion: Timestamp,
    /// Total PMIC switch + dwell delay charged inside `issue..completion`.
    pub dvfs_switch: Duration,
    /// Order generation + transmit after the result.
    pub egress: Duration,
}

impl QueryTimeline {
    /// Splits `order_out - tick_ts` (with `order_out = completion +
    /// egress`) exactly across the stages.
    ///
    /// Works greedily in pipeline order: each stage takes its nominal
    /// share, clamped to what remains, and **inference absorbs the
    /// remainder**. On every well-ordered timeline (`tick_ts <= ready_at
    /// <= issue <= completion`, which the simulator guarantees) each
    /// clamp is a no-op and every stage gets its true value; the greedy
    /// form just makes the sum invariant unconditional, so reconciliation
    /// can never drift even by a nanosecond.
    pub fn breakdown(&self) -> StageBreakdown {
        let order_out = self.completion + self.egress;
        let mut rem = order_out.nanos_since(self.tick_ts);
        let mut take = |want: u64| {
            let got = want.min(rem);
            rem -= got;
            got
        };
        let ingress_total = self.ready_at.nanos_since(self.tick_ts);
        let network_rx = take(self.ingress.network_rx.as_nanos() as u64);
        let parse = take(self.ingress.parse.as_nanos() as u64);
        let book_update = take(self.ingress.book_update.as_nanos() as u64);
        // The offload stage absorbs whatever remains of the ingress gap,
        // so legacy zero stamps attribute the whole gap to the offload
        // engine rather than losing it.
        let offload = take(ingress_total.saturating_sub(network_rx + parse + book_update));
        let queue_wait = take(self.issue.nanos_since(self.ready_at));
        let dvfs_switch = take(self.dvfs_switch.as_nanos() as u64);
        let egress = take(self.egress.as_nanos() as u64);
        let inference = rem;
        StageBreakdown {
            ns: [
                network_rx,
                parse,
                book_update,
                offload,
                queue_wait,
                dvfs_switch,
                inference,
                egress,
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_pipeline::PipelineLatencies;

    fn ts(ns: u64) -> Timestamp {
        Timestamp::from_nanos(ns)
    }

    #[test]
    fn well_ordered_timeline_decomposes_exactly() {
        let stages = PipelineLatencies::fpga();
        let stamp = stages.ingress_stamp();
        let tl = QueryTimeline {
            ingress: stamp,
            tick_ts: ts(1_000),
            ready_at: ts(1_000) + stamp.total(),
            issue: ts(5_000),
            completion: ts(305_000),
            dvfs_switch: Duration::from_nanos(10_000),
            egress: stages.egress(),
        };
        let b = tl.breakdown();
        assert_eq!(b.get(Stage::NetworkRx), stamp.network_rx);
        assert_eq!(b.get(Stage::Parse), stamp.parse);
        assert_eq!(b.get(Stage::BookUpdate), stamp.book_update);
        assert_eq!(b.get(Stage::Offload), stamp.offload);
        assert_eq!(
            b.get(Stage::QueueWait),
            tl.issue.since(ts(1_000) + stamp.total())
        );
        assert_eq!(b.get(Stage::DvfsSwitch), Duration::from_nanos(10_000));
        assert_eq!(
            b.get(Stage::Inference),
            Duration::from_nanos(300_000 - 10_000)
        );
        assert_eq!(b.get(Stage::Egress), stages.egress());
        // The invariant: stage sum == order_out - tick_ts, exactly.
        assert_eq!(b.total(), (tl.completion + tl.egress).since(tl.tick_ts));
    }

    #[test]
    fn zero_stamp_attributes_ingress_to_offload() {
        let tl = QueryTimeline {
            ingress: IngressStamp::ZERO,
            tick_ts: ts(0),
            ready_at: ts(700),
            issue: ts(700),
            completion: ts(10_700),
            dvfs_switch: Duration::ZERO,
            egress: Duration::from_nanos(400),
        };
        let b = tl.breakdown();
        assert_eq!(b.get(Stage::Offload), Duration::from_nanos(700));
        assert_eq!(b.get(Stage::Inference), Duration::from_nanos(10_000));
        assert_eq!(b.total(), Duration::from_nanos(11_100));
    }

    #[test]
    fn pathological_orderings_still_sum_exactly() {
        // A rescale corner: completion landed before the nominal issue.
        let stages = PipelineLatencies::fpga();
        let tl = QueryTimeline {
            ingress: stages.ingress_stamp(),
            tick_ts: ts(1_000),
            ready_at: ts(1_705),
            issue: ts(9_000),
            completion: ts(2_000),
            dvfs_switch: Duration::from_nanos(50_000),
            egress: stages.egress(),
        };
        let b = tl.breakdown();
        assert_eq!(b.total(), (tl.completion + tl.egress).since(tl.tick_ts));
    }

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "network_rx",
                "parse",
                "book_update",
                "offload",
                "queue_wait",
                "dvfs_switch",
                "inference",
                "egress"
            ]
        );
    }
}
