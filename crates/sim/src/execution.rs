//! The back-test's execution & portfolio layer.
//!
//! Until this layer existed, the back-test scored queries purely on
//! latency: an answered query was a "response" and no order ever
//! *traded*. This module closes the loop with the venue. At every tick
//! the strategy may capture an [`OrderIntent`] (an IOC at the
//! decision-time touch); the intent rides through the offload queue and
//! the accelerator batch with its ticket, and when the engine's
//! `OrderOut` event fires — after the full tick-to-trade pipeline
//! latency — the order is filled against the book state *at arrival
//! time* via [`lt_lob::fill_ioc`], the venue-side sweep pinned against
//! the real matching engine. A per-shard [`Portfolio`] books the fills
//! (cash, position, realized/unrealized P&L, fees — all in half-tick
//! fixed point), and a latching [`KillSwitch`] marks to market on every
//! tick.
//!
//! The signal is an **oracle momentum** signal: the back-test has no
//! real DNN alpha, so the per-tick direction is precomputed from the
//! *future* mid move over a configurable horizon and then deliberately
//! corrupted to a configured accuracy. This makes adverse selection
//! measurable: an IOC priced at the decision-time touch fills when the
//! market sat still or came toward it and *misses* exactly when the
//! signal was right and the market ran — which is why the historical
//! assume-fill accounting overstates P&L (see `bench_fills`).

use crate::engine::PendingOrder;
use lt_feed::TickTrace;
use lt_lob::{fill_ioc, FeeModel, Fill, FillModel, LobSnapshot, OrderIntent, Qty, Side};
use lt_pipeline::{KillSwitch, Portfolio, RiskLimits};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The oracle momentum signal's parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SignalConfig {
    /// Look-ahead horizon in same-shard ticks.
    pub horizon_ticks: usize,
    /// Minimum absolute future mid move (half-ticks) to emit a signal.
    pub threshold_half: i64,
    /// Signal accuracy in per-mille: a correct direction is kept with
    /// probability `accuracy_pm / 1000`, flipped otherwise. 1000 is
    /// perfect foresight, 500 a coin toss.
    pub accuracy_pm: u32,
    /// Seed of the deterministic corruption hash.
    pub seed: u64,
}

impl Default for SignalConfig {
    fn default() -> Self {
        SignalConfig {
            horizon_ticks: 100,
            threshold_half: 2,
            accuracy_pm: 800,
            seed: 1,
        }
    }
}

/// Configuration of the execution & portfolio layer. Disabled by
/// default: a config predating the field behaves bit-identically, and
/// even the *enabled* layer pushes no events and touches no scheduling
/// state, so the latency/outcome surface stays byte-identical either
/// way (gated by the assume-fill golden differential test).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionConfig {
    /// Master switch; `false` skips the layer entirely.
    pub enabled: bool,
    /// How arriving orders fill: `AssumeFill` reproduces the historical
    /// fiction (full quantity at the decision-time limit), `SweepVisible`
    /// is the venue-side taker sweep of the arrival-time book.
    pub fill_model: FillModel,
    /// Risk gates applied when an order arrives at the venue boundary.
    pub limits: RiskLimits,
    /// The oracle momentum signal.
    pub signal: SignalConfig,
    /// Venue fee schedule.
    pub fees: FeeModel,
    /// Kill-switch loss floor in whole ticks (`None` = no kill switch).
    pub kill_floor_ticks: Option<i64>,
}

impl Default for ExecutionConfig {
    fn default() -> Self {
        ExecutionConfig {
            enabled: false,
            fill_model: FillModel::SweepVisible,
            limits: RiskLimits::default(),
            signal: SignalConfig::default(),
            fees: FeeModel::zero(),
            kill_floor_ticks: None,
        }
    }
}

impl ExecutionConfig {
    /// The enabled layer with realistic (sweep) fills.
    pub fn realistic() -> Self {
        ExecutionConfig {
            enabled: true,
            ..Self::default()
        }
    }

    /// The enabled layer with assume-fill settlement — the differential
    /// baseline that reproduces the pre-execution-layer accounting.
    pub fn assume_fill() -> Self {
        ExecutionConfig {
            enabled: true,
            fill_model: FillModel::AssumeFill,
            ..Self::default()
        }
    }

    /// Overrides the signal parameters.
    #[must_use]
    pub fn with_signal(mut self, signal: SignalConfig) -> Self {
        self.signal = signal;
        self
    }

    /// Overrides the venue fee schedule.
    #[must_use]
    pub fn with_fees(mut self, fees: FeeModel) -> Self {
        self.fees = fees;
        self
    }

    /// Arms a kill switch with a loss floor in whole ticks.
    #[must_use]
    pub fn with_kill_floor(mut self, floor_ticks: i64) -> Self {
        self.kill_floor_ticks = Some(floor_ticks);
        self
    }

    /// Overrides the risk limits.
    #[must_use]
    pub fn with_limits(mut self, limits: RiskLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on a zero horizon, an accuracy above 1000 ‰, a zero order
    /// quantity, negative fees, or a negative signal threshold.
    pub fn validate(&self) {
        if !self.enabled {
            return;
        }
        assert!(
            self.signal.horizon_ticks > 0,
            "signal horizon must be positive"
        );
        assert!(
            self.signal.accuracy_pm <= 1000,
            "signal accuracy is per-mille (<= 1000)"
        );
        assert!(
            self.signal.threshold_half >= 0,
            "signal threshold must be non-negative"
        );
        assert!(self.limits.order_qty > 0, "order quantity must be positive");
        assert!(
            self.fees.per_contract_half >= 0 && self.fees.per_order_half >= 0,
            "fees must be non-negative"
        );
    }
}

/// Aggregated execution outcomes (all-integer, so per-shard stats merge
/// exactly and per-symbol breakdowns tile the aggregate bit for bit).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionStats {
    /// Orders that reached the venue boundary and passed the risk gates.
    pub orders_sent: u64,
    /// Orders that filled their full quantity.
    pub filled: u64,
    /// Orders that filled partially (IOC remainder cancelled).
    pub partial: u64,
    /// Orders that missed entirely (book ran away from the stale limit).
    pub missed: u64,
    /// Orders suppressed at arrival by a risk gate (kill switch armed or
    /// position cap); never sent, so outside the fill tiling.
    pub suppressed: u64,
    /// Total contracts filled across all orders.
    pub contracts_filled: u64,
    /// Fees paid, half-ticks.
    pub fees_half: i64,
    /// Execution-price shortfall vs the limit, half-ticks (negative =
    /// price improvement; see [`lt_lob::Fill::slippage_half`]).
    pub slippage_half: i64,
    /// Final net position, contracts.
    pub position: i64,
    /// Final cash net of fees, half-ticks.
    pub cash_half: i64,
    /// Final equity (cash + inventory at the last mid), half-ticks.
    pub equity_half: i64,
    /// Realized P&L net of fees, half-ticks.
    pub realized_half: i64,
    /// Unrealized P&L of the open position at the last mid, half-ticks.
    pub unrealized_half: i64,
}

impl ExecutionStats {
    /// Merges another tally into this one (valuation fields are additive
    /// across shards: each shard's equity is priced at its own mid).
    pub fn merge(&mut self, other: &ExecutionStats) {
        self.orders_sent += other.orders_sent;
        self.filled += other.filled;
        self.partial += other.partial;
        self.missed += other.missed;
        self.suppressed += other.suppressed;
        self.contracts_filled += other.contracts_filled;
        self.fees_half += other.fees_half;
        self.slippage_half += other.slippage_half;
        self.position += other.position;
        self.cash_half += other.cash_half;
        self.equity_half += other.equity_half;
        self.realized_half += other.realized_half;
        self.unrealized_half += other.unrealized_half;
    }

    /// Fraction of sent orders that achieved any fill.
    pub fn fill_rate(&self) -> f64 {
        if self.orders_sent == 0 {
            return 0.0;
        }
        (self.filled + self.partial) as f64 / self.orders_sent as f64
    }

    /// Panics unless fill outcomes tile the sent orders exactly:
    /// `filled + partial + missed == orders_sent`.
    pub fn assert_tiles(&self) {
        assert_eq!(
            self.filled + self.partial + self.missed,
            self.orders_sent,
            "fill outcomes must tile orders sent: {self:?}"
        );
    }
}

/// SplitMix64-style avalanche over `(tick index, seed)` — the
/// deterministic coin behind signal corruption.
fn corrupt_hash(tick: u64, seed: u64) -> u64 {
    let mut x = tick
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(seed ^ 0x2545_F491_4F6C_DD1D);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Precomputes the per-tick oracle momentum direction for `trace`:
/// `+1` buy, `-1` sell, `0` hold, indexed by trace position. The future
/// mid move is measured within the tick's own shard (`tick_shards` maps
/// trace position to shard; empty means everything is shard 0), then
/// corrupted per [`SignalConfig::accuracy_pm`] with a deterministic
/// hash, so the same `(trace, config)` always yields the same signals.
pub fn precompute_signals(
    trace: &TickTrace,
    tick_shards: &[u16],
    n_shards: usize,
    cfg: &SignalConfig,
) -> Vec<i8> {
    let n = trace.ticks.len();
    let mut per_shard: Vec<Vec<(usize, i64)>> = vec![Vec::new(); n_shards.max(1)];
    for (i, tick) in trace.ticks.iter().enumerate() {
        let shard = if tick_shards.is_empty() {
            0
        } else {
            tick_shards[i] as usize
        };
        if let Some(mid) = tick.snapshot.mid_half_ticks() {
            per_shard[shard].push((i, mid));
        }
    }
    let mut dirs = vec![0i8; n];
    for rows in &per_shard {
        for (k, &(i, mid)) in rows.iter().enumerate() {
            let Some(&(_, future)) = rows.get(k + cfg.horizon_ticks) else {
                continue;
            };
            let diff = future - mid;
            let dir: i8 = if diff >= cfg.threshold_half {
                1
            } else if diff <= -cfg.threshold_half {
                -1
            } else {
                0
            };
            if dir == 0 {
                continue;
            }
            let keep = corrupt_hash(i as u64, cfg.seed) % 1000 < u64::from(cfg.accuracy_pm);
            dirs[i] = if keep { dir } else { -dir };
        }
    }
    dirs
}

/// Per-shard execution state: the venue-side view of one instrument.
struct ShardExec {
    portfolio: Portfolio,
    kill: Option<KillSwitch>,
    /// The book state at-or-before order arrival (the engine delivers
    /// `OrderOut` before the same-instant tick, so the snapshot captured
    /// on the previous tick IS the arrival-time book).
    last_snap: LobSnapshot,
    last_mid_half: Option<i64>,
    stats: ExecutionStats,
}

/// Runtime state of the execution layer: per-shard portfolios plus the
/// intent queue mirroring the offload engine's shared tensor queue.
pub(crate) struct ExecState {
    fill_model: FillModel,
    limits: RiskLimits,
    fees: FeeModel,
    /// Precomputed per-tick signal directions, indexed by trace position.
    signals: Vec<i8>,
    /// Decision-time intents of the tickets currently queued in the
    /// offload engine, in queue order: every queue admission pushes one
    /// entry (possibly `None` — the strategy held) and every queue
    /// removal, whatever its reason, pops one.
    intents: VecDeque<Option<OrderIntent>>,
    shards: Vec<ShardExec>,
}

impl ExecState {
    pub(crate) fn new(cfg: &ExecutionConfig, n_shards: usize, signals: Vec<i8>) -> Self {
        ExecState {
            fill_model: cfg.fill_model,
            limits: cfg.limits,
            fees: cfg.fees,
            signals,
            intents: VecDeque::new(),
            shards: (0..n_shards.max(1))
                .map(|_| ShardExec {
                    portfolio: Portfolio::default(),
                    kill: cfg
                        .kill_floor_ticks
                        .map(|floor| KillSwitch::new(floor, u32::MAX)),
                    last_snap: LobSnapshot::default(),
                    last_mid_half: None,
                    stats: ExecutionStats::default(),
                })
                .collect(),
        }
    }

    /// Handles one arriving tick for `shard`: refreshes the venue-side
    /// book view, marks the portfolio to market (the kill switch
    /// observes P&L on *every* tick, orders in flight or not), and
    /// returns the decision-time intent, if the signal fires on a
    /// tradeable book.
    pub(crate) fn on_tick(
        &mut self,
        shard: usize,
        tick_index: usize,
        snap: &LobSnapshot,
    ) -> Option<OrderIntent> {
        let s = &mut self.shards[shard];
        s.last_snap.ts = snap.ts;
        s.last_snap.bids.clone_from(&snap.bids);
        s.last_snap.asks.clone_from(&snap.asks);
        s.last_mid_half = snap.mid_half_ticks();
        if let (Some(kill), Some(mid)) = (s.kill.as_mut(), s.last_mid_half) {
            kill.observe_pnl_half(s.portfolio.equity_half(mid));
        }
        let dir = *self.signals.get(tick_index)?;
        if dir == 0 {
            return None;
        }
        let bid = snap.best_bid()?;
        let ask = snap.best_ask()?;
        if ask.price.ticks() - bid.price.ticks() > self.limits.max_spread_ticks {
            return None;
        }
        let (side, touch) = if dir > 0 {
            (Side::Bid, ask)
        } else {
            (Side::Ask, bid)
        };
        Some(OrderIntent {
            side,
            limit: touch.price,
            qty: Qty::new(self.limits.order_qty),
            touch_qty: touch.qty,
        })
    }

    /// Mirrors a queue admission: the ticket at the queue's back carries
    /// this decision-time intent.
    pub(crate) fn push_intent(&mut self, intent: Option<OrderIntent>) {
        self.intents.push_back(intent);
    }

    /// Mirrors a queue removal that never reaches the wire (stale drop,
    /// deadline shed, defer, end-of-session drain): the order is simply
    /// never sent.
    pub(crate) fn discard_intent(&mut self) {
        self.intents.pop_front();
    }

    /// Mirrors a batch pop: the front `n` intents ride with the batch.
    pub(crate) fn pop_intents(&mut self, n: usize) -> Vec<Option<OrderIntent>> {
        self.intents.drain(..n.min(self.intents.len())).collect()
    }

    /// Settles one wired-out order against the arrival-time book. Both
    /// in-time and late orders trade — a late order still went out on
    /// the wire; it just finds a book that moved even further.
    pub(crate) fn settle_order(&mut self, order: &PendingOrder) {
        let Some(intent) = order.intent else {
            return;
        };
        let s = &mut self.shards[order.shard as usize];
        if s.kill.as_ref().is_some_and(|k| !k.is_armed()) {
            s.stats.suppressed += 1;
            return;
        }
        let delta = match intent.side {
            Side::Bid => intent.qty.contracts() as i64,
            Side::Ask => -(intent.qty.contracts() as i64),
        };
        if (s.portfolio.position() + delta).abs() > self.limits.max_position {
            s.stats.suppressed += 1;
            return;
        }
        s.stats.orders_sent += 1;
        let fill = fill_ioc(
            &s.last_snap,
            intent.side,
            intent.limit,
            intent.qty,
            self.fill_model,
            &self.fees,
        );
        if fill.filled == intent.qty {
            s.stats.filled += 1;
        } else if fill.filled.is_zero() {
            s.stats.missed += 1;
        } else {
            s.stats.partial += 1;
        }
        s.stats.contracts_filled += fill.filled.contracts();
        s.stats.fees_half += fill.fee_half;
        s.stats.slippage_half += fill.slippage_half;
        if fill != Fill::MISS {
            s.portfolio.apply(intent.side, &fill);
        }
        if let (Some(kill), Some(mid)) = (s.kill.as_mut(), s.last_mid_half) {
            kill.observe_pnl_half(s.portfolio.equity_half(mid));
        }
    }

    /// Freezes the final valuation into every shard's stats (inventory
    /// priced at the shard's last observed mid).
    pub(crate) fn finalize(&mut self) {
        for s in &mut self.shards {
            let mid = s.last_mid_half.unwrap_or(0);
            s.stats.position = s.portfolio.position();
            s.stats.cash_half = s.portfolio.cash_half();
            s.stats.equity_half = s.portfolio.equity_half(mid);
            s.stats.realized_half = s.portfolio.realized_half();
            s.stats.unrealized_half = s.portfolio.unrealized_half(mid);
            debug_assert_eq!(s.stats.fees_half, s.portfolio.fees_half());
            s.stats.assert_tiles();
        }
    }

    /// One shard's finalized stats.
    pub(crate) fn shard_stats(&self, shard: usize) -> ExecutionStats {
        self.shards[shard].stats
    }

    /// The fleet-wide aggregate: the exact sum of every shard's stats.
    pub(crate) fn aggregate(&self) -> ExecutionStats {
        let mut total = ExecutionStats::default();
        for s in &self.shards {
            total.merge(&s.stats);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_feed::SessionBuilder;

    #[test]
    fn disabled_config_validates_anything() {
        let mut cfg = ExecutionConfig::default();
        cfg.signal.horizon_ticks = 0; // invalid if enabled
        cfg.validate(); // disabled: not checked
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn enabled_config_rejects_zero_horizon() {
        let mut cfg = ExecutionConfig::realistic();
        cfg.signal.horizon_ticks = 0;
        cfg.validate();
    }

    #[test]
    fn signals_are_deterministic_and_bounded() {
        let trace = SessionBuilder::calm_traffic()
            .duration_secs(1.0)
            .seed(9)
            .build()
            .trace;
        let cfg = SignalConfig::default();
        let a = precompute_signals(&trace, &[], 1, &cfg);
        let b = precompute_signals(&trace, &[], 1, &cfg);
        assert_eq!(a, b, "same trace + config => same signals");
        assert_eq!(a.len(), trace.ticks.len());
        assert!(a.iter().all(|d| (-1..=1).contains(d)));
        // The last `horizon` ticks have no future mid: always hold.
        assert!(a
            .iter()
            .rev()
            .take(cfg.horizon_ticks.min(a.len()))
            .all(|&d| d == 0));
    }

    #[test]
    fn perfect_signal_points_at_the_future_move() {
        let trace = SessionBuilder::calm_traffic()
            .duration_secs(1.0)
            .seed(5)
            .build()
            .trace;
        let cfg = SignalConfig {
            accuracy_pm: 1000,
            ..SignalConfig::default()
        };
        let dirs = precompute_signals(&trace, &[], 1, &cfg);
        let mids: Vec<Option<i64>> = trace
            .ticks
            .iter()
            .map(|t| t.snapshot.mid_half_ticks())
            .collect();
        let idx: Vec<usize> = (0..trace.ticks.len())
            .filter(|&i| mids[i].is_some())
            .collect();
        let mut checked = 0;
        for (k, &i) in idx.iter().enumerate() {
            if dirs[i] == 0 {
                continue;
            }
            let Some(&j) = idx.get(k + cfg.horizon_ticks) else {
                continue;
            };
            let diff = mids[j].unwrap() - mids[i].unwrap();
            assert!(
                (dirs[i] > 0) == (diff > 0),
                "perfect signal disagrees with the future at tick {i}"
            );
            checked += 1;
        }
        assert!(checked > 0, "trace produced no signals at all");
    }

    #[test]
    fn stats_merge_and_tile() {
        let mut a = ExecutionStats {
            orders_sent: 3,
            filled: 1,
            partial: 1,
            missed: 1,
            contracts_filled: 4,
            fees_half: 5,
            ..ExecutionStats::default()
        };
        let b = ExecutionStats {
            orders_sent: 2,
            filled: 2,
            equity_half: -7,
            ..ExecutionStats::default()
        };
        a.assert_tiles();
        b.assert_tiles();
        a.merge(&b);
        assert_eq!(a.orders_sent, 5);
        assert_eq!(a.filled, 3);
        assert_eq!(a.equity_half, -7);
        a.assert_tiles();
        assert!((a.fill_rate() - 4.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must tile")]
    fn broken_tiling_is_caught() {
        let s = ExecutionStats {
            orders_sent: 2,
            filled: 1,
            ..ExecutionStats::default()
        };
        s.assert_tiles();
    }
}
