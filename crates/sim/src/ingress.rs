//! Fault-injected dual-feed ingress for the back-test.
//!
//! Real market data reaches the trading system over UDP multicast, which
//! drops, duplicates, reorders, and corrupts packets; exchanges publish
//! every channel twice (the redundant A and B feeds) so receivers can
//! arbitrate. This module closes the loop between that reality and the
//! back-test: [`degrade_trace`] encodes each tick of a [`TickTrace`] as a
//! framed datagram, pushes it through two independently seeded
//! [`LossyChannel`]s, re-assembles whatever survives with a
//! [`FeedArbiter`], and returns the degraded trace (ticks lost on both
//! feeds vanish; delayed copies arrive late) together with an
//! [`IngressReport`] of exactly what the network did.
//!
//! Everything is deterministic: a given `(faults, seed)` pair replays the
//! same drop/duplicate/reorder/corrupt pattern on every run, so degraded
//! back-tests stay re-runnable and byte-identical.

use lt_feed::{TickRecord, TickTrace};
use lt_pipeline::{FeedArbiter, FeedId};
use lt_protocol::framing::Datagram;
use lt_protocol::netem::{ChannelStats, FaultRates, LossyChannel};
use serde::{Deserialize, Serialize};

/// Fault profiles for the redundant A/B ingress pair plus the seed that
/// makes them replayable.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct IngressFaults {
    /// Fault profile of the A-side path.
    pub feed_a: FaultRates,
    /// Fault profile of the B-side path.
    pub feed_b: FaultRates,
    /// Seed for both channels (each derives its own RNG stream).
    pub seed: u64,
}

impl IngressFaults {
    /// Two perfect paths: ingress is the identity.
    pub fn lossless() -> Self {
        IngressFaults::default()
    }

    /// Applies the same fault profile to both feeds.
    pub fn symmetric(rates: FaultRates, seed: u64) -> Self {
        IngressFaults {
            feed_a: rates,
            feed_b: rates,
            seed,
        }
    }

    /// True when either path injects any fault or delay. When false the
    /// back-test bypasses the ingress stage entirely, so a lossless
    /// configuration is bit-identical to one with no faults configured.
    pub fn enabled(&self) -> bool {
        self.feed_a.enabled() || self.feed_b.enabled()
    }

    /// Validates both fault profiles.
    ///
    /// # Panics
    ///
    /// Panics if any probability lies outside `[0, 1]`.
    pub fn validate(&self) {
        self.feed_a.validate();
        self.feed_b.validate();
    }
}

/// What one side of the redundant pair experienced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FeedReport {
    /// What the channel did to the traffic (sent/dropped/duplicated/...).
    pub channel: ChannelStats,
    /// Valid packets that arrived on this feed.
    pub received: u64,
    /// Packets rejected at the parser (checksum/framing failures).
    pub corrupt: u64,
    /// Within-feed duplicate deliveries.
    pub duplicates: u64,
    /// Sequences this feed never delivered intact.
    pub lost_on_feed: u64,
    /// Of those, how many the redundant feed supplied anyway.
    pub recovered_from_other: u64,
}

/// Final accounting of one fault-injected ingress pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IngressReport {
    /// Ticks offered to the channels (the original trace length).
    pub offered: u64,
    /// Ticks delivered downstream exactly once.
    pub delivered: u64,
    /// Ticks lost on one feed but recovered from the other.
    pub recovered: u64,
    /// Ticks lost on both feeds — gone for good.
    pub lost: u64,
    /// Valid redundant copies discarded by arbitration.
    pub cross_duplicates: u64,
    /// Deliveries that filled an already-recorded gap (reordered or
    /// redundant copies arriving after a higher sequence).
    pub late_recoveries: u64,
    /// Corrupt packets rejected across both feeds.
    pub corrupt: u64,
    /// A-side detail.
    pub feed_a: FeedReport,
    /// B-side detail.
    pub feed_b: FeedReport,
}

impl IngressReport {
    /// Fraction of offered ticks that reached the book (1.0 = nothing
    /// permanently lost).
    pub fn delivery_rate(&self) -> f64 {
        if self.offered == 0 {
            return 1.0;
        }
        self.delivered as f64 / self.offered as f64
    }
}

/// Pushes every tick of `trace` through two independently faulted paths
/// and re-assembles the survivors by A/B arbitration.
///
/// Each tick `i` is framed as a checksummed [`Datagram`] with channel
/// sequence `i` and the tick index as payload, transmitted on both
/// channels at its exchange timestamp, and delivered in arrival order
/// (ties broken by transmission order, A before B). The first valid copy
/// of each sequence wins; its tick is appended to the degraded trace at
/// the copy's *arrival* time, so delayed packets show up late and ticks
/// lost on both feeds never show up at all. With two lossless channels
/// the result is the identity.
///
/// # Panics
///
/// Panics if `faults` fails validation, or (debug builds) if the trace
/// exceeds `u32::MAX` ticks (the channel-sequence width).
pub fn degrade_trace(trace: &TickTrace, faults: &IngressFaults) -> (TickTrace, IngressReport) {
    faults.validate();
    debug_assert!(
        trace.len() <= u32::MAX as usize,
        "trace exceeds channel-sequence width"
    );
    let mut channel_a = LossyChannel::new(faults.feed_a, faults.seed);
    let mut channel_b = LossyChannel::new(faults.feed_b, faults.seed ^ 0x9E37_79B9_7F4A_7C15);

    // Transmit every tick on both paths, tagging each surviving copy
    // with a global emission index so the arrival sort is stable and
    // deterministic (same arrival => A's copy before B's, earlier packet
    // before later).
    struct Copy {
        arrival: lt_lob::Timestamp,
        emission: u64,
        feed: FeedId,
        bytes: Vec<u8>,
    }
    let mut copies: Vec<Copy> = Vec::with_capacity(trace.len() * 2);
    let mut emission = 0u64;
    for (i, tick) in trace.iter().enumerate() {
        let wire = Datagram::new(i as u32, tick.ts, 1, (i as u64).to_le_bytes().to_vec()).encode();
        for (feed, channel) in [(FeedId::A, &mut channel_a), (FeedId::B, &mut channel_b)] {
            for delivery in channel.transmit(&wire, tick.ts) {
                copies.push(Copy {
                    arrival: delivery.arrival,
                    emission,
                    feed,
                    bytes: delivery.bytes,
                });
                emission += 1;
            }
        }
    }
    copies.sort_unstable_by_key(|c| (c.arrival, c.emission));

    // Arbitrate in arrival order; first valid copy of each sequence wins
    // and lands in the degraded trace at its arrival time.
    let mut arbiter = FeedArbiter::new();
    let mut records: Vec<TickRecord> = Vec::with_capacity(trace.len());
    for copy in &copies {
        if let Some(datagram) = arbiter.on_packet(copy.feed, &copy.bytes) {
            let idx = payload_index(&datagram.payload);
            // A corrupted index that still passed the checksum is
            // astronomically unlikely; drop it rather than panic.
            let Some(idx) = idx.filter(|&i| i < trace.len()) else {
                continue;
            };
            records.push(TickRecord {
                ts: copy.arrival,
                snapshot: trace.ticks[idx].snapshot.clone(),
            });
        }
    }
    arbiter.close(trace.len() as u64);

    let stats = arbiter.stats();
    let report = IngressReport {
        offered: trace.len() as u64,
        delivered: stats.delivered,
        recovered: arbiter.recovered(),
        lost: arbiter.lost(),
        cross_duplicates: stats.cross_duplicates,
        late_recoveries: stats.late_recoveries,
        corrupt: stats.corrupt,
        feed_a: feed_report(&arbiter, FeedId::A, channel_a.stats()),
        feed_b: feed_report(&arbiter, FeedId::B, channel_b.stats()),
    };
    (TickTrace::from_records(trace.symbol, records), report)
}

fn payload_index(payload: &[u8]) -> Option<usize> {
    let bytes: [u8; 8] = payload.try_into().ok()?;
    usize::try_from(u64::from_le_bytes(bytes)).ok()
}

fn feed_report(arbiter: &FeedArbiter, feed: FeedId, channel: ChannelStats) -> FeedReport {
    let health = arbiter.feed_health(feed);
    FeedReport {
        channel,
        received: health.received,
        corrupt: health.corrupt,
        duplicates: health.duplicates,
        lost_on_feed: health.missing,
        recovered_from_other: arbiter.recovered_for(feed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::evaluation_trace;

    fn loss(drop: f64) -> FaultRates {
        FaultRates {
            drop,
            ..FaultRates::lossless()
        }
    }

    #[test]
    fn lossless_ingress_is_the_identity() {
        let trace = evaluation_trace(1.0, 5);
        let (degraded, report) = degrade_trace(&trace, &IngressFaults::lossless());
        assert_eq!(degraded, trace);
        assert_eq!(report.offered, trace.len() as u64);
        assert_eq!(report.delivered, report.offered);
        assert_eq!(report.lost, 0);
        assert_eq!(report.recovered, 0);
        // Every tick arrived on both feeds: one copy wins, one dedupes.
        assert_eq!(report.cross_duplicates, report.offered);
    }

    #[test]
    fn loss_on_one_feed_recovers_fully_from_the_other() {
        let trace = evaluation_trace(1.0, 5);
        let faults = IngressFaults {
            feed_a: FaultRates {
                drop: 0.05,
                reorder: 0.02,
                reorder_delay_ns: 0, // keep arrivals at the send time
                ..FaultRates::lossless()
            },
            feed_b: FaultRates::lossless(),
            seed: 11,
        };
        let (degraded, report) = degrade_trace(&trace, &faults);
        assert_eq!(report.lost, 0, "feed B carried every packet");
        assert_eq!(report.delivered, report.offered);
        assert_eq!(report.recovered, report.feed_a.channel.dropped);
        assert!(report.recovered > 0, "5% over the trace must drop some");
        assert_eq!(report.feed_a.recovered_from_other, report.recovered);
        assert_eq!(report.feed_b.recovered_from_other, 0);
        // Zero delay everywhere: the degraded trace is the original.
        assert_eq!(degraded, trace);
    }

    #[test]
    fn loss_on_both_feeds_is_permanent() {
        let trace = evaluation_trace(1.0, 5);
        let faults = IngressFaults::symmetric(loss(0.3), 13);
        let (degraded, report) = degrade_trace(&trace, &faults);
        assert!(report.lost > 0, "30% on both sides must lose overlap");
        assert_eq!(report.delivered + report.lost, report.offered);
        assert_eq!(degraded.len() as u64, report.delivered);
        assert_eq!(
            report.recovered,
            report.feed_a.recovered_from_other + report.feed_b.recovered_from_other
        );
    }

    #[test]
    fn corruption_is_caught_and_recovered() {
        let trace = evaluation_trace(0.5, 5);
        let faults = IngressFaults {
            feed_a: FaultRates {
                corrupt: 1.0,
                ..FaultRates::lossless()
            },
            feed_b: FaultRates::lossless(),
            seed: 17,
        };
        let (degraded, report) = degrade_trace(&trace, &faults);
        // Every A copy has one bit flipped; the checksum rejects each
        // one, and feed B supplies the lot.
        assert_eq!(report.feed_a.corrupt, report.offered);
        assert_eq!(report.lost, 0);
        assert_eq!(report.delivered, report.offered);
        assert_eq!(degraded, trace);
    }

    #[test]
    fn same_seed_is_byte_identical() {
        let trace = evaluation_trace(1.0, 5);
        let faults = IngressFaults::symmetric(
            FaultRates {
                drop: 0.1,
                duplicate: 0.05,
                reorder: 0.1,
                corrupt: 0.02,
                delay_ns: 500,
                jitter_ns: 300,
                reorder_delay_ns: 5_000,
            },
            29,
        );
        let (t1, r1) = degrade_trace(&trace, &faults);
        let (t2, r2) = degrade_trace(&trace, &faults);
        assert_eq!(t1, t2);
        assert_eq!(r1, r2);
        let mut other = faults;
        other.seed = 30;
        let (t3, _) = degrade_trace(&trace, &other);
        assert_ne!(t1, t3, "different seeds must change the fault pattern");
    }

    #[test]
    fn delayed_copies_arrive_late_but_ordered() {
        let trace = evaluation_trace(0.5, 5);
        let faults = IngressFaults::symmetric(
            FaultRates {
                delay_ns: 2_000,
                jitter_ns: 1_000,
                ..FaultRates::lossless()
            },
            31,
        );
        let (degraded, report) = degrade_trace(&trace, &faults);
        assert_eq!(report.delivered, report.offered);
        assert_eq!(degraded.len(), trace.len());
        // from_records debug-asserts ordering; spot-check arrival shift.
        let first_orig = trace.ticks[0].ts;
        let first_deg = degraded.ticks[0].ts;
        let shift = first_deg.nanos_since(first_orig);
        assert!((2_000..=3_000).contains(&shift), "shift {shift}");
    }
}
