//! Parallel back-test sweeps.
//!
//! The evaluation explores hundreds of configurations (3 models x 5
//! accelerator counts x 2 power conditions x 4 policies x seeds); this
//! module fans a batch of [`BacktestConfig`]s out across worker threads
//! with crossbeam's scoped threads, preserving input order in the
//! results. Runs stay deterministic: each configuration replays the same
//! shared trace.

use crate::config::BacktestConfig;
use crate::lighttrader::run_lighttrader;
use crate::metrics::BacktestMetrics;
use lt_feed::TickTrace;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Extracts a printable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

/// Runs every configuration against `trace`, in parallel, returning the
/// metrics in input order.
///
/// `workers` caps the thread count (0 means one worker per available
/// CPU, bounded by the job count).
///
/// # Panics
///
/// Panics if any individual back-test panics (invalid configuration).
/// Every failing configuration is collected — not just the first — and
/// the panic reports the failure total plus, per failure, the config
/// index, its debug description, and the original panic message: with
/// hundreds of configurations per sweep, a bare "worker panicked" (or a
/// lone first failure hiding nine more) is undebuggable.
pub fn run_sweep(
    trace: &TickTrace,
    configs: &[BacktestConfig],
    workers: usize,
) -> Vec<BacktestMetrics> {
    if configs.is_empty() {
        return Vec::new();
    }
    let workers = if workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        workers
    }
    .min(configs.len());

    let mut results: Vec<Option<BacktestMetrics>> = vec![None; configs.len()];
    let next = AtomicUsize::new(0);
    let (tx, rx) = crossbeam::channel::unbounded::<(usize, Result<BacktestMetrics, String>)>();
    let failure = crossbeam::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move |_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= configs.len() {
                    break;
                }
                let outcome =
                    catch_unwind(AssertUnwindSafe(|| run_lighttrader(trace, &configs[i])))
                        .map_err(|payload| panic_message(payload.as_ref()).to_owned());
                tx.send((i, outcome)).expect("collector alive");
            });
        }
        drop(tx);
        let mut failures: Vec<(usize, String)> = Vec::new();
        for (i, outcome) in rx {
            match outcome {
                Ok(metrics) => results[i] = Some(metrics),
                Err(message) => failures.push((i, message)),
            }
        }
        failures.sort_by_key(|(i, _)| *i);
        failures
    })
    .expect("sweep worker panicked");
    if !failure.is_empty() {
        let report: String = failure
            .iter()
            .map(|(i, message)| {
                format!(
                    "sweep config #{i} panicked: {message}\n  config: {:?}\n",
                    configs[*i]
                )
            })
            .collect();
        panic!(
            "{} of {} sweep configs failed:\n{report}",
            failure.len(),
            configs.len()
        );
    }
    results
        .into_iter()
        .map(|r| r.expect("every index produced"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_accel::PowerCondition;
    use lt_dnn::ModelKind;
    use lt_feed::SessionBuilder;
    use lt_sched::Policy;

    fn trace() -> TickTrace {
        SessionBuilder::calm_traffic()
            .duration_secs(1.0)
            .seed(3)
            .build()
            .trace
    }

    fn configs() -> Vec<BacktestConfig> {
        let mut out = Vec::new();
        for kind in ModelKind::ALL {
            for n in [1usize, 2, 4] {
                for policy in [Policy::Baseline, Policy::Both] {
                    out.push(
                        BacktestConfig::new(kind, n, PowerCondition::Limited).with_policy(policy),
                    );
                }
            }
        }
        out
    }

    #[test]
    fn parallel_matches_serial() {
        let trace = trace();
        let configs = configs();
        let parallel = run_sweep(&trace, &configs, 4);
        for (cfg, par) in configs.iter().zip(&parallel) {
            let serial = run_lighttrader(&trace, cfg);
            assert_eq!(par.responded, serial.responded, "{cfg:?}");
            assert_eq!(par.total(), serial.total());
            assert_eq!(par.batches, serial.batches);
        }
    }

    #[test]
    fn preserves_input_order() {
        let trace = trace();
        let configs = configs();
        let a = run_sweep(&trace, &configs, 3);
        let b = run_sweep(&trace, &configs, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.responded, y.responded);
        }
    }

    #[test]
    fn empty_and_single_worker() {
        let trace = trace();
        assert!(run_sweep(&trace, &[], 4).is_empty());
        let one = vec![BacktestConfig::new(
            ModelKind::VanillaCnn,
            1,
            PowerCondition::Sufficient,
        )];
        let out = run_sweep(&trace, &one, 1);
        assert_eq!(out.len(), 1);
        assert!(out[0].total() > 0);
    }

    #[test]
    fn zero_workers_means_auto() {
        let trace = trace();
        let out = run_sweep(&trace, &configs()[..4], 0);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn panicking_config_is_named_in_the_panic() {
        let trace = trace();
        let mut cfgs = configs()[..3].to_vec();
        // Invalid: zero accelerators trips config validation inside the
        // worker.
        cfgs.push(BacktestConfig::new(
            ModelKind::VanillaCnn,
            0,
            PowerCondition::Limited,
        ));
        let err = std::panic::catch_unwind(|| run_sweep(&trace, &cfgs, 2))
            .expect_err("invalid config must panic");
        let message = if let Some(s) = err.downcast_ref::<String>() {
            s.clone()
        } else {
            format!("{err:?}")
        };
        assert!(
            message.contains("sweep config #3"),
            "panic names the config index: {message}"
        );
        assert!(
            message.contains("at least one accelerator"),
            "panic carries the original message: {message}"
        );
        assert!(
            message.contains("n_accels: 0"),
            "panic carries the config description: {message}"
        );
        assert!(
            message.contains("1 of 4 sweep configs failed"),
            "panic reports the failure total: {message}"
        );
    }

    #[test]
    fn every_failing_config_is_reported() {
        let trace = trace();
        let mut cfgs = configs()[..2].to_vec();
        let broken = |window| {
            let mut cfg = BacktestConfig::new(ModelKind::VanillaCnn, 1, PowerCondition::Limited);
            cfg.window = window;
            cfg
        };
        // Two distinct invalid configs, at indices 2 and 3; a
        // first-failure-only collector would hide one of them.
        cfgs.push(broken(0));
        let mut no_accels = configs()[0];
        no_accels.n_accels = 0;
        cfgs.push(no_accels);
        let err = std::panic::catch_unwind(|| run_sweep(&trace, &cfgs, 2))
            .expect_err("invalid configs must panic");
        let message = if let Some(s) = err.downcast_ref::<String>() {
            s.clone()
        } else {
            format!("{err:?}")
        };
        assert!(
            message.contains("2 of 4 sweep configs failed"),
            "totals all failures: {message}"
        );
        assert!(
            message.contains("sweep config #2") && message.contains("window must be positive"),
            "first failure named: {message}"
        );
        assert!(
            message.contains("sweep config #3") && message.contains("at least one accelerator"),
            "second failure named too: {message}"
        );
    }

    #[test]
    fn sweep_metrics_carry_stage_breakdowns() {
        let trace = trace();
        let results = run_sweep(&trace, &configs(), 4);
        assert!(results.iter().any(|m| m.responded > 0));
        for m in &results {
            if m.responded > 0 {
                assert!(m.has_stage_samples());
            }
            // The engine's decomposition reconciles to the nanosecond.
            assert!(m.stage_sums_reconcile(1), "stage sums drifted > 1 ns");
            assert!(m.stage_sums_reconcile(0), "greedy decomposition is exact");
        }
    }
}
