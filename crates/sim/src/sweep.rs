//! Parallel back-test sweeps over one shared trace.
//!
//! The evaluation explores hundreds of configurations (3 models x 5
//! accelerator counts x 2 power conditions x 4 policies x seeds); this
//! module fans a batch of [`BacktestConfig`]s out across worker threads,
//! preserving input order in the results. Runs stay deterministic: each
//! configuration replays the same shared trace.
//!
//! Workers write outcomes straight into disjoint result slots (see
//! [`crate::farm`]'s pool) — no collector channel, no second pass.
//! [`try_run_sweep`] is the non-panicking surface; [`run_sweep`] wraps
//! it and panics with the full failure report. For grids that also vary
//! the *session* (seeds, symbols, traffic), use the farm: it adds
//! shared-trace caching and structure-of-arrays results on the same
//! pool.

use crate::config::BacktestConfig;
use crate::farm::scatter;
use crate::lighttrader::run_lighttrader;
use crate::metrics::BacktestMetrics;
use lt_feed::TickTrace;
use std::fmt;

/// One failed configuration of a sweep.
#[derive(Debug, Clone)]
pub struct SweepFailure {
    /// Position in the input slice.
    pub index: usize,
    /// The configuration that failed.
    pub config: BacktestConfig,
    /// The original panic message.
    pub message: String,
}

/// Every failure of a sweep — not just the first. With hundreds of
/// configurations per sweep, a bare "worker panicked" (or a lone first
/// failure hiding nine more) is undebuggable.
#[derive(Debug, Clone)]
pub struct SweepFailures {
    /// Total configurations attempted.
    pub total: usize,
    /// The failures, in input order.
    pub failures: Vec<SweepFailure>,
}

impl fmt::Display for SweepFailures {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let report: String = self
            .failures
            .iter()
            .map(|c| {
                format!(
                    "sweep config #{} panicked: {}\n  config: {:?}\n",
                    c.index, c.message, c.config
                )
            })
            .collect();
        write!(
            f,
            "{} of {} sweep configs failed:\n{report}",
            self.failures.len(),
            self.total
        )
    }
}

impl std::error::Error for SweepFailures {}

/// Runs every configuration against `trace`, in parallel, returning the
/// metrics in input order.
///
/// `workers` caps the thread count (0 means one worker per available
/// CPU, bounded by the job count).
///
/// # Errors
///
/// Returns [`SweepFailures`] when any individual back-test panics
/// (invalid configuration). Every failing configuration is collected —
/// the remaining configurations still ran.
pub fn try_run_sweep(
    trace: &TickTrace,
    configs: &[BacktestConfig],
    workers: usize,
) -> Result<Vec<BacktestMetrics>, SweepFailures> {
    let outcomes = scatter(configs.len(), workers, |i| {
        run_lighttrader(trace, &configs[i])
    });
    let mut results = Vec::with_capacity(configs.len());
    let mut failures = Vec::new();
    for (i, outcome) in outcomes.into_iter().enumerate() {
        match outcome {
            Ok(metrics) => results.push(metrics),
            Err(message) => failures.push(SweepFailure {
                index: i,
                config: configs[i],
                message,
            }),
        }
    }
    if failures.is_empty() {
        Ok(results)
    } else {
        Err(SweepFailures {
            total: configs.len(),
            failures,
        })
    }
}

/// [`try_run_sweep`], panicking with the full failure report.
///
/// # Panics
///
/// Panics if any individual back-test panics (invalid configuration),
/// reporting the failure total plus, per failure, the config index, its
/// debug description, and the original panic message.
pub fn run_sweep(
    trace: &TickTrace,
    configs: &[BacktestConfig],
    workers: usize,
) -> Vec<BacktestMetrics> {
    try_run_sweep(trace, configs, workers).unwrap_or_else(|f| panic!("{f}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_accel::PowerCondition;
    use lt_dnn::ModelKind;
    use lt_feed::SessionBuilder;
    use lt_sched::Policy;

    fn trace() -> TickTrace {
        SessionBuilder::calm_traffic()
            .duration_secs(1.0)
            .seed(3)
            .build()
            .trace
    }

    fn configs() -> Vec<BacktestConfig> {
        let mut out = Vec::new();
        for kind in ModelKind::ALL {
            for n in [1usize, 2, 4] {
                for policy in [Policy::Baseline, Policy::Both] {
                    out.push(
                        BacktestConfig::new(kind, n, PowerCondition::Limited).with_policy(policy),
                    );
                }
            }
        }
        out
    }

    #[test]
    fn parallel_matches_serial() {
        let trace = trace();
        let configs = configs();
        let parallel = run_sweep(&trace, &configs, 4);
        for (cfg, par) in configs.iter().zip(&parallel) {
            let serial = run_lighttrader(&trace, cfg);
            assert_eq!(par.responded, serial.responded, "{cfg:?}");
            assert_eq!(par.total(), serial.total());
            assert_eq!(par.batches, serial.batches);
        }
    }

    #[test]
    fn preserves_input_order() {
        let trace = trace();
        let configs = configs();
        let a = run_sweep(&trace, &configs, 3);
        let b = run_sweep(&trace, &configs, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.responded, y.responded);
        }
    }

    #[test]
    fn empty_and_single_worker() {
        let trace = trace();
        assert!(run_sweep(&trace, &[], 4).is_empty());
        let one = vec![BacktestConfig::new(
            ModelKind::VanillaCnn,
            1,
            PowerCondition::Sufficient,
        )];
        let out = run_sweep(&trace, &one, 1);
        assert_eq!(out.len(), 1);
        assert!(out[0].total() > 0);
    }

    #[test]
    fn zero_workers_means_auto() {
        let trace = trace();
        let out = run_sweep(&trace, &configs()[..4], 0);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn try_run_sweep_reports_instead_of_panicking() {
        let trace = trace();
        let mut cfgs = configs()[..2].to_vec();
        let mut no_accels = cfgs[0];
        no_accels.n_accels = 0;
        cfgs.push(no_accels);
        let err = try_run_sweep(&trace, &cfgs, 2).expect_err("invalid config must fail");
        assert_eq!(err.total, 3);
        assert_eq!(err.failures.len(), 1);
        assert_eq!(err.failures[0].index, 2);
        assert!(err.failures[0].message.contains("at least one accelerator"));
        // The good configurations are still reported through Display.
        assert!(format!("{err}").contains("1 of 3 sweep configs failed"));
    }

    #[test]
    fn panicking_config_is_named_in_the_panic() {
        let trace = trace();
        let mut cfgs = configs()[..3].to_vec();
        // Invalid: zero accelerators trips config validation inside the
        // worker.
        cfgs.push(BacktestConfig::new(
            ModelKind::VanillaCnn,
            0,
            PowerCondition::Limited,
        ));
        let err = std::panic::catch_unwind(|| run_sweep(&trace, &cfgs, 2))
            .expect_err("invalid config must panic");
        let message = if let Some(s) = err.downcast_ref::<String>() {
            s.clone()
        } else {
            format!("{err:?}")
        };
        assert!(
            message.contains("sweep config #3"),
            "panic names the config index: {message}"
        );
        assert!(
            message.contains("at least one accelerator"),
            "panic carries the original message: {message}"
        );
        assert!(
            message.contains("n_accels: 0"),
            "panic carries the config description: {message}"
        );
        assert!(
            message.contains("1 of 4 sweep configs failed"),
            "panic reports the failure total: {message}"
        );
    }

    #[test]
    fn every_failing_config_is_reported() {
        let trace = trace();
        let mut cfgs = configs()[..2].to_vec();
        let broken = |window| {
            let mut cfg = BacktestConfig::new(ModelKind::VanillaCnn, 1, PowerCondition::Limited);
            cfg.window = window;
            cfg
        };
        // Two distinct invalid configs, at indices 2 and 3; a
        // first-failure-only collector would hide one of them.
        cfgs.push(broken(0));
        let mut no_accels = configs()[0];
        no_accels.n_accels = 0;
        cfgs.push(no_accels);
        let err = std::panic::catch_unwind(|| run_sweep(&trace, &cfgs, 2))
            .expect_err("invalid configs must panic");
        let message = if let Some(s) = err.downcast_ref::<String>() {
            s.clone()
        } else {
            format!("{err:?}")
        };
        assert!(
            message.contains("2 of 4 sweep configs failed"),
            "totals all failures: {message}"
        );
        assert!(
            message.contains("sweep config #2") && message.contains("window must be positive"),
            "first failure named: {message}"
        );
        assert!(
            message.contains("sweep config #3") && message.contains("at least one accelerator"),
            "second failure named too: {message}"
        );
    }

    #[test]
    fn sweep_metrics_carry_stage_breakdowns() {
        let trace = trace();
        let results = run_sweep(&trace, &configs(), 4);
        assert!(results.iter().any(|m| m.responded > 0));
        for m in &results {
            if m.responded > 0 {
                assert!(m.has_stage_samples());
            }
            // The engine's decomposition reconciles to the nanosecond.
            assert!(m.stage_sums_reconcile(1), "stage sums drifted > 1 ns");
            assert!(m.stage_sums_reconcile(0), "greedy decomposition is exact");
        }
    }
}
