//! The back-test simulation framework (§IV-A).
//!
//! "Because evaluating the HFT systems under real-time stock traffic is
//! difficult, it is imperative to set up a reliable and re-runnable
//! simulation environment." This crate is that environment: a
//! discrete-event simulator that replays a [`lt_feed::TickTrace`] through
//! a system model, tracks every query's tick-to-trade against the
//! available time, and reports response/miss rates — with a power-
//! constraint option for the co-location scenarios.
//!
//! Every back-test runs on one shared core: [`engine`] is the
//! discrete-event engine (virtual clock, typed event queue, the
//! [`SimModel`] trait), and [`telemetry`] decomposes each answered
//! query's tick-to-trade across the stages it crossed. Two system models
//! plug into it, matching the paper's evaluation:
//!
//! * [`lighttrader`] — the full system: offload-engine queue, 1–16
//!   accelerators with DVFS state, and the four scheduling policies of
//!   Fig. 13 (baseline / WS / DS / WS+DS);
//! * [`baseline`] — the GPU-based (CPU + NIC + V100) and FPGA-based
//!   (CPU + Alveo U250) comparison systems, profiled per §IV-B;
//! * [`traffic`] — the calibrated market-traffic preset and deadline
//!   whose single-accelerator response rates land on Fig. 11(b).
//!
//! [`ingress`] closes the loop with the wire: it pushes a trace through
//! two independently seeded lossy channels (the redundant A/B multicast
//! pair) and re-assembles the survivors by feed arbitration, so
//! back-tests can sweep packet-loss rates against tick-to-trade and
//! response-rate degradation deterministically.

pub mod baseline;
pub mod config;
pub mod engine;
pub mod execution;
pub mod farm;
pub mod ingress;
pub mod lighttrader;
pub mod metrics;
pub mod multi;
pub mod sweep;
pub mod telemetry;
pub mod traffic;

pub use baseline::{run_single_device, SingleDeviceSystem};
pub use config::{BacktestConfig, TierParams};
pub use engine::{EngineCtx, Event, EventQueue, PendingOrder, SimModel};
pub use execution::{precompute_signals, ExecutionConfig, ExecutionStats, SignalConfig};
pub use farm::{
    run_farm, try_run_farm, CellSummary, FarmCell, FarmFailures, FarmResults, FarmRunner,
    GridDeadline, RetainFull, SweepGrid,
};
pub use ingress::{degrade_trace, FeedReport, IngressFaults, IngressReport};
pub use lighttrader::run_lighttrader;
pub use lt_protocol::netem::FaultRates;
pub use metrics::{BacktestMetrics, StageSummary, TierOutcomes};
pub use multi::{run_multi, run_multi_merged, MultiMetrics, SymbolOutcome};
pub use sweep::{run_sweep, try_run_sweep, SweepFailures};
pub use telemetry::{QueryTimeline, Stage, StageBreakdown};
pub use traffic::{
    burst_storm_session, burst_storm_trace, cached_evaluation_session, evaluation_deadline,
    evaluation_spec, evaluation_trace, multi_evaluation_session, shared_trace_cache,
    EVALUATION_SEED,
};
