//! The back-test simulation framework (§IV-A).
//!
//! "Because evaluating the HFT systems under real-time stock traffic is
//! difficult, it is imperative to set up a reliable and re-runnable
//! simulation environment." This crate is that environment: a
//! discrete-event simulator that replays a [`lt_feed::TickTrace`] through
//! a system model, tracks every query's tick-to-trade against the
//! available time, and reports response/miss rates — with a power-
//! constraint option for the co-location scenarios.
//!
//! Three system models are provided, matching the paper's evaluation:
//!
//! * [`lighttrader`] — the full system: offload-engine queue, 1–16
//!   accelerators with DVFS state, and the four scheduling policies of
//!   Fig. 13 (baseline / WS / DS / WS+DS);
//! * [`baseline`] — the GPU-based (CPU + NIC + V100) and FPGA-based
//!   (CPU + Alveo U250) comparison systems, profiled per §IV-B;
//! * [`traffic`] — the calibrated market-traffic preset and deadline
//!   whose single-accelerator response rates land on Fig. 11(b).

pub mod baseline;
pub mod config;
pub mod lighttrader;
pub mod metrics;
pub mod sweep;
pub mod traffic;

pub use baseline::{run_single_device, SingleDeviceSystem};
pub use config::BacktestConfig;
pub use lighttrader::run_lighttrader;
pub use metrics::BacktestMetrics;
pub use sweep::run_sweep;
pub use traffic::{evaluation_deadline, evaluation_trace, EVALUATION_SEED};
