//! Back-test farm correctness gates.
//!
//! The farm is only worth having if it is *boringly* correct: every
//! cell's result must be bit-identical to the serial engine on the same
//! inputs, at any worker count, with byte-identical reruns; the trace
//! cache must build each distinct session exactly once; and the cheap
//! SoA columns must tile the full metrics they summarize.

use lt_dnn::ModelKind;
use lt_feed::{HawkesParams, SessionArtifact, TraceCache};
use lt_sched::Policy;
use lt_sim::farm::{FarmRunner, GridDeadline, RetainFull, SweepGrid};
use lt_sim::{
    run_lighttrader, run_multi, try_run_farm, BacktestMetrics, FaultRates, IngressFaults,
};
use std::sync::Arc;

fn serialize(m: &BacktestMetrics) -> String {
    let json = serde_json::to_string(m).expect("metrics serialize");
    // The energy field must round-trip bit-exactly, not just textually.
    format!("{json}|energy_bits={:016x}", m.energy_j.to_bits())
}

fn calm() -> HawkesParams {
    HawkesParams::new(200.0, 30.0, 100.0)
}

fn lossy(drop: f64) -> IngressFaults {
    IngressFaults::symmetric(
        FaultRates {
            drop,
            ..FaultRates::lossless()
        },
        9,
    )
}

/// A mixed grid crossing policies, faults, and 1-and-4-symbol cells —
/// the shapes with genuinely different execution paths (clean single,
/// degraded single, sharded multi).
fn mixed_grid() -> SweepGrid {
    SweepGrid::evaluation(0.6)
        .traffic(calm(), None)
        .models([ModelKind::VanillaCnn, ModelKind::DeepLob])
        .policies([Policy::Baseline, Policy::Both])
        .faults([IngressFaults::lossless(), lossy(0.05)])
        .symbols([(1, 0.0), (4, 1.0)])
        .seeds([1, 2])
        .deadline(GridDeadline::Scheduling)
}

#[test]
fn farm_matches_serial_engine_bit_for_bit() {
    let grid = mixed_grid();
    let results = FarmRunner::new()
        .workers(4)
        .retain(RetainFull::All)
        .run(&grid);
    assert_eq!(results.len(), grid.n_cells());
    for cell in results.cells() {
        // Rebuild the session independently and run the serial engine —
        // the farm must not have perturbed anything.
        let serial = match cell.spec.build() {
            SessionArtifact::Single(session) => run_lighttrader(&session.trace, &cell.config),
            SessionArtifact::Multi { session, .. } => run_multi(&session, &cell.config).aggregate,
        };
        let farm = results
            .full_metrics(cell.index)
            .expect("RetainFull::All keeps every cell");
        assert_eq!(
            serialize(farm),
            serialize(&serial),
            "cell {} diverged from the serial engine",
            cell.id
        );
    }
}

#[test]
fn reruns_are_byte_identical_at_any_worker_count() {
    let grid = mixed_grid();
    let baseline = try_run_farm(&grid, 1).expect("clean grid").to_grid_json();
    for workers in [2, 7, 0] {
        let rerun = try_run_farm(&grid, workers)
            .expect("clean grid")
            .to_grid_json();
        assert_eq!(baseline, rerun, "grid JSON diverged at workers={workers}");
    }
}

#[test]
fn trace_cache_builds_each_session_exactly_once() {
    let grid = mixed_grid();
    let n_cells = grid.n_cells();
    let n_sessions = grid.n_sessions();
    assert!(
        n_sessions < n_cells,
        "grid must share sessions to test reuse"
    );
    let cache = Arc::new(TraceCache::new());
    let results = FarmRunner::new()
        .cache(Arc::clone(&cache))
        .workers(3)
        .run(&grid);
    assert_eq!(results.len(), n_cells);
    let stats = cache.stats();
    assert_eq!(stats.entries, n_sessions, "one entry per distinct spec");
    assert_eq!(
        stats.misses as usize, n_sessions,
        "each session built exactly once (prebuild phase)"
    );
    assert_eq!(
        stats.hits as usize, n_cells,
        "every cell run is a cache hit after prebuild"
    );
}

#[test]
fn soa_columns_tile_the_retained_full_metrics() {
    let grid = mixed_grid();
    let all = FarmRunner::new().retain(RetainFull::All).run(&grid);
    assert_eq!(all.n_retained(), all.len());
    all.assert_full_consistent();

    let some = FarmRunner::new()
        .retain(RetainFull::Cells(vec![0, 3]))
        .run(&grid);
    assert_eq!(some.n_retained(), 2);
    assert!(some.full_metrics(0).is_some());
    assert!(some.full_metrics(1).is_none());
    some.assert_full_consistent();
    // Columns are identical whether or not full metrics ride along.
    assert_eq!(all.to_grid_json(), some.to_grid_json());

    let none = FarmRunner::new().run(&grid);
    assert_eq!(none.n_retained(), 0);
    none.assert_full_consistent();
}

#[test]
fn every_failing_cell_is_reported_and_the_rest_still_run() {
    // drop = 1.5 is an invalid fault rate: config validation panics
    // inside the worker for exactly the cells carrying that profile.
    let grid = SweepGrid::evaluation(0.4)
        .traffic(calm(), None)
        .policies([Policy::Baseline, Policy::Both])
        .faults([IngressFaults::lossless(), lossy(1.5)])
        .seeds([1]);
    let err = try_run_farm(&grid, 2).expect_err("invalid fault rate must fail");
    assert_eq!(err.total, 4);
    assert_eq!(err.failures.len(), 2, "exactly the lossy cells fail");
    for f in &err.failures {
        assert!(f.config.faults.enabled());
        assert!(f.message.contains("must be in [0, 1]"), "{}", f.message);
        assert!(
            f.id.contains("f=1"),
            "failure names the fault axis: {}",
            f.id
        );
    }
    let report = format!("{err}");
    assert!(report.contains("2 of 4 farm cells failed"), "{report}");
    assert!(report.contains("farm cell #"), "{report}");

    // The panicking wrapper carries the same report.
    let panic = std::panic::catch_unwind(|| lt_sim::run_farm(&grid, 2))
        .expect_err("run_farm must panic on failures");
    let message = panic
        .downcast_ref::<String>()
        .expect("panic message is a string");
    assert!(message.contains("2 of 4 farm cells failed"), "{message}");
}

#[test]
fn naive_rebuild_mode_is_bit_identical_to_the_cached_farm() {
    // The benchmark baseline (per-cell session rebuild) must agree with
    // the cached farm exactly, or the speedup comparison is vacuous.
    let grid = SweepGrid::evaluation(0.4)
        .traffic(calm(), None)
        .policies(Policy::ALL)
        .seeds([5, 6]);
    let cached = FarmRunner::new().run(&grid).to_grid_json();
    let naive = FarmRunner::new()
        .without_trace_reuse()
        .run(&grid)
        .to_grid_json();
    assert_eq!(cached, naive);
}
