//! Simulator wall-clock guard (run by `scripts/check.sh` in release mode).
//!
//! The unified discrete-event engine must stay within 1.15x of the seed
//! (pre-refactor) wall-clock on the bench trace. The seed cost below was
//! measured at commit 886d879 on the CI container by running this same
//! workload against the hand-rolled loops; the assertion leaves the 15%
//! head-room the refactor is allowed plus a 2x machine-variance cushion
//! so the guard trips on algorithmic regressions (an accidentally
//! quadratic event queue), not scheduler noise.
//!
//! ```text
//! cargo test -p lt-sim --release --test wallclock_smoke -- --ignored
//! ```

use lt_accel::PowerCondition;
use lt_dnn::ModelKind;
use lt_sched::Policy;
use lt_sim::traffic::{evaluation_trace, scheduling_deadline_for};
use lt_sim::{run_lighttrader, run_single_device, BacktestConfig, SingleDeviceSystem};
use std::time::{Duration, Instant};

/// Seed wall-clock for one pass of `bench_pass` on the 20 s / seed-7
/// bench trace, measured pre-refactor (best of five, release: 2.75 ms).
const SEED_PASS_MS: f64 = 2.75;

/// Allowed ratio over the seed cost: the 1.15x budget from the issue,
/// doubled to absorb machine variance between the capture host and CI.
const BUDGET_RATIO: f64 = 1.15 * 2.0;

fn bench_pass(trace: &lt_feed::TickTrace) -> u64 {
    let mut sink = 0u64;
    let cfg = BacktestConfig::new(ModelKind::DeepLob, 4, PowerCondition::Limited)
        .with_policy(Policy::Both)
        .with_t_avail(scheduling_deadline_for(ModelKind::DeepLob));
    sink += run_lighttrader(trace, &cfg).responded;
    let base = BacktestConfig::new(ModelKind::TransLob, 2, PowerCondition::Sufficient);
    sink += run_lighttrader(trace, &base).responded;
    sink += run_single_device(
        trace,
        &SingleDeviceSystem::fpga(),
        ModelKind::TransLob,
        Duration::from_millis(5),
        100,
        64,
    )
    .responded;
    sink
}

#[test]
#[ignore = "timing-sensitive; run via scripts/check.sh in release mode"]
fn engine_stays_within_seed_wallclock_budget() {
    let trace = evaluation_trace(20.0, 7);
    // Warm-up pass (page-in, allocator), then best-of-three measurement.
    let mut sink = bench_pass(&trace);
    let mut best = Duration::MAX;
    for _ in 0..3 {
        let t0 = Instant::now();
        sink = sink.wrapping_add(bench_pass(&trace));
        best = best.min(t0.elapsed());
    }
    assert!(sink > 0, "back-tests produced no responses");
    let budget = Duration::from_secs_f64(SEED_PASS_MS / 1_000.0 * BUDGET_RATIO);
    assert!(
        best <= budget,
        "bench pass took {best:?}, budget {budget:?} (seed {SEED_PASS_MS} ms x {BUDGET_RATIO})"
    );
}
