//! Golden parity: the unified discrete-event engine must reproduce the
//! pre-refactor back-test results bit-identically.
//!
//! The goldens under `tests/goldens/` were captured from the seed HEAD
//! (commit 886d879, before the engine refactor) by running the then
//! hand-rolled loops in `baseline.rs` and `lighttrader.rs` over two
//! seeded traces. Every outcome counter, the exact tick-to-trade latency
//! stream (order included), and the bit pattern of the accumulated energy
//! must match: the engine is a refactor, not a re-model.
//!
//! Regenerate (only after an *intentional* semantic change, with the
//! change explained in CHANGES.md):
//!
//! ```text
//! cargo test -p lt-sim --release --test golden_parity -- --ignored
//! ```

use lt_accel::PowerCondition;
use lt_dnn::ModelKind;
use lt_feed::TickTrace;
use lt_sched::Policy;
use lt_sim::traffic::{evaluation_trace, scheduling_deadline_for};
use lt_sim::{
    run_lighttrader, run_single_device, BacktestConfig, BacktestMetrics, ExecutionConfig,
    SingleDeviceSystem, TierParams,
};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

/// One golden scenario: a named back-test whose metrics are pinned.
struct Scenario {
    name: &'static str,
    trace_secs: f64,
    trace_seed: u64,
    run: fn(&TickTrace) -> BacktestMetrics,
}

fn lt_cfg(kind: ModelKind, n: usize, condition: PowerCondition, policy: Policy) -> BacktestConfig {
    let cfg = BacktestConfig::new(kind, n, condition).with_policy(policy);
    if policy == Policy::Baseline {
        cfg
    } else {
        // The scheduling policies only bite under a constrained horizon.
        cfg.with_t_avail(scheduling_deadline_for(kind))
    }
}

/// The pinned scenario matrix: both profiled single-device baselines and
/// all four LightTrader policies, each on two independently seeded traces.
fn scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();
    for (tag, seed) in [("a", 101u64), ("b", 20230225u64)] {
        macro_rules! scenario {
            ($name:expr, $run:expr) => {
                out.push(Scenario {
                    name: $name,
                    trace_secs: 4.0,
                    trace_seed: seed,
                    run: $run,
                })
            };
        }
        match tag {
            "a" => {
                scenario!("a_gpu_deeplob", |t| run_single_device(
                    t,
                    &SingleDeviceSystem::gpu(),
                    ModelKind::DeepLob,
                    Duration::from_millis(5),
                    100,
                    64,
                ));
                scenario!("a_fpga_translob", |t| run_single_device(
                    t,
                    &SingleDeviceSystem::fpga(),
                    ModelKind::TransLob,
                    Duration::from_millis(5),
                    100,
                    64,
                ));
                scenario!("a_lt_baseline", |t| run_lighttrader(
                    t,
                    &lt_cfg(
                        ModelKind::DeepLob,
                        2,
                        PowerCondition::Sufficient,
                        Policy::Baseline,
                    ),
                ));
                scenario!("a_lt_ws", |t| run_lighttrader(
                    t,
                    &lt_cfg(
                        ModelKind::VanillaCnn,
                        1,
                        PowerCondition::Sufficient,
                        Policy::WorkloadScheduling,
                    ),
                ));
                scenario!("a_lt_ds", |t| run_lighttrader(
                    t,
                    &lt_cfg(
                        ModelKind::TransLob,
                        8,
                        PowerCondition::Limited,
                        Policy::DvfsScheduling,
                    ),
                ));
                scenario!("a_lt_both", |t| run_lighttrader(
                    t,
                    &lt_cfg(ModelKind::DeepLob, 4, PowerCondition::Limited, Policy::Both,),
                ));
                // A tight horizon under limited power on a wide pool
                // forces Algorithm 1's "remove oldest input tensor" path
                // (deferred > 0): the lone-boost stale budget assumes
                // power the busy pool cannot actually grant.
                scenario!("a_lt_defer", |t| run_lighttrader(
                    t,
                    &BacktestConfig::new(ModelKind::DeepLob, 16, PowerCondition::Limited)
                        .with_policy(Policy::Both)
                        .with_t_avail(Duration::from_micros(900)),
                ));
            }
            _ => {
                scenario!("b_gpu_deeplob", |t| run_single_device(
                    t,
                    &SingleDeviceSystem::gpu(),
                    ModelKind::DeepLob,
                    Duration::from_millis(5),
                    100,
                    64,
                ));
                scenario!("b_fpga_translob", |t| run_single_device(
                    t,
                    &SingleDeviceSystem::fpga(),
                    ModelKind::TransLob,
                    Duration::from_millis(5),
                    100,
                    64,
                ));
                scenario!("b_lt_baseline", |t| run_lighttrader(
                    t,
                    &lt_cfg(
                        ModelKind::VanillaCnn,
                        2,
                        PowerCondition::Limited,
                        Policy::Baseline,
                    ),
                ));
                scenario!("b_lt_ws", |t| run_lighttrader(
                    t,
                    &lt_cfg(
                        ModelKind::VanillaCnn,
                        2,
                        PowerCondition::Sufficient,
                        Policy::WorkloadScheduling,
                    ),
                ));
                scenario!("b_lt_ds", |t| run_lighttrader(
                    t,
                    &lt_cfg(
                        ModelKind::DeepLob,
                        8,
                        PowerCondition::Limited,
                        Policy::DvfsScheduling,
                    ),
                ));
                scenario!("b_lt_both", |t| run_lighttrader(
                    t,
                    &lt_cfg(
                        ModelKind::TransLob,
                        4,
                        PowerCondition::Sufficient,
                        Policy::Both,
                    ),
                ));
            }
        }
    }
    out
}

/// Serializes the pre-refactor-visible metric surface to a stable text
/// format. Energy is stored as the f64 bit pattern so parity is exact,
/// not within-epsilon; the latency stream pins both values and order.
fn encode(m: &BacktestMetrics) -> String {
    let mut s = String::new();
    writeln!(s, "responded {}", m.responded).unwrap();
    writeln!(s, "late {}", m.late).unwrap();
    writeln!(s, "dropped_full {}", m.dropped_full).unwrap();
    writeln!(s, "dropped_stale {}", m.dropped_stale).unwrap();
    writeln!(s, "deferred {}", m.deferred).unwrap();
    writeln!(s, "batches {}", m.batches).unwrap();
    writeln!(s, "batched_queries {}", m.batched_queries).unwrap();
    writeln!(s, "energy_bits {}", m.energy_j.to_bits()).unwrap();
    write!(s, "latencies_ns").unwrap();
    for l in m.latencies() {
        write!(s, " {l}").unwrap();
    }
    writeln!(s).unwrap();
    s
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(format!("{name}.golden"))
}

#[test]
fn engine_reproduces_pre_refactor_metrics() {
    let mut traces: Vec<(u64, TickTrace)> = Vec::new();
    for s in scenarios() {
        if !traces.iter().any(|(seed, _)| *seed == s.trace_seed) {
            traces.push((s.trace_seed, evaluation_trace(s.trace_secs, s.trace_seed)));
        }
        let trace = &traces
            .iter()
            .find(|(seed, _)| *seed == s.trace_seed)
            .unwrap()
            .1;
        let got = encode(&(s.run)(trace));
        let want = std::fs::read_to_string(golden_path(s.name))
            .unwrap_or_else(|e| panic!("missing golden {}: {e}", s.name));
        assert_eq!(
            got, want,
            "scenario {} diverged from the pre-refactor golden",
            s.name
        );
    }
}

/// Every LightTrader scenario from the pinned matrix as `(golden name,
/// config)` — the configs behind the `run_lighttrader` closures above.
fn lighttrader_scenarios() -> Vec<(&'static str, BacktestConfig)> {
    use ModelKind::*;
    use PowerCondition::*;
    vec![
        (
            "a_lt_baseline",
            lt_cfg(DeepLob, 2, Sufficient, Policy::Baseline),
        ),
        (
            "a_lt_ws",
            lt_cfg(VanillaCnn, 1, Sufficient, Policy::WorkloadScheduling),
        ),
        (
            "a_lt_ds",
            lt_cfg(TransLob, 8, Limited, Policy::DvfsScheduling),
        ),
        ("a_lt_both", lt_cfg(DeepLob, 4, Limited, Policy::Both)),
        (
            "a_lt_defer",
            BacktestConfig::new(DeepLob, 16, Limited)
                .with_policy(Policy::Both)
                .with_t_avail(Duration::from_micros(900)),
        ),
        (
            "b_lt_baseline",
            lt_cfg(VanillaCnn, 2, Limited, Policy::Baseline),
        ),
        (
            "b_lt_ws",
            lt_cfg(VanillaCnn, 2, Sufficient, Policy::WorkloadScheduling),
        ),
        (
            "b_lt_ds",
            lt_cfg(DeepLob, 8, Limited, Policy::DvfsScheduling),
        ),
        ("b_lt_both", lt_cfg(TransLob, 4, Sufficient, Policy::Both)),
    ]
}

/// Differential reduction: `DeadlineTiered` with a single registered
/// tier and an unbounded budget must be **byte-identical** to the fixed
/// policy it wraps — checked against the very same golden files, for
/// every LightTrader scenario in the pinned matrix.
#[test]
fn tiered_passthrough_matches_fixed_policy_goldens() {
    let mut traces: Vec<(u64, TickTrace)> = Vec::new();
    for (name, fixed_cfg) in lighttrader_scenarios() {
        let seed = if name.starts_with('a') {
            101u64
        } else {
            20230225u64
        };
        if !traces.iter().any(|(s, _)| *s == seed) {
            traces.push((seed, evaluation_trace(4.0, seed)));
        }
        let trace = &traces.iter().find(|(s, _)| *s == seed).unwrap().1;
        let mut tiered_cfg = fixed_cfg;
        tiered_cfg.policy = Policy::DeadlineTiered;
        tiered_cfg.tier = TierParams::passthrough(fixed_cfg.kind, fixed_cfg.policy);
        let got = encode(&run_lighttrader(trace, &tiered_cfg));
        let want = std::fs::read_to_string(golden_path(name))
            .unwrap_or_else(|e| panic!("missing golden {name}: {e}"));
        assert_eq!(
            got, want,
            "tiered passthrough diverged from the {name} golden"
        );
    }
}

/// Differential isolation: enabling the execution & portfolio layer in
/// assume-fill mode (the historical accounting, now made explicit) must
/// leave the latency/outcome surface **byte-identical** — fills push no
/// events and touch no scheduling state — checked against the very same
/// golden files, for every LightTrader scenario in the pinned matrix.
#[test]
fn assume_fill_mode_matches_goldens() {
    let mut traces: Vec<(u64, TickTrace)> = Vec::new();
    for (name, fixed_cfg) in lighttrader_scenarios() {
        let seed = if name.starts_with('a') {
            101u64
        } else {
            20230225u64
        };
        if !traces.iter().any(|(s, _)| *s == seed) {
            traces.push((seed, evaluation_trace(4.0, seed)));
        }
        let trace = &traces.iter().find(|(s, _)| *s == seed).unwrap().1;
        let trading_cfg = fixed_cfg.with_execution(ExecutionConfig::assume_fill());
        let m = run_lighttrader(trace, &trading_cfg);
        let exec = m
            .execution
            .expect("enabled execution layer must report stats");
        exec.assert_tiles();
        let got = encode(&m);
        let want = std::fs::read_to_string(golden_path(name))
            .unwrap_or_else(|e| panic!("missing golden {name}: {e}"));
        assert_eq!(
            got, want,
            "assume-fill execution diverged from the {name} golden"
        );
    }
}

/// Rewrites every golden from the current implementation. Run only when a
/// semantic change is intended; the diff is the review artifact.
#[test]
#[ignore = "regenerates the goldens from the current implementation"]
fn regenerate_goldens() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens");
    std::fs::create_dir_all(&dir).unwrap();
    let mut traces: Vec<(u64, TickTrace)> = Vec::new();
    for s in scenarios() {
        if !traces.iter().any(|(seed, _)| *seed == s.trace_seed) {
            traces.push((s.trace_seed, evaluation_trace(s.trace_secs, s.trace_seed)));
        }
        let trace = &traces
            .iter()
            .find(|(seed, _)| *seed == s.trace_seed)
            .unwrap()
            .1;
        std::fs::write(golden_path(s.name), encode(&(s.run)(trace))).unwrap();
    }
}
