//! Metrics accounting for the deadline-aware tier scheduler.
//!
//! The per-tier outcome tallies must *tile* the run exactly: every query
//! lands in exactly one bucket, the per-tier served counts sum to the
//! scored queries, degradations are exactly the below-preferred serves,
//! and the deadline-hit-rate reconciles with the recorded per-query
//! latencies (mirroring the per-stage `stage_sums_reconcile` guarantee).

use lt_accel::PowerCondition;
use lt_dnn::ModelKind;
use lt_sim::traffic::{burst_storm_trace, multi_evaluation_session, scheduling_deadline_for};
use lt_sim::{run_lighttrader, run_multi, BacktestConfig, BacktestMetrics};
use std::time::Duration;

/// The burst-storm workload at an aggressive budget: the configuration
/// the tiered scheduler is designed for.
fn storm_cfg() -> BacktestConfig {
    BacktestConfig::new(ModelKind::DeepLob, 2, PowerCondition::Limited)
        .with_t_avail(scheduling_deadline_for(ModelKind::DeepLob))
        .with_deadline_tiered(Some(Duration::from_micros(450)))
}

/// Asserts the tier-outcome tiling identities on one run's metrics.
fn assert_tiles(m: &BacktestMetrics, preferred: ModelKind) {
    // Served (scored at wire-out: responded + late) plus every drop and
    // defer bucket accounts for each query exactly once.
    assert_eq!(
        m.tiers.served_total(),
        m.responded + m.late,
        "per-tier served counts must sum to the scored queries"
    );
    assert_eq!(
        m.tiers.served_total() + m.deferred + m.dropped_full + m.dropped_stale + m.dropped_deadline,
        m.total(),
        "outcome buckets must tile the total"
    );
    // Degradations are exactly the serves below the preferred tier.
    let below: u64 = ModelKind::ALL
        .iter()
        .filter(|&&k| k != preferred)
        .map(|&k| m.tiers.served_at(k))
        .sum();
    assert_eq!(m.tiers.degraded, below, "degraded = served below preferred");
}

#[test]
fn tier_outcomes_tile_the_storm_run() {
    let trace = burst_storm_trace(3.0, 11);
    let m = run_lighttrader(&trace, &storm_cfg());
    assert!(m.total() > 1_000, "storm must generate load: {m}");
    assert_tiles(&m, ModelKind::DeepLob);
    // The aggressive budget must actually exercise the machinery: some
    // queries degrade to cheaper tiers.
    assert!(
        m.tiers.degraded > 0,
        "storm at a 450 µs budget must degrade some queries"
    );
}

#[test]
fn fixed_policies_never_degrade_or_deadline_drop() {
    let trace = burst_storm_trace(2.0, 13);
    let cfg = BacktestConfig::new(ModelKind::DeepLob, 2, PowerCondition::Limited)
        .with_policy(lt_sched::Policy::Both)
        .with_t_avail(scheduling_deadline_for(ModelKind::DeepLob));
    let m = run_lighttrader(&trace, &cfg);
    assert_tiles(&m, ModelKind::DeepLob);
    assert_eq!(m.tiers.degraded, 0);
    assert_eq!(m.dropped_deadline, 0);
    assert_eq!(m.tiers.served_at(ModelKind::VanillaCnn), 0);
    assert_eq!(m.tiers.served_at(ModelKind::TransLob), 0);
}

#[test]
fn deadline_hit_rate_reconciles_with_recorded_latencies() {
    let trace = burst_storm_trace(2.0, 17);
    let cfg = storm_cfg();
    let m = run_lighttrader(&trace, &cfg);
    let budget = cfg.tier.budget.unwrap();
    // The hit count is exactly the number of recorded latencies at or
    // under the budget — recomputed here from the raw stream.
    let by_hand = m
        .latencies()
        .iter()
        .filter(|&&ns| ns <= budget.as_nanos() as u64)
        .count() as u64;
    assert_eq!(m.deadline_hits(budget), by_hand);
    assert!((m.deadline_hit_rate(budget) - by_hand as f64 / m.total() as f64).abs() < 1e-12);
    // Latencies are only recorded for in-time responses, so hits can
    // never exceed responded; with budget <= t_avail a late answer can
    // never count as a hit.
    assert!(m.deadline_hits(budget) <= m.responded);
    // An unbounded budget counts every response.
    assert_eq!(m.deadline_hits(Duration::from_secs(3600)), m.responded);
    // Per-query stage decomposition stays exact under tiering.
    assert!(m.stage_sums_reconcile(0));
}

#[test]
fn multi_symbol_breakdown_tiles_per_symbol() {
    let session = multi_evaluation_session(2.0, 23, 4, 1.0);
    let cfg = BacktestConfig::new(ModelKind::DeepLob, 4, PowerCondition::Limited)
        .with_t_avail(scheduling_deadline_for(ModelKind::DeepLob))
        .with_deadline_tiered(Some(Duration::from_micros(450)))
        .with_symbols(4, 1.0);
    let m = run_multi(&session, &cfg);
    // run_multi already ran assert_consistent (aggregate == Σ symbols);
    // additionally each symbol's own buckets must tile its total.
    for s in &m.per_symbol {
        assert_eq!(
            s.tiers.served_total(),
            s.responded + s.late,
            "{:?}: per-tier served != scored",
            s.symbol
        );
        assert_eq!(
            s.tiers.served_total()
                + s.deferred
                + s.dropped_full
                + s.dropped_stale
                + s.dropped_deadline,
            s.total(),
            "{:?}: buckets must tile the symbol total",
            s.symbol
        );
    }
    assert_tiles(&m.aggregate, ModelKind::DeepLob);
}

#[test]
fn tiered_replay_is_deterministic() {
    let cfg = storm_cfg();
    let run = || {
        let trace = burst_storm_trace(2.0, 29);
        run_lighttrader(&trace, &cfg)
    };
    let a = run();
    let b = run();
    assert_eq!(a.responded, b.responded);
    assert_eq!(a.late, b.late);
    assert_eq!(a.dropped_deadline, b.dropped_deadline);
    assert_eq!(a.tiers, b.tiers);
    assert_eq!(a.latencies(), b.latencies());
    assert_eq!(a.energy_j.to_bits(), b.energy_j.to_bits());
}
