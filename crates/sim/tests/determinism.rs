//! Determinism: the discrete-event engine is a pure function of
//! (trace seed, config). Two runs of the same back-test must produce
//! byte-identical serialized metrics — counters, the full latency
//! stream, every per-stage telemetry column, and the energy bit
//! pattern — under every scheduling policy and for both system models.

use lt_accel::PowerCondition;
use lt_dnn::ModelKind;
use lt_sched::Policy;
use lt_sim::traffic::{evaluation_trace, scheduling_deadline_for};
use lt_sim::{
    run_lighttrader, run_single_device, BacktestConfig, BacktestMetrics, SingleDeviceSystem,
};
use std::time::Duration;

const SECS: f64 = 3.0;
const SEED: u64 = 4242;

fn serialize(m: &BacktestMetrics) -> String {
    let json = serde_json::to_string(m).expect("metrics serialize");
    // The energy field must round-trip bit-exactly, not just textually:
    // append the bit pattern so any formatting leniency cannot hide a
    // float divergence.
    format!("{json}|energy_bits={:016x}", m.energy_j.to_bits())
}

#[test]
fn lighttrader_runs_are_byte_identical_for_every_policy() {
    for policy in Policy::ALL {
        for (kind, n) in [
            (ModelKind::VanillaCnn, 1usize),
            (ModelKind::DeepLob, 4),
            (ModelKind::TransLob, 8),
        ] {
            let cfg = BacktestConfig::new(kind, n, PowerCondition::Limited)
                .with_policy(policy)
                .with_t_avail(scheduling_deadline_for(kind));
            // Independently generated traces from the same seed, so the
            // whole pipeline (feed -> engine -> metrics) is covered.
            let first = serialize(&run_lighttrader(&evaluation_trace(SECS, SEED), &cfg));
            let second = serialize(&run_lighttrader(&evaluation_trace(SECS, SEED), &cfg));
            assert_eq!(first, second, "{policy:?}/{kind}/{n} diverged");
        }
    }
}

#[test]
fn single_device_runs_are_byte_identical() {
    for system in [SingleDeviceSystem::gpu(), SingleDeviceSystem::fpga()] {
        for kind in ModelKind::ALL {
            let run = || {
                run_single_device(
                    &evaluation_trace(SECS, SEED),
                    &system,
                    kind,
                    Duration::from_millis(5),
                    100,
                    64,
                )
            };
            let first = serialize(&run());
            let second = serialize(&run());
            assert_eq!(first, second, "{}/{kind} diverged", system.name);
        }
    }
}

#[test]
fn stage_sums_reconcile_for_every_policy() {
    for policy in Policy::ALL {
        let cfg = BacktestConfig::new(ModelKind::DeepLob, 4, PowerCondition::Limited)
            .with_policy(policy)
            .with_t_avail(scheduling_deadline_for(ModelKind::DeepLob));
        let m = run_lighttrader(&evaluation_trace(SECS, SEED), &cfg);
        assert!(m.responded > 0, "{policy:?}: no responses to decompose");
        assert!(m.has_stage_samples(), "{policy:?}: missing stage samples");
        assert!(
            m.stage_sums_reconcile(1),
            "{policy:?}: stage sums drifted more than 1 ns"
        );
    }
}
