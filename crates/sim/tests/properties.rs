//! Property tests of the back-test simulator's invariants across random
//! traffic and configurations.

use lt_accel::PowerCondition;
use lt_dnn::ModelKind;
use lt_feed::{FlashParams, HawkesParams, SessionBuilder};
use lt_sched::Policy;
use lt_sim::{run_lighttrader, run_single_device, BacktestConfig, SingleDeviceSystem};
use proptest::prelude::*;
use std::time::Duration;

fn kind_strategy() -> impl Strategy<Value = ModelKind> {
    prop_oneof![
        Just(ModelKind::VanillaCnn),
        Just(ModelKind::TransLob),
        Just(ModelKind::DeepLob),
    ]
}

fn policy_strategy() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::Baseline),
        Just(Policy::WorkloadScheduling),
        Just(Policy::DvfsScheduling),
        Just(Policy::Both),
    ]
}

fn trace_strategy() -> impl Strategy<Value = lt_feed::TickTrace> {
    (1u64..1_000, 50.0f64..300.0, 0.0f64..0.6).prop_map(|(seed, mu, branching)| {
        SessionBuilder::new(HawkesParams::new(mu, branching * 2_000.0, 2_000.0))
            .flash_bursts(FlashParams::new(1.0, 20.0, 10e-6))
            .duration_secs(1.5)
            .seed(seed)
            .build()
            .trace
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Conservation: every post-warmup tick lands in exactly one outcome
    /// bucket, for any traffic, model, policy, and accelerator count.
    #[test]
    fn outcome_conservation(
        trace in trace_strategy(),
        kind in kind_strategy(),
        policy in policy_strategy(),
        n in 1usize..9,
        deadline_us in 400u64..6_000,
    ) {
        let cfg = BacktestConfig::new(kind, n, PowerCondition::Limited)
            .with_policy(policy)
            .with_t_avail(Duration::from_micros(deadline_us));
        let m = run_lighttrader(&trace, &cfg);
        let expected = (trace.len() as u64).saturating_sub(cfg.window as u64 - 1);
        prop_assert_eq!(m.total(), expected);
        prop_assert_eq!(m.latency_samples() as u64, m.responded);
        prop_assert!(m.batched_queries >= m.batches);
    }

    /// Energy never exceeds budget x wall-clock, for any policy.
    #[test]
    fn energy_bounded_by_budget(
        trace in trace_strategy(),
        policy in policy_strategy(),
        n in 1usize..9,
    ) {
        let cfg = BacktestConfig::new(ModelKind::TransLob, n, PowerCondition::Limited)
            .with_policy(policy);
        let m = run_lighttrader(&trace, &cfg);
        let wall = trace.duration().as_secs_f64() + 1.0;
        prop_assert!(
            m.energy_j <= PowerCondition::Limited.accelerator_budget_w() * wall + 1e-6,
            "energy {} over {} s", m.energy_j, wall
        );
    }

    /// Recorded tick-to-trade latencies never exceed the deadline (that
    /// is the definition of a response).
    #[test]
    fn responses_meet_their_deadline(
        trace in trace_strategy(),
        kind in kind_strategy(),
        deadline_us in 500u64..6_000,
    ) {
        let cfg = BacktestConfig::new(kind, 2, PowerCondition::Sufficient)
            .with_t_avail(Duration::from_micros(deadline_us));
        let m = run_lighttrader(&trace, &cfg);
        if m.responded > 0 {
            prop_assert!(m.latency_quantile(1.0) <= cfg.t_avail);
        }
    }

    /// The single-device harness obeys the same conservation law.
    #[test]
    fn single_device_conservation(
        trace in trace_strategy(),
        kind in kind_strategy(),
    ) {
        let m = run_single_device(
            &trace,
            &SingleDeviceSystem::fpga(),
            kind,
            Duration::from_millis(5),
            100,
            64,
        );
        let expected = (trace.len() as u64).saturating_sub(99);
        prop_assert_eq!(m.total(), expected);
    }

    /// Longer deadlines never reduce the response rate (same trace,
    /// baseline policy).
    #[test]
    fn response_monotone_in_deadline(
        trace in trace_strategy(),
        kind in kind_strategy(),
    ) {
        let rate = |us: u64| {
            let cfg = BacktestConfig::new(kind, 2, PowerCondition::Sufficient)
                .with_t_avail(Duration::from_micros(us));
            run_lighttrader(&trace, &cfg).response_rate()
        };
        prop_assert!(rate(4_000) >= rate(1_000) - 1e-9);
        prop_assert!(rate(8_000) >= rate(4_000) - 1e-9);
    }
}
