//! Integration tests of the execution & portfolio layer.
//!
//! The layer must be an *observer*: enabling it changes nothing on the
//! latency/outcome surface (the golden differential in `golden_parity`
//! pins that bit-for-bit; here we check it pairwise on arbitrary
//! configs), while inside the layer fills must tile orders, shards must
//! tile the aggregate, runs must be deterministic, and the kill switch
//! must act on mark-to-market drawdown even with no order in flight.

use lt_accel::PowerCondition;
use lt_dnn::ModelKind;
use lt_sched::Policy;
use lt_sim::traffic::{burst_storm_trace, multi_evaluation_session, scheduling_deadline_for};
use lt_sim::{run_lighttrader, run_multi, BacktestConfig, ExecutionConfig};

fn storm_cfg() -> BacktestConfig {
    BacktestConfig::new(ModelKind::DeepLob, 2, PowerCondition::Limited)
        .with_policy(Policy::Both)
        .with_t_avail(scheduling_deadline_for(ModelKind::DeepLob))
}

#[test]
fn enabling_execution_leaves_the_latency_surface_untouched() {
    let trace = burst_storm_trace(1.0, 7);
    let cfg = storm_cfg();
    let off = run_lighttrader(&trace, &cfg);
    let on = run_lighttrader(&trace, &cfg.with_execution(ExecutionConfig::realistic()));
    assert!(off.execution.is_none(), "disabled layer reports nothing");
    let exec = on.execution.expect("enabled layer reports stats");
    assert!(exec.orders_sent > 0, "the storm must produce orders");
    exec.assert_tiles();
    // Everything except the execution report is identical.
    assert_eq!(off.responded, on.responded);
    assert_eq!(off.late, on.late);
    assert_eq!(off.dropped_full, on.dropped_full);
    assert_eq!(off.dropped_stale, on.dropped_stale);
    assert_eq!(off.dropped_deadline, on.dropped_deadline);
    assert_eq!(off.deferred, on.deferred);
    assert_eq!(off.batches, on.batches);
    assert_eq!(off.batched_queries, on.batched_queries);
    assert_eq!(off.energy_j.to_bits(), on.energy_j.to_bits());
    assert_eq!(off.latencies(), on.latencies());
    assert_eq!(off.tiers, on.tiers);
}

#[test]
fn execution_is_deterministic() {
    let trace = burst_storm_trace(1.0, 7);
    let cfg = storm_cfg().with_execution(ExecutionConfig::realistic());
    let a = run_lighttrader(&trace, &cfg).execution.unwrap();
    let b = run_lighttrader(&trace, &cfg).execution.unwrap();
    assert_eq!(a, b, "same trace + config => same fills and P&L");
}

#[test]
fn realistic_fills_diverge_from_assume_fill() {
    let trace = burst_storm_trace(1.0, 7);
    let assume = run_lighttrader(
        &trace,
        &storm_cfg().with_execution(ExecutionConfig::assume_fill()),
    )
    .execution
    .unwrap();
    let real = run_lighttrader(
        &trace,
        &storm_cfg().with_execution(ExecutionConfig::realistic()),
    )
    .execution
    .unwrap();
    assert_eq!(
        assume.filled, assume.orders_sent,
        "assume-fill fills every order in full"
    );
    assert_eq!(assume.missed, 0);
    assert!(
        real.missed + real.partial > 0,
        "the storm must move the book inside the pipeline latency for \
         at least one order: {real:?}"
    );
}

#[test]
fn multi_symbol_fill_outcomes_tile_per_symbol() {
    let session = multi_evaluation_session(2.0, 42, 4, 1.0);
    let cfg = BacktestConfig::new(ModelKind::DeepLob, 4, PowerCondition::Sufficient)
        .with_policy(Policy::Both)
        .with_t_avail(scheduling_deadline_for(ModelKind::DeepLob))
        .with_symbols(4, 1.0)
        .with_execution(ExecutionConfig::realistic());
    // run_multi's assert_consistent already checks per-symbol tiling and
    // aggregate-equals-sum; re-derive the headline pieces here.
    let m = run_multi(&session, &cfg);
    let agg = m.aggregate.execution.expect("trading run reports stats");
    assert!(agg.orders_sent > 0, "the session must produce orders");
    let mut sent = 0;
    for s in &m.per_symbol {
        let e = s.execution.expect("per-symbol stats present");
        e.assert_tiles();
        sent += e.orders_sent;
    }
    assert_eq!(agg.orders_sent, sent, "symbols tile the aggregate");
    agg.assert_tiles();
}

#[test]
fn kill_switch_suppresses_all_orders_at_a_zero_floor() {
    // A loss floor of zero trips on the very first mark-to-market
    // observation (flat equity 0 <= floor 0) — before any order settles,
    // proving the switch acts on ticks, not on settlements.
    let trace = burst_storm_trace(1.0, 7);
    let cfg = storm_cfg().with_execution(ExecutionConfig::realistic().with_kill_floor(0));
    let exec = run_lighttrader(&trace, &cfg).execution.unwrap();
    assert_eq!(exec.orders_sent, 0, "tripped switch wires nothing out");
    assert!(exec.suppressed > 0, "the strategy still tried to trade");
    assert_eq!(exec.position, 0);
    assert_eq!(exec.equity_half, 0);
}

#[test]
fn deep_loss_floor_changes_nothing() {
    let trace = burst_storm_trace(1.0, 7);
    let unlimited = run_lighttrader(
        &trace,
        &storm_cfg().with_execution(ExecutionConfig::realistic()),
    )
    .execution
    .unwrap();
    let deep = run_lighttrader(
        &trace,
        &storm_cfg().with_execution(ExecutionConfig::realistic().with_kill_floor(-1_000_000)),
    )
    .execution
    .unwrap();
    assert_eq!(
        unlimited, deep,
        "a floor the drawdown never reaches must not alter execution"
    );
}
