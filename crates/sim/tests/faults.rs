//! Fault-injected ingress: the acceptance suite.
//!
//! * Zero fault rates bypass the ingress stage, so a faulted-but-lossless
//!   configuration is bit-identical to the plain one.
//! * Seeded loss + reorder on feed A only: feed B carries every packet,
//!   so the arbiter recovers 100% of what A dropped and nothing is
//!   permanently lost.
//! * Same-seed degraded runs serialize byte-identically — fault
//!   injection keeps the back-test re-runnable.

use lt_accel::PowerCondition;
use lt_dnn::ModelKind;
use lt_sim::traffic::{evaluation_trace, scheduling_deadline_for};
use lt_sim::{run_lighttrader, BacktestConfig, BacktestMetrics, FaultRates, IngressFaults};

const SECS: f64 = 3.0;
const SEED: u64 = 4242;

fn base_config() -> BacktestConfig {
    BacktestConfig::new(ModelKind::DeepLob, 4, PowerCondition::Limited)
        .with_t_avail(scheduling_deadline_for(ModelKind::DeepLob))
}

fn serialize(m: &BacktestMetrics) -> String {
    let json = serde_json::to_string(m).expect("metrics serialize");
    format!("{json}|energy_bits={:016x}", m.energy_j.to_bits())
}

#[test]
fn lossless_faults_are_bit_identical_to_no_faults() {
    let trace = evaluation_trace(SECS, SEED);
    let plain = run_lighttrader(&trace, &base_config());
    let faulted = run_lighttrader(
        &trace,
        &base_config().with_faults(IngressFaults::lossless()),
    );
    assert_eq!(serialize(&plain), serialize(&faulted));
    assert!(faulted.ingress.is_none(), "lossless runs attach no report");
}

#[test]
fn loss_on_feed_a_recovers_everything_from_feed_b() {
    let trace = evaluation_trace(SECS, SEED);
    let faults = IngressFaults {
        feed_a: FaultRates {
            drop: 0.01,
            reorder: 0.01,
            reorder_delay_ns: 2_000,
            ..FaultRates::lossless()
        },
        feed_b: FaultRates::lossless(),
        seed: 7,
    };
    let m = run_lighttrader(&trace, &base_config().with_faults(faults));
    let report = m.ingress.expect("degraded run attaches a report");
    assert_eq!(report.offered, trace.len() as u64);
    assert_eq!(report.lost, 0, "feed B carried every packet");
    assert_eq!(report.delivered, report.offered);
    assert!(report.recovered > 0, "1% over {} packets", trace.len());
    assert_eq!(
        report.recovered, report.feed_a.channel.dropped,
        "every A-side drop is recovered from B"
    );
    assert_eq!(report.feed_a.recovered_from_other, report.recovered);
    assert_eq!(report.feed_b.lost_on_feed, 0);
    // Every delivered tick still turns into exactly one query outcome.
    assert_eq!(
        m.total(),
        report.delivered - (base_config().window as u64 - 1)
    );
}

#[test]
fn symmetric_loss_degrades_but_stays_accounted() {
    let trace = evaluation_trace(SECS, SEED);
    let clean = run_lighttrader(&trace, &base_config());
    let faults = IngressFaults::symmetric(
        FaultRates {
            drop: 0.3,
            ..FaultRates::lossless()
        },
        19,
    );
    let m = run_lighttrader(&trace, &base_config().with_faults(faults));
    let report = m.ingress.expect("report attached");
    assert!(report.lost > 0, "30% on both feeds must overlap somewhere");
    assert_eq!(report.delivered + report.lost, report.offered);
    assert!(
        m.total() < clean.total(),
        "lost ticks must reduce the query count ({} vs {})",
        m.total(),
        clean.total()
    );
}

#[test]
fn same_seed_degraded_runs_are_byte_identical() {
    let faults = IngressFaults {
        feed_a: FaultRates {
            drop: 0.02,
            duplicate: 0.01,
            reorder: 0.05,
            corrupt: 0.01,
            delay_ns: 1_000,
            jitter_ns: 500,
            reorder_delay_ns: 10_000,
        },
        feed_b: FaultRates {
            drop: 0.01,
            ..FaultRates::lossless()
        },
        seed: 99,
    };
    let cfg = base_config().with_faults(faults);
    let first = serialize(&run_lighttrader(&evaluation_trace(SECS, SEED), &cfg));
    let second = serialize(&run_lighttrader(&evaluation_trace(SECS, SEED), &cfg));
    assert_eq!(first, second, "degraded runs must replay exactly");

    let mut other = cfg;
    other.faults.seed = 100;
    let third = serialize(&run_lighttrader(&evaluation_trace(SECS, SEED), &other));
    assert_ne!(first, third, "a different seed must change the outcome");
}
