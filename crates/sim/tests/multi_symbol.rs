//! The multi-symbol sharded back-test: parity, determinism, and
//! per-symbol accounting.
//!
//! The load-bearing guarantee is **single-symbol parity**: the sharded
//! core with one shard must be the historical single-instrument
//! back-test bit for bit — same counters, same latency stream, same
//! per-stage telemetry, same energy bit pattern. On top of that, a
//! multi-symbol run must be a pure function of (seed, config), and its
//! per-symbol breakdown must tile the aggregate exactly.

use lt_accel::PowerCondition;
use lt_dnn::ModelKind;
use lt_sched::Policy;
use lt_sim::traffic::{multi_evaluation_session, scheduling_deadline_for};
use lt_sim::{run_lighttrader, run_multi, BacktestConfig, BacktestMetrics, MultiMetrics};

const SECS: f64 = 3.0;
const SEED: u64 = 4242;

fn serialize(m: &BacktestMetrics) -> String {
    let json = serde_json::to_string(m).expect("metrics serialize");
    format!("{json}|energy_bits={:016x}", m.energy_j.to_bits())
}

fn serialize_multi(m: &MultiMetrics) -> String {
    let json = serde_json::to_string(m).expect("multi metrics serialize");
    format!("{json}|energy_bits={:016x}", m.aggregate.energy_j.to_bits())
}

fn cfg_for(kind: ModelKind, n_accels: usize, policy: Policy) -> BacktestConfig {
    BacktestConfig::new(kind, n_accels, PowerCondition::Limited)
        .with_policy(policy)
        .with_t_avail(scheduling_deadline_for(kind))
}

/// One symbol through the sharded core == the single-instrument core,
/// byte for byte, under every scheduling policy.
#[test]
fn single_symbol_matches_run_lighttrader_exactly() {
    for policy in Policy::ALL {
        let session = multi_evaluation_session(SECS, SEED, 1, 0.0);
        let cfg = cfg_for(ModelKind::DeepLob, 4, policy).with_symbols(1, 0.0);
        let multi = run_multi(&session, &cfg);
        let single_cfg = cfg_for(ModelKind::DeepLob, 4, policy);
        let single = run_lighttrader(&session.sessions[0].trace, &single_cfg);
        assert_eq!(
            serialize(&multi.aggregate),
            serialize(&single),
            "{policy:?}: sharded core with one shard diverged from the \
             single-instrument back-test"
        );
    }
}

/// A multi-symbol back-test is a pure function of (seed, config): two
/// independently generated runs serialize byte-identically, per-symbol
/// breakdown included.
#[test]
fn multi_symbol_runs_are_byte_identical() {
    for (symbols, skew) in [(2usize, 0.0), (4, 1.0), (8, 2.5)] {
        let run = || {
            let session = multi_evaluation_session(SECS, SEED, symbols, skew);
            let cfg = cfg_for(ModelKind::DeepLob, 8, Policy::Both).with_symbols(symbols, skew);
            run_multi(&session, &cfg)
        };
        let first = serialize_multi(&run());
        let second = serialize_multi(&run());
        assert_eq!(first, second, "{symbols} symbols @ skew {skew} diverged");
    }
}

/// The per-symbol breakdown tiles the aggregate: every outcome counter
/// equals the sum of its per-symbol attributions, and every symbol's
/// query total matches its warm ticks.
#[test]
fn per_symbol_tallies_tile_the_aggregate() {
    let symbols = 4;
    let session = multi_evaluation_session(SECS, SEED, symbols, 1.5);
    let cfg = cfg_for(ModelKind::DeepLob, 4, Policy::Both).with_symbols(symbols, 1.5);
    let m = run_multi(&session, &cfg);
    m.assert_consistent();
    assert_eq!(m.per_symbol.len(), symbols);
    for (i, s) in m.per_symbol.iter().enumerate() {
        // Each shard's feature FIFO swallows window-1 warm-up ticks; all
        // later ticks become queries with some outcome.
        let expected = session.sessions[i].trace.len() as u64 - (cfg.window as u64 - 1);
        assert_eq!(s.total(), expected, "{:?} leaks queries", s.symbol);
    }
    let aggregate_total: u64 = m.per_symbol.iter().map(|s| s.total()).sum();
    assert_eq!(m.aggregate.total(), aggregate_total);
}

/// Skewed traffic concentrates load on the leading symbol, and the
/// shared fleet still answers the long tail.
#[test]
fn skew_concentrates_but_tail_still_answers() {
    let symbols = 8;
    let session = multi_evaluation_session(SECS, SEED, symbols, 2.5);
    let mut cfg = cfg_for(ModelKind::DeepLob, 8, Policy::Both).with_symbols(symbols, 2.5);
    // The coldest tail symbol sees only tens of ticks in a short
    // session; a short feature window lets every shard warm up.
    cfg.window = 20;
    let m = run_multi(&session, &cfg);
    let ticks: Vec<u64> = m.per_symbol.iter().map(|s| s.ticks).collect();
    assert!(
        ticks[0] > 3 * ticks[symbols - 1],
        "skew 2.5 must concentrate traffic: {ticks:?}"
    );
    for s in &m.per_symbol {
        assert!(
            s.responded > 0,
            "{:?} starved despite the shared fleet",
            s.symbol
        );
    }
}
