//! A dense, row-major `f32` tensor.

use crate::bf16::bf16_round_slice;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Maximum tensor rank supported by the inline shape representation.
///
/// The deepest shape any layer uses is the rank-4 convolution kernel
/// `[out_c, in_c, k_h, k_w]`; storing dimensions inline (instead of in a
/// heap-allocated `Vec`) is what lets [`crate::scratch::ScratchPad`] hand
/// out tensors without touching the allocator.
pub const MAX_RANK: usize = 4;

/// Inline shape: up to [`MAX_RANK`] dimensions, no heap storage.
///
/// Unused trailing slots are always zero so derived `PartialEq` compares
/// shapes of equal rank correctly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Shape {
    dims: [usize; MAX_RANK],
    rank: u8,
}

impl Shape {
    fn from_slice(shape: &[usize]) -> Self {
        assert!(
            shape.len() <= MAX_RANK,
            "shape {shape:?} exceeds the maximum supported rank {MAX_RANK}"
        );
        let mut dims = [0; MAX_RANK];
        dims[..shape.len()].copy_from_slice(shape);
        Shape {
            dims,
            rank: shape.len() as u8,
        }
    }

    fn as_slice(&self) -> &[usize] {
        &self.dims[..self.rank as usize]
    }
}

/// A dense tensor with row-major storage.
///
/// Kept deliberately small: fixed `f32` element type, owned storage, and
/// only the shape algebra the layers in [`crate::ops`] need. The shape is
/// stored inline (max rank [`MAX_RANK`]) so constructing a tensor from an
/// existing buffer never allocates.
///
/// # Example
///
/// ```
/// use lt_dnn::Tensor;
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// assert_eq!(t.at(&[1, 0]), 3.0);
/// assert_eq!(t.shape(), &[2, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or has a zero dimension.
    pub fn zeros(shape: &[usize]) -> Self {
        let len = Self::checked_len(shape);
        Tensor {
            shape: Shape::from_slice(shape),
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor from existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let len = Self::checked_len(shape);
        assert_eq!(
            data.len(),
            len,
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor {
            shape: Shape::from_slice(shape),
            data,
        }
    }

    /// Creates a tensor with i.i.d. uniform values in `[-scale, scale]`,
    /// deterministically from `seed` (Xavier-style when `scale =
    /// sqrt(6/(fan_in+fan_out))`).
    pub fn random(shape: &[usize], scale: f32, seed: u64) -> Self {
        let len = Self::checked_len(shape);
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..len).map(|_| rng.gen_range(-scale..=scale)).collect();
        Tensor {
            shape: Shape::from_slice(shape),
            data,
        }
    }

    fn checked_len(shape: &[usize]) -> usize {
        assert!(!shape.is_empty(), "shape must have at least one dimension");
        assert!(
            shape.iter().all(|&d| d > 0),
            "shape {shape:?} has a zero dimension"
        );
        shape.iter().product()
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        self.shape.as_slice()
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always false: zero-dimension shapes are rejected at construction.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying storage.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying storage.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of range.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.offset(index)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of range.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.offset(index);
        self.data[off] = value;
    }

    fn offset(&self, index: &[usize]) -> usize {
        let shape = self.shape.as_slice();
        assert_eq!(
            index.len(),
            shape.len(),
            "index rank {} != tensor rank {}",
            index.len(),
            shape.len()
        );
        let mut off = 0;
        for (i, (&ix, &dim)) in index.iter().zip(shape).enumerate() {
            assert!(ix < dim, "index {ix} out of range for dim {i} (size {dim})");
            off = off * dim + ix;
        }
        off
    }

    /// Returns the same storage under a new shape (no copy, no allocation).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    #[must_use]
    pub fn reshape(mut self, shape: &[usize]) -> Tensor {
        let len = Self::checked_len(shape);
        assert_eq!(
            self.data.len(),
            len,
            "cannot reshape {:?} ({} elems) to {:?} ({} elems)",
            self.shape.as_slice(),
            self.data.len(),
            shape,
            len
        );
        self.shape = Shape::from_slice(shape);
        self
    }

    /// Rounds every element to BF16 in place and returns self (builder
    /// style, mirroring how the accelerator stores activations).
    #[must_use]
    pub fn quantize_bf16(mut self) -> Tensor {
        bf16_round_slice(&mut self.data);
        self
    }

    /// The index of the maximum element (first on ties).
    ///
    /// # Panics
    ///
    /// Never panics: tensors always hold at least one element.
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Row `r` of a rank-2 tensor as a slice.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `r` is out of range.
    pub fn row(&self, r: usize) -> &[f32] {
        assert_eq!(self.shape().len(), 2, "row() requires a rank-2 tensor");
        let cols = self.shape.dims[1];
        assert!(r < self.shape.dims[0], "row {r} out of range");
        &self.data[r * cols..(r + 1) * cols]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let mut t = Tensor::zeros(&[2, 3]);
        assert_eq!(t.len(), 6);
        assert_eq!(t.shape(), &[2, 3]);
        t.set(&[1, 2], 7.0);
        assert_eq!(t.at(&[1, 2]), 7.0);
        assert_eq!(t.at(&[0, 0]), 0.0);
        assert_eq!(t.data()[5], 7.0, "row-major layout");
    }

    #[test]
    fn from_vec_and_row() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(t.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).reshape(&[2, 2]);
        assert_eq!(t.at(&[1, 1]), 4.0);
    }

    #[test]
    fn random_is_deterministic_and_bounded() {
        let a = Tensor::random(&[10, 10], 0.5, 42);
        let b = Tensor::random(&[10, 10], 0.5, 42);
        assert_eq!(a, b);
        assert!(a.data().iter().all(|v| v.abs() <= 0.5));
        let c = Tensor::random(&[10, 10], 0.5, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn argmax_first_on_ties() {
        let t = Tensor::from_vec(vec![1.0, 3.0, 3.0, 2.0], &[4]);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn quantize_bf16_rounds_all() {
        let t = Tensor::from_vec(vec![1.0001, 2.0003], &[2]).quantize_bf16();
        for &v in t.data() {
            assert_eq!(crate::bf16::bf16_round(v), v);
        }
    }

    #[test]
    fn rank_four_round_trips() {
        let t = Tensor::zeros(&[2, 3, 4, 5]);
        assert_eq!(t.shape(), &[2, 3, 4, 5]);
        assert_eq!(t.len(), 120);
        let r = t.reshape(&[120]);
        assert_eq!(r.shape(), &[120]);
    }

    #[test]
    fn from_vec_does_not_copy_storage() {
        let data = vec![1.0f32, 2.0, 3.0, 4.0];
        let ptr = data.as_ptr();
        let t = Tensor::from_vec(data, &[2, 2]);
        assert_eq!(t.data().as_ptr(), ptr, "from_vec must reuse the buffer");
        let back = t.into_vec();
        assert_eq!(back.as_ptr(), ptr, "into_vec must reuse the buffer");
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_length_mismatch_panics() {
        let _ = Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_index_panics() {
        let t = Tensor::zeros(&[2, 2]);
        let _ = t.at(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "zero dimension")]
    fn zero_dim_rejected() {
        let _ = Tensor::zeros(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn bad_reshape_panics() {
        let _ = Tensor::zeros(&[4]).reshape(&[3]);
    }

    #[test]
    #[should_panic(expected = "exceeds the maximum supported rank")]
    fn rank_five_rejected() {
        let _ = Tensor::zeros(&[1, 1, 1, 1, 1]);
    }
}
