//! Brain-float-16 rounding and INT8 quantization.
//!
//! The accelerator computes in BF16 "to maintain the original network
//! accuracy across different networks, whereas the lower INT precision,
//! INT8 and INT4, are still supported … for the case that the processing
//! latency is prioritized over the accuracy" (§III-C). We model BF16 as
//! `f32` with the mantissa truncated to 7 bits using round-to-nearest-even
//! — bit-exact with hardware BF16 for normal values — rather than carrying
//! a distinct storage type through the hot path.

use serde::{Deserialize, Serialize};

/// Numeric precision of an inference (paper §III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Precision {
    /// Brain float 16: the default, full-accuracy mode (16 TFLOPS peak).
    #[default]
    Bf16,
    /// 8-bit integers: 4x the throughput (64 TOPS peak), lossy.
    Int8,
    /// 4-bit integers: supported by the PE array, rarely used.
    Int4,
}

impl Precision {
    /// Peak-throughput multiplier relative to BF16 (the paper's
    /// 16 TFLOPS vs 64 TOPS gives 4x for INT8; INT4 doubles that).
    pub fn throughput_multiplier(self) -> f64 {
        match self {
            Precision::Bf16 => 1.0,
            Precision::Int8 => 4.0,
            Precision::Int4 => 8.0,
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Precision::Bf16 => f.write_str("bf16"),
            Precision::Int8 => f.write_str("int8"),
            Precision::Int4 => f.write_str("int4"),
        }
    }
}

/// Rounds an `f32` to the nearest representable BF16 value
/// (round-to-nearest-even), returned as `f32`.
///
/// # Example
///
/// ```
/// use lt_dnn::bf16_round;
/// // 1.0 is exactly representable.
/// assert_eq!(bf16_round(1.0), 1.0);
/// // BF16 has ~3 significant decimal digits.
/// assert_ne!(bf16_round(1.001), 1.001);
/// ```
#[inline]
pub fn bf16_round(x: f32) -> f32 {
    let bits = x.to_bits();
    // Round-to-nearest-even on the truncated 16 mantissa bits.
    let rounding_bias = 0x7FFF + ((bits >> 16) & 1);
    let rounded = bits.wrapping_add(rounding_bias) & 0xFFFF_0000;
    f32::from_bits(rounded)
}

/// Rounds a whole slice to BF16 in place.
pub fn bf16_round_slice(xs: &mut [f32]) {
    for x in xs {
        *x = bf16_round(*x);
    }
}

/// Symmetric per-tensor INT8 quantization.
///
/// Returns the quantized bytes and the scale such that
/// `value ≈ q as f32 * scale`.
pub fn quantize_int8(xs: &[f32]) -> (Vec<i8>, f32) {
    let mut q = vec![0i8; xs.len()];
    let scale = quantize_int8_into(xs, &mut q);
    (q, scale)
}

/// [`quantize_int8`] into a caller-provided buffer (no allocation).
///
/// Returns the scale.
///
/// # Panics
///
/// Panics if `out.len() != xs.len()`.
pub fn quantize_int8_into(xs: &[f32], out: &mut [i8]) -> f32 {
    assert_eq!(out.len(), xs.len(), "int8 output buffer length");
    let max_abs = xs.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    if max_abs == 0.0 {
        out.fill(0);
        return 1.0;
    }
    let scale = max_abs / 127.0;
    for (o, &x) in out.iter_mut().zip(xs) {
        *o = (x / scale).round().clamp(-127.0, 127.0) as i8;
    }
    scale
}

/// Reverses [`quantize_int8`].
pub fn dequantize_int8(q: &[i8], scale: f32) -> Vec<f32> {
    q.iter().map(|&v| v as f32 * scale).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_survive() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 256.0, -0.25] {
            assert_eq!(bf16_round(v), v);
        }
    }

    #[test]
    fn rounding_error_is_bounded() {
        // BF16 has 8 mantissa bits (incl. hidden): relative error < 2^-8.
        for i in 1..1000 {
            let x = i as f32 * 0.37;
            let r = bf16_round(x);
            assert!(((r - x) / x).abs() < 1.0 / 256.0, "{x} -> {r}");
        }
    }

    #[test]
    fn round_to_nearest_even() {
        // A value exactly halfway between two BF16 values rounds to even.
        let lo = f32::from_bits(0x3F80_0000); // 1.0
        let half_ulp = f32::from_bits(0x3F80_8000); // halfway to next bf16
        let r = bf16_round(half_ulp);
        // 0x3F80 is even, 0x3F81 is odd: ties go to 0x3F80.
        assert_eq!(r, lo);
    }

    #[test]
    fn idempotent() {
        for i in 0..100 {
            let x = (i as f32 - 50.0) * 1.7;
            assert_eq!(bf16_round(bf16_round(x)), bf16_round(x));
        }
    }

    #[test]
    fn specials_preserved() {
        assert!(bf16_round(f32::NAN).is_nan());
        assert_eq!(bf16_round(f32::INFINITY), f32::INFINITY);
        assert_eq!(bf16_round(f32::NEG_INFINITY), f32::NEG_INFINITY);
        assert_eq!(bf16_round(-0.0).to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn slice_rounding() {
        let mut xs = vec![1.001f32, 2.003, 3.007];
        bf16_round_slice(&mut xs);
        for x in &xs {
            assert_eq!(bf16_round(*x), *x);
        }
    }

    #[test]
    fn int8_round_trip_error_bounded() {
        let xs: Vec<f32> = (0..256).map(|i| (i as f32 - 128.0) * 0.11).collect();
        let (q, scale) = quantize_int8(&xs);
        let back = dequantize_int8(&q, scale);
        let max_abs = xs.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        for (a, b) in xs.iter().zip(&back) {
            assert!((a - b).abs() <= scale * 0.5 + 1e-6, "{a} vs {b}");
        }
        assert!(scale > 0.0 && scale <= max_abs / 126.0);
    }

    #[test]
    fn int8_zero_tensor() {
        let (q, scale) = quantize_int8(&[0.0, 0.0]);
        assert_eq!(q, vec![0, 0]);
        assert_eq!(scale, 1.0);
    }

    #[test]
    fn precision_multipliers() {
        assert_eq!(Precision::Bf16.throughput_multiplier(), 1.0);
        assert_eq!(Precision::Int8.throughput_multiplier(), 4.0);
        assert_eq!(Precision::Int4.throughput_multiplier(), 8.0);
        assert_eq!(Precision::default(), Precision::Bf16);
        assert_eq!(Precision::Int8.to_string(), "int8");
    }
}
