//! BF16 tensor library and the three HFT benchmark DNNs.
//!
//! The paper evaluates three limit-order-book models (Table II):
//!
//! | model       | network          | total OPs |
//! |-------------|------------------|-----------|
//! | Vanilla CNN | CNN              | 93.0 G    |
//! | TransLOB    | CNN + Transformer| 203.9 G   |
//! | DeepLOB     | CNN + LSTM       | 515.4 G   |
//!
//! This crate implements all three from scratch on a small tensor library:
//!
//! * [`bf16`] — Brain-float-16 rounding, the accelerator's "main
//!   computational precision" (§III-C), plus symmetric INT8 quantization
//!   for the low-latency path;
//! * [`tensor`] — a dense row-major `f32` tensor with the shape algebra
//!   the layers need;
//! * [`ops`] — linear, conv2d, LSTM, multi-head attention, layer norm,
//!   pooling, and activations, each with an analytic MAC counter used by
//!   the latency model;
//! * [`kernels`] — the im2col + blocked-GEMM fast paths behind the ops'
//!   `forward_scratch` methods, bit-identical to the naive references;
//! * [`scratch`] — the [`ScratchPad`] buffer pool that makes steady-state
//!   inference allocation-free;
//! * [`batch`] — prepacked weight panels ([`PackedWeights`]) and the
//!   scoped sample scatter behind the batched
//!   [`Model::forward_batch_scratch`] path, bit-identical per sample to
//!   looped `forward_scratch`;
//! * [`models`] — [`VanillaCnn`],
//!   [`TransLob`], and [`DeepLob`],
//!   each in two sizes: a `paper()` configuration whose analytic op count
//!   matches Table II, and a `tiny()` configuration that runs functionally
//!   in microseconds for tests, examples, and the CGRA simulator.
//!
//! Every op has a naive-reference test; property tests cover numerical
//! invariants (softmax sums to one, layer norm normalizes, BF16
//! round-trips, ...).

pub mod batch;
pub mod bf16;
pub mod kernels;
pub mod model;
pub mod models;
pub mod ops;
pub mod registry;
pub mod scratch;
pub mod tensor;

pub use batch::{PackedPanels, PackedWeights};
pub use bf16::{bf16_round, quantize_int8, Precision};
pub use model::{Model, ModelKind, Prediction, PriceDirection};
pub use models::{DeepLob, TransLob, VanillaCnn};
pub use registry::ModelRegistry;
pub use scratch::ScratchPad;
pub use tensor::Tensor;
