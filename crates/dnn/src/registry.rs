//! Multi-model registry: one pipeline holding every tier's weights.
//!
//! Deadline-aware tier scheduling (see `lt-sched`'s `tier` module) needs
//! all three benchmark networks resident at once so a query can be
//! served at whichever tier fits its remaining budget. [`ModelRegistry`]
//! owns one instantiated model per registered [`ModelKind`] together
//! with a dedicated [`ScratchPad`] and a reusable input buffer per tier,
//! so switching tiers between queries never touches the allocator in
//! steady state.
//!
//! The tiers have different input windows (e.g. tiny CNN sees 20 ticks,
//! tiny DeepLOB 40); the feature pipeline stages the *largest* window
//! ([`ModelRegistry::max_window`]) and [`ModelRegistry::forward`] slices
//! the trailing rows each smaller tier needs.

use crate::model::{Model, ModelKind, Prediction};
use crate::models::build_tiny;
use crate::scratch::ScratchPad;
use crate::tensor::Tensor;

/// Position of `kind` in [`ModelKind::ALL`] (Table II order).
fn slot(kind: ModelKind) -> usize {
    ModelKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("every kind has a slot")
}

struct Entry {
    model: Box<dyn Model>,
    pad: ScratchPad,
    /// Reusable `[window, features]` staging buffer for trailing-window
    /// slices of a wider input.
    input: Tensor,
}

impl Entry {
    fn new(model: Box<dyn Model>) -> Self {
        let input = Tensor::zeros(&[model.window(), model.features()]);
        Entry {
            model,
            pad: ScratchPad::new(),
            input,
        }
    }
}

/// One instantiated network + scratch state per registered tier.
pub struct ModelRegistry {
    entries: [Option<Entry>; 3],
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ModelRegistry {
            entries: [None, None, None],
        }
    }

    /// A registry holding tiny instances of the given kinds, each with
    /// deterministic weights derived from `seed`.
    pub fn tiny_with_kinds(kinds: &[ModelKind], seed: u64) -> Self {
        let mut reg = Self::new();
        for &kind in kinds {
            reg.register(build_tiny(kind, seed));
        }
        reg
    }

    /// A registry holding tiny instances of all three benchmark tiers.
    pub fn tiny(seed: u64) -> Self {
        Self::tiny_with_kinds(&ModelKind::ALL, seed)
    }

    /// Adds (or replaces) the tier `model.kind()`.
    pub fn register(&mut self, model: Box<dyn Model>) {
        let idx = slot(model.kind());
        self.entries[idx] = Some(Entry::new(model));
    }

    /// True when `kind` is registered.
    pub fn contains(&self, kind: ModelKind) -> bool {
        self.entries[slot(kind)].is_some()
    }

    /// Registered kinds, cheapest first (Table II order).
    pub fn kinds(&self) -> impl Iterator<Item = ModelKind> + '_ {
        ModelKind::ALL.into_iter().filter(|&k| self.contains(k))
    }

    /// Number of registered tiers.
    pub fn len(&self) -> usize {
        self.entries.iter().flatten().count()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.iter().all(Option::is_none)
    }

    /// The most accurate (most expensive) registered tier.
    pub fn best(&self) -> Option<ModelKind> {
        self.kinds().last()
    }

    /// The registered model for `kind`.
    pub fn model(&self, kind: ModelKind) -> Option<&dyn Model> {
        self.entries[slot(kind)].as_ref().map(|e| &*e.model)
    }

    /// The widest input window across registered tiers: the number of
    /// tick rows the feature pipeline must stage so every tier can run.
    ///
    /// # Panics
    ///
    /// Panics on an empty registry.
    pub fn max_window(&self) -> usize {
        self.entries
            .iter()
            .flatten()
            .map(|e| e.model.window())
            .max()
            .expect("registry must hold a model")
    }

    /// Runs tier `kind` on `input`, which must hold *at least* the
    /// tier's window of tick rows (extra leading rows — staged for a
    /// wider tier — are skipped; the trailing `window()` rows are the
    /// most recent ticks). Uses the tier's own scratch pad and staging
    /// buffer, so steady-state calls are allocation-free.
    ///
    /// # Panics
    ///
    /// Panics when `kind` is not registered, the input is not rank-2,
    /// the feature count differs, or fewer rows than the tier's window
    /// are supplied.
    pub fn forward(&mut self, kind: ModelKind, input: &Tensor) -> Prediction {
        let entry = self.entries[slot(kind)]
            .as_mut()
            .unwrap_or_else(|| panic!("{kind} is not registered"));
        let (window, features) = (entry.model.window(), entry.model.features());
        assert_eq!(input.shape().len(), 2, "input must be [rows, features]");
        let (rows, cols) = (input.shape()[0], input.shape()[1]);
        assert_eq!(cols, features, "feature width mismatch for {kind}");
        assert!(
            rows >= window,
            "{kind} needs {window} tick rows, got {rows}"
        );
        if rows == window {
            entry.model.forward_scratch(input, &mut entry.pad)
        } else {
            let src = &input.data()[(rows - window) * features..];
            entry.input.data_mut().copy_from_slice(src);
            entry.model.forward_scratch(&entry.input, &mut entry.pad)
        }
    }
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_holds_all_tiers() {
        let reg = ModelRegistry::tiny(42);
        assert_eq!(reg.len(), 3);
        assert!(!reg.is_empty());
        assert_eq!(reg.best(), Some(ModelKind::DeepLob));
        let kinds: Vec<ModelKind> = reg.kinds().collect();
        assert_eq!(kinds, ModelKind::ALL.to_vec(), "cheapest first");
        for kind in ModelKind::ALL {
            assert!(reg.contains(kind));
            assert_eq!(reg.model(kind).unwrap().kind(), kind);
        }
    }

    #[test]
    fn partial_registry() {
        let reg = ModelRegistry::tiny_with_kinds(&[ModelKind::VanillaCnn], 7);
        assert_eq!(reg.len(), 1);
        assert!(!reg.contains(ModelKind::DeepLob));
        assert_eq!(reg.best(), Some(ModelKind::VanillaCnn));
        assert_eq!(
            reg.max_window(),
            reg.model(ModelKind::VanillaCnn).unwrap().window()
        );
    }

    /// Serving a narrow tier from a wide staged input must equal running
    /// the tier directly on the trailing window.
    #[test]
    fn trailing_window_slice_matches_direct_forward() {
        let mut reg = ModelRegistry::tiny(42);
        let max_window = reg.max_window();
        let features = reg.model(ModelKind::VanillaCnn).unwrap().features();
        let wide = Tensor::random(&[max_window, features], 1.0, 99);
        for kind in ModelKind::ALL {
            let model = build_tiny(kind, 42);
            let window = model.window();
            assert!(window <= max_window);
            let start = (max_window - window) * features;
            let direct_in = Tensor::from_vec(wide.data()[start..].to_vec(), &[window, features]);
            let direct = model.forward(&direct_in);
            let via_registry = reg.forward(kind, &wide);
            assert_eq!(via_registry.probs, direct.probs, "{kind}");
        }
    }

    /// Steady-state tier switching reuses pads and staging buffers and
    /// stays deterministic.
    #[test]
    fn repeated_forwards_are_deterministic() {
        let mut reg = ModelRegistry::tiny(42);
        let input = Tensor::random(&[reg.max_window(), 40], 1.0, 5);
        let first: Vec<[f32; 3]> = ModelKind::ALL
            .iter()
            .map(|&k| reg.forward(k, &input).probs)
            .collect();
        for _ in 0..3 {
            for (i, &kind) in ModelKind::ALL.iter().enumerate() {
                assert_eq!(reg.forward(kind, &input).probs, first[i]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "is not registered")]
    fn unregistered_kind_panics() {
        let mut reg = ModelRegistry::tiny_with_kinds(&[ModelKind::VanillaCnn], 1);
        let input = Tensor::zeros(&[40, 40]);
        let _ = reg.forward(ModelKind::DeepLob, &input);
    }

    #[test]
    #[should_panic(expected = "tick rows")]
    fn short_input_panics() {
        let mut reg = ModelRegistry::tiny(1);
        let window = reg.model(ModelKind::DeepLob).unwrap().window();
        let input = Tensor::zeros(&[window - 1, 40]);
        let _ = reg.forward(ModelKind::DeepLob, &input);
    }
}
