//! Multi-model registry: one pipeline holding every tier's weights.
//!
//! Deadline-aware tier scheduling (see `lt-sched`'s `tier` module) needs
//! all three benchmark networks resident at once so a query can be
//! served at whichever tier fits its remaining budget. [`ModelRegistry`]
//! owns one instantiated model per registered [`ModelKind`] together
//! with a dedicated [`ScratchPad`] and a reusable input buffer per tier,
//! so switching tiers between queries never touches the allocator in
//! steady state.
//!
//! The tiers have different input windows (e.g. tiny CNN sees 20 ticks,
//! tiny DeepLOB 40); the feature pipeline stages the *largest* window
//! ([`ModelRegistry::max_window`]) and [`ModelRegistry::forward`] slices
//! the trailing rows each smaller tier needs.

use crate::batch::PackedWeights;
use crate::model::{Model, ModelKind, Prediction};
use crate::models::build_tiny;
use crate::scratch::ScratchPad;
use crate::tensor::Tensor;

/// Position of `kind` in [`ModelKind::ALL`] (Table II order).
fn slot(kind: ModelKind) -> usize {
    ModelKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("every kind has a slot")
}

struct Entry {
    model: Box<dyn Model>,
    pad: ScratchPad,
    /// Panel-packed weights, built once at registration; every
    /// steady-state forward multiplies against these instead of the
    /// row-major weight tensors.
    packed: PackedWeights,
    /// Reusable `[window, features]` staging buffer for trailing-window
    /// slices of a wider input.
    input: Tensor,
    /// Reusable staging lanes for batched trailing-window slices, grown
    /// to the largest batch seen and then recycled.
    lanes: Vec<Tensor>,
    /// Reusable prediction buffer for the single-query forward.
    preds: Vec<Prediction>,
}

impl Entry {
    fn new(model: Box<dyn Model>) -> Self {
        let input = Tensor::zeros(&[model.window(), model.features()]);
        let packed = model.pack_weights();
        Entry {
            model,
            pad: ScratchPad::new(),
            packed,
            input,
            lanes: Vec::new(),
            preds: Vec::new(),
        }
    }
}

/// One instantiated network + scratch state per registered tier.
pub struct ModelRegistry {
    entries: [Option<Entry>; 3],
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ModelRegistry {
            entries: [None, None, None],
        }
    }

    /// A registry holding tiny instances of the given kinds, each with
    /// deterministic weights derived from `seed`.
    pub fn tiny_with_kinds(kinds: &[ModelKind], seed: u64) -> Self {
        let mut reg = Self::new();
        for &kind in kinds {
            reg.register(build_tiny(kind, seed));
        }
        reg
    }

    /// A registry holding tiny instances of all three benchmark tiers.
    pub fn tiny(seed: u64) -> Self {
        Self::tiny_with_kinds(&ModelKind::ALL, seed)
    }

    /// Adds (or replaces) the tier `model.kind()`.
    pub fn register(&mut self, model: Box<dyn Model>) {
        let idx = slot(model.kind());
        self.entries[idx] = Some(Entry::new(model));
    }

    /// True when `kind` is registered.
    pub fn contains(&self, kind: ModelKind) -> bool {
        self.entries[slot(kind)].is_some()
    }

    /// Registered kinds, cheapest first (Table II order).
    pub fn kinds(&self) -> impl Iterator<Item = ModelKind> + '_ {
        ModelKind::ALL.into_iter().filter(|&k| self.contains(k))
    }

    /// Number of registered tiers.
    pub fn len(&self) -> usize {
        self.entries.iter().flatten().count()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.iter().all(Option::is_none)
    }

    /// The most accurate (most expensive) registered tier.
    pub fn best(&self) -> Option<ModelKind> {
        self.kinds().last()
    }

    /// The registered model for `kind`.
    pub fn model(&self, kind: ModelKind) -> Option<&dyn Model> {
        self.entries[slot(kind)].as_ref().map(|e| &*e.model)
    }

    /// The widest input window across registered tiers: the number of
    /// tick rows the feature pipeline must stage so every tier can run.
    ///
    /// # Panics
    ///
    /// Panics on an empty registry.
    pub fn max_window(&self) -> usize {
        self.entries
            .iter()
            .flatten()
            .map(|e| e.model.window())
            .max()
            .expect("registry must hold a model")
    }

    /// Runs tier `kind` on `input`, which must hold *at least* the
    /// tier's window of tick rows (extra leading rows — staged for a
    /// wider tier — are skipped; the trailing `window()` rows are the
    /// most recent ticks). Uses the tier's own scratch pad and staging
    /// buffer, so steady-state calls are allocation-free.
    ///
    /// # Panics
    ///
    /// Panics when `kind` is not registered, the input is not rank-2,
    /// the feature count differs, or fewer rows than the tier's window
    /// are supplied.
    pub fn forward(&mut self, kind: ModelKind, input: &Tensor) -> Prediction {
        let entry = self.entries[slot(kind)]
            .as_mut()
            .unwrap_or_else(|| panic!("{kind} is not registered"));
        let (window, features) = (entry.model.window(), entry.model.features());
        assert_eq!(input.shape().len(), 2, "input must be [rows, features]");
        let (rows, cols) = (input.shape()[0], input.shape()[1]);
        assert_eq!(cols, features, "feature width mismatch for {kind}");
        assert!(
            rows >= window,
            "{kind} needs {window} tick rows, got {rows}"
        );
        let staged = if rows == window {
            input
        } else {
            let src = &input.data()[(rows - window) * features..];
            entry.input.data_mut().copy_from_slice(src);
            &entry.input
        };
        // Single queries ride the packed batch path at batch 1 — the
        // panels are bit-identical to the row-major weights (pinned by
        // `tests/batch_equivalence.rs`), so this only changes speed.
        entry.model.forward_batch_scratch(
            std::slice::from_ref(staged),
            &entry.packed,
            &mut entry.pad,
            &mut entry.preds,
        );
        entry.preds[0]
    }

    /// Runs tier `kind` once over a whole batch of inputs, writing one
    /// prediction per input (in order) into `out`. Each input obeys the
    /// same contract as [`Self::forward`]: rank-2, matching feature
    /// width, at least the tier's window of tick rows, trailing rows
    /// most recent.
    ///
    /// Inputs already shaped exactly `[window, features]` are handed to
    /// the model's batched forward directly; wider inputs are staged
    /// through per-lane trailing-window buffers first. Either way the
    /// whole batch runs as **one** packed batched forward per layer, and
    /// steady-state calls (batch size at or below the largest seen)
    /// allocate nothing.
    ///
    /// # Panics
    ///
    /// Panics when `kind` is not registered or any input violates the
    /// shape contract.
    pub fn forward_batch(&mut self, kind: ModelKind, inputs: &[Tensor], out: &mut Vec<Prediction>) {
        let entry = self.entries[slot(kind)]
            .as_mut()
            .unwrap_or_else(|| panic!("{kind} is not registered"));
        let (window, features) = (entry.model.window(), entry.model.features());
        for input in inputs {
            assert_eq!(input.shape().len(), 2, "input must be [rows, features]");
            assert_eq!(
                input.shape()[1],
                features,
                "feature width mismatch for {kind}"
            );
            assert!(
                input.shape()[0] >= window,
                "{kind} needs {window} tick rows, got {}",
                input.shape()[0]
            );
        }
        if inputs.iter().all(|t| t.shape() == [window, features]) {
            entry
                .model
                .forward_batch_scratch(inputs, &entry.packed, &mut entry.pad, out);
            return;
        }
        while entry.lanes.len() < inputs.len() {
            entry.lanes.push(Tensor::zeros(&[window, features]));
        }
        for (lane, input) in entry.lanes.iter_mut().zip(inputs) {
            let rows = input.shape()[0];
            let src = &input.data()[(rows - window) * features..];
            lane.data_mut().copy_from_slice(src);
        }
        entry.model.forward_batch_scratch(
            &entry.lanes[..inputs.len()],
            &entry.packed,
            &mut entry.pad,
            out,
        );
    }

    /// Sets the row-block worker count used by batched forwards on every
    /// registered tier (`0` = auto-detect, `1` = serial; see
    /// [`PackedWeights::set_threads`]).
    pub fn set_batch_threads(&mut self, threads: usize) {
        for entry in self.entries.iter_mut().flatten() {
            entry.packed.set_threads(threads);
        }
    }
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_holds_all_tiers() {
        let reg = ModelRegistry::tiny(42);
        assert_eq!(reg.len(), 3);
        assert!(!reg.is_empty());
        assert_eq!(reg.best(), Some(ModelKind::DeepLob));
        let kinds: Vec<ModelKind> = reg.kinds().collect();
        assert_eq!(kinds, ModelKind::ALL.to_vec(), "cheapest first");
        for kind in ModelKind::ALL {
            assert!(reg.contains(kind));
            assert_eq!(reg.model(kind).unwrap().kind(), kind);
        }
    }

    #[test]
    fn partial_registry() {
        let reg = ModelRegistry::tiny_with_kinds(&[ModelKind::VanillaCnn], 7);
        assert_eq!(reg.len(), 1);
        assert!(!reg.contains(ModelKind::DeepLob));
        assert_eq!(reg.best(), Some(ModelKind::VanillaCnn));
        assert_eq!(
            reg.max_window(),
            reg.model(ModelKind::VanillaCnn).unwrap().window()
        );
    }

    /// Serving a narrow tier from a wide staged input must equal running
    /// the tier directly on the trailing window.
    #[test]
    fn trailing_window_slice_matches_direct_forward() {
        let mut reg = ModelRegistry::tiny(42);
        let max_window = reg.max_window();
        let features = reg.model(ModelKind::VanillaCnn).unwrap().features();
        let wide = Tensor::random(&[max_window, features], 1.0, 99);
        for kind in ModelKind::ALL {
            let model = build_tiny(kind, 42);
            let window = model.window();
            assert!(window <= max_window);
            let start = (max_window - window) * features;
            let direct_in = Tensor::from_vec(wide.data()[start..].to_vec(), &[window, features]);
            let direct = model.forward(&direct_in);
            let via_registry = reg.forward(kind, &wide);
            assert_eq!(via_registry.probs, direct.probs, "{kind}");
        }
    }

    /// Steady-state tier switching reuses pads and staging buffers and
    /// stays deterministic.
    #[test]
    fn repeated_forwards_are_deterministic() {
        let mut reg = ModelRegistry::tiny(42);
        let input = Tensor::random(&[reg.max_window(), 40], 1.0, 5);
        let first: Vec<[f32; 3]> = ModelKind::ALL
            .iter()
            .map(|&k| reg.forward(k, &input).probs)
            .collect();
        for _ in 0..3 {
            for (i, &kind) in ModelKind::ALL.iter().enumerate() {
                assert_eq!(reg.forward(kind, &input).probs, first[i]);
            }
        }
    }

    /// `forward_batch` equals repeated `forward`, both for exact-window
    /// inputs (direct path) and wide staged inputs (lane path), bit for
    /// bit.
    #[test]
    fn forward_batch_matches_repeated_forward() {
        let mut reg = ModelRegistry::tiny(42);
        let max_window = reg.max_window();
        for kind in ModelKind::ALL {
            let window = reg.model(kind).unwrap().window();
            let features = reg.model(kind).unwrap().features();
            for rows in [window, max_window] {
                let inputs: Vec<Tensor> = (0..4)
                    .map(|i| Tensor::random(&[rows, features], 1.0, 100 + i))
                    .collect();
                let singles: Vec<[u32; 3]> = inputs
                    .iter()
                    .map(|t| reg.forward(kind, t).probs.map(f32::to_bits))
                    .collect();
                let mut batched = Vec::new();
                reg.forward_batch(kind, &inputs, &mut batched);
                assert_eq!(batched.len(), inputs.len());
                for (s, (b, l)) in batched.iter().zip(&singles).enumerate() {
                    assert_eq!(
                        &b.probs.map(f32::to_bits),
                        l,
                        "{kind} rows={rows} sample {s}"
                    );
                }
            }
        }
    }

    /// Batched forwards with row-block workers enabled stay bit-equal to
    /// the serial batch, and empty batches clear `out`.
    #[test]
    fn forward_batch_threads_and_empty() {
        let mut serial = ModelRegistry::tiny(7);
        let mut threaded = ModelRegistry::tiny(7);
        threaded.set_batch_threads(3);
        let features = serial.model(ModelKind::DeepLob).unwrap().features();
        let inputs: Vec<Tensor> = (0..3)
            .map(|i| Tensor::random(&[serial.max_window(), features], 1.0, 50 + i))
            .collect();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        serial.forward_batch(ModelKind::DeepLob, &inputs, &mut a);
        threaded.forward_batch(ModelKind::DeepLob, &inputs, &mut b);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.probs.map(f32::to_bits), y.probs.map(f32::to_bits));
        }
        serial.forward_batch(ModelKind::DeepLob, &[], &mut a);
        assert!(a.is_empty(), "empty batch clears out");
    }

    #[test]
    #[should_panic(expected = "is not registered")]
    fn unregistered_kind_panics() {
        let mut reg = ModelRegistry::tiny_with_kinds(&[ModelKind::VanillaCnn], 1);
        let input = Tensor::zeros(&[40, 40]);
        let _ = reg.forward(ModelKind::DeepLob, &input);
    }

    #[test]
    #[should_panic(expected = "tick rows")]
    fn short_input_panics() {
        let mut reg = ModelRegistry::tiny(1);
        let window = reg.model(ModelKind::DeepLob).unwrap().window();
        let input = Tensor::zeros(&[window - 1, 40]);
        let _ = reg.forward(ModelKind::DeepLob, &input);
    }
}
