//! The INT8 quantized inference path.
//!
//! "The lower INT precision, INT8 and INT4, are still supported for the
//! acceleration of the quantized networks for the case that the
//! processing latency is prioritized over the accuracy due to the
//! equations of the profit and loss in the target exchange servers"
//! (§III-C). [`QuantizedCnn`] post-training-quantizes a [`VanillaCnn`]
//! with symmetric per-tensor INT8 weights; the accelerator runs it at 4x
//! throughput (64 TOPS vs 16 TFLOPS) at the cost of small prediction
//! deviations that this module's tests quantify.

use crate::bf16::{dequantize_int8, quantize_int8};
use crate::model::{Model, ModelKind, Prediction};
use crate::models::vanilla_cnn::{CnnSpec, VanillaCnn};
use crate::ops::activation::{relu, softmax_last_dim};
use crate::ops::{Conv2d, LinearInt8};
use crate::scratch::ScratchPad;
use crate::tensor::Tensor;

/// An INT8-quantized Vanilla CNN.
///
/// Convolution stays in BF16 (activation ranges vary per spatial
/// position; quantizing them per-tensor costs the most accuracy for the
/// least work), while the dense layers — the bulk of the parameters —
/// run the symmetric INT8 kernel. This mirrors the common mixed-precision
/// deployment the paper's latency-priority mode targets.
#[derive(Debug, Clone)]
pub struct QuantizedCnn {
    spec: CnnSpec,
    conv1: Conv2d,
    conv2: Conv2d,
    conv3: Conv2d,
    fc1: LinearInt8,
    fc2: LinearInt8,
}

impl QuantizedCnn {
    /// Quantizes an existing BF16 network.
    pub fn from_float(model: &VanillaCnn) -> Self {
        QuantizedCnn {
            spec: model.spec(),
            conv1: model.conv1_ref().clone(),
            conv2: model.conv2_ref().clone(),
            conv3: model.conv3_ref().clone(),
            fc1: LinearInt8::from_linear(model.fc1_ref()),
            fc2: LinearInt8::from_linear(model.fc2_ref()),
        }
    }

    /// The spec of the underlying architecture.
    pub fn spec(&self) -> CnnSpec {
        self.spec
    }

    /// The naive reference forward pass, built entirely from the layers'
    /// `forward_reference` paths (kept for equivalence tests and the
    /// benchmark baseline). Bit-identical to [`Model::forward`].
    pub fn forward_reference(&self, input: &Tensor) -> Prediction {
        assert_eq!(
            input.shape(),
            [self.spec.window, self.spec.features],
            "input must be [window, features]"
        );
        let x = input
            .clone()
            .reshape(&[1, self.spec.window, self.spec.features]);
        let mut x = self.conv1.forward_reference(&x);
        relu(&mut x);
        let mut x = self.conv2.forward_reference(&x);
        relu(&mut x);
        let mut x = self.conv3.forward_reference(&x);
        relu(&mut x);
        let flat_len = x.len();
        let flat = x.reshape(&[flat_len]);
        let mut h = self.fc1.forward_reference(&flat);
        relu(&mut h);
        let mut logits = self.fc2.forward_reference(&h);
        softmax_last_dim(&mut logits);
        let d = logits.data();
        Prediction::new([d[0], d[1], d[2]])
    }
}

impl Model for QuantizedCnn {
    fn kind(&self) -> ModelKind {
        ModelKind::VanillaCnn
    }

    fn window(&self) -> usize {
        self.spec.window
    }

    fn features(&self) -> usize {
        self.spec.features
    }

    fn forward_scratch(&self, input: &Tensor, pad: &mut ScratchPad) -> Prediction {
        assert_eq!(
            input.shape(),
            [self.spec.window, self.spec.features],
            "input must be [window, features]"
        );
        let mut x0 = pad.take_tensor(&[1, self.spec.window, self.spec.features]);
        x0.data_mut().copy_from_slice(input.data());
        let mut x = self.conv1.forward_scratch(&x0, pad);
        pad.give_tensor(x0);
        relu(&mut x);
        let mut y = self.conv2.forward_scratch(&x, pad);
        pad.give_tensor(x);
        relu(&mut y);
        let mut z = self.conv3.forward_scratch(&y, pad);
        pad.give_tensor(y);
        relu(&mut z);
        let flat_len = z.len();
        let flat = z.reshape(&[flat_len]);
        let mut h = self.fc1.forward_scratch(&flat, pad);
        pad.give_tensor(flat);
        relu(&mut h);
        let mut logits = self.fc2.forward_scratch(&h, pad);
        pad.give_tensor(h);
        softmax_last_dim(&mut logits);
        let d = logits.data();
        let p = Prediction::new([d[0], d[1], d[2]]);
        pad.give_tensor(logits);
        p
    }

    fn total_macs(&self) -> u64 {
        self.spec.macs()
    }
}

/// Quantization error statistics between a float model and its INT8
/// counterpart, over a batch of inputs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QuantizationReport {
    /// Inputs evaluated.
    pub samples: usize,
    /// How often the predicted direction agreed.
    pub direction_agreement: f64,
    /// Mean absolute probability deviation across classes.
    pub mean_abs_prob_error: f64,
}

/// Compares a float model against its quantized twin over `inputs`.
pub fn quantization_report(
    float: &VanillaCnn,
    quant: &QuantizedCnn,
    inputs: &[Tensor],
) -> QuantizationReport {
    if inputs.is_empty() {
        return QuantizationReport::default();
    }
    let mut agree = 0usize;
    let mut abs_err = 0.0f64;
    for input in inputs {
        let a = float.forward(input);
        let b = quant.forward(input);
        if a.direction() == b.direction() {
            agree += 1;
        }
        for (x, y) in a.probs.iter().zip(b.probs) {
            abs_err += (x - y).abs() as f64;
        }
    }
    QuantizationReport {
        samples: inputs.len(),
        direction_agreement: agree as f64 / inputs.len() as f64,
        mean_abs_prob_error: abs_err / (inputs.len() * 3) as f64,
    }
}

/// Round-trip sanity used by tests: weights survive quantize→dequantize
/// within half a step.
pub fn weight_round_trip_error(values: &[f32]) -> f32 {
    let (q, scale) = quantize_int8(values);
    let back = dequantize_int8(&q, scale);
    values
        .iter()
        .zip(&back)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    fn pair() -> (VanillaCnn, QuantizedCnn) {
        let float = CnnSpec::tiny().build(11);
        let quant = QuantizedCnn::from_float(&float);
        (float, quant)
    }

    #[test]
    fn quantized_model_runs_and_sums_to_one() {
        let (_, quant) = pair();
        let x = Tensor::random(&[20, 40], 1.0, 1);
        let p = quant.forward(&x);
        assert!((p.probs.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        assert_eq!(quant.kind(), ModelKind::VanillaCnn);
        assert_eq!(quant.window(), 20);
    }

    #[test]
    fn quantization_preserves_most_decisions() {
        let (float, quant) = pair();
        let inputs: Vec<Tensor> = (0..40)
            .map(|i| Tensor::random(&[20, 40], 1.0, 100 + i))
            .collect();
        let report = quantization_report(&float, &quant, &inputs);
        assert_eq!(report.samples, 40);
        assert!(
            report.direction_agreement >= 0.85,
            "agreement {:.2}",
            report.direction_agreement
        );
        assert!(
            report.mean_abs_prob_error < 0.05,
            "prob error {:.4}",
            report.mean_abs_prob_error
        );
        // But it is genuinely lossy.
        assert!(report.mean_abs_prob_error > 0.0);
    }

    #[test]
    fn weight_error_bounded_by_half_step() {
        let values: Vec<f32> = (0..256).map(|i| (i as f32 - 128.0) * 0.017).collect();
        let max_abs = values.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let err = weight_round_trip_error(&values);
        assert!(err <= max_abs / 127.0 * 0.5 + 1e-6, "err {err}");
    }

    #[test]
    fn empty_report_is_default() {
        let (float, quant) = pair();
        assert_eq!(
            quantization_report(&float, &quant, &[]),
            QuantizationReport::default()
        );
    }
}
