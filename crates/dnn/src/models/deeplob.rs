//! The DeepLOB benchmark (convolutional blocks + inception + LSTM).
//!
//! Three convolutional blocks progressively fold the 40-wide level axis
//! (40 → 20 → 10 → 1) while temporal convolutions extract short-term
//! structure; an inception module mixes receptive fields; an LSTM
//! integrates the sequence; a dense softmax head classifies the move —
//! the architecture of Zhang et al. that the paper benchmarks at
//! 515.4 G OPs.

use crate::batch::PackedWeights;
use crate::model::{Model, ModelKind, Prediction};
use crate::ops::activation::{leaky_relu, leaky_relu_slice, softmax_last_dim, softmax_rows};
use crate::ops::count::{conv2d_macs, linear_macs, lstm_macs, macs_to_ops};
use crate::ops::{Conv2d, Linear, Lstm};
use crate::scratch::ScratchPad;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Dimensions of a DeepLOB instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeepLobSpec {
    /// Tick-window length `T`.
    pub window: usize,
    /// Features per tick; the level-folding convolutions require 40.
    pub features: usize,
    /// Channel width of the convolutional trunk.
    pub channels: usize,
    /// LSTM hidden width.
    pub lstm_hidden: usize,
}

/// Temporal kernel height of the in-block convolutions.
const KERNEL_T: usize = 4;
/// LeakyReLU slope used throughout (as in the DeepLOB paper).
const LEAK: f32 = 0.01;
/// Temporal shrinkage across the whole trunk: six valid k=4 convolutions.
const TRUNK_SHRINK: usize = 6 * (KERNEL_T - 1);

impl DeepLobSpec {
    /// The paper-scale spec: [`Self::ops`] reproduces Table II's 515.4 G
    /// OPs within 0.1%.
    pub fn paper() -> Self {
        DeepLobSpec {
            window: 100,
            features: 40,
            channels: 2_900,
            lstm_hidden: 6_520,
        }
    }

    /// A tiny runnable spec.
    pub fn tiny() -> Self {
        DeepLobSpec {
            window: 24,
            features: 40,
            channels: 4,
            lstm_hidden: 8,
        }
    }

    /// Sequence length reaching the LSTM.
    pub fn lstm_steps(&self) -> usize {
        self.window - TRUNK_SHRINK
    }

    /// Analytic MACs of one forward pass.
    pub fn macs(&self) -> u64 {
        let t = self.window as u64;
        let c = self.channels as u64;
        let h = self.lstm_hidden as u64;
        let k = KERNEL_T as u64;
        // Block 1: level fold 40 -> 20, then two temporal convolutions.
        let b1a = conv2d_macs(c, 1, 1, 2, t, 20);
        let b1b = conv2d_macs(c, c, k, 1, t - 3, 20);
        let b1c = conv2d_macs(c, c, k, 1, t - 6, 20);
        // Block 2: fold 20 -> 10.
        let b2a = conv2d_macs(c, c, 1, 2, t - 6, 10);
        let b2b = conv2d_macs(c, c, k, 1, t - 9, 10);
        let b2c = conv2d_macs(c, c, k, 1, t - 12, 10);
        // Block 3: fold 10 -> 1.
        let b3a = conv2d_macs(c, c, 1, 10, t - 12, 1);
        let b3b = conv2d_macs(c, c, k, 1, t - 15, 1);
        let b3c = conv2d_macs(c, c, k, 1, t - 18, 1);
        // Inception: 1x1, 1x1+3x1(same), 1x1+5x1(same) branches.
        let steps = self.lstm_steps() as u64;
        let inception = conv2d_macs(c, c, 1, 1, steps, 1)
            + conv2d_macs(c, c, 1, 1, steps, 1)
            + conv2d_macs(c, c, 3, 1, steps, 1)
            + conv2d_macs(c, c, 1, 1, steps, 1)
            + conv2d_macs(c, c, 5, 1, steps, 1);
        let lstm = lstm_macs(steps, 3 * c, h);
        let fc = linear_macs(1, h, 3);
        b1a + b1b + b1c + b2a + b2b + b2c + b3a + b3b + b3c + inception + lstm + fc
    }

    /// Analytic OPs (2 per MAC).
    pub fn ops(&self) -> u64 {
        macs_to_ops(self.macs())
    }

    /// Instantiates the network with deterministic weights.
    ///
    /// Use only with small specs; see [`CnnSpec::build`](super::CnnSpec::build).
    ///
    /// # Panics
    ///
    /// Panics if `features != 40` or the window is too short for the
    /// trunk's six temporal convolutions.
    pub fn build(self, seed: u64) -> DeepLob {
        assert_eq!(
            self.features, 40,
            "DeepLOB's level-folding trunk requires 40 features"
        );
        assert!(
            self.window > TRUNK_SHRINK,
            "window {} too short: trunk consumes {TRUNK_SHRINK} ticks",
            self.window
        );
        let c = self.channels;
        let conv = |in_c, out_c, kh, kw, sw, pad, s| {
            Conv2d::new(in_c, out_c, (kh, kw), (1, sw), pad, seed.wrapping_add(s))
        };
        DeepLob {
            b1a: conv(1, c, 1, 2, 2, (0, 0), 0),
            b1b: conv(c, c, KERNEL_T, 1, 1, (0, 0), 1),
            b1c: conv(c, c, KERNEL_T, 1, 1, (0, 0), 2),
            b2a: conv(c, c, 1, 2, 2, (0, 0), 3),
            b2b: conv(c, c, KERNEL_T, 1, 1, (0, 0), 4),
            b2c: conv(c, c, KERNEL_T, 1, 1, (0, 0), 5),
            b3a: conv(c, c, 1, 10, 1, (0, 0), 6),
            b3b: conv(c, c, KERNEL_T, 1, 1, (0, 0), 7),
            b3c: conv(c, c, KERNEL_T, 1, 1, (0, 0), 8),
            inc1: conv(c, c, 1, 1, 1, (0, 0), 9),
            inc2a: conv(c, c, 1, 1, 1, (0, 0), 10),
            inc2b: conv(c, c, 3, 1, 1, (1, 0), 11),
            inc3a: conv(c, c, 1, 1, 1, (0, 0), 12),
            inc3b: conv(c, c, 5, 1, 1, (2, 0), 13),
            lstm: Lstm::new(3 * c, self.lstm_hidden, seed.wrapping_add(14)),
            fc: Linear::new(self.lstm_hidden, 3, seed.wrapping_add(15)),
            spec: self,
        }
    }
}

/// An instantiated DeepLOB network.
#[derive(Debug, Clone)]
pub struct DeepLob {
    spec: DeepLobSpec,
    b1a: Conv2d,
    b1b: Conv2d,
    b1c: Conv2d,
    b2a: Conv2d,
    b2b: Conv2d,
    b2c: Conv2d,
    b3a: Conv2d,
    b3b: Conv2d,
    b3c: Conv2d,
    inc1: Conv2d,
    inc2a: Conv2d,
    inc2b: Conv2d,
    inc3a: Conv2d,
    inc3b: Conv2d,
    lstm: Lstm,
    fc: Linear,
}

impl DeepLob {
    /// The spec this instance was built from.
    pub fn spec(&self) -> DeepLobSpec {
        self.spec
    }

    fn conv_act_reference(conv: &Conv2d, x: &Tensor) -> Tensor {
        let mut y = conv.forward_reference(x);
        leaky_relu(&mut y, LEAK);
        y
    }

    fn conv_act_scratch(conv: &Conv2d, x: &Tensor, pad: &mut ScratchPad) -> Tensor {
        let mut y = conv.forward_scratch(x, pad);
        leaky_relu(&mut y, LEAK);
        y
    }

    /// The naive reference forward pass, built entirely from the layers'
    /// `forward_reference` paths (kept for equivalence tests and the
    /// benchmark baseline). Bit-identical to [`Model::forward`].
    pub fn forward_reference(&self, input: &Tensor) -> Prediction {
        let (t, f) = (self.spec.window, self.spec.features);
        assert_eq!(input.shape(), [t, f], "input must be [window, features]");
        let x = input.clone().reshape(&[1, t, f]);
        let x = Self::conv_act_reference(&self.b1a, &x);
        let x = Self::conv_act_reference(&self.b1b, &x);
        let x = Self::conv_act_reference(&self.b1c, &x);
        let x = Self::conv_act_reference(&self.b2a, &x);
        let x = Self::conv_act_reference(&self.b2b, &x);
        let x = Self::conv_act_reference(&self.b2c, &x);
        let x = Self::conv_act_reference(&self.b3a, &x);
        let x = Self::conv_act_reference(&self.b3b, &x);
        let x = Self::conv_act_reference(&self.b3c, &x);
        // Inception over [C, steps, 1].
        let br1 = Self::conv_act_reference(&self.inc1, &x);
        let br2 = Self::conv_act_reference(&self.inc2b, &Self::conv_act_reference(&self.inc2a, &x));
        let br3 = Self::conv_act_reference(&self.inc3b, &Self::conv_act_reference(&self.inc3a, &x));
        let c = self.spec.channels;
        let steps = self.spec.lstm_steps();
        // Concatenate channels and flip to sequence-major [steps, 3C].
        let mut seq = Tensor::zeros(&[steps, 3 * c]);
        for s in 0..steps {
            for ch in 0..c {
                seq.set(&[s, ch], br1.at(&[ch, s, 0]));
                seq.set(&[s, c + ch], br2.at(&[ch, s, 0]));
                seq.set(&[s, 2 * c + ch], br3.at(&[ch, s, 0]));
            }
        }
        let all = self.lstm.forward_reference(&seq);
        let last = all.shape()[0] - 1;
        let hidden = Tensor::from_vec(all.row(last).to_vec(), &[self.lstm.hidden_dim()]);
        let mut logits = self.fc.forward_reference(&hidden);
        softmax_last_dim(&mut logits);
        let out = logits.data();
        Prediction::new([out[0], out[1], out[2]])
    }
}

impl Model for DeepLob {
    fn kind(&self) -> ModelKind {
        ModelKind::DeepLob
    }

    fn window(&self) -> usize {
        self.spec.window
    }

    fn features(&self) -> usize {
        self.spec.features
    }

    fn forward_scratch(&self, input: &Tensor, pad: &mut ScratchPad) -> Prediction {
        let (t, f) = (self.spec.window, self.spec.features);
        assert_eq!(input.shape(), [t, f], "input must be [window, features]");
        let mut x = pad.take_tensor(&[1, t, f]);
        x.data_mut().copy_from_slice(input.data());
        for conv in [
            &self.b1a, &self.b1b, &self.b1c, &self.b2a, &self.b2b, &self.b2c, &self.b3a, &self.b3b,
            &self.b3c,
        ] {
            let y = Self::conv_act_scratch(conv, &x, pad);
            pad.give_tensor(x);
            x = y;
        }
        // Inception over [C, steps, 1].
        let br1 = Self::conv_act_scratch(&self.inc1, &x, pad);
        let mid2 = Self::conv_act_scratch(&self.inc2a, &x, pad);
        let br2 = Self::conv_act_scratch(&self.inc2b, &mid2, pad);
        pad.give_tensor(mid2);
        let mid3 = Self::conv_act_scratch(&self.inc3a, &x, pad);
        let br3 = Self::conv_act_scratch(&self.inc3b, &mid3, pad);
        pad.give_tensor(mid3);
        pad.give_tensor(x);
        let c = self.spec.channels;
        let steps = self.spec.lstm_steps();
        // Concatenate channels and flip to sequence-major [steps, 3C].
        // Branch layout is [C, steps, 1] row-major, so channel `ch` at
        // step `s` lives at flat index `ch * steps + s`.
        let mut seq = pad.take_tensor(&[steps, 3 * c]);
        {
            let seq_data = seq.data_mut();
            let (d1, d2, d3) = (br1.data(), br2.data(), br3.data());
            for s in 0..steps {
                let row = &mut seq_data[s * 3 * c..(s + 1) * 3 * c];
                for ch in 0..c {
                    row[ch] = d1[ch * steps + s];
                    row[c + ch] = d2[ch * steps + s];
                    row[2 * c + ch] = d3[ch * steps + s];
                }
            }
        }
        pad.give_tensor(br1);
        pad.give_tensor(br2);
        pad.give_tensor(br3);
        let hidden = self.lstm.last_hidden_scratch(&seq, pad);
        pad.give_tensor(seq);
        let mut logits = self.fc.forward_scratch(&hidden, pad);
        pad.give_tensor(hidden);
        softmax_last_dim(&mut logits);
        let out = logits.data();
        let p = Prediction::new([out[0], out[1], out[2]]);
        pad.give_tensor(logits);
        p
    }

    /// Panel order: the nine trunk convolutions, the five inception
    /// convolutions, `lstm.wx`, `lstm.wh`, `fc`.
    fn pack_weights(&self) -> PackedWeights {
        let mut pw = PackedWeights::empty(self.kind());
        for conv in [
            &self.b1a,
            &self.b1b,
            &self.b1c,
            &self.b2a,
            &self.b2b,
            &self.b2c,
            &self.b3a,
            &self.b3b,
            &self.b3c,
            &self.inc1,
            &self.inc2a,
            &self.inc2b,
            &self.inc3a,
            &self.inc3b,
        ] {
            pw.push(conv.pack());
        }
        pw.push(self.lstm.pack_wx());
        pw.push(self.lstm.pack_wh());
        pw.push(self.fc.pack());
        pw
    }

    fn forward_batch_scratch(
        &self,
        inputs: &[Tensor],
        packed: &PackedWeights,
        pad: &mut ScratchPad,
        out: &mut Vec<Prediction>,
    ) {
        if packed.is_empty() {
            return self.forward_batch_looped(inputs, pad, out);
        }
        out.clear();
        let batch = inputs.len();
        if batch == 0 {
            return;
        }
        let (t, f) = (self.spec.window, self.spec.features);
        let c = self.spec.channels;
        let threads = packed.threads();
        // Every buffer below is fully overwritten before it is read, so
        // all of them skip the pool's zero fill.
        let mut cur = pad.take_dirty(batch * t * f);
        for (s, input) in inputs.iter().enumerate() {
            assert_eq!(input.shape(), [t, f], "input must be [window, features]");
            cur[s * t * f..(s + 1) * t * f].copy_from_slice(input.data());
        }
        // Trunk: nine convolutions over the shrinking [h, w] map.
        let (mut h, mut w) = (t, f);
        for (idx, conv) in [
            &self.b1a, &self.b1b, &self.b1c, &self.b2a, &self.b2b, &self.b2c, &self.b3a, &self.b3b,
            &self.b3c,
        ]
        .into_iter()
        .enumerate()
        {
            let (oh, ow) = conv.output_hw(h, w);
            let mut nxt = pad.take_dirty(batch * c * oh * ow);
            conv.forward_batch_packed(&cur, batch, h, w, packed.panel(idx), threads, pad, &mut nxt);
            pad.give(cur);
            leaky_relu_slice(&mut nxt, LEAK);
            cur = nxt;
            (h, w) = (oh, ow);
        }
        // Inception over [C, steps, 1]; same-padded branches keep shape.
        let steps = self.spec.lstm_steps();
        debug_assert_eq!((h, w), (steps, 1));
        let act_len = batch * c * steps;
        let inc = |conv: &Conv2d, idx: usize, x: &[f32], y: &mut [f32], pad: &mut ScratchPad| {
            conv.forward_batch_packed(x, batch, steps, 1, packed.panel(idx), threads, pad, y);
            leaky_relu_slice(y, LEAK);
        };
        let mut br1 = pad.take_dirty(act_len);
        inc(&self.inc1, 9, &cur, &mut br1, pad);
        let mut mid = pad.take_dirty(act_len);
        inc(&self.inc2a, 10, &cur, &mut mid, pad);
        let mut br2 = pad.take_dirty(act_len);
        inc(&self.inc2b, 11, &mid, &mut br2, pad);
        inc(&self.inc3a, 12, &cur, &mut mid, pad);
        let mut br3 = pad.take_dirty(act_len);
        inc(&self.inc3b, 13, &mid, &mut br3, pad);
        pad.give(mid);
        pad.give(cur);
        // Concatenate channels and flip to sequence-major [steps, 3C]
        // per sample, exactly as the single-sample path does.
        let mut seq = pad.take_dirty(batch * steps * 3 * c);
        for s in 0..batch {
            let (d1, d2, d3) = (
                &br1[s * c * steps..(s + 1) * c * steps],
                &br2[s * c * steps..(s + 1) * c * steps],
                &br3[s * c * steps..(s + 1) * c * steps],
            );
            let sample = &mut seq[s * steps * 3 * c..(s + 1) * steps * 3 * c];
            for st in 0..steps {
                let row = &mut sample[st * 3 * c..(st + 1) * 3 * c];
                for ch in 0..c {
                    row[ch] = d1[ch * steps + st];
                    row[c + ch] = d2[ch * steps + st];
                    row[2 * c + ch] = d3[ch * steps + st];
                }
            }
        }
        pad.give(br1);
        pad.give(br2);
        pad.give(br3);
        let h_dim = self.lstm.hidden_dim();
        let mut hidden = pad.take_dirty(batch * h_dim);
        self.lstm.last_hidden_batch_packed(
            &seq,
            batch,
            steps,
            packed.panel(14),
            packed.panel(15),
            pad,
            &mut hidden,
        );
        pad.give(seq);
        let mut logits = pad.take_dirty(batch * 3);
        self.fc
            .forward_batch_packed(&hidden, batch, packed.panel(16), &mut logits);
        pad.give(hidden);
        softmax_rows(&mut logits, batch, 3);
        for row in logits.chunks_exact(3) {
            out.push(Prediction::new([row[0], row[1], row[2]]));
        }
        pad.give(logits);
    }

    fn total_macs(&self) -> u64 {
        self.spec.macs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spec_hits_table2() {
        let ops = DeepLobSpec::paper().ops() as f64;
        assert!(
            (ops - 515.4e9).abs() / 515.4e9 < 0.001,
            "paper DeepLOB ops = {ops:.4e}"
        );
    }

    #[test]
    fn forward_produces_distribution() {
        let model = DeepLobSpec::tiny().build(1);
        let x = Tensor::random(&[24, 40], 1.0, 2);
        let p = model.forward(&x);
        assert!((p.probs.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn spec_macs_consistent_with_layer_counts() {
        let spec = DeepLobSpec::tiny();
        let m = spec.build(0);
        let t = spec.window;
        let layered = m.b1a.macs(t, 40)
            + m.b1b.macs(t, 20)
            + m.b1c.macs(t - 3, 20)
            + m.b2a.macs(t - 6, 20)
            + m.b2b.macs(t - 6, 10)
            + m.b2c.macs(t - 9, 10)
            + m.b3a.macs(t - 12, 10)
            + m.b3b.macs(t - 12, 1)
            + m.b3c.macs(t - 15, 1)
            + m.inc1.macs(t - 18, 1)
            + m.inc2a.macs(t - 18, 1)
            + m.inc2b.macs(t - 18, 1)
            + m.inc3a.macs(t - 18, 1)
            + m.inc3b.macs(t - 18, 1)
            + m.lstm.macs(spec.lstm_steps() as u64)
            + m.fc.macs(1);
        assert_eq!(spec.macs(), layered);
    }

    #[test]
    fn lstm_steps_geometry() {
        assert_eq!(DeepLobSpec::paper().lstm_steps(), 82);
        assert_eq!(DeepLobSpec::tiny().lstm_steps(), 6);
    }

    #[test]
    fn sensitive_to_recent_ticks() {
        // Perturbing the last tick of the window changes the prediction —
        // the LSTM must propagate late information.
        let model = DeepLobSpec::tiny().build(5);
        let base = Tensor::random(&[24, 40], 1.0, 9);
        let mut bumped = base.clone();
        for fcol in 0..40 {
            bumped.set(&[23, fcol], base.at(&[23, fcol]) + 3.0);
        }
        assert_ne!(model.forward(&base).probs, model.forward(&bumped).probs);
    }

    #[test]
    #[should_panic(expected = "40 features")]
    fn wrong_feature_count_panics() {
        let spec = DeepLobSpec {
            features: 20,
            ..DeepLobSpec::tiny()
        };
        let _ = spec.build(0);
    }
}
