//! The three benchmark networks of Table II.
//!
//! Each model comes as a *spec* (dimensions only — computes the analytic
//! op count without allocating weights, so paper-scale networks can be
//! priced) and an *instantiated network* built from a spec (owns weights,
//! runs `forward`). The `paper()` specs are dimensioned so their analytic
//! op counts reproduce Table II within 0.1%; the `tiny()` specs run
//! functionally in microseconds and share the exact same code path.

mod deeplob;
mod quantized;
mod translob;
mod vanilla_cnn;

pub use deeplob::{DeepLob, DeepLobSpec};
pub use quantized::{
    quantization_report, weight_round_trip_error, QuantizationReport, QuantizedCnn,
};
pub use translob::{TransLob, TransLobSpec};
pub use vanilla_cnn::{CnnSpec, VanillaCnn};

use crate::model::ModelKind;

/// The analytic op count of a kind's paper-scale spec.
pub fn paper_spec_ops(kind: ModelKind) -> u64 {
    match kind {
        ModelKind::VanillaCnn => CnnSpec::paper().ops(),
        ModelKind::TransLob => TransLobSpec::paper().ops(),
        ModelKind::DeepLob => DeepLobSpec::paper().ops(),
    }
}

/// Builds a tiny (runnable) instance of `kind` with deterministic weights.
pub fn build_tiny(kind: ModelKind, seed: u64) -> Box<dyn crate::model::Model> {
    match kind {
        ModelKind::VanillaCnn => Box::new(CnnSpec::tiny().build(seed)),
        ModelKind::TransLob => Box::new(TransLobSpec::tiny().build(seed)),
        ModelKind::DeepLob => Box::new(DeepLobSpec::tiny().build(seed)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The central Table II reproduction check: each paper spec's analytic
    /// op count matches the paper within 0.1%.
    #[test]
    fn paper_specs_match_table2() {
        for kind in ModelKind::ALL {
            let computed = paper_spec_ops(kind) as f64;
            let target = kind.table2_ops() as f64;
            let err = (computed - target).abs() / target;
            assert!(
                err < 0.001,
                "{kind}: computed {computed:.3e} vs Table II {target:.3e} (err {:.4}%)",
                err * 100.0
            );
        }
    }

    /// Op counts are ordered as in the paper: CNN < TransLOB < DeepLOB.
    #[test]
    fn complexity_ordering() {
        let cnn = paper_spec_ops(ModelKind::VanillaCnn);
        let translob = paper_spec_ops(ModelKind::TransLob);
        let deeplob = paper_spec_ops(ModelKind::DeepLob);
        assert!(cnn < translob && translob < deeplob);
    }

    #[test]
    fn tiny_models_run() {
        for kind in ModelKind::ALL {
            let model = build_tiny(kind, 42);
            let input = crate::tensor::Tensor::random(&[model.window(), model.features()], 1.0, 1);
            let pred = model.forward(&input);
            let sum: f32 = pred.probs.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "{kind}: probs {:?}", pred.probs);
            assert_eq!(model.kind(), kind);
            assert!(model.total_ops() > 0);
        }
    }
}
