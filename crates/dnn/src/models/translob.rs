//! The TransLOB benchmark (CNN front-end + transformer encoder).
//!
//! Five temporal convolutions lift the `[T, 40]` feature map to `C`
//! channels, a dense projection maps into the `d_model` token space,
//! sinusoidal positional encodings are added, and a stack of pre-norm
//! transformer layers (self-attention + feed-forward, both residual)
//! precedes mean pooling and the three-way softmax head.

use crate::batch::PackedWeights;
use crate::model::{Model, ModelKind, Prediction};
use crate::ops::activation::{relu, relu_slice, softmax_last_dim, softmax_rows};
use crate::ops::count::{attention_macs, conv2d_macs, ffn_macs, linear_macs, macs_to_ops};
use crate::ops::{Conv2d, LayerNorm, Linear, MultiHeadAttention};
use crate::scratch::ScratchPad;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Dimensions of a TransLOB instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransLobSpec {
    /// Tick-window length `T`.
    pub window: usize,
    /// Features per tick.
    pub features: usize,
    /// Channel width of the five-layer convolutional front-end.
    pub conv_channels: usize,
    /// Transformer model width.
    pub d_model: usize,
    /// Attention heads (must divide `d_model`).
    pub heads: usize,
    /// Number of transformer layers.
    pub layers: usize,
}

/// Temporal kernel size of the convolution stack ("same" padded).
const CONV_K: usize = 3;
/// Number of convolution layers in the front-end.
const CONV_LAYERS: usize = 5;
/// Feed-forward expansion factor.
const FFN_MULT: usize = 4;

impl TransLobSpec {
    /// The paper-scale spec: [`Self::ops`] reproduces Table II's 203.9 G
    /// OPs within 0.1%.
    pub fn paper() -> Self {
        TransLobSpec {
            window: 100,
            features: 40,
            conv_channels: 512,
            d_model: 6_488,
            heads: 8,
            layers: 2,
        }
    }

    /// A tiny runnable spec.
    pub fn tiny() -> Self {
        TransLobSpec {
            window: 16,
            features: 40,
            conv_channels: 8,
            d_model: 16,
            heads: 2,
            layers: 2,
        }
    }

    /// Analytic MACs of one forward pass.
    pub fn macs(&self) -> u64 {
        let t = self.window as u64;
        let f = self.features as u64;
        let c = self.conv_channels as u64;
        let d = self.d_model as u64;
        let conv1 = conv2d_macs(c, f, CONV_K as u64, 1, t, 1);
        let conv_rest = (CONV_LAYERS as u64 - 1) * conv2d_macs(c, c, CONV_K as u64, 1, t, 1);
        let proj = linear_macs(t, c, d);
        let per_layer = attention_macs(t, d) + ffn_macs(t, d, FFN_MULT as u64 * d);
        let head = linear_macs(1, d, 3);
        conv1 + conv_rest + proj + self.layers as u64 * per_layer + head
    }

    /// Analytic OPs (2 per MAC).
    pub fn ops(&self) -> u64 {
        macs_to_ops(self.macs())
    }

    /// Instantiates the network with deterministic weights.
    ///
    /// Use only with small specs; see [`CnnSpec::build`](super::CnnSpec::build).
    pub fn build(self, seed: u64) -> TransLob {
        let mut convs = Vec::with_capacity(CONV_LAYERS);
        for i in 0..CONV_LAYERS {
            let in_c = if i == 0 {
                self.features
            } else {
                self.conv_channels
            };
            convs.push(Conv2d::new(
                in_c,
                self.conv_channels,
                (CONV_K, 1),
                (1, 1),
                (1, 0),
                seed.wrapping_add(i as u64),
            ));
        }
        let mut blocks = Vec::with_capacity(self.layers);
        for l in 0..self.layers {
            let base = seed.wrapping_add(100 + 10 * l as u64);
            blocks.push(TransformerBlock {
                ln1: LayerNorm::new(self.d_model),
                attn: MultiHeadAttention::new(self.d_model, self.heads, base),
                ln2: LayerNorm::new(self.d_model),
                ffn1: Linear::new(self.d_model, FFN_MULT * self.d_model, base + 4),
                ffn2: Linear::new(FFN_MULT * self.d_model, self.d_model, base + 5),
            });
        }
        TransLob {
            proj: Linear::new(self.conv_channels, self.d_model, seed.wrapping_add(50)),
            head: Linear::new(self.d_model, 3, seed.wrapping_add(51)),
            pos: positional_encoding(self.window, self.d_model),
            convs,
            blocks,
            spec: self,
        }
    }
}

/// One pre-norm transformer layer.
#[derive(Debug, Clone)]
struct TransformerBlock {
    ln1: LayerNorm,
    attn: MultiHeadAttention,
    ln2: LayerNorm,
    ffn1: Linear,
    ffn2: Linear,
}

impl TransformerBlock {
    /// The naive reference path (clones for the residual; naive sublayers).
    fn forward_reference(&self, x: &Tensor) -> Tensor {
        // x = x + attn(ln1(x))
        let a = self.attn.forward_reference(&self.ln1.forward_reference(x));
        let mut x1 = x.clone();
        for (v, add) in x1.data_mut().iter_mut().zip(a.data()) {
            *v += add;
        }
        // x = x + ffn(ln2(x))
        let mut h = self
            .ffn1
            .forward_reference(&self.ln2.forward_reference(&x1));
        relu(&mut h);
        let f = self.ffn2.forward_reference(&h);
        for (v, add) in x1.data_mut().iter_mut().zip(f.data()) {
            *v += add;
        }
        x1
    }

    /// The fast path: takes `x` by value and accumulates both residuals
    /// into it, drawing every intermediate from `pad`. Bit-identical to
    /// [`Self::forward_reference`].
    fn forward_scratch(&self, mut x: Tensor, pad: &mut ScratchPad) -> Tensor {
        // x = x + attn(ln1(x))
        let n1 = self.ln1.forward_scratch(&x, pad);
        let a = self.attn.forward_scratch(&n1, pad);
        pad.give_tensor(n1);
        for (v, add) in x.data_mut().iter_mut().zip(a.data()) {
            *v += add;
        }
        pad.give_tensor(a);
        // x = x + ffn(ln2(x))
        let n2 = self.ln2.forward_scratch(&x, pad);
        let mut h = self.ffn1.forward_scratch(&n2, pad);
        pad.give_tensor(n2);
        relu(&mut h);
        let f = self.ffn2.forward_scratch(&h, pad);
        pad.give_tensor(h);
        for (v, add) in x.data_mut().iter_mut().zip(f.data()) {
            *v += add;
        }
        pad.give_tensor(f);
        x
    }
}

/// Standard sinusoidal positional encoding, `[T, D]`.
fn positional_encoding(t: usize, d: usize) -> Tensor {
    let mut pe = Tensor::zeros(&[t, d]);
    for pos in 0..t {
        for i in 0..d {
            let angle = pos as f64 / 10_000f64.powf((2 * (i / 2)) as f64 / d as f64);
            let v = if i % 2 == 0 { angle.sin() } else { angle.cos() };
            pe.set(&[pos, i], v as f32);
        }
    }
    pe
}

/// An instantiated TransLOB network.
#[derive(Debug, Clone)]
pub struct TransLob {
    spec: TransLobSpec,
    convs: Vec<Conv2d>,
    proj: Linear,
    pos: Tensor,
    blocks: Vec<TransformerBlock>,
    head: Linear,
}

impl TransLob {
    /// The spec this instance was built from.
    pub fn spec(&self) -> TransLobSpec {
        self.spec
    }

    /// The naive reference forward pass, built entirely from the layers'
    /// `forward_reference` paths (kept for equivalence tests and the
    /// benchmark baseline). Bit-identical to [`Model::forward`].
    pub fn forward_reference(&self, input: &Tensor) -> Prediction {
        let (t, f) = (self.spec.window, self.spec.features);
        assert_eq!(input.shape(), [t, f], "input must be [window, features]");
        // To channels-first [F, T, 1] for the convolution stack.
        let mut x = Tensor::zeros(&[f, t, 1]);
        for ti in 0..t {
            for fi in 0..f {
                x.set(&[fi, ti, 0], input.at(&[ti, fi]));
            }
        }
        for conv in &self.convs {
            x = conv.forward_reference(&x);
            relu(&mut x);
        }
        // Back to sequence-major [T, C].
        let c = self.spec.conv_channels;
        let mut seq = Tensor::zeros(&[t, c]);
        for ti in 0..t {
            for ci in 0..c {
                seq.set(&[ti, ci], x.at(&[ci, ti, 0]));
            }
        }
        let mut tokens = self.proj.forward_reference(&seq);
        for (v, p) in tokens.data_mut().iter_mut().zip(self.pos.data()) {
            *v += p;
        }
        for block in &self.blocks {
            tokens = block.forward_reference(&tokens);
        }
        // Mean pool over time.
        let d = self.spec.d_model;
        let mut pooled = vec![0.0f32; d];
        for ti in 0..t {
            for (acc, v) in pooled.iter_mut().zip(tokens.row(ti)) {
                *acc += v / t as f32;
            }
        }
        let mut logits = self.head.forward_reference(&Tensor::from_vec(pooled, &[d]));
        softmax_last_dim(&mut logits);
        let out = logits.data();
        Prediction::new([out[0], out[1], out[2]])
    }
}

impl Model for TransLob {
    fn kind(&self) -> ModelKind {
        ModelKind::TransLob
    }

    fn window(&self) -> usize {
        self.spec.window
    }

    fn features(&self) -> usize {
        self.spec.features
    }

    fn forward_scratch(&self, input: &Tensor, pad: &mut ScratchPad) -> Prediction {
        let (t, f) = (self.spec.window, self.spec.features);
        assert_eq!(input.shape(), [t, f], "input must be [window, features]");
        // To channels-first [F, T, 1] for the convolution stack: the input
        // is [T, F] row-major, so feature `fi` at tick `ti` reads from flat
        // index `ti * f + fi` and lands at `fi * t + ti`.
        let mut x = pad.take_tensor(&[f, t, 1]);
        {
            let (xd, id) = (x.data_mut(), input.data());
            for ti in 0..t {
                for fi in 0..f {
                    xd[fi * t + ti] = id[ti * f + fi];
                }
            }
        }
        for conv in &self.convs {
            let mut y = conv.forward_scratch(&x, pad);
            relu(&mut y);
            pad.give_tensor(x);
            x = y;
        }
        // Back to sequence-major [T, C].
        let c = self.spec.conv_channels;
        let mut seq = pad.take_tensor(&[t, c]);
        {
            let (sd, xd) = (seq.data_mut(), x.data());
            for ti in 0..t {
                for ci in 0..c {
                    sd[ti * c + ci] = xd[ci * t + ti];
                }
            }
        }
        pad.give_tensor(x);
        let mut tokens = self.proj.forward_scratch(&seq, pad);
        pad.give_tensor(seq);
        for (v, p) in tokens.data_mut().iter_mut().zip(self.pos.data()) {
            *v += p;
        }
        for block in &self.blocks {
            tokens = block.forward_scratch(tokens, pad);
        }
        // Mean pool over time (take_tensor zero-fills, matching the
        // reference path's `vec![0.0; d]` accumulator).
        let d = self.spec.d_model;
        let mut pooled = pad.take_tensor(&[d]);
        for ti in 0..t {
            for (acc, v) in pooled.data_mut().iter_mut().zip(tokens.row(ti)) {
                *acc += v / t as f32;
            }
        }
        pad.give_tensor(tokens);
        let mut logits = self.head.forward_scratch(&pooled, pad);
        pad.give_tensor(pooled);
        softmax_last_dim(&mut logits);
        let out = logits.data();
        let p = Prediction::new([out[0], out[1], out[2]]);
        pad.give_tensor(logits);
        p
    }

    /// Panel order: the five front-end convolutions, `proj`, `head`.
    /// The transformer blocks run per sample on the existing scratch
    /// path (attention is token-coupled; batching them would only
    /// re-stage the same GEMV work).
    fn pack_weights(&self) -> PackedWeights {
        let mut pw = PackedWeights::empty(self.kind());
        for conv in &self.convs {
            pw.push(conv.pack());
        }
        pw.push(self.proj.pack());
        pw.push(self.head.pack());
        pw
    }

    fn forward_batch_scratch(
        &self,
        inputs: &[Tensor],
        packed: &PackedWeights,
        pad: &mut ScratchPad,
        out: &mut Vec<Prediction>,
    ) {
        if packed.is_empty() {
            return self.forward_batch_looped(inputs, pad, out);
        }
        out.clear();
        let batch = inputs.len();
        if batch == 0 {
            return;
        }
        let (t, f) = (self.spec.window, self.spec.features);
        let c = self.spec.conv_channels;
        let d = self.spec.d_model;
        let threads = packed.threads();
        // Stage every sample channels-first [F, T, 1] (fully overwritten,
        // so skip the zero fill), as the single-sample path does.
        let mut cur = pad.take_dirty(batch * f * t);
        for (s, input) in inputs.iter().enumerate() {
            assert_eq!(input.shape(), [t, f], "input must be [window, features]");
            let sample = &mut cur[s * f * t..(s + 1) * f * t];
            let id = input.data();
            for ti in 0..t {
                for fi in 0..f {
                    sample[fi * t + ti] = id[ti * f + fi];
                }
            }
        }
        // Same-padded convolution stack: shape stays [C, T, 1].
        for (idx, conv) in self.convs.iter().enumerate() {
            let mut nxt = pad.take_dirty(batch * c * t);
            conv.forward_batch_packed(&cur, batch, t, 1, packed.panel(idx), threads, pad, &mut nxt);
            relu_slice(&mut nxt);
            pad.give(cur);
            cur = nxt;
        }
        // Back to sequence-major [T, C] per sample.
        let mut seq = pad.take_dirty(batch * t * c);
        for s in 0..batch {
            let (sd, xd) = (
                &mut seq[s * t * c..(s + 1) * t * c],
                &cur[s * c * t..(s + 1) * c * t],
            );
            for ti in 0..t {
                for ci in 0..c {
                    sd[ti * c + ci] = xd[ci * t + ti];
                }
            }
        }
        pad.give(cur);
        // Project every token of every sample in one row-wise sweep.
        let mut tokens = pad.take_dirty(batch * t * d);
        self.proj
            .forward_batch_packed(&seq, batch * t, packed.panel(CONV_LAYERS), &mut tokens);
        pad.give(seq);
        // Transformer blocks are token-coupled: run them per sample on
        // the scratch path, pooling each sample's result as it finishes.
        // `take` (not `take_dirty`): the pooled accumulator must start
        // at zero, matching the single-sample path.
        let mut pooled = pad.take(batch * d);
        for s in 0..batch {
            let mut tok = pad.take_tensor(&[t, d]);
            tok.data_mut()
                .copy_from_slice(&tokens[s * t * d..(s + 1) * t * d]);
            for (v, p) in tok.data_mut().iter_mut().zip(self.pos.data()) {
                *v += p;
            }
            for block in &self.blocks {
                tok = block.forward_scratch(tok, pad);
            }
            let acc = &mut pooled[s * d..(s + 1) * d];
            for ti in 0..t {
                for (a, v) in acc.iter_mut().zip(tok.row(ti)) {
                    *a += v / t as f32;
                }
            }
            pad.give_tensor(tok);
        }
        pad.give(tokens);
        let mut logits = pad.take_dirty(batch * 3);
        self.head
            .forward_batch_packed(&pooled, batch, packed.panel(CONV_LAYERS + 1), &mut logits);
        pad.give(pooled);
        softmax_rows(&mut logits, batch, 3);
        for row in logits.chunks_exact(3) {
            out.push(Prediction::new([row[0], row[1], row[2]]));
        }
        pad.give(logits);
    }

    fn total_macs(&self) -> u64 {
        self.spec.macs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spec_hits_table2() {
        let ops = TransLobSpec::paper().ops() as f64;
        assert!(
            (ops - 203.9e9).abs() / 203.9e9 < 0.001,
            "paper TransLOB ops = {ops:.4e}"
        );
        // Heads must divide d_model or build() would panic later.
        assert_eq!(
            TransLobSpec::paper().d_model % TransLobSpec::paper().heads,
            0
        );
    }

    #[test]
    fn forward_produces_distribution() {
        let model = TransLobSpec::tiny().build(1);
        let x = Tensor::random(&[16, 40], 1.0, 2);
        let p = model.forward(&x);
        assert!((p.probs.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn positional_encoding_breaks_permutation_symmetry() {
        // Same token content in different positions must produce different
        // predictions thanks to the positional encoding.
        let model = TransLobSpec::tiny().build(3);
        let base = Tensor::random(&[16, 40], 1.0, 5);
        // Reverse the window.
        let mut rev = Tensor::zeros(&[16, 40]);
        for t in 0..16 {
            for f in 0..40 {
                rev.set(&[t, f], base.at(&[15 - t, f]));
            }
        }
        assert_ne!(model.forward(&base).probs, model.forward(&rev).probs);
    }

    #[test]
    fn spec_macs_consistent_with_layer_counts() {
        let spec = TransLobSpec::tiny();
        let model = spec.build(0);
        let t = spec.window;
        let mut layered: u64 = model.convs.iter().map(|c| c.macs(t, 1)).sum();
        layered += model.proj.macs(t as u64);
        for b in &model.blocks {
            layered += b.attn.macs(t as u64);
            layered += b.ffn1.macs(t as u64) + b.ffn2.macs(t as u64);
        }
        layered += model.head.macs(1);
        assert_eq!(spec.macs(), layered);
    }

    #[test]
    fn positional_encoding_values_bounded() {
        let pe = positional_encoding(10, 8);
        assert!(pe.data().iter().all(|v| v.abs() <= 1.0));
        // Row 0: sin(0)=0, cos(0)=1 alternating.
        assert_eq!(pe.at(&[0, 0]), 0.0);
        assert_eq!(pe.at(&[0, 1]), 1.0);
    }
}
