//! The "Vanilla CNN" benchmark (Tsantekidis et al. style).
//!
//! Three convolution layers over the `[T, 40]` LOB feature map — the first
//! spanning the full feature width, the next two temporal — followed by
//! two dense layers and a three-way softmax.

use crate::batch::PackedWeights;
use crate::model::{Model, ModelKind, Prediction};
use crate::ops::activation::{relu, relu_slice, softmax_last_dim, softmax_rows};
use crate::ops::count::{conv2d_macs, linear_macs, macs_to_ops};
use crate::ops::{Conv2d, Linear};
use crate::scratch::ScratchPad;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Dimensions of a Vanilla CNN instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CnnSpec {
    /// Tick-window length `T`.
    pub window: usize,
    /// Features per tick (40 in the paper's layout).
    pub features: usize,
    /// Channel width shared by the three convolution layers.
    pub channels: usize,
    /// Width of the first dense layer.
    pub hidden: usize,
}

/// Temporal kernel height of every convolution layer.
const KERNEL_T: usize = 4;

impl CnnSpec {
    /// The paper-scale spec: its [`Self::ops`] reproduces Table II's
    /// 93.0 G OPs within 0.1%.
    pub fn paper() -> Self {
        CnnSpec {
            window: 100,
            features: 40,
            channels: 7_885,
            hidden: 512,
        }
    }

    /// A tiny runnable spec for tests, examples, and the CGRA simulator.
    pub fn tiny() -> Self {
        CnnSpec {
            window: 20,
            features: 40,
            channels: 8,
            hidden: 16,
        }
    }

    /// Temporal length after the three valid convolutions.
    fn t_out(&self, layer: usize) -> usize {
        self.window - layer * (KERNEL_T - 1)
    }

    /// Analytic MACs of one forward pass.
    pub fn macs(&self) -> u64 {
        let c = self.channels as u64;
        let conv1 = conv2d_macs(
            c,
            1,
            KERNEL_T as u64,
            self.features as u64,
            self.t_out(1) as u64,
            1,
        );
        let conv2 = conv2d_macs(c, c, KERNEL_T as u64, 1, self.t_out(2) as u64, 1);
        let conv3 = conv2d_macs(c, c, KERNEL_T as u64, 1, self.t_out(3) as u64, 1);
        let fc1 = linear_macs(1, c * self.t_out(3) as u64, self.hidden as u64);
        let fc2 = linear_macs(1, self.hidden as u64, 3);
        conv1 + conv2 + conv3 + fc1 + fc2
    }

    /// Analytic OPs (2 per MAC).
    pub fn ops(&self) -> u64 {
        macs_to_ops(self.macs())
    }

    /// Instantiates the network with deterministic weights.
    ///
    /// Use only with small specs: a paper-scale build would allocate
    /// gigabytes of weights.
    ///
    /// # Panics
    ///
    /// Panics if the window is too short for the three convolutions.
    pub fn build(self, seed: u64) -> VanillaCnn {
        assert!(
            self.window > 3 * (KERNEL_T - 1),
            "window {} too short for three k={KERNEL_T} convolutions",
            self.window
        );
        VanillaCnn {
            conv1: Conv2d::new(
                1,
                self.channels,
                (KERNEL_T, self.features),
                (1, 1),
                (0, 0),
                seed,
            ),
            conv2: Conv2d::new(
                self.channels,
                self.channels,
                (KERNEL_T, 1),
                (1, 1),
                (0, 0),
                seed.wrapping_add(1),
            ),
            conv3: Conv2d::new(
                self.channels,
                self.channels,
                (KERNEL_T, 1),
                (1, 1),
                (0, 0),
                seed.wrapping_add(2),
            ),
            fc1: Linear::new(
                self.channels * self.t_out(3),
                self.hidden,
                seed.wrapping_add(3),
            ),
            fc2: Linear::new(self.hidden, 3, seed.wrapping_add(4)),
            spec: self,
        }
    }
}

/// An instantiated Vanilla CNN.
#[derive(Debug, Clone)]
pub struct VanillaCnn {
    spec: CnnSpec,
    conv1: Conv2d,
    conv2: Conv2d,
    conv3: Conv2d,
    fc1: Linear,
    fc2: Linear,
}

impl VanillaCnn {
    /// The spec this instance was built from.
    pub fn spec(&self) -> CnnSpec {
        self.spec
    }

    /// First convolution layer (read access for quantization).
    pub fn conv1_ref(&self) -> &Conv2d {
        &self.conv1
    }

    /// Second convolution layer.
    pub fn conv2_ref(&self) -> &Conv2d {
        &self.conv2
    }

    /// Third convolution layer.
    pub fn conv3_ref(&self) -> &Conv2d {
        &self.conv3
    }

    /// First dense layer.
    pub fn fc1_ref(&self) -> &Linear {
        &self.fc1
    }

    /// Output dense layer.
    pub fn fc2_ref(&self) -> &Linear {
        &self.fc2
    }

    /// The naive reference forward pass, built entirely from the layers'
    /// `forward_reference` paths (kept for equivalence tests and the
    /// benchmark baseline). Bit-identical to [`Model::forward`].
    pub fn forward_reference(&self, input: &Tensor) -> Prediction {
        assert_eq!(
            input.shape(),
            [self.spec.window, self.spec.features],
            "input must be [window, features]"
        );
        let x = input
            .clone()
            .reshape(&[1, self.spec.window, self.spec.features]);
        let mut x = self.conv1.forward_reference(&x);
        relu(&mut x);
        let mut x = self.conv2.forward_reference(&x);
        relu(&mut x);
        let mut x = self.conv3.forward_reference(&x);
        relu(&mut x);
        let flat_len = x.len();
        let flat = x.reshape(&[flat_len]);
        let mut h = self.fc1.forward_reference(&flat);
        relu(&mut h);
        let mut logits = self.fc2.forward_reference(&h);
        softmax_last_dim(&mut logits);
        let d = logits.data();
        Prediction::new([d[0], d[1], d[2]])
    }
}

impl Model for VanillaCnn {
    fn kind(&self) -> ModelKind {
        ModelKind::VanillaCnn
    }

    fn window(&self) -> usize {
        self.spec.window
    }

    fn features(&self) -> usize {
        self.spec.features
    }

    fn forward_scratch(&self, input: &Tensor, pad: &mut ScratchPad) -> Prediction {
        assert_eq!(
            input.shape(),
            [self.spec.window, self.spec.features],
            "input must be [window, features]"
        );
        let mut x0 = pad.take_tensor(&[1, self.spec.window, self.spec.features]);
        x0.data_mut().copy_from_slice(input.data());
        let mut x = self.conv1.forward_scratch(&x0, pad);
        pad.give_tensor(x0);
        relu(&mut x);
        let mut y = self.conv2.forward_scratch(&x, pad);
        pad.give_tensor(x);
        relu(&mut y);
        let mut z = self.conv3.forward_scratch(&y, pad);
        pad.give_tensor(y);
        relu(&mut z);
        let flat_len = z.len();
        let flat = z.reshape(&[flat_len]);
        let mut h = self.fc1.forward_scratch(&flat, pad);
        pad.give_tensor(flat);
        relu(&mut h);
        let mut logits = self.fc2.forward_scratch(&h, pad);
        pad.give_tensor(h);
        softmax_last_dim(&mut logits);
        let d = logits.data();
        let p = Prediction::new([d[0], d[1], d[2]]);
        pad.give_tensor(logits);
        p
    }

    /// Panel order: conv1, conv2, conv3, fc1, fc2.
    fn pack_weights(&self) -> PackedWeights {
        let mut pw = PackedWeights::empty(self.kind());
        pw.push(self.conv1.pack());
        pw.push(self.conv2.pack());
        pw.push(self.conv3.pack());
        pw.push(self.fc1.pack());
        pw.push(self.fc2.pack());
        pw
    }

    fn forward_batch_scratch(
        &self,
        inputs: &[Tensor],
        packed: &PackedWeights,
        pad: &mut ScratchPad,
        out: &mut Vec<Prediction>,
    ) {
        if packed.is_empty() {
            return self.forward_batch_looped(inputs, pad, out);
        }
        out.clear();
        let batch = inputs.len();
        if batch == 0 {
            return;
        }
        let (t, f) = (self.spec.window, self.spec.features);
        let c = self.spec.channels;
        let threads = packed.threads();
        // Every buffer below is fully overwritten before it is read, so
        // all of them skip the pool's zero fill.
        let mut x0 = pad.take_dirty(batch * t * f);
        for (s, input) in inputs.iter().enumerate() {
            assert_eq!(input.shape(), [t, f], "input must be [window, features]");
            x0[s * t * f..(s + 1) * t * f].copy_from_slice(input.data());
        }
        let (t1, t2, t3) = (self.spec.t_out(1), self.spec.t_out(2), self.spec.t_out(3));
        let mut a1 = pad.take_dirty(batch * c * t1);
        self.conv1
            .forward_batch_packed(&x0, batch, t, f, packed.panel(0), threads, pad, &mut a1);
        pad.give(x0);
        relu_slice(&mut a1);
        let mut a2 = pad.take_dirty(batch * c * t2);
        self.conv2
            .forward_batch_packed(&a1, batch, t1, 1, packed.panel(1), threads, pad, &mut a2);
        pad.give(a1);
        relu_slice(&mut a2);
        let mut a3 = pad.take_dirty(batch * c * t3);
        self.conv3
            .forward_batch_packed(&a2, batch, t2, 1, packed.panel(2), threads, pad, &mut a3);
        pad.give(a2);
        relu_slice(&mut a3);
        let mut h = pad.take_dirty(batch * self.spec.hidden);
        self.fc1
            .forward_batch_packed(&a3, batch, packed.panel(3), &mut h);
        pad.give(a3);
        relu_slice(&mut h);
        let mut logits = pad.take_dirty(batch * 3);
        self.fc2
            .forward_batch_packed(&h, batch, packed.panel(4), &mut logits);
        pad.give(h);
        softmax_rows(&mut logits, batch, 3);
        for row in logits.chunks_exact(3) {
            out.push(Prediction::new([row[0], row[1], row[2]]));
        }
        pad.give(logits);
    }

    fn total_macs(&self) -> u64 {
        self.spec.macs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spec_hits_table2() {
        let ops = CnnSpec::paper().ops() as f64;
        assert!(
            (ops - 93.0e9).abs() / 93.0e9 < 0.001,
            "paper CNN ops = {ops:.4e}"
        );
    }

    #[test]
    fn spec_macs_match_instance_layer_sums() {
        // The pure-arithmetic spec counter must agree with the counts the
        // instantiated layers report.
        let spec = CnnSpec::tiny();
        let model = spec.build(0);
        let t = spec.window;
        let f = spec.features;
        let layered = model.conv1.macs(t, f)
            + model.conv2.macs(t - 3, 1)
            + model.conv3.macs(t - 6, 1)
            + model.fc1.macs(1)
            + model.fc2.macs(1);
        assert_eq!(spec.macs(), layered);
    }

    #[test]
    fn forward_produces_distribution() {
        let model = CnnSpec::tiny().build(7);
        let x = Tensor::random(&[20, 40], 1.0, 3);
        let p = model.forward(&x);
        let sum: f32 = p.probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert!(p.probs.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn forward_is_deterministic() {
        let model = CnnSpec::tiny().build(7);
        let x = Tensor::random(&[20, 40], 1.0, 3);
        assert_eq!(model.forward(&x).probs, model.forward(&x).probs);
    }

    #[test]
    fn different_inputs_differ() {
        let model = CnnSpec::tiny().build(7);
        let a = model.forward(&Tensor::random(&[20, 40], 1.0, 3));
        let b = model.forward(&Tensor::random(&[20, 40], 1.0, 4));
        assert_ne!(a.probs, b.probs);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn too_short_window_panics() {
        let spec = CnnSpec {
            window: 8,
            ..CnnSpec::tiny()
        };
        let _ = spec.build(0);
    }
}
