//! Batched inference support: prepacked weight panels and the scoped
//! sample scatter behind `Model::forward_batch_scratch`.
//!
//! The accelerator keeps weights stationary and streams batched queries
//! past them (paper §III); the software path mirrors that with a
//! [`PackedWeights`] cache built once per model. Every GEMM-shaped
//! operand — convolution kernels, dense weights, the LSTM's `wx`/`wh`
//! stacks — is repacked into register-tile panels
//! ([`crate::kernels::pack_bt_panels`]) so steady-state batched
//! forwards never touch the row-major weight tensors. Packing is a pure
//! layout permutation: the packed kernels preserve each output
//! element's accumulation order, so batched predictions are
//! bit-identical to looped `forward_scratch` (pinned by the
//! `batch_equivalence` proptests).
//!
//! [`scatter_samples`] adds optional row-block thread parallelism for
//! large batches, reusing the back-test farm's scoped scatter-pool
//! pattern: contiguous sample chunks, scoped threads, disjoint output
//! slices. With one worker it degrades to an inline loop that spawns
//! nothing and allocates nothing — the steady-state configuration the
//! `zero_alloc` gate asserts.

use crate::kernels::pack_bt_panels;
use crate::model::ModelKind;

/// One GEMM operand repacked into register-tile panels.
#[derive(Debug, Clone)]
pub struct PackedPanels {
    data: Vec<f32>,
    m: usize,
    k: usize,
}

impl PackedPanels {
    /// Packs a row-major `[m, k]` operand (see
    /// [`crate::kernels::pack_bt_panels`] for the layout).
    pub fn pack(a: &[f32], m: usize, k: usize) -> Self {
        let mut data = Vec::new();
        pack_bt_panels(a, m, k, &mut data);
        PackedPanels { data, m, k }
    }

    /// The packed storage, `m * k` elements.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Row count of the packed operand.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Reduction width of the packed operand.
    pub fn k(&self) -> usize {
        self.k
    }
}

/// A model's full set of prepacked GEMM operands, plus the thread
/// budget its batched forwards may use.
///
/// Built once per model by `Model::pack_weights` and held in
/// `ModelRegistry` beside each tier's `ScratchPad`. The panel order is
/// model-private: each `forward_batch_scratch` override indexes the
/// panels it pushed in `pack_weights`. An *empty* pack is the explicit
/// "no packed path" marker — overrides fall back to the looped
/// reference semantics when they receive one.
#[derive(Debug, Clone)]
pub struct PackedWeights {
    kind: ModelKind,
    panels: Vec<PackedPanels>,
    threads: usize,
}

impl PackedWeights {
    /// An empty pack for `kind`: batched forwards receiving it run the
    /// looped fallback.
    pub fn empty(kind: ModelKind) -> Self {
        PackedWeights {
            kind,
            panels: Vec::new(),
            threads: 1,
        }
    }

    /// Which model family the panels belong to.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Appends a packed operand, returning its index.
    pub fn push(&mut self, panels: PackedPanels) -> usize {
        self.panels.push(panels);
        self.panels.len() - 1
    }

    /// The packed operand at `idx`.
    ///
    /// # Panics
    ///
    /// Panics when the pack does not hold `idx` — a pack built for a
    /// different model (or an empty pack reaching a packed code path).
    pub fn panel(&self, idx: usize) -> &PackedPanels {
        self.panels.get(idx).unwrap_or_else(|| {
            panic!(
                "packed weights for {} hold {} panels, layer {idx} requested",
                self.kind,
                self.panels.len()
            )
        })
    }

    /// Number of packed operands.
    pub fn len(&self) -> usize {
        self.panels.len()
    }

    /// True when no operands are packed (the looped-fallback marker).
    pub fn is_empty(&self) -> bool {
        self.panels.is_empty()
    }

    /// Worker threads batched forwards may scatter samples across
    /// (1 = inline serial, the zero-alloc steady state).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Sets the worker-thread budget. Zero is clamped to "auto": the
    /// machine's available parallelism, as the farm's pool resolves it.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
    }

    /// Builder form of [`Self::set_threads`].
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.set_threads(threads);
        self
    }
}

/// Runs `f(sample, a_slice, b_slice)` for every sample, handing each
/// call its disjoint `a_stride` / `b_stride` windows of the two work
/// buffers (pass an empty `b` with stride 0 when one buffer suffices).
///
/// With `threads <= 1` (or a batch of one) this is an inline loop —
/// no spawn, no allocation. Otherwise samples are split into contiguous
/// chunks scattered across scoped threads, the farm-pool pattern;
/// chunks own disjoint sub-slices, so outputs land exactly where the
/// serial loop would put them and every per-element accumulation chain
/// is untouched — parallelism only re-times the work.
pub(crate) fn scatter_samples<F>(
    threads: usize,
    batch: usize,
    a: &mut [f32],
    a_stride: usize,
    b: &mut [f32],
    b_stride: usize,
    f: F,
) where
    F: Fn(usize, &mut [f32], &mut [f32]) + Sync,
{
    debug_assert!(a.len() >= batch * a_stride, "scatter `a` buffer too short");
    debug_assert!(b.len() >= batch * b_stride, "scatter `b` buffer too short");
    let workers = threads.max(1).min(batch.max(1));
    if workers <= 1 {
        for s in 0..batch {
            f(
                s,
                &mut a[s * a_stride..(s + 1) * a_stride],
                &mut b[s * b_stride..(s + 1) * b_stride],
            );
        }
        return;
    }
    let base = batch / workers;
    let extra = batch % workers;
    std::thread::scope(|scope| {
        let f = &f;
        let mut a_rest: &mut [f32] = a;
        let mut b_rest: &mut [f32] = b;
        let mut start = 0usize;
        for widx in 0..workers {
            let len = base + usize::from(widx < extra);
            if len == 0 {
                break;
            }
            let (a_chunk, ar) = a_rest.split_at_mut(len * a_stride);
            a_rest = ar;
            let (b_chunk, br) = b_rest.split_at_mut(len * b_stride);
            b_rest = br;
            let s0 = start;
            scope.spawn(move || {
                for i in 0..len {
                    f(
                        s0 + i,
                        &mut a_chunk[i * a_stride..(i + 1) * a_stride],
                        &mut b_chunk[i * b_stride..(i + 1) * b_stride],
                    );
                }
            });
            start += len;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_panels_record_shape() {
        let a: Vec<f32> = (0..6 * 5).map(|i| i as f32).collect();
        let p = PackedPanels::pack(&a, 6, 5);
        assert_eq!(p.m(), 6);
        assert_eq!(p.k(), 5);
        assert_eq!(p.data().len(), 30);
        // Tail rows (4..6) stay at their row-major offsets.
        assert_eq!(&p.data()[4 * 5..], &a[4 * 5..]);
    }

    #[test]
    fn packed_weights_index_and_fallback_marker() {
        let mut pw = PackedWeights::empty(ModelKind::DeepLob);
        assert!(pw.is_empty());
        assert_eq!(pw.threads(), 1);
        let idx = pw.push(PackedPanels::pack(&[1.0, 2.0], 1, 2));
        assert_eq!(idx, 0);
        assert_eq!(pw.len(), 1);
        assert_eq!(pw.panel(0).m(), 1);
    }

    #[test]
    #[should_panic(expected = "panels")]
    fn missing_panel_panics_with_kind() {
        let pw = PackedWeights::empty(ModelKind::TransLob);
        let _ = pw.panel(3);
    }

    #[test]
    fn auto_threads_resolve_to_at_least_one() {
        let pw = PackedWeights::empty(ModelKind::VanillaCnn).with_threads(0);
        assert!(pw.threads() >= 1);
    }

    #[test]
    fn scatter_serial_and_parallel_fill_identical_slices() {
        let batch = 7usize;
        let (sa, sb) = (3usize, 2usize);
        let run = |threads: usize| {
            let mut a = vec![0.0f32; batch * sa];
            let mut b = vec![0.0f32; batch * sb];
            scatter_samples(threads, batch, &mut a, sa, &mut b, sb, |s, aw, bw| {
                for (i, v) in aw.iter_mut().enumerate() {
                    *v = (s * 10 + i) as f32;
                }
                for (i, v) in bw.iter_mut().enumerate() {
                    *v = -((s * 10 + i) as f32);
                }
            });
            (a, b)
        };
        let serial = run(1);
        for threads in [2, 3, 8, 16] {
            assert_eq!(run(threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn scatter_handles_empty_batch_and_empty_second_buffer() {
        scatter_samples(4, 0, &mut [], 3, &mut [], 0, |_, _, _| {
            panic!("no samples to visit")
        });
        let mut a = vec![0.0f32; 4];
        scatter_samples(2, 4, &mut a, 1, &mut [], 0, |s, aw, bw| {
            assert!(bw.is_empty());
            aw[0] = s as f32;
        });
        assert_eq!(a, vec![0.0, 1.0, 2.0, 3.0]);
    }
}
