//! The model abstraction shared by the pipeline, scheduler, and simulator.

use crate::batch::PackedWeights;
use crate::ops::count::macs_to_ops;
use crate::scratch::ScratchPad;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Which of the paper's three benchmark networks (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    /// Vanilla CNN (Tsantekidis et al. style), 93.0 G OPs.
    VanillaCnn,
    /// TransLOB (CNN + transformer, Wallbridge), 203.9 G OPs.
    TransLob,
    /// DeepLOB (CNN + LSTM, Zhang et al.), 515.4 G OPs.
    DeepLob,
}

impl ModelKind {
    /// All three benchmark kinds, in Table II order.
    pub const ALL: [ModelKind; 3] = [
        ModelKind::VanillaCnn,
        ModelKind::TransLob,
        ModelKind::DeepLob,
    ];

    /// The display name used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::VanillaCnn => "Vanilla CNN",
            ModelKind::TransLob => "TransLOB",
            ModelKind::DeepLob => "DeepLOB",
        }
    }

    /// Network family string from Table II.
    pub fn network_family(self) -> &'static str {
        match self {
            ModelKind::VanillaCnn => "CNN",
            ModelKind::TransLob => "CNN+Transformer",
            ModelKind::DeepLob => "CNN+LSTM",
        }
    }

    /// The paper's Table II "Total OPs" figure.
    pub fn table2_ops(self) -> u64 {
        match self {
            ModelKind::VanillaCnn => 93_000_000_000,
            ModelKind::TransLob => 203_900_000_000,
            ModelKind::DeepLob => 515_400_000_000,
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The three-way price-movement classification of Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PriceDirection {
    /// Mid price expected to rise within the prediction horizon.
    Up,
    /// Mid price expected to stay within the stationary band.
    Stationary,
    /// Mid price expected to fall within the prediction horizon.
    Down,
}

impl PriceDirection {
    /// Class index in the models' output layout `[up, stationary, down]`.
    pub fn class_index(self) -> usize {
        match self {
            PriceDirection::Up => 0,
            PriceDirection::Stationary => 1,
            PriceDirection::Down => 2,
        }
    }

    /// Inverse of [`Self::class_index`].
    ///
    /// # Panics
    ///
    /// Panics for indices above 2.
    pub fn from_class_index(index: usize) -> Self {
        match index {
            0 => PriceDirection::Up,
            1 => PriceDirection::Stationary,
            2 => PriceDirection::Down,
            other => panic!("class index {other} out of range"),
        }
    }
}

impl std::fmt::Display for PriceDirection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PriceDirection::Up => f.write_str("up"),
            PriceDirection::Stationary => f.write_str("stationary"),
            PriceDirection::Down => f.write_str("down"),
        }
    }
}

/// A model's output: class probabilities over `[up, stationary, down]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Probabilities in class-index order; they sum to one.
    pub probs: [f32; 3],
}

impl Prediction {
    /// Wraps softmax output.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the probabilities do not sum to ~1.
    pub fn new(probs: [f32; 3]) -> Self {
        debug_assert!(
            (probs.iter().sum::<f32>() - 1.0).abs() < 1e-3,
            "probabilities must sum to one, got {probs:?}"
        );
        Prediction { probs }
    }

    /// The most likely direction.
    pub fn direction(&self) -> PriceDirection {
        let mut best = 0;
        for i in 1..3 {
            if self.probs[i] > self.probs[best] {
                best = i;
            }
        }
        PriceDirection::from_class_index(best)
    }

    /// The winning probability.
    pub fn confidence(&self) -> f32 {
        self.probs[self.direction().class_index()]
    }
}

/// A runnable price-movement model.
///
/// Implementors are the instantiated networks in [`crate::models`]; the
/// trait is object-safe so the trading pipeline can hold `Box<dyn Model>`.
pub trait Model: Send + Sync {
    /// Which benchmark family this is.
    fn kind(&self) -> ModelKind;

    /// Tick-window length `T` of the input feature map.
    fn window(&self) -> usize;

    /// Features per tick (40 for ten levels of `(price, qty)` x 2 sides).
    fn features(&self) -> usize;

    /// Runs inference on a `[window, features]` input feature map.
    ///
    /// Provided: delegates to [`Self::forward_scratch`] with a throwaway
    /// [`ScratchPad`]. Long-lived callers (the trading system, the
    /// simulator) should hold a pad and call `forward_scratch` directly
    /// so steady-state inference never touches the allocator.
    fn forward(&self, input: &Tensor) -> Prediction {
        self.forward_scratch(input, &mut ScratchPad::new())
    }

    /// Runs inference drawing every intermediate buffer from `pad`.
    ///
    /// After a warm-up call with the same input shape, the pad's free
    /// list covers every buffer the network needs and this performs zero
    /// heap allocations (asserted by the `zero_alloc` integration test).
    fn forward_scratch(&self, input: &Tensor, pad: &mut ScratchPad) -> Prediction;

    /// Packs this model's GEMM operands into register-tile panels for
    /// [`Self::forward_batch_scratch`].
    ///
    /// Provided: returns the empty pack — the explicit marker that this
    /// model has no packed path, making `forward_batch_scratch` fall
    /// back to looping [`Self::forward_scratch`]. Models with a batched
    /// override also override this; the panel order is model-private.
    fn pack_weights(&self) -> PackedWeights {
        PackedWeights::empty(self.kind())
    }

    /// Runs inference over a batch of `[window, features]` inputs,
    /// appending one [`Prediction`] per input to `out` (cleared first).
    ///
    /// Per sample bit-identical to [`Self::forward_scratch`]: batching
    /// stacks samples along GEMM output dimensions and packing permutes
    /// operand layout, neither touches any `k` accumulation chain
    /// (pinned by the `batch_equivalence` proptests). Pass the pack from
    /// [`Self::pack_weights`]; an empty pack (or a model without an
    /// override) runs the looped fallback.
    ///
    /// Provided: [`Self::forward_batch_looped`].
    ///
    /// # Panics
    ///
    /// Panics if any input is not `[window, features]`.
    fn forward_batch_scratch(
        &self,
        inputs: &[Tensor],
        packed: &PackedWeights,
        pad: &mut ScratchPad,
        out: &mut Vec<Prediction>,
    ) {
        let _ = packed;
        self.forward_batch_looped(inputs, pad, out);
    }

    /// The looped reference semantics of [`Self::forward_batch_scratch`]:
    /// one [`Self::forward_scratch`] call per input, in order.
    fn forward_batch_looped(
        &self,
        inputs: &[Tensor],
        pad: &mut ScratchPad,
        out: &mut Vec<Prediction>,
    ) {
        out.clear();
        out.reserve(inputs.len());
        for input in inputs {
            out.push(self.forward_scratch(input, pad));
        }
    }

    /// Analytic multiply-accumulate count of one forward pass.
    fn total_macs(&self) -> u64;

    /// Analytic operation count (2 ops per MAC, Table II convention).
    fn total_ops(&self) -> u64 {
        macs_to_ops(self.total_macs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_constants() {
        assert_eq!(ModelKind::VanillaCnn.table2_ops(), 93_000_000_000);
        assert_eq!(ModelKind::TransLob.table2_ops(), 203_900_000_000);
        assert_eq!(ModelKind::DeepLob.table2_ops(), 515_400_000_000);
        assert_eq!(ModelKind::ALL.len(), 3);
        assert_eq!(ModelKind::DeepLob.name(), "DeepLOB");
        assert_eq!(ModelKind::TransLob.network_family(), "CNN+Transformer");
    }

    #[test]
    fn prediction_direction_and_confidence() {
        let p = Prediction::new([0.1, 0.2, 0.7]);
        assert_eq!(p.direction(), PriceDirection::Down);
        assert!((p.confidence() - 0.7).abs() < 1e-6);
        let up = Prediction::new([0.5, 0.3, 0.2]);
        assert_eq!(up.direction(), PriceDirection::Up);
    }

    #[test]
    fn class_index_round_trip() {
        for d in [
            PriceDirection::Up,
            PriceDirection::Stationary,
            PriceDirection::Down,
        ] {
            assert_eq!(PriceDirection::from_class_index(d.class_index()), d);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_class_index_panics() {
        let _ = PriceDirection::from_class_index(3);
    }
}
