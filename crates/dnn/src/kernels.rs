//! Cache-friendly inference kernels, bit-identical to the naive layers.
//!
//! The naive layer implementations in [`crate::ops`] index every element
//! through `Tensor::at` (rank assert + bounds checks + index arithmetic
//! per multiply). These kernels compute the same contractions over raw
//! slices with register tiling and cache blocking, which is where the
//! fast `forward_scratch` paths get their speed.
//!
//! # The bit-exactness contract
//!
//! Floating-point addition is not associative, so a "faster but
//! approximately equal" kernel would silently change every prediction
//! downstream. Every kernel here therefore preserves the naive path's
//! **per-output-element accumulation order** exactly:
//!
//! * each accumulator is seeded with the bias (or `0.0`) exactly as the
//!   naive loop seeds it, accumulates in the same increasing-`k` order,
//!   and is rounded (BF16) at most once, at the same point;
//! * tiling only ever splits the *output* dimensions (M/N). The `k`
//!   reduction is never split, reordered, or vectorized with partial
//!   sums — register tiling computes several independent accumulator
//!   chains in parallel, each of which is order-identical to naive;
//! * [`im2col`] materializes zero entries where the naive convolution
//!   *skips* padded taps. Adding `w * 0.0` instead of skipping can only
//!   flip the sign of an exact zero (`-0.0 + 0.0 == +0.0`), which `f32`
//!   equality and every downstream consumer treat as identical.
//!
//! The `kernel_equivalence` integration test property-checks these
//! guarantees against the `forward_reference` implementations across
//! randomized shapes, strides, and paddings.

use crate::bf16::bf16_round;

/// Register-tile width: independent accumulator chains per inner loop.
const MR: usize = 4;
/// Cache-block width over the GEMM `n` dimension, sized so an f32 block
/// of typical `k` stays resident in L1 while every `m` row streams by.
const NB: usize = 64;

/// Unfolds a `[in_c, h, w]` input into im2col patch rows.
///
/// `out` must hold `oh * ow * in_c * kh * kw` elements and is written as
/// a row-major `[oh * ow, in_c * kh * kw]` matrix: one row per output
/// position (scanning `oy` then `ox`), columns ordered `ic → ky → kx` to
/// match the naive convolution's accumulation order. Taps that fall in
/// the zero-padding region are stored as `0.0`.
///
/// # Panics
///
/// Panics if `x` or `out` have the wrong length.
#[allow(clippy::too_many_arguments)]
pub fn im2col(
    x: &[f32],
    in_c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: (usize, usize),
    padding: (usize, usize),
    oh: usize,
    ow: usize,
    out: &mut [f32],
) {
    let k = in_c * kh * kw;
    assert_eq!(x.len(), in_c * h * w, "im2col input length");
    assert_eq!(out.len(), oh * ow * k, "im2col patch-buffer length");
    let (ph, pw) = padding;
    let mut row = 0usize;
    for oy in 0..oh {
        let base_y = oy * stride.0;
        for ox in 0..ow {
            let base_x = ox * stride.1;
            let patch = &mut out[row..row + k];
            let mut col = 0usize;
            for ic in 0..in_c {
                let chan = &x[ic * h * w..(ic + 1) * h * w];
                for ky in 0..kh {
                    let iy = base_y + ky;
                    if iy < ph || iy - ph >= h {
                        patch[col..col + kw].fill(0.0);
                        col += kw;
                        continue;
                    }
                    let src = &chan[(iy - ph) * w..(iy - ph + 1) * w];
                    if pw == 0 && base_x + kw <= w {
                        // Common case (no horizontal padding): one memcpy.
                        patch[col..col + kw].copy_from_slice(&src[base_x..base_x + kw]);
                        col += kw;
                    } else {
                        for kx in 0..kw {
                            let ix = base_x + kx;
                            patch[col] = if ix < pw || ix - pw >= w {
                                0.0
                            } else {
                                src[ix - pw]
                            };
                            col += 1;
                        }
                    }
                }
            }
            row += k;
        }
    }
}

/// `out[m][n] = bf16(bias[m] + dot(a[m], b[n]))` — GEMM against a
/// transposed B, bias indexed by the A row.
///
/// `a` is `[m, k]` row-major (convolution kernels), `b` is `[n, k]`
/// row-major (im2col patches), `out` is `[m, n]` row-major — exactly the
/// `[out_c, oh * ow]` layout of a convolution output. Blocked over `n`
/// and register-tiled over `m`; each output's accumulation order matches
/// the naive triple loop.
pub fn gemm_bt_bias_rows_bf16(
    a: &[f32],
    b: &[f32],
    bias: &[f32],
    m: usize,
    n: usize,
    k: usize,
    out: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "gemm A length");
    assert_eq!(b.len(), n * k, "gemm B length");
    assert_eq!(bias.len(), m, "gemm bias length");
    assert_eq!(out.len(), m * n, "gemm output length");
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + NB).min(n);
        let mut i = 0;
        while i + MR <= m {
            let a0 = &a[i * k..(i + 1) * k];
            let a1 = &a[(i + 1) * k..(i + 2) * k];
            let a2 = &a[(i + 2) * k..(i + 3) * k];
            let a3 = &a[(i + 3) * k..(i + 4) * k];
            for j in j0..j1 {
                let bj = &b[j * k..(j + 1) * k];
                let mut acc0 = bias[i];
                let mut acc1 = bias[i + 1];
                let mut acc2 = bias[i + 2];
                let mut acc3 = bias[i + 3];
                for t in 0..k {
                    let x = bj[t];
                    acc0 += a0[t] * x;
                    acc1 += a1[t] * x;
                    acc2 += a2[t] * x;
                    acc3 += a3[t] * x;
                }
                out[i * n + j] = bf16_round(acc0);
                out[(i + 1) * n + j] = bf16_round(acc1);
                out[(i + 2) * n + j] = bf16_round(acc2);
                out[(i + 3) * n + j] = bf16_round(acc3);
            }
            i += MR;
        }
        for r in i..m {
            let ar = &a[r * k..(r + 1) * k];
            for j in j0..j1 {
                let bj = &b[j * k..(j + 1) * k];
                let mut acc = bias[r];
                for t in 0..k {
                    acc += ar[t] * bj[t];
                }
                out[r * n + j] = bf16_round(acc);
            }
        }
        j0 = j1;
    }
}

/// `out[o] = bf16(bias[o] + dot(w[o], x))` — dense layer on one input row.
///
/// `w` is `[n, k]` row-major. Register-tiled over output neurons so four
/// accumulator chains share each `x` load; per-output accumulation order
/// matches the naive loop.
pub fn matvec_bias_bf16(w: &[f32], bias: &[f32], x: &[f32], n: usize, k: usize, out: &mut [f32]) {
    assert_eq!(w.len(), n * k, "matvec weight length");
    assert_eq!(bias.len(), n, "matvec bias length");
    assert_eq!(x.len(), k, "matvec input length");
    assert_eq!(out.len(), n, "matvec output length");
    let mut o = 0;
    while o + MR <= n {
        let w0 = &w[o * k..(o + 1) * k];
        let w1 = &w[(o + 1) * k..(o + 2) * k];
        let w2 = &w[(o + 2) * k..(o + 3) * k];
        let w3 = &w[(o + 3) * k..(o + 4) * k];
        let mut acc0 = bias[o];
        let mut acc1 = bias[o + 1];
        let mut acc2 = bias[o + 2];
        let mut acc3 = bias[o + 3];
        for t in 0..k {
            let xv = x[t];
            acc0 += w0[t] * xv;
            acc1 += w1[t] * xv;
            acc2 += w2[t] * xv;
            acc3 += w3[t] * xv;
        }
        out[o] = bf16_round(acc0);
        out[o + 1] = bf16_round(acc1);
        out[o + 2] = bf16_round(acc2);
        out[o + 3] = bf16_round(acc3);
        o += MR;
    }
    for r in o..n {
        let wr = &w[r * k..(r + 1) * k];
        let mut acc = bias[r];
        for t in 0..k {
            acc += wr[t] * x[t];
        }
        out[r] = bf16_round(acc);
    }
}

/// INT8 dense layer: `out[o] = (Σ w[o][i] * x[i]) as f32 * w_scale
/// * x_scale + bias[o]`, with an `i32` accumulator.
///
/// The float epilogue multiplies the two scales in the same order as the
/// naive loop (`acc * w_scale * x_scale + bias`), so results are
/// bit-identical; the integer dot itself is exact in any order.
#[allow(clippy::too_many_arguments)]
pub fn matvec_i8_bias(
    w: &[i8],
    x: &[i8],
    bias: &[f32],
    n: usize,
    k: usize,
    w_scale: f32,
    x_scale: f32,
    out: &mut [f32],
) {
    assert_eq!(w.len(), n * k, "int8 matvec weight length");
    assert_eq!(x.len(), k, "int8 matvec input length");
    assert_eq!(bias.len(), n, "int8 matvec bias length");
    assert_eq!(out.len(), n, "int8 matvec output length");
    let mut o = 0;
    while o + MR <= n {
        let w0 = &w[o * k..(o + 1) * k];
        let w1 = &w[(o + 1) * k..(o + 2) * k];
        let w2 = &w[(o + 2) * k..(o + 3) * k];
        let w3 = &w[(o + 3) * k..(o + 4) * k];
        let mut acc0: i32 = 0;
        let mut acc1: i32 = 0;
        let mut acc2: i32 = 0;
        let mut acc3: i32 = 0;
        for t in 0..k {
            let xv = x[t] as i32;
            acc0 += w0[t] as i32 * xv;
            acc1 += w1[t] as i32 * xv;
            acc2 += w2[t] as i32 * xv;
            acc3 += w3[t] as i32 * xv;
        }
        out[o] = acc0 as f32 * w_scale * x_scale + bias[o];
        out[o + 1] = acc1 as f32 * w_scale * x_scale + bias[o + 1];
        out[o + 2] = acc2 as f32 * w_scale * x_scale + bias[o + 2];
        out[o + 3] = acc3 as f32 * w_scale * x_scale + bias[o + 3];
        o += MR;
    }
    for r in o..n {
        let wr = &w[r * k..(r + 1) * k];
        let mut acc: i32 = 0;
        for t in 0..k {
            acc += wr[t] as i32 * x[t] as i32;
        }
        out[r] = acc as f32 * w_scale * x_scale + bias[r];
    }
}

/// Fused LSTM gate pre-activations for one timestep:
/// `gates[g] = bias[g] + dot(wx[g], xt) + dot(wh[g], h)`.
///
/// `wx` is `[4 * hidden, input]`, `wh` is `[4 * hidden, hidden]`. The two
/// dots run sequentially per gate (input weights first), matching the
/// naive per-gate loop; no rounding is applied here.
#[allow(clippy::too_many_arguments)]
pub fn lstm_gates(
    wx: &[f32],
    wh: &[f32],
    bias: &[f32],
    xt: &[f32],
    h: &[f32],
    input: usize,
    hidden: usize,
    gates: &mut [f32],
) {
    let n = 4 * hidden;
    assert_eq!(wx.len(), n * input, "lstm wx length");
    assert_eq!(wh.len(), n * hidden, "lstm wh length");
    assert_eq!(bias.len(), n, "lstm bias length");
    assert_eq!(xt.len(), input, "lstm input length");
    assert_eq!(h.len(), hidden, "lstm hidden length");
    assert_eq!(gates.len(), n, "lstm gates length");
    let mut g = 0;
    while g + MR <= n {
        let wx0 = &wx[g * input..(g + 1) * input];
        let wx1 = &wx[(g + 1) * input..(g + 2) * input];
        let wx2 = &wx[(g + 2) * input..(g + 3) * input];
        let wx3 = &wx[(g + 3) * input..(g + 4) * input];
        let mut acc0 = bias[g];
        let mut acc1 = bias[g + 1];
        let mut acc2 = bias[g + 2];
        let mut acc3 = bias[g + 3];
        for i in 0..input {
            let xv = xt[i];
            acc0 += wx0[i] * xv;
            acc1 += wx1[i] * xv;
            acc2 += wx2[i] * xv;
            acc3 += wx3[i] * xv;
        }
        let wh0 = &wh[g * hidden..(g + 1) * hidden];
        let wh1 = &wh[(g + 1) * hidden..(g + 2) * hidden];
        let wh2 = &wh[(g + 2) * hidden..(g + 3) * hidden];
        let wh3 = &wh[(g + 3) * hidden..(g + 4) * hidden];
        for j in 0..hidden {
            let hv = h[j];
            acc0 += wh0[j] * hv;
            acc1 += wh1[j] * hv;
            acc2 += wh2[j] * hv;
            acc3 += wh3[j] * hv;
        }
        gates[g] = acc0;
        gates[g + 1] = acc1;
        gates[g + 2] = acc2;
        gates[g + 3] = acc3;
        g += MR;
    }
    for r in g..n {
        let mut acc = bias[r];
        let wxr = &wx[r * input..(r + 1) * input];
        for i in 0..input {
            acc += wxr[i] * xt[i];
        }
        let whr = &wh[r * hidden..(r + 1) * hidden];
        for j in 0..hidden {
            acc += whr[j] * h[j];
        }
        gates[r] = acc;
    }
}

/// Attention scores for one head: `out[i][j] = dot(q_i, k_j) * scale`
/// over the head's column slice `[off, off + d_head)` of `[t, d_model]`
/// Q/K matrices.
///
/// The dot starts at `0.0` and the scale is applied after the full
/// reduction, matching the naive `iter().zip().sum()` followed by
/// `dot * scale`. No rounding. Register-tiled over `j` so four score
/// chains share each `q` load.
#[allow(clippy::too_many_arguments)]
pub fn attn_scores(
    q: &[f32],
    k: &[f32],
    t: usize,
    d_model: usize,
    off: usize,
    d_head: usize,
    scale: f32,
    out: &mut [f32],
) {
    assert_eq!(q.len(), t * d_model, "attn q length");
    assert_eq!(k.len(), t * d_model, "attn k length");
    assert_eq!(out.len(), t * t, "attn scores length");
    assert!(off + d_head <= d_model, "attn head slice out of range");
    for i in 0..t {
        let qi = &q[i * d_model + off..i * d_model + off + d_head];
        let orow = &mut out[i * t..(i + 1) * t];
        let mut j = 0;
        while j + MR <= t {
            let k0 = &k[j * d_model + off..j * d_model + off + d_head];
            let k1 = &k[(j + 1) * d_model + off..(j + 1) * d_model + off + d_head];
            let k2 = &k[(j + 2) * d_model + off..(j + 2) * d_model + off + d_head];
            let k3 = &k[(j + 3) * d_model + off..(j + 3) * d_model + off + d_head];
            let mut acc0 = 0.0f32;
            let mut acc1 = 0.0f32;
            let mut acc2 = 0.0f32;
            let mut acc3 = 0.0f32;
            for d in 0..d_head {
                let qv = qi[d];
                acc0 += qv * k0[d];
                acc1 += qv * k1[d];
                acc2 += qv * k2[d];
                acc3 += qv * k3[d];
            }
            orow[j] = acc0 * scale;
            orow[j + 1] = acc1 * scale;
            orow[j + 2] = acc2 * scale;
            orow[j + 3] = acc3 * scale;
            j += MR;
        }
        for jj in j..t {
            let kj = &k[jj * d_model + off..jj * d_model + off + d_head];
            let mut acc = 0.0f32;
            for d in 0..d_head {
                acc += qi[d] * kj[d];
            }
            orow[jj] = acc * scale;
        }
    }
}

/// Attention context for one head:
/// `ctx[i][off + d] = Σ_j scores[i][j] * v[j][off + d]`.
///
/// Accumulates over `j` in increasing order starting from `0.0` (as the
/// naive loop does) and writes into the head's column slice of the
/// `[t, d_model]` context. Tiled over `d` so four accumulator chains
/// share each score load and the `v` loads are contiguous.
pub fn attn_context(
    scores: &[f32],
    v: &[f32],
    t: usize,
    d_model: usize,
    off: usize,
    d_head: usize,
    ctx: &mut [f32],
) {
    assert_eq!(scores.len(), t * t, "attn scores length");
    assert_eq!(v.len(), t * d_model, "attn v length");
    assert_eq!(ctx.len(), t * d_model, "attn context length");
    assert!(off + d_head <= d_model, "attn head slice out of range");
    for i in 0..t {
        let srow = &scores[i * t..(i + 1) * t];
        let mut d = 0;
        while d + MR <= d_head {
            let mut acc0 = 0.0f32;
            let mut acc1 = 0.0f32;
            let mut acc2 = 0.0f32;
            let mut acc3 = 0.0f32;
            for (j, &sv) in srow.iter().enumerate() {
                let vrow = &v[j * d_model + off + d..j * d_model + off + d + MR];
                acc0 += sv * vrow[0];
                acc1 += sv * vrow[1];
                acc2 += sv * vrow[2];
                acc3 += sv * vrow[3];
            }
            let base = i * d_model + off + d;
            ctx[base] = acc0;
            ctx[base + 1] = acc1;
            ctx[base + 2] = acc2;
            ctx[base + 3] = acc3;
            d += MR;
        }
        for dd in d..d_head {
            let mut acc = 0.0f32;
            for (j, &sv) in srow.iter().enumerate() {
                acc += sv * v[j * d_model + off + dd];
            }
            ctx[i * d_model + off + dd] = acc;
        }
    }
}

/// Repacks a row-major `[m, k]` operand into [`MR`]-row panels.
///
/// Full panels hold `MR` consecutive rows interleaved `k`-major
/// (`panel[t * MR + r] = a[(i0 + r) * k + t]`), so a register tile's
/// inner `k` step loads its `MR` weights from one contiguous word —
/// four independent accumulator chains the compiler can keep in a
/// single SIMD register. The `m % MR` tail rows are stored row-major
/// after the panels, which lands row `r` at flat offset `r * k` —
/// exactly where the unpacked remainder loop would read it.
///
/// Packing is a pure permutation of the operand layout: the packed
/// GEMM's per-output accumulation order (and therefore every bit of
/// its output) is unchanged. `out` is cleared and filled with exactly
/// `m * k` elements.
pub fn pack_bt_panels(a: &[f32], m: usize, k: usize, out: &mut Vec<f32>) {
    assert_eq!(a.len(), m * k, "pack operand length");
    out.clear();
    out.reserve(m * k);
    let mut i = 0;
    while i + MR <= m {
        for t in 0..k {
            for r in 0..MR {
                out.push(a[(i + r) * k + t]);
            }
        }
        i += MR;
    }
    out.extend_from_slice(&a[i * k..]);
}

/// [`gemm_bt_bias_rows_bf16`] reading a prepacked A operand
/// (see [`pack_bt_panels`]); bit-identical output.
///
/// The full-tile inner loop walks `packed` panels `k`-major, so the
/// four accumulator chains update from one contiguous 4-lane load per
/// `k` step instead of four strided row reads — the layout change that
/// lets steady-state batched forwards never touch the row-major weight
/// tensors. Accumulation order per output element is exactly that of
/// the unpacked kernel.
pub fn gemm_packed_bt_bias_rows_bf16(
    packed: &[f32],
    b: &[f32],
    bias: &[f32],
    m: usize,
    n: usize,
    k: usize,
    out: &mut [f32],
) {
    assert_eq!(packed.len(), m * k, "gemm packed A length");
    assert_eq!(b.len(), n * k, "gemm B length");
    assert_eq!(bias.len(), m, "gemm bias length");
    assert_eq!(out.len(), m * n, "gemm output length");
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + NB).min(n);
        let mut i = 0;
        while i + MR <= m {
            let panel = &packed[i * k..(i + MR) * k];
            for j in j0..j1 {
                let bj = &b[j * k..(j + 1) * k];
                let mut acc = [bias[i], bias[i + 1], bias[i + 2], bias[i + 3]];
                for (&x, av) in bj.iter().zip(panel.chunks_exact(MR)) {
                    acc[0] += av[0] * x;
                    acc[1] += av[1] * x;
                    acc[2] += av[2] * x;
                    acc[3] += av[3] * x;
                }
                out[i * n + j] = bf16_round(acc[0]);
                out[(i + 1) * n + j] = bf16_round(acc[1]);
                out[(i + 2) * n + j] = bf16_round(acc[2]);
                out[(i + 3) * n + j] = bf16_round(acc[3]);
            }
            i += MR;
        }
        // Tail rows sit row-major at their unpacked offsets.
        for r in i..m {
            let ar = &packed[r * k..(r + 1) * k];
            for j in j0..j1 {
                let bj = &b[j * k..(j + 1) * k];
                let mut acc = bias[r];
                for t in 0..k {
                    acc += ar[t] * bj[t];
                }
                out[r * n + j] = bf16_round(acc);
            }
        }
        j0 = j1;
    }
}

/// [`matvec_bias_bf16`] reading a prepacked `[n, k]` weight operand
/// (see [`pack_bt_panels`]); bit-identical output.
pub fn matvec_packed_bias_bf16(
    packed: &[f32],
    bias: &[f32],
    x: &[f32],
    n: usize,
    k: usize,
    out: &mut [f32],
) {
    assert_eq!(packed.len(), n * k, "matvec packed weight length");
    assert_eq!(bias.len(), n, "matvec bias length");
    assert_eq!(x.len(), k, "matvec input length");
    assert_eq!(out.len(), n, "matvec output length");
    let mut o = 0;
    while o + MR <= n {
        let panel = &packed[o * k..(o + MR) * k];
        let mut acc = [bias[o], bias[o + 1], bias[o + 2], bias[o + 3]];
        for (&xv, wv) in x.iter().zip(panel.chunks_exact(MR)) {
            acc[0] += wv[0] * xv;
            acc[1] += wv[1] * xv;
            acc[2] += wv[2] * xv;
            acc[3] += wv[3] * xv;
        }
        out[o] = bf16_round(acc[0]);
        out[o + 1] = bf16_round(acc[1]);
        out[o + 2] = bf16_round(acc[2]);
        out[o + 3] = bf16_round(acc[3]);
        o += MR;
    }
    for r in o..n {
        let wr = &packed[r * k..(r + 1) * k];
        let mut acc = bias[r];
        for t in 0..k {
            acc += wr[t] * x[t];
        }
        out[r] = bf16_round(acc);
    }
}

/// Batched [`lstm_gates`] over prepacked weights: one timestep's gate
/// pre-activations for every sequence in a batch.
///
/// `packed_wx` / `packed_wh` are `[4 * hidden, input]` / `[4 * hidden,
/// hidden]` operands packed by [`pack_bt_panels`]. Sample `s` reads its
/// timestep input at `x[x_off + s * x_stride ..][..input]` (a strided
/// view into a sample-major `[batch, steps, input]` sequence buffer)
/// and its hidden state at `h[s * hidden..]`; its gates land at
/// `gates[s * 4 * hidden..]`. Per (sample, gate) the accumulation is
/// bias, then the `wx` dot, then the `wh` dot — exactly [`lstm_gates`].
#[allow(clippy::too_many_arguments)]
pub fn lstm_gates_packed_batch(
    packed_wx: &[f32],
    packed_wh: &[f32],
    bias: &[f32],
    x: &[f32],
    x_off: usize,
    x_stride: usize,
    h: &[f32],
    batch: usize,
    input: usize,
    hidden: usize,
    gates: &mut [f32],
) {
    let n = 4 * hidden;
    assert_eq!(packed_wx.len(), n * input, "lstm packed wx length");
    assert_eq!(packed_wh.len(), n * hidden, "lstm packed wh length");
    assert_eq!(bias.len(), n, "lstm bias length");
    assert_eq!(h.len(), batch * hidden, "lstm hidden length");
    assert_eq!(gates.len(), batch * n, "lstm gates length");
    if batch > 0 {
        assert!(
            x.len() >= x_off + (batch - 1) * x_stride + input,
            "lstm sequence buffer too short"
        );
    }
    for s in 0..batch {
        let xt = &x[x_off + s * x_stride..x_off + s * x_stride + input];
        let hs = &h[s * hidden..(s + 1) * hidden];
        let grow = &mut gates[s * n..(s + 1) * n];
        let mut g = 0;
        while g + MR <= n {
            let px = &packed_wx[g * input..(g + MR) * input];
            let mut acc = [bias[g], bias[g + 1], bias[g + 2], bias[g + 3]];
            for (&xv, wv) in xt.iter().zip(px.chunks_exact(MR)) {
                acc[0] += wv[0] * xv;
                acc[1] += wv[1] * xv;
                acc[2] += wv[2] * xv;
                acc[3] += wv[3] * xv;
            }
            let ph = &packed_wh[g * hidden..(g + MR) * hidden];
            for (&hv, wv) in hs.iter().zip(ph.chunks_exact(MR)) {
                acc[0] += wv[0] * hv;
                acc[1] += wv[1] * hv;
                acc[2] += wv[2] * hv;
                acc[3] += wv[3] * hv;
            }
            grow[g] = acc[0];
            grow[g + 1] = acc[1];
            grow[g + 2] = acc[2];
            grow[g + 3] = acc[3];
            g += MR;
        }
        for r in g..n {
            let mut acc = bias[r];
            let wxr = &packed_wx[r * input..(r + 1) * input];
            for i in 0..input {
                acc += wxr[i] * xt[i];
            }
            let whr = &packed_wh[r * hidden..(r + 1) * hidden];
            for j in 0..hidden {
                acc += whr[j] * hs[j];
            }
            grow[r] = acc;
        }
    }
}

/// Direct convolution for width-1 kernels at unit stride with no
/// horizontal padding — the dominant layer shape in all three benchmark
/// networks (every temporal `(kh, 1)` convolution and every 1x1
/// inception branch). Bit-identical to `im2col` + GEMM.
///
/// With `kw == 1`, `stride == (1, 1)`, `pw == 0`, the im2col "patch
/// column" for tap `t = (ic, ky)` is just the input channel shifted by
/// `(ky - ph)` rows — so instead of materializing an `[oh * ow, k]`
/// patch matrix and re-reading it, this kernel accumulates each tap as
/// one scalar-times-slice pass over the `f32` workspace `acc` (length
/// `oh * w`), which vectorizes as a pure axpy. Per output element the
/// accumulation order is exactly the GEMM's: seeded with the bias,
/// taps in increasing `(ic, ky)` order, rounded once at the end.
/// Out-of-range taps add `weight * 0.0`, exactly as the GEMM multiplies
/// the patch matrix's materialized zeros.
///
/// `a` is the row-major `[out_c, in_c * kh]` kernel matrix; `x` is one
/// `[in_c, h, w]` sample; `out` is its `[out_c, oh * w]` output.
///
/// # Panics
///
/// Panics on buffer-length mismatches.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_kw1_direct_bf16(
    a: &[f32],
    bias: &[f32],
    x: &[f32],
    in_c: usize,
    h: usize,
    w: usize,
    kh: usize,
    ph: usize,
    out_c: usize,
    acc: &mut [f32],
    out: &mut [f32],
) {
    let k = in_c * kh;
    let oh = h + 2 * ph + 1 - kh;
    let positions = oh * w;
    assert_eq!(a.len(), out_c * k, "direct conv kernel length");
    assert_eq!(bias.len(), out_c, "direct conv bias length");
    assert_eq!(x.len(), in_c * h * w, "direct conv input length");
    assert_eq!(acc.len(), positions, "direct conv workspace length");
    assert_eq!(out.len(), out_c * positions, "direct conv output length");
    for oc in 0..out_c {
        acc.fill(bias[oc]);
        let wrow = &a[oc * k..(oc + 1) * k];
        for ic in 0..in_c {
            let chan = &x[ic * h * w..(ic + 1) * h * w];
            for ky in 0..kh {
                let wv = wrow[ic * kh + ky];
                // Output rows whose tap row `oy + ky - ph` is in bounds.
                let lo = ph.saturating_sub(ky).min(oh);
                let hi = (h + ph).saturating_sub(ky).clamp(lo, oh);
                // Padded taps contribute `wv * 0.0` (a signed zero),
                // matching the GEMM against materialized zeros.
                let z = wv * 0.0;
                for v in &mut acc[..lo * w] {
                    *v += z;
                }
                for v in &mut acc[hi * w..] {
                    *v += z;
                }
                let src = &chan[(lo + ky - ph) * w..(hi + ky - ph) * w];
                for (av, &xv) in acc[lo * w..hi * w].iter_mut().zip(src) {
                    *av += wv * xv;
                }
            }
        }
        for (o, &v) in out[oc * positions..(oc + 1) * positions]
            .iter_mut()
            .zip(acc.iter())
        {
            *o = bf16_round(v);
        }
    }
}

/// Whole-batch [`im2col`]: unfolds a sample-major `[batch, in_c, h, w]`
/// activation block into the stacked `[batch * oh * ow, in_c * kh * kw]`
/// patch matrix, sample `s`'s patch rows occupying the contiguous row
/// range `[s * oh * ow, (s + 1) * oh * ow)`.
#[allow(clippy::too_many_arguments)]
pub fn im2col_batch(
    x: &[f32],
    batch: usize,
    in_c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: (usize, usize),
    padding: (usize, usize),
    oh: usize,
    ow: usize,
    out: &mut [f32],
) {
    let sample_in = in_c * h * w;
    let sample_out = oh * ow * in_c * kh * kw;
    assert_eq!(x.len(), batch * sample_in, "im2col_batch input length");
    assert_eq!(out.len(), batch * sample_out, "im2col_batch patch length");
    for s in 0..batch {
        im2col(
            &x[s * sample_in..(s + 1) * sample_in],
            in_c,
            h,
            w,
            kh,
            kw,
            stride,
            padding,
            oh,
            ow,
            &mut out[s * sample_out..(s + 1) * sample_out],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar model of the naive convolution accumulation, for one output.
    #[allow(clippy::too_many_arguments)]
    fn naive_conv_cell(
        x: &[f32],
        kern: &[f32],
        bias: f32,
        (in_c, h, w): (usize, usize, usize),
        (kh, kw): (usize, usize),
        stride: (usize, usize),
        (ph, pw): (usize, usize),
        (oy, ox): (usize, usize),
        oc: usize,
    ) -> f32 {
        let mut acc = bias;
        let (base_y, base_x) = (oy * stride.0, ox * stride.1);
        for ic in 0..in_c {
            for ky in 0..kh {
                let iy = base_y + ky;
                if iy < ph || iy - ph >= h {
                    continue;
                }
                for kx in 0..kw {
                    let ix = base_x + kx;
                    if ix < pw || ix - pw >= w {
                        continue;
                    }
                    acc += kern[((oc * in_c + ic) * kh + ky) * kw + kx]
                        * x[(ic * h + iy - ph) * w + ix - pw];
                }
            }
        }
        bf16_round(acc)
    }

    #[test]
    fn im2col_gemm_matches_naive_conv_with_padding() {
        let (in_c, h, w) = (2usize, 4usize, 3usize);
        let (kh, kw) = (3usize, 2usize);
        let (stride, padding) = ((1usize, 1usize), (1usize, 1usize));
        let (oh, ow) = (4usize, 4usize); // (h + 2*1 - 3) + 1, (w + 2*1 - 2) + 1
        let out_c = 3usize;
        let k = in_c * kh * kw;
        let x: Vec<f32> = (0..in_c * h * w).map(|i| (i as f32 - 7.0) * 0.3).collect();
        let kern: Vec<f32> = (0..out_c * k)
            .map(|i| ((i % 11) as f32 - 5.0) * 0.1)
            .collect();
        let bias = vec![0.25, -0.5, 1.0];
        let mut patches = vec![0.0; oh * ow * k];
        im2col(
            &x,
            in_c,
            h,
            w,
            kh,
            kw,
            stride,
            padding,
            oh,
            ow,
            &mut patches,
        );
        let mut out = vec![0.0; out_c * oh * ow];
        gemm_bt_bias_rows_bf16(&kern, &patches, &bias, out_c, oh * ow, k, &mut out);
        for oc in 0..out_c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let want = naive_conv_cell(
                        &x,
                        &kern,
                        bias[oc],
                        (in_c, h, w),
                        (kh, kw),
                        stride,
                        padding,
                        (oy, ox),
                        oc,
                    );
                    assert_eq!(
                        out[(oc * oh + oy) * ow + ox],
                        want,
                        "oc={oc} oy={oy} ox={ox}"
                    );
                }
            }
        }
    }

    #[test]
    fn matvec_matches_scalar_loop() {
        let (n, k) = (7usize, 13usize); // odd n exercises the remainder path
        let w: Vec<f32> = (0..n * k).map(|i| (i as f32).sin()).collect();
        let x: Vec<f32> = (0..k).map(|i| (i as f32).cos()).collect();
        let bias: Vec<f32> = (0..n).map(|i| i as f32 * 0.1).collect();
        let mut out = vec![0.0; n];
        matvec_bias_bf16(&w, &bias, &x, n, k, &mut out);
        for o in 0..n {
            let mut acc = bias[o];
            for t in 0..k {
                acc += w[o * k + t] * x[t];
            }
            assert_eq!(out[o], bf16_round(acc), "neuron {o}");
        }
    }

    #[test]
    fn int8_matvec_matches_scalar_loop() {
        let (n, k) = (5usize, 9usize);
        let w: Vec<i8> = (0..n * k).map(|i| ((i * 37) % 255) as i8).collect();
        let x: Vec<i8> = (0..k).map(|i| ((i * 91) % 255) as i8).collect();
        let bias: Vec<f32> = (0..n).map(|i| i as f32 - 2.0).collect();
        let (ws, xs) = (0.03f32, 0.07f32);
        let mut out = vec![0.0; n];
        matvec_i8_bias(&w, &x, &bias, n, k, ws, xs, &mut out);
        for o in 0..n {
            let mut acc: i32 = 0;
            for t in 0..k {
                acc += w[o * k + t] as i32 * x[t] as i32;
            }
            assert_eq!(out[o], acc as f32 * ws * xs + bias[o], "neuron {o}");
        }
    }

    #[test]
    fn lstm_gates_match_scalar_loop() {
        let (input, hidden) = (5usize, 3usize); // 4*hidden = 12 = 3 tiles
        let n = 4 * hidden;
        let wx: Vec<f32> = (0..n * input).map(|i| (i as f32 * 0.7).sin()).collect();
        let wh: Vec<f32> = (0..n * hidden).map(|i| (i as f32 * 1.3).cos()).collect();
        let bias: Vec<f32> = (0..n).map(|i| i as f32 * 0.05).collect();
        let xt: Vec<f32> = (0..input).map(|i| i as f32 * 0.2 - 0.4).collect();
        let h: Vec<f32> = (0..hidden).map(|i| 0.1 * i as f32).collect();
        let mut gates = vec![0.0; n];
        lstm_gates(&wx, &wh, &bias, &xt, &h, input, hidden, &mut gates);
        for g in 0..n {
            let mut acc = bias[g];
            for i in 0..input {
                acc += wx[g * input + i] * xt[i];
            }
            for j in 0..hidden {
                acc += wh[g * hidden + j] * h[j];
            }
            assert_eq!(gates[g], acc, "gate {g}");
        }
    }

    #[test]
    fn packed_gemm_matches_unpacked_across_tile_boundaries() {
        // m spans below/at/above MR, n spans below/at/above NB.
        for &m in &[1usize, 3, 4, 5, 8, 9] {
            for &n in &[1usize, 63, 64, 65] {
                let k = 7usize;
                let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.37).sin()).collect();
                let b: Vec<f32> = (0..n * k).map(|i| (i as f32 * 0.19).cos()).collect();
                let bias: Vec<f32> = (0..m).map(|i| i as f32 * 0.1 - 0.2).collect();
                let mut packed = Vec::new();
                pack_bt_panels(&a, m, k, &mut packed);
                let mut want = vec![0.0; m * n];
                gemm_bt_bias_rows_bf16(&a, &b, &bias, m, n, k, &mut want);
                let mut got = vec![0.0; m * n];
                gemm_packed_bt_bias_rows_bf16(&packed, &b, &bias, m, n, k, &mut got);
                assert_eq!(got, want, "m={m} n={n}");
            }
        }
    }

    #[test]
    fn packed_matvec_matches_unpacked() {
        for &n in &[1usize, 4, 7, 16] {
            let k = 9usize;
            let w: Vec<f32> = (0..n * k).map(|i| (i as f32).sin()).collect();
            let x: Vec<f32> = (0..k).map(|i| (i as f32).cos()).collect();
            let bias: Vec<f32> = (0..n).map(|i| i as f32 * 0.05).collect();
            let mut packed = Vec::new();
            pack_bt_panels(&w, n, k, &mut packed);
            let mut want = vec![0.0; n];
            matvec_bias_bf16(&w, &bias, &x, n, k, &mut want);
            let mut got = vec![0.0; n];
            matvec_packed_bias_bf16(&packed, &bias, &x, n, k, &mut got);
            assert_eq!(got, want, "n={n}");
        }
    }

    #[test]
    fn packed_lstm_gates_match_serial_kernel() {
        let (input, hidden, batch) = (5usize, 3usize, 4usize); // 4*hidden = 12
        let n = 4 * hidden;
        let wx: Vec<f32> = (0..n * input).map(|i| (i as f32 * 0.7).sin()).collect();
        let wh: Vec<f32> = (0..n * hidden).map(|i| (i as f32 * 1.3).cos()).collect();
        let bias: Vec<f32> = (0..n).map(|i| i as f32 * 0.05).collect();
        let (mut pwx, mut pwh) = (Vec::new(), Vec::new());
        pack_bt_panels(&wx, n, input, &mut pwx);
        pack_bt_panels(&wh, n, hidden, &mut pwh);
        // Sample-major [batch, steps=2, input]; read timestep 1.
        let steps = 2usize;
        let x: Vec<f32> = (0..batch * steps * input)
            .map(|i| (i as f32 * 0.11).sin())
            .collect();
        let h: Vec<f32> = (0..batch * hidden).map(|i| 0.1 * i as f32).collect();
        let mut gates = vec![0.0; batch * n];
        lstm_gates_packed_batch(
            &pwx,
            &pwh,
            &bias,
            &x,
            input,
            steps * input,
            &h,
            batch,
            input,
            hidden,
            &mut gates,
        );
        for s in 0..batch {
            let mut want = vec![0.0; n];
            lstm_gates(
                &wx,
                &wh,
                &bias,
                &x[s * steps * input + input..s * steps * input + 2 * input],
                &h[s * hidden..(s + 1) * hidden],
                input,
                hidden,
                &mut want,
            );
            assert_eq!(&gates[s * n..(s + 1) * n], &want[..], "sample {s}");
        }
    }

    #[test]
    fn batched_im2col_stacks_per_sample_unfolds() {
        let (batch, in_c, h, w) = (3usize, 2usize, 4usize, 3usize);
        let (kh, kw) = (2usize, 2usize);
        let (stride, padding) = ((1usize, 1usize), (1usize, 0usize));
        let (oh, ow) = (5usize, 2usize);
        let k = in_c * kh * kw;
        let x: Vec<f32> = (0..batch * in_c * h * w)
            .map(|i| (i as f32 - 11.0) * 0.25)
            .collect();
        let mut stacked = vec![0.0; batch * oh * ow * k];
        im2col_batch(
            &x,
            batch,
            in_c,
            h,
            w,
            kh,
            kw,
            stride,
            padding,
            oh,
            ow,
            &mut stacked,
        );
        for s in 0..batch {
            let mut single = vec![0.0; oh * ow * k];
            im2col(
                &x[s * in_c * h * w..(s + 1) * in_c * h * w],
                in_c,
                h,
                w,
                kh,
                kw,
                stride,
                padding,
                oh,
                ow,
                &mut single,
            );
            assert_eq!(
                &stacked[s * oh * ow * k..(s + 1) * oh * ow * k],
                &single[..],
                "sample {s}"
            );
        }
    }

    #[test]
    fn attn_kernels_match_scalar_loops() {
        let (t, d_model, off, d_head) = (5usize, 8usize, 2usize, 6usize);
        let q: Vec<f32> = (0..t * d_model).map(|i| (i as f32 * 0.31).sin()).collect();
        let k: Vec<f32> = (0..t * d_model).map(|i| (i as f32 * 0.17).cos()).collect();
        let v: Vec<f32> = (0..t * d_model).map(|i| (i as f32 * 0.11).sin()).collect();
        let scale = 1.0 / (d_head as f32).sqrt();
        let mut scores = vec![0.0; t * t];
        attn_scores(&q, &k, t, d_model, off, d_head, scale, &mut scores);
        for i in 0..t {
            for j in 0..t {
                let qi = &q[i * d_model + off..i * d_model + off + d_head];
                let kj = &k[j * d_model + off..j * d_model + off + d_head];
                let dot: f32 = qi.iter().zip(kj).map(|(a, b)| a * b).sum();
                assert_eq!(scores[i * t + j], dot * scale, "score {i},{j}");
            }
        }
        let mut ctx = vec![0.0; t * d_model];
        attn_context(&scores, &v, t, d_model, off, d_head, &mut ctx);
        for i in 0..t {
            for d in 0..d_head {
                let mut acc = 0.0f32;
                for j in 0..t {
                    acc += scores[i * t + j] * v[j * d_model + off + d];
                }
                assert_eq!(ctx[i * d_model + off + d], acc, "ctx {i},{d}");
            }
        }
    }
}
