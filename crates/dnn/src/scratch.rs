//! A reusable buffer arena for allocation-free inference.
//!
//! Every layer's fast path ([`Conv2d::forward_scratch`] and friends)
//! draws its intermediate buffers and output tensors from a
//! [`ScratchPad`] instead of the global allocator. The pad keeps a
//! free list of retired buffers; once a model has run a couple of
//! forward passes the pool holds a buffer for every shape the network
//! produces and steady-state inference performs **zero heap
//! allocations** (asserted by the `zero_alloc` integration test with a
//! counting global allocator).
//!
//! Ownership protocol:
//!
//! * `take` / `take_tensor` hand out a **zero-filled** buffer of the
//!   exact requested length (matching `Tensor::zeros` semantics).
//! * The caller owns the buffer until it returns it with `give` /
//!   `give_tensor`; buffers are never reclaimed implicitly, so holding
//!   two live tensors from the same pad is always safe.
//! * A buffer that cannot be satisfied from the free list is allocated
//!   fresh and counted in [`ScratchPad::misses`]; after warm-up the
//!   miss counter must stop growing.
//!
//! [`Conv2d::forward_scratch`]: crate::ops::Conv2d::forward_scratch

use crate::tensor::Tensor;

/// A best-fit free-list pool of `f32` and `i8` buffers.
#[derive(Debug, Default)]
pub struct ScratchPad {
    f32_pool: Vec<Vec<f32>>,
    i8_pool: Vec<Vec<i8>>,
    misses: u64,
}

impl ScratchPad {
    /// Creates an empty pad (no allocation until the first `take`).
    pub fn new() -> Self {
        ScratchPad::default()
    }

    /// Takes a zero-filled `f32` buffer of exactly `len` elements.
    ///
    /// Reuses the smallest pooled buffer whose capacity fits (best fit);
    /// allocates — and counts a miss — only when none fits.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        let mut buf = match best_fit(&self.f32_pool, len) {
            Some(i) => self.f32_pool.swap_remove(i),
            None => {
                self.misses += 1;
                Vec::with_capacity(len)
            }
        };
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Takes an `f32` buffer of exactly `len` elements with
    /// **unspecified contents**.
    ///
    /// Cheaper than [`Self::take`] on large buffers because pooled
    /// storage is not re-zeroed (only capacity growth is zero-filled).
    /// Only for buffers the caller fully overwrites before reading —
    /// im2col patch matrices and GEMM outputs in the batched inference
    /// path, where every element is written by construction.
    pub fn take_dirty(&mut self, len: usize) -> Vec<f32> {
        let mut buf = match best_fit(&self.f32_pool, len) {
            Some(i) => self.f32_pool.swap_remove(i),
            None => {
                self.misses += 1;
                Vec::with_capacity(len)
            }
        };
        if buf.len() > len {
            buf.truncate(len);
        } else {
            buf.resize(len, 0.0);
        }
        buf
    }

    /// Returns an `f32` buffer to the pool.
    pub fn give(&mut self, buf: Vec<f32>) {
        if buf.capacity() > 0 {
            self.f32_pool.push(buf);
        }
    }

    /// Takes a zero-filled tensor of `shape` backed by a pooled buffer.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or has a zero dimension.
    pub fn take_tensor(&mut self, shape: &[usize]) -> Tensor {
        let len = shape.iter().product();
        Tensor::from_vec(self.take(len), shape)
    }

    /// Returns a tensor's storage to the pool.
    pub fn give_tensor(&mut self, t: Tensor) {
        self.give(t.into_vec());
    }

    /// Takes a zero-filled `i8` buffer of exactly `len` elements (used by
    /// the INT8 activation-quantization path).
    pub fn take_i8(&mut self, len: usize) -> Vec<i8> {
        let mut buf = match best_fit(&self.i8_pool, len) {
            Some(i) => self.i8_pool.swap_remove(i),
            None => {
                self.misses += 1;
                Vec::with_capacity(len)
            }
        };
        buf.clear();
        buf.resize(len, 0);
        buf
    }

    /// Returns an `i8` buffer to the pool.
    pub fn give_i8(&mut self, buf: Vec<i8>) {
        if buf.capacity() > 0 {
            self.i8_pool.push(buf);
        }
    }

    /// How many `take`s could not be served from the pool (each miss is
    /// one heap allocation). Stable across calls once warmed up.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Buffers currently sitting in the free list.
    pub fn pooled_buffers(&self) -> usize {
        self.f32_pool.len() + self.i8_pool.len()
    }
}

/// Index of the smallest pooled buffer with capacity >= `len`.
fn best_fit<T>(pool: &[Vec<T>], len: usize) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None;
    for (i, v) in pool.iter().enumerate() {
        let cap = v.capacity();
        if cap >= len && best.is_none_or(|(_, c)| cap < c) {
            best = Some((i, cap));
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zero_filled_and_sized() {
        let mut pad = ScratchPad::new();
        let mut b = pad.take(8);
        assert_eq!(b.len(), 8);
        assert!(b.iter().all(|&v| v == 0.0));
        b[3] = 5.0;
        pad.give(b);
        // Reuse must re-zero.
        let b2 = pad.take(8);
        assert!(b2.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn take_dirty_reuses_without_rezeroing() {
        let mut pad = ScratchPad::new();
        let mut b = pad.take(16);
        b.fill(7.0);
        pad.give(b);
        let b2 = pad.take_dirty(8);
        assert_eq!(b2.len(), 8);
        assert_eq!(pad.misses(), 1, "dirty take must hit the pool");
        // Contents are unspecified; here the stale values survive,
        // which is exactly the re-zeroing the dirty take avoids.
        assert!(b2.iter().all(|&v| v == 7.0));
        pad.give(b2);
        // Growth within pooled capacity zero-fills only the new region.
        let b3 = pad.take_dirty(12);
        assert_eq!(b3.len(), 12);
        assert_eq!(pad.misses(), 1, "capacity-16 buffer serves the take");
        assert!(b3[..8].iter().all(|&v| v == 7.0));
        assert!(b3[8..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn reuse_does_not_miss() {
        let mut pad = ScratchPad::new();
        let b = pad.take(16);
        assert_eq!(pad.misses(), 1);
        pad.give(b);
        let b2 = pad.take(16);
        assert_eq!(pad.misses(), 1, "second take of same size must hit");
        assert_eq!(b2.capacity(), 16);
    }

    #[test]
    fn best_fit_prefers_smallest_adequate() {
        let mut pad = ScratchPad::new();
        let small = pad.take(4);
        let big = pad.take(100);
        pad.give(big);
        pad.give(small);
        let b = pad.take(3);
        assert!(b.capacity() < 100, "must pick the 4-capacity buffer");
        assert_eq!(pad.misses(), 2);
    }

    #[test]
    fn smaller_pooled_buffer_does_not_serve_larger_take() {
        let mut pad = ScratchPad::new();
        pad.give(pad_buf(4));
        let b = pad.take(8);
        assert_eq!(b.len(), 8);
        assert_eq!(pad.misses(), 1);
    }

    fn pad_buf(len: usize) -> Vec<f32> {
        vec![0.0; len]
    }

    #[test]
    fn tensor_round_trip_reuses_storage() {
        let mut pad = ScratchPad::new();
        let t = pad.take_tensor(&[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        let ptr = t.data().as_ptr();
        pad.give_tensor(t);
        let t2 = pad.take_tensor(&[3, 2]);
        assert_eq!(t2.data().as_ptr(), ptr, "same buffer, new shape");
        assert_eq!(pad.misses(), 1);
    }

    #[test]
    fn i8_pool_is_separate() {
        let mut pad = ScratchPad::new();
        let q = pad.take_i8(10);
        assert_eq!(q.len(), 10);
        pad.give_i8(q);
        let _ = pad.take_i8(10);
        assert_eq!(pad.misses(), 1);
        assert_eq!(pad.pooled_buffers(), 0);
    }
}
