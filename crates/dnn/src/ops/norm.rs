//! Layer normalization (used by the transformer blocks).

use crate::ops::expect_rank;
use crate::scratch::ScratchPad;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Layer norm over the last dimension of a `[T, D]` tensor, with learned
/// scale and shift.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerNorm {
    gamma: Vec<f32>,
    beta: Vec<f32>,
    eps: f32,
}

impl LayerNorm {
    /// Creates an identity-initialized layer norm of width `dim`.
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: vec![1.0; dim],
            beta: vec![0.0; dim],
            eps: 1e-5,
        }
    }

    /// Normalized width.
    pub fn dim(&self) -> usize {
        self.gamma.len()
    }

    /// Normalizes each row of `[T, D]` to zero mean / unit variance, then
    /// applies scale and shift.
    ///
    /// # Panics
    ///
    /// Panics if the input is not rank 2 of width [`Self::dim`].
    pub fn forward(&self, x: &Tensor) -> Tensor {
        self.forward_scratch(x, &mut ScratchPad::new())
    }

    /// [`Self::forward`] drawing the output from `pad` and writing rows
    /// through slices. Bit-identical to [`Self::forward_reference`].
    ///
    /// # Panics
    ///
    /// Panics if the input is not rank 2 of width [`Self::dim`].
    pub fn forward_scratch(&self, x: &Tensor, pad: &mut ScratchPad) -> Tensor {
        expect_rank(x, 2, "LayerNorm");
        let (t, d) = (x.shape()[0], x.shape()[1]);
        assert_eq!(d, self.dim(), "width mismatch");
        let mut out = pad.take_tensor(&[t, d]);
        for r in 0..t {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / d as f32;
            let inv = 1.0 / (var + self.eps).sqrt();
            let orow = &mut out.data_mut()[r * d..(r + 1) * d];
            for c in 0..d {
                orow[c] = (row[c] - mean) * inv * self.gamma[c] + self.beta[c];
            }
        }
        out
    }

    /// The naive reference implementation (kept for equivalence tests
    /// and the benchmark baseline).
    ///
    /// # Panics
    ///
    /// Panics if the input is not rank 2 of width [`Self::dim`].
    pub fn forward_reference(&self, x: &Tensor) -> Tensor {
        expect_rank(x, 2, "LayerNorm");
        let (t, d) = (x.shape()[0], x.shape()[1]);
        assert_eq!(d, self.dim(), "width mismatch");
        let mut out = Tensor::zeros(&[t, d]);
        for r in 0..t {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / d as f32;
            let inv = 1.0 / (var + self.eps).sqrt();
            for (c, &v) in row.iter().enumerate() {
                out.set(&[r, c], (v - mean) * inv * self.gamma[c] + self.beta[c]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_rows() {
        let ln = LayerNorm::new(4);
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 100.0, 200.0, 300.0, 400.0],
            &[2, 4],
        );
        let y = ln.forward(&x);
        for r in 0..2 {
            let row = y.row(r);
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
        // Both rows normalize to (nearly) the same values: layer norm is
        // scale-invariant per row up to the epsilon regularizer.
        for (a, b) in y.row(0).iter().zip(y.row(1)) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn constant_row_is_stable() {
        let ln = LayerNorm::new(3);
        let x = Tensor::from_vec(vec![5.0, 5.0, 5.0], &[1, 3]);
        let y = ln.forward(&x);
        assert!(y.data().iter().all(|v| v.is_finite()));
        assert!(y.data().iter().all(|v| v.abs() < 1e-2));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let ln = LayerNorm::new(3);
        let _ = ln.forward(&Tensor::zeros(&[1, 4]));
    }
}
