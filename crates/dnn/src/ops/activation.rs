//! Elementwise activations and softmax.

use crate::ops::expect_rank;
use crate::tensor::Tensor;

/// ReLU in place.
pub fn relu(t: &mut Tensor) {
    relu_slice(t.data_mut());
}

/// [`relu`] over a raw slice (used by the batched forward paths, which
/// keep activations in flat sample-major buffers).
pub fn relu_slice(data: &mut [f32]) {
    for v in data {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// Leaky ReLU in place (DeepLOB uses `alpha = 0.01`).
pub fn leaky_relu(t: &mut Tensor, alpha: f32) {
    leaky_relu_slice(t.data_mut(), alpha);
}

/// [`leaky_relu`] over a raw slice.
pub fn leaky_relu_slice(data: &mut [f32], alpha: f32) {
    for v in data {
        if *v < 0.0 {
            *v *= alpha;
        }
    }
}

/// Logistic sigmoid of a scalar.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Hyperbolic tangent in place.
pub fn tanh_inplace(t: &mut Tensor) {
    for v in t.data_mut() {
        *v = v.tanh();
    }
}

/// Numerically stable softmax over the last dimension of a rank-1 or
/// rank-2 tensor, in place.
///
/// # Panics
///
/// Panics for tensors of rank 3 or higher.
pub fn softmax_last_dim(t: &mut Tensor) {
    let rank = t.shape().len();
    let (rows, cols) = match rank {
        1 => (1, t.shape()[0]),
        2 => (t.shape()[0], t.shape()[1]),
        _ => {
            expect_rank(t, 2, "softmax_last_dim");
            unreachable!()
        }
    };
    softmax_rows(t.data_mut(), rows, cols);
}

/// [`softmax_last_dim`] over a raw `rows x cols` slice (used by the
/// scratch-pad attention path; identical arithmetic).
pub fn softmax_rows(data: &mut [f32], rows: usize, cols: usize) {
    debug_assert_eq!(data.len(), rows * cols);
    for r in 0..rows {
        let row = &mut data[r * cols..(r + 1) * cols];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_zeroes_negatives() {
        let mut t = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]);
        relu(&mut t);
        assert_eq!(t.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn leaky_relu_scales_negatives() {
        let mut t = Tensor::from_vec(vec![-2.0, 3.0], &[2]);
        leaky_relu(&mut t, 0.01);
        assert_eq!(t.data(), &[-0.02, 3.0]);
    }

    #[test]
    fn sigmoid_bounds_and_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(10.0) > 0.9999);
        assert!(sigmoid(-10.0) < 0.0001);
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        softmax_last_dim(&mut t);
        for r in 0..2 {
            let sum: f32 = t.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
            assert!(t.row(r).iter().all(|&v| v > 0.0));
        }
        // Larger logits get larger probabilities.
        assert!(t.at(&[0, 2]) > t.at(&[0, 0]));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let mut a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let mut b = Tensor::from_vec(vec![101.0, 102.0, 103.0], &[3]);
        softmax_last_dim(&mut a);
        softmax_last_dim(&mut b);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_survives_large_logits() {
        let mut t = Tensor::from_vec(vec![1000.0, 999.0], &[2]);
        softmax_last_dim(&mut t);
        assert!(t.data().iter().all(|v| v.is_finite()));
        assert!((t.data().iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn tanh_matches_std() {
        let mut t = Tensor::from_vec(vec![-1.0, 0.5], &[2]);
        tanh_inplace(&mut t);
        assert!((t.data()[0] - (-1.0f32).tanh()).abs() < 1e-7);
        assert!((t.data()[1] - 0.5f32.tanh()).abs() < 1e-7);
    }
}
