//! Analytic multiply-accumulate counters.
//!
//! "Total OPs" throughout the workspace follows the paper's Table II
//! convention: one MAC counts as **two** operations (a multiply and an
//! add). The counters here are pure arithmetic — no tensors are touched —
//! so the accelerator's latency model can price a paper-scale network
//! without materializing it.

/// Operations per MAC (multiply + accumulate).
pub const OPS_PER_MAC: u64 = 2;

/// MACs of a dense layer applied at `rows` positions: `rows x in -> rows x out`.
pub fn linear_macs(rows: u64, input: u64, output: u64) -> u64 {
    rows * input * output
}

/// MACs of a 2-D convolution producing an `out_h x out_w` map with
/// `out_c` output channels from `in_c` input channels under a
/// `k_h x k_w` kernel.
pub fn conv2d_macs(out_c: u64, in_c: u64, k_h: u64, k_w: u64, out_h: u64, out_w: u64) -> u64 {
    out_c * in_c * k_h * k_w * out_h * out_w
}

/// Output length of a 1-D convolution/pool along one axis.
pub fn conv_out_len(input: u64, kernel: u64, stride: u64, padding: u64) -> u64 {
    assert!(stride > 0, "stride must be positive");
    let padded = input + 2 * padding;
    assert!(
        padded >= kernel,
        "kernel {kernel} larger than padded input {padded}"
    );
    (padded - kernel) / stride + 1
}

/// MACs of an LSTM over `steps` timesteps with `input`-wide inputs and
/// `hidden`-wide state (four gates, each input and recurrent).
pub fn lstm_macs(steps: u64, input: u64, hidden: u64) -> u64 {
    steps * 4 * (input * hidden + hidden * hidden)
}

/// MACs of one multi-head self-attention block over a length-`seq`
/// sequence of `d_model`-wide tokens: Q/K/V/O projections plus the two
/// `seq x seq` attention matmuls.
pub fn attention_macs(seq: u64, d_model: u64) -> u64 {
    4 * linear_macs(seq, d_model, d_model) + 2 * seq * seq * d_model
}

/// MACs of a transformer feed-forward block (`d_model -> d_ff -> d_model`).
pub fn ffn_macs(seq: u64, d_model: u64, d_ff: u64) -> u64 {
    linear_macs(seq, d_model, d_ff) + linear_macs(seq, d_ff, d_model)
}

/// Converts MACs to the paper's "total OPs".
pub fn macs_to_ops(macs: u64) -> u64 {
    macs * OPS_PER_MAC
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_count() {
        assert_eq!(linear_macs(1, 128, 64), 8192);
        assert_eq!(linear_macs(10, 128, 64), 81920);
    }

    #[test]
    fn conv_count_matches_definition() {
        // 8 output channels, 3 input channels, 3x3 kernel, 10x10 output:
        assert_eq!(conv2d_macs(8, 3, 3, 3, 10, 10), 8 * 3 * 9 * 100);
    }

    #[test]
    fn conv_out_len_cases() {
        assert_eq!(conv_out_len(10, 3, 1, 0), 8);
        assert_eq!(conv_out_len(10, 3, 1, 1), 10, "same padding");
        assert_eq!(conv_out_len(10, 2, 2, 0), 5, "strided downsample");
        assert_eq!(conv_out_len(7, 7, 1, 0), 1, "full-width kernel");
    }

    #[test]
    #[should_panic(expected = "kernel")]
    fn oversized_kernel_panics() {
        let _ = conv_out_len(3, 5, 1, 0);
    }

    #[test]
    fn lstm_count() {
        // One step, 2-wide input, 3-wide hidden: 4 gates x (2*3 + 3*3).
        assert_eq!(lstm_macs(1, 2, 3), 4 * (6 + 9));
        assert_eq!(lstm_macs(10, 2, 3), 40 * 15);
    }

    #[test]
    fn attention_count() {
        // seq=2, d=4: projections 4*2*16=128, scores+context 2*4*4=32...
        assert_eq!(attention_macs(2, 4), 4 * 2 * 16 + 2 * 2 * 2 * 4);
    }

    #[test]
    fn ffn_count() {
        assert_eq!(ffn_macs(2, 4, 16), 2 * 4 * 16 + 2 * 16 * 4);
    }

    #[test]
    fn ops_are_double_macs() {
        assert_eq!(macs_to_ops(5), 10);
    }
}
