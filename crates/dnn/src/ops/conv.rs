//! 2-D convolution over `[C, H, W]` feature maps.

use crate::batch::{scatter_samples, PackedPanels};
use crate::bf16::bf16_round;
use crate::kernels::{
    conv2d_kw1_direct_bf16, gemm_bt_bias_rows_bf16, gemm_packed_bt_bias_rows_bf16, im2col,
};
use crate::ops::count::{conv2d_macs, conv_out_len};
use crate::ops::expect_rank;
use crate::scratch::ScratchPad;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A 2-D convolution with optional stride and zero padding.
///
/// Input layout is `[in_c, H, W]`; kernels are `[out_c, in_c, k_h, k_w]`.
/// LOB models treat `H` as tick time and `W` as the flattened level axis
/// (paper Fig. 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conv2d {
    kernel: Tensor,
    bias: Vec<f32>,
    stride: (usize, usize),
    padding: (usize, usize),
}

impl Conv2d {
    /// Creates a convolution with Xavier-uniform weights.
    ///
    /// # Panics
    ///
    /// Panics if a stride component is zero.
    pub fn new(
        in_c: usize,
        out_c: usize,
        kernel: (usize, usize),
        stride: (usize, usize),
        padding: (usize, usize),
        seed: u64,
    ) -> Self {
        assert!(stride.0 > 0 && stride.1 > 0, "stride must be positive");
        let fan_in = in_c * kernel.0 * kernel.1;
        let fan_out = out_c * kernel.0 * kernel.1;
        let scale = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Conv2d {
            kernel: Tensor::random(&[out_c, in_c, kernel.0, kernel.1], scale, seed).quantize_bf16(),
            bias: vec![0.0; out_c],
            stride,
            padding,
        }
    }

    /// Creates a convolution from explicit weights (tests / references).
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatches.
    pub fn from_weights(
        kernel: Tensor,
        bias: Vec<f32>,
        stride: (usize, usize),
        padding: (usize, usize),
    ) -> Self {
        assert_eq!(kernel.shape().len(), 4, "kernel must be [out,in,kh,kw]");
        assert_eq!(kernel.shape()[0], bias.len(), "bias length mismatch");
        assert!(stride.0 > 0 && stride.1 > 0, "stride must be positive");
        Conv2d {
            kernel,
            bias,
            stride,
            padding,
        }
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.kernel.shape()[0]
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.kernel.shape()[1]
    }

    /// Output spatial size for an `(h, w)` input.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let kh = self.kernel.shape()[2] as u64;
        let kw = self.kernel.shape()[3] as u64;
        (
            conv_out_len(h as u64, kh, self.stride.0 as u64, self.padding.0 as u64) as usize,
            conv_out_len(w as u64, kw, self.stride.1 as u64, self.padding.1 as u64) as usize,
        )
    }

    /// Applies the convolution; outputs are BF16-rounded.
    ///
    /// Runs the fast im2col + blocked-GEMM path on a throwaway
    /// [`ScratchPad`]; use [`Self::forward_scratch`] to reuse buffers
    /// across calls.
    ///
    /// # Panics
    ///
    /// Panics if the input is not rank 3 or its channel count mismatches.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        self.forward_scratch(x, &mut ScratchPad::new())
    }

    /// Applies the convolution via im2col + cache-blocked GEMM, drawing
    /// the patch buffer and output from `pad`.
    ///
    /// Bit-identical to [`Self::forward_reference`] (see
    /// [`crate::kernels`] for the accumulation-order contract).
    ///
    /// # Panics
    ///
    /// Panics if the input is not rank 3 or its channel count mismatches.
    pub fn forward_scratch(&self, x: &Tensor, pad: &mut ScratchPad) -> Tensor {
        expect_rank(x, 3, "Conv2d");
        let [in_c, h, w] = [x.shape()[0], x.shape()[1], x.shape()[2]];
        assert_eq!(in_c, self.in_channels(), "input channel mismatch");
        let (kh, kw) = (self.kernel.shape()[2], self.kernel.shape()[3]);
        let (oh, ow) = self.output_hw(h, w);
        let out_c = self.out_channels();
        let k = in_c * kh * kw;
        let positions = oh * ow;
        let mut patches = pad.take(positions * k);
        im2col(
            x.data(),
            in_c,
            h,
            w,
            kh,
            kw,
            self.stride,
            self.padding,
            oh,
            ow,
            &mut patches,
        );
        let mut out = pad.take_tensor(&[out_c, oh, ow]);
        gemm_bt_bias_rows_bf16(
            self.kernel.data(),
            &patches,
            &self.bias,
            out_c,
            positions,
            k,
            out.data_mut(),
        );
        pad.give(patches);
        out
    }

    /// Packs the `[out_c, in_c * kh * kw]` kernel matrix into register
    /// panels for the batched forward path.
    pub fn pack(&self) -> PackedPanels {
        let k = self.in_channels() * self.kernel.shape()[2] * self.kernel.shape()[3];
        PackedPanels::pack(self.kernel.data(), self.out_channels(), k)
    }

    /// Batched convolution over a sample-major `[batch, in_c, h, w]`
    /// activation block, writing `[batch, out_c, oh * ow]` into `out`.
    ///
    /// Unfolds the whole batch into one stacked `[batch * oh * ow, k]`
    /// im2col patch matrix drawn from `pad`, then sweeps it with the
    /// prepacked-panel GEMM — per sample bit-identical to
    /// [`Self::forward_scratch`], since stacking only extends the GEMM's
    /// output `n` dimension and packing only permutes the A layout.
    /// `threads > 1` scatters contiguous sample chunks across scoped
    /// threads (disjoint patch/output slices, unchanged accumulation).
    ///
    /// # Panics
    ///
    /// Panics on buffer-length or packed-shape mismatches.
    #[allow(clippy::too_many_arguments)]
    pub fn forward_batch_packed(
        &self,
        x: &[f32],
        batch: usize,
        h: usize,
        w: usize,
        packed: &PackedPanels,
        threads: usize,
        pad: &mut ScratchPad,
        out: &mut [f32],
    ) {
        let in_c = self.in_channels();
        let out_c = self.out_channels();
        let (kh, kw) = (self.kernel.shape()[2], self.kernel.shape()[3]);
        let (oh, ow) = self.output_hw(h, w);
        let k = in_c * kh * kw;
        let positions = oh * ow;
        assert_eq!(packed.m(), out_c, "packed kernel row mismatch");
        assert_eq!(packed.k(), k, "packed kernel width mismatch");
        assert_eq!(x.len(), batch * in_c * h * w, "batched conv input length");
        assert_eq!(
            out.len(),
            batch * out_c * positions,
            "batched conv output length"
        );
        // Width-1 unit-stride kernels (the dominant shape in all three
        // networks) skip patch materialization entirely: each tap is an
        // axpy over a shifted input slice, bit-identical to the GEMM.
        if kw == 1 && self.stride == (1, 1) && self.padding.1 == 0 {
            let mut work = pad.take_dirty(batch * positions);
            scatter_samples(
                threads,
                batch,
                &mut work,
                positions,
                out,
                out_c * positions,
                |s, acc, o| {
                    conv2d_kw1_direct_bf16(
                        self.kernel.data(),
                        &self.bias,
                        &x[s * in_c * h * w..(s + 1) * in_c * h * w],
                        in_c,
                        h,
                        w,
                        kh,
                        self.padding.0,
                        out_c,
                        acc,
                        o,
                    );
                },
            );
            pad.give(work);
            return;
        }
        // Fully overwritten below (im2col writes every patch element,
        // the GEMM writes every output), so both skip the zero fill.
        let mut patches = pad.take_dirty(batch * positions * k);
        scatter_samples(
            threads,
            batch,
            &mut patches,
            positions * k,
            out,
            out_c * positions,
            |s, patch, o| {
                im2col(
                    &x[s * in_c * h * w..(s + 1) * in_c * h * w],
                    in_c,
                    h,
                    w,
                    kh,
                    kw,
                    self.stride,
                    self.padding,
                    oh,
                    ow,
                    patch,
                );
                gemm_packed_bt_bias_rows_bf16(
                    packed.data(),
                    patch,
                    &self.bias,
                    out_c,
                    positions,
                    k,
                    o,
                );
            },
        );
        pad.give(patches);
    }

    /// The naive reference convolution (kept for equivalence tests and
    /// the benchmark baseline); outputs are BF16-rounded.
    ///
    /// # Panics
    ///
    /// Panics if the input is not rank 3 or its channel count mismatches.
    pub fn forward_reference(&self, x: &Tensor) -> Tensor {
        expect_rank(x, 3, "Conv2d");
        let [in_c, h, w] = [x.shape()[0], x.shape()[1], x.shape()[2]];
        assert_eq!(in_c, self.in_channels(), "input channel mismatch");
        let (kh, kw) = (self.kernel.shape()[2], self.kernel.shape()[3]);
        let (oh, ow) = self.output_hw(h, w);
        let out_c = self.out_channels();
        let mut out = Tensor::zeros(&[out_c, oh, ow]);
        let (ph, pw) = self.padding;
        for oc in 0..out_c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = self.bias[oc];
                    let base_y = oy * self.stride.0;
                    let base_x = ox * self.stride.1;
                    for ic in 0..in_c {
                        for ky in 0..kh {
                            let iy = base_y + ky;
                            if iy < ph || iy - ph >= h {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = base_x + kx;
                                if ix < pw || ix - pw >= w {
                                    continue;
                                }
                                acc += self.kernel.at(&[oc, ic, ky, kx])
                                    * x.at(&[ic, iy - ph, ix - pw]);
                            }
                        }
                    }
                    out.set(&[oc, oy, ox], bf16_round(acc));
                }
            }
        }
        out
    }

    /// MACs of a forward pass on an `(h, w)` input.
    pub fn macs(&self, h: usize, w: usize) -> u64 {
        let (oh, ow) = self.output_hw(h, w);
        conv2d_macs(
            self.out_channels() as u64,
            self.in_channels() as u64,
            self.kernel.shape()[2] as u64,
            self.kernel.shape()[3] as u64,
            oh as u64,
            ow as u64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 1x1 kernel with weight 1 is the identity.
    #[test]
    fn one_by_one_identity() {
        let kernel = Tensor::from_vec(vec![1.0], &[1, 1, 1, 1]);
        let conv = Conv2d::from_weights(kernel, vec![0.0], (1, 1), (0, 0));
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]);
        assert_eq!(conv.forward(&x).data(), x.data());
    }

    /// Hand-computed 2x2 box filter over a 3x3 input.
    #[test]
    fn box_filter_reference() {
        let kernel = Tensor::from_vec(vec![1.0; 4], &[1, 1, 2, 2]);
        let conv = Conv2d::from_weights(kernel, vec![0.0], (1, 1), (0, 0));
        let x = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 3, 3]);
        let y = conv.forward(&x);
        assert_eq!(y.shape(), &[1, 2, 2]);
        assert_eq!(y.data(), &[12.0, 16.0, 24.0, 28.0]); // sums of 2x2 blocks
    }

    #[test]
    fn stride_downsamples() {
        let kernel = Tensor::from_vec(vec![1.0], &[1, 1, 1, 1]);
        let conv = Conv2d::from_weights(kernel, vec![0.0], (2, 2), (0, 0));
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 4, 4]);
        let y = conv.forward(&x);
        assert_eq!(y.shape(), &[1, 2, 2]);
        assert_eq!(y.data(), &[0.0, 2.0, 8.0, 10.0]);
    }

    #[test]
    fn padding_preserves_size() {
        let kernel = Tensor::from_vec(
            vec![0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0],
            &[1, 1, 3, 3],
        );
        let conv = Conv2d::from_weights(kernel, vec![0.0], (1, 1), (1, 1));
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]);
        let y = conv.forward(&x);
        assert_eq!(y.shape(), &[1, 2, 2]);
        assert_eq!(y.data(), x.data(), "center-tap kernel with same padding");
    }

    #[test]
    fn multi_channel_sums_inputs() {
        // Two input channels, kernel taps both with weight 1.
        let kernel = Tensor::from_vec(vec![1.0, 1.0], &[1, 2, 1, 1]);
        let conv = Conv2d::from_weights(kernel, vec![0.5], (1, 1), (0, 0));
        let x = Tensor::from_vec(vec![1.0, 2.0, 10.0, 20.0], &[2, 1, 2]);
        let y = conv.forward(&x);
        assert_eq!(y.data(), &[11.5, 22.5]);
    }

    #[test]
    fn bias_and_multiple_out_channels() {
        let kernel = Tensor::from_vec(vec![1.0, 2.0], &[2, 1, 1, 1]);
        let conv = Conv2d::from_weights(kernel, vec![10.0, 20.0], (1, 1), (0, 0));
        let x = Tensor::from_vec(vec![3.0], &[1, 1, 1]);
        let y = conv.forward(&x);
        assert_eq!(y.data(), &[13.0, 26.0]);
    }

    #[test]
    fn macs_match_formula() {
        let conv = Conv2d::new(3, 8, (3, 3), (1, 1), (0, 0), 0);
        // 10x10 input -> 8x8 output.
        assert_eq!(conv.macs(10, 10), 8 * 3 * 9 * 64);
        assert_eq!(conv.output_hw(10, 10), (8, 8));
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn channel_mismatch_panics() {
        let conv = Conv2d::new(3, 8, (1, 1), (1, 1), (0, 0), 0);
        let _ = conv.forward(&Tensor::zeros(&[2, 4, 4]));
    }
}
