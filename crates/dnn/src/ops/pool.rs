//! Pooling operations.

use crate::ops::expect_rank;
use crate::tensor::Tensor;

/// Max-pools a `[C, T]` tensor along `T` with the given window and stride.
///
/// # Panics
///
/// Panics if the input is not rank 2, the window is zero or larger than
/// `T`, or the stride is zero.
pub fn max_pool_1d(x: &Tensor, window: usize, stride: usize) -> Tensor {
    expect_rank(x, 2, "max_pool_1d");
    assert!(
        window > 0 && stride > 0,
        "window and stride must be positive"
    );
    let (c, t) = (x.shape()[0], x.shape()[1]);
    assert!(window <= t, "window {window} larger than input {t}");
    let out_t = (t - window) / stride + 1;
    let mut out = Tensor::zeros(&[c, out_t]);
    for ch in 0..c {
        for o in 0..out_t {
            let start = o * stride;
            let mut best = f32::NEG_INFINITY;
            for k in 0..window {
                best = best.max(x.at(&[ch, start + k]));
            }
            out.set(&[ch, o], best);
        }
    }
    out
}

/// Averages a `[C, H, W]` tensor over its spatial dims, returning `[C]`.
///
/// # Panics
///
/// Panics if the input is not rank 3.
pub fn global_avg_pool(x: &Tensor) -> Tensor {
    expect_rank(x, 3, "global_avg_pool");
    let (c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let mut out = Tensor::zeros(&[c]);
    let denom = (h * w) as f32;
    for ch in 0..c {
        let mut sum = 0.0;
        for y in 0..h {
            for xx in 0..w {
                sum += x.at(&[ch, y, xx]);
            }
        }
        out.set(&[ch], sum / denom);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_basic() {
        let x = Tensor::from_vec(vec![1.0, 3.0, 2.0, 5.0], &[1, 4]);
        let y = max_pool_1d(&x, 2, 2);
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.data(), &[3.0, 5.0]);
    }

    #[test]
    fn max_pool_overlapping() {
        let x = Tensor::from_vec(vec![1.0, 3.0, 2.0, 5.0], &[1, 4]);
        let y = max_pool_1d(&x, 2, 1);
        assert_eq!(y.data(), &[3.0, 3.0, 5.0]);
    }

    #[test]
    fn max_pool_multi_channel() {
        let x = Tensor::from_vec(vec![1.0, 2.0, -5.0, -1.0], &[2, 2]);
        let y = max_pool_1d(&x, 2, 1);
        assert_eq!(y.data(), &[2.0, -1.0]);
    }

    #[test]
    fn global_avg_pool_reference() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0], &[2, 2, 2]);
        let y = global_avg_pool(&x);
        assert_eq!(y.data(), &[2.5, 10.0]);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn oversized_window_panics() {
        let x = Tensor::zeros(&[1, 3]);
        let _ = max_pool_1d(&x, 4, 1);
    }
}
