//! Dense (fully connected) layers in BF16 and INT8.

use crate::batch::PackedPanels;
use crate::bf16::{bf16_round, quantize_int8, quantize_int8_into};
use crate::kernels::{matvec_bias_bf16, matvec_i8_bias, matvec_packed_bias_bf16};
use crate::ops::count::linear_macs;
use crate::scratch::ScratchPad;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A dense layer `y = W x + b` with BF16-rounded weights.
///
/// Accepts rank-1 input `[in]` (returns `[out]`) or rank-2 input
/// `[rows, in]` (applied row-wise, returns `[rows, out]`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    weight: Tensor, // [out, in]
    bias: Vec<f32>,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights from `seed`.
    pub fn new(input: usize, output: usize, seed: u64) -> Self {
        let scale = (6.0 / (input + output) as f32).sqrt();
        Linear {
            weight: Tensor::random(&[output, input], scale, seed).quantize_bf16(),
            bias: vec![0.0; output],
        }
    }

    /// Creates a layer from explicit weights (tests / references).
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not rank 2 or `bias` length mismatches.
    pub fn from_weights(weight: Tensor, bias: Vec<f32>) -> Self {
        assert_eq!(weight.shape().len(), 2, "weight must be [out, in]");
        assert_eq!(weight.shape()[0], bias.len(), "bias length mismatch");
        Linear { weight, bias }
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.weight.shape()[1]
    }

    /// Output width.
    pub fn output_dim(&self) -> usize {
        self.weight.shape()[0]
    }

    /// Applies the layer; outputs are BF16-rounded.
    ///
    /// Runs the register-tiled matvec path on a throwaway
    /// [`ScratchPad`]; use [`Self::forward_scratch`] to reuse buffers.
    ///
    /// # Panics
    ///
    /// Panics if the input's last dimension is not [`Self::input_dim`].
    pub fn forward(&self, x: &Tensor) -> Tensor {
        self.forward_scratch(x, &mut ScratchPad::new())
    }

    /// Applies the layer via the register-tiled matvec kernel, drawing
    /// the output from `pad`. Bit-identical to
    /// [`Self::forward_reference`].
    ///
    /// # Panics
    ///
    /// Panics if the input's last dimension is not [`Self::input_dim`].
    pub fn forward_scratch(&self, x: &Tensor, pad: &mut ScratchPad) -> Tensor {
        let (rows, input) = match x.shape() {
            [n] => (1usize, *n),
            [rows, n] => (*rows, *n),
            other => panic!("Linear expects rank 1 or 2 input, got {other:?}"),
        };
        assert_eq!(
            input,
            self.input_dim(),
            "input width {} != layer input {}",
            input,
            self.input_dim()
        );
        let output = self.output_dim();
        let mut out = if x.shape().len() == 1 {
            pad.take_tensor(&[output])
        } else {
            pad.take_tensor(&[rows, output])
        };
        for r in 0..rows {
            let xin = &x.data()[r * input..(r + 1) * input];
            matvec_bias_bf16(
                self.weight.data(),
                &self.bias,
                xin,
                output,
                input,
                &mut out.data_mut()[r * output..(r + 1) * output],
            );
        }
        out
    }

    /// Packs the `[out, in]` weight matrix into register panels for the
    /// batched forward path.
    pub fn pack(&self) -> PackedPanels {
        PackedPanels::pack(self.weight.data(), self.output_dim(), self.input_dim())
    }

    /// Applies the layer row-wise over a flat `[rows, in]` buffer using
    /// prepacked weight panels, writing `[rows, out]` into `out`.
    /// Per row bit-identical to [`Self::forward_scratch`] — packing only
    /// permutes the weight layout, never the `k` accumulation order.
    ///
    /// # Panics
    ///
    /// Panics on buffer-length or packed-shape mismatches.
    pub fn forward_batch_packed(
        &self,
        x: &[f32],
        rows: usize,
        packed: &PackedPanels,
        out: &mut [f32],
    ) {
        let (input, output) = (self.input_dim(), self.output_dim());
        assert_eq!(packed.m(), output, "packed weight row mismatch");
        assert_eq!(packed.k(), input, "packed weight width mismatch");
        assert_eq!(x.len(), rows * input, "batched linear input length");
        assert_eq!(out.len(), rows * output, "batched linear output length");
        for r in 0..rows {
            matvec_packed_bias_bf16(
                packed.data(),
                &self.bias,
                &x[r * input..(r + 1) * input],
                output,
                input,
                &mut out[r * output..(r + 1) * output],
            );
        }
    }

    /// The naive reference implementation (kept for equivalence tests
    /// and the benchmark baseline); outputs are BF16-rounded.
    ///
    /// # Panics
    ///
    /// Panics if the input's last dimension is not [`Self::input_dim`].
    pub fn forward_reference(&self, x: &Tensor) -> Tensor {
        let (rows, input) = match x.shape() {
            [n] => (1usize, *n),
            [rows, n] => (*rows, *n),
            other => panic!("Linear expects rank 1 or 2 input, got {other:?}"),
        };
        assert_eq!(
            input,
            self.input_dim(),
            "input width {} != layer input {}",
            input,
            self.input_dim()
        );
        let output = self.output_dim();
        let mut out = vec![0.0f32; rows * output];
        for r in 0..rows {
            let xin = &x.data()[r * input..(r + 1) * input];
            for o in 0..output {
                let w = self.weight.row(o);
                let mut acc = self.bias[o];
                for i in 0..input {
                    acc += w[i] * xin[i];
                }
                out[r * output + o] = bf16_round(acc);
            }
        }
        if x.shape().len() == 1 {
            Tensor::from_vec(out, &[output])
        } else {
            Tensor::from_vec(out, &[rows, output])
        }
    }

    /// MACs of a forward pass over `rows` rows.
    pub fn macs(&self, rows: u64) -> u64 {
        linear_macs(rows, self.input_dim() as u64, self.output_dim() as u64)
    }
}

/// An INT8-quantized dense layer (the latency-prioritized path, §III-C).
///
/// Weights are symmetric per-tensor quantized at construction; activations
/// are quantized per call. Accuracy is strictly worse than [`Linear`] but
/// the accelerator runs it at 4x throughput.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearInt8 {
    weight_q: Vec<i8>, // [out, in]
    weight_scale: f32,
    bias: Vec<f32>,
    input: usize,
    output: usize,
}

impl LinearInt8 {
    /// Quantizes an existing BF16 layer.
    pub fn from_linear(layer: &Linear) -> Self {
        let (weight_q, weight_scale) = quantize_int8(layer.weight.data());
        LinearInt8 {
            weight_q,
            weight_scale,
            bias: layer.bias.clone(),
            input: layer.input_dim(),
            output: layer.output_dim(),
        }
    }

    /// Applies the quantized layer to a rank-1 input.
    ///
    /// # Panics
    ///
    /// Panics if the input width mismatches.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        self.forward_scratch(x, &mut ScratchPad::new())
    }

    /// Applies the quantized layer, drawing the activation-quantization
    /// buffer and output from `pad`. Bit-identical to
    /// [`Self::forward_reference`].
    ///
    /// # Panics
    ///
    /// Panics if the input width mismatches.
    pub fn forward_scratch(&self, x: &Tensor, pad: &mut ScratchPad) -> Tensor {
        assert_eq!(x.shape(), [self.input], "LinearInt8 expects rank-1 input");
        let mut x_q = pad.take_i8(self.input);
        let x_scale = quantize_int8_into(x.data(), &mut x_q);
        let mut out = pad.take_tensor(&[self.output]);
        matvec_i8_bias(
            &self.weight_q,
            &x_q,
            &self.bias,
            self.output,
            self.input,
            self.weight_scale,
            x_scale,
            out.data_mut(),
        );
        pad.give_i8(x_q);
        out
    }

    /// The naive reference implementation (kept for equivalence tests
    /// and the benchmark baseline).
    ///
    /// # Panics
    ///
    /// Panics if the input width mismatches.
    pub fn forward_reference(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.shape(), [self.input], "LinearInt8 expects rank-1 input");
        let (x_q, x_scale) = quantize_int8(x.data());
        let mut out = vec![0.0f32; self.output];
        for (o, slot) in out.iter_mut().enumerate() {
            let w = &self.weight_q[o * self.input..(o + 1) * self.input];
            let mut acc: i32 = 0;
            for i in 0..self.input {
                acc += w[i] as i32 * x_q[i] as i32;
            }
            *slot = acc as f32 * self.weight_scale * x_scale + self.bias[o];
        }
        Tensor::from_vec(out, &[self.output])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity3() -> Linear {
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0], &[3, 3]);
        Linear::from_weights(w, vec![0.0; 3])
    }

    #[test]
    fn identity_passes_through() {
        let x = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]);
        let y = identity3().forward(&x);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn matches_naive_reference() {
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let layer = Linear::from_weights(w, vec![0.5, -0.5]);
        let x = Tensor::from_vec(vec![1.0, 1.0, 1.0], &[3]);
        let y = layer.forward(&x);
        assert_eq!(y.data(), &[6.5, 14.5]);
    }

    #[test]
    fn rank2_applies_rowwise() {
        let layer = identity3();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let y = layer.forward(&x);
        assert_eq!(y.shape(), &[2, 3]);
        assert_eq!(y.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn outputs_are_bf16() {
        let layer = Linear::new(16, 8, 1);
        let x = Tensor::random(&[16], 1.0, 2);
        let y = layer.forward(&x);
        for &v in y.data() {
            assert_eq!(bf16_round(v), v);
        }
    }

    #[test]
    fn macs_counted() {
        let layer = Linear::new(128, 64, 0);
        assert_eq!(layer.macs(1), 8192);
        assert_eq!(layer.macs(10), 81920);
    }

    #[test]
    fn int8_approximates_bf16() {
        let layer = Linear::new(64, 32, 7);
        let x = Tensor::random(&[64], 1.0, 8);
        let exact = layer.forward(&x);
        let q = LinearInt8::from_linear(&layer).forward(&x);
        let mut max_err = 0.0f32;
        let mut max_mag = 0.0f32;
        for (a, b) in exact.data().iter().zip(q.data()) {
            max_err = max_err.max((a - b).abs());
            max_mag = max_mag.max(a.abs());
        }
        assert!(max_err < 0.1 * max_mag.max(1.0), "int8 error {max_err}");
        // But not bit-identical: quantization is lossy.
        assert_ne!(exact.data(), q.data());
    }

    #[test]
    #[should_panic(expected = "input width")]
    fn wrong_width_panics() {
        let layer = Linear::new(4, 2, 0);
        let _ = layer.forward(&Tensor::zeros(&[5]));
    }
}
