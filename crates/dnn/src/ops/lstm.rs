//! A long short-term memory layer.

use crate::batch::PackedPanels;
use crate::bf16::bf16_round;
use crate::kernels::{lstm_gates, lstm_gates_packed_batch};
use crate::ops::activation::sigmoid;
use crate::ops::count::lstm_macs;
use crate::ops::expect_rank;
use crate::scratch::ScratchPad;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A single-layer LSTM processing `[T, input]` sequences.
///
/// Gate order in the stacked weight matrices is `[i, f, g, o]`
/// (input, forget, cell candidate, output), matching the usual
/// `W_x x_t + W_h h_{t-1} + b` formulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lstm {
    wx: Tensor, // [4*hidden, input]
    wh: Tensor, // [4*hidden, hidden]
    bias: Vec<f32>,
    input: usize,
    hidden: usize,
}

impl Lstm {
    /// Creates an LSTM with Xavier-uniform weights and forget-gate bias 1.
    pub fn new(input: usize, hidden: usize, seed: u64) -> Self {
        let scale = (6.0 / (input + hidden) as f32).sqrt();
        let mut bias = vec![0.0; 4 * hidden];
        // Standard trick: bias the forget gate open at initialization.
        for b in bias.iter_mut().skip(hidden).take(hidden) {
            *b = 1.0;
        }
        Lstm {
            wx: Tensor::random(&[4 * hidden, input], scale, seed).quantize_bf16(),
            wh: Tensor::random(&[4 * hidden, hidden], scale, seed.wrapping_add(1)).quantize_bf16(),
            bias,
            input,
            hidden,
        }
    }

    /// Input width.
    pub fn input_dim(&self) -> usize {
        self.input
    }

    /// Hidden-state width.
    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// Runs the sequence, returning all hidden states as `[T, hidden]`.
    ///
    /// Runs the fused-gate fast path on a throwaway [`ScratchPad`]; use
    /// [`Self::forward_scratch`] to reuse buffers.
    ///
    /// # Panics
    ///
    /// Panics if the input is not `[T, input]`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        self.forward_scratch(x, &mut ScratchPad::new())
    }

    /// Runs the sequence with the fused register-tiled gate kernel,
    /// drawing state and output buffers from `pad`. Bit-identical to
    /// [`Self::forward_reference`].
    ///
    /// # Panics
    ///
    /// Panics if the input is not `[T, input]`.
    pub fn forward_scratch(&self, x: &Tensor, pad: &mut ScratchPad) -> Tensor {
        expect_rank(x, 2, "Lstm");
        assert_eq!(x.shape()[1], self.input, "input width mismatch");
        let t_steps = x.shape()[0];
        let h_dim = self.hidden;
        let mut h = pad.take(h_dim);
        let mut c = pad.take(h_dim);
        let mut gates = pad.take(4 * h_dim);
        let mut out = pad.take_tensor(&[t_steps, h_dim]);
        for t in 0..t_steps {
            let xt = x.row(t);
            lstm_gates(
                self.wx.data(),
                self.wh.data(),
                &self.bias,
                xt,
                &h,
                self.input,
                h_dim,
                &mut gates,
            );
            let orow = &mut out.data_mut()[t * h_dim..(t + 1) * h_dim];
            for j in 0..h_dim {
                let i_g = sigmoid(gates[j]);
                let f_g = sigmoid(gates[h_dim + j]);
                let g_g = gates[2 * h_dim + j].tanh();
                let o_g = sigmoid(gates[3 * h_dim + j]);
                c[j] = bf16_round(f_g * c[j] + i_g * g_g);
                h[j] = bf16_round(o_g * c[j].tanh());
                orow[j] = h[j];
            }
        }
        pad.give(h);
        pad.give(c);
        pad.give(gates);
        out
    }

    /// The naive reference implementation (kept for equivalence tests
    /// and the benchmark baseline).
    ///
    /// # Panics
    ///
    /// Panics if the input is not `[T, input]`.
    pub fn forward_reference(&self, x: &Tensor) -> Tensor {
        expect_rank(x, 2, "Lstm");
        assert_eq!(x.shape()[1], self.input, "input width mismatch");
        let t_steps = x.shape()[0];
        let h_dim = self.hidden;
        let mut h = vec![0.0f32; h_dim];
        let mut c = vec![0.0f32; h_dim];
        let mut out = Tensor::zeros(&[t_steps, h_dim]);
        let mut gates = vec![0.0f32; 4 * h_dim];
        for t in 0..t_steps {
            let xt = x.row(t);
            for (g, gate) in gates.iter_mut().enumerate() {
                let mut acc = self.bias[g];
                let wx_row = self.wx.row(g);
                for i in 0..self.input {
                    acc += wx_row[i] * xt[i];
                }
                let wh_row = self.wh.row(g);
                for j in 0..h_dim {
                    acc += wh_row[j] * h[j];
                }
                *gate = acc;
            }
            for j in 0..h_dim {
                let i_g = sigmoid(gates[j]);
                let f_g = sigmoid(gates[h_dim + j]);
                let g_g = gates[2 * h_dim + j].tanh();
                let o_g = sigmoid(gates[3 * h_dim + j]);
                c[j] = bf16_round(f_g * c[j] + i_g * g_g);
                h[j] = bf16_round(o_g * c[j].tanh());
                out.set(&[t, j], h[j]);
            }
        }
        out
    }

    /// The final hidden state of a forward pass, as `[hidden]`.
    pub fn last_hidden(&self, x: &Tensor) -> Tensor {
        let all = self.forward(x);
        let t = all.shape()[0];
        Tensor::from_vec(all.row(t - 1).to_vec(), &[self.hidden])
    }

    /// [`Self::last_hidden`] drawing every buffer from `pad`.
    pub fn last_hidden_scratch(&self, x: &Tensor, pad: &mut ScratchPad) -> Tensor {
        let all = self.forward_scratch(x, pad);
        let t = all.shape()[0];
        let mut out = pad.take_tensor(&[self.hidden]);
        out.data_mut().copy_from_slice(all.row(t - 1));
        pad.give_tensor(all);
        out
    }

    /// Packs the stacked `[4 * hidden, input]` input-weight matrix into
    /// register panels for the batched forward path.
    pub fn pack_wx(&self) -> PackedPanels {
        PackedPanels::pack(self.wx.data(), 4 * self.hidden, self.input)
    }

    /// Packs the stacked `[4 * hidden, hidden]` recurrent-weight matrix
    /// into register panels for the batched forward path.
    pub fn pack_wh(&self) -> PackedPanels {
        PackedPanels::pack(self.wh.data(), 4 * self.hidden, self.hidden)
    }

    /// Batched [`Self::last_hidden_scratch`]: runs `batch` sequences of
    /// a sample-major `[batch, steps, input]` buffer with prepacked
    /// weight panels, writing the final hidden states `[batch, hidden]`
    /// into `out`.
    ///
    /// Each timestep computes every sample's fused gate vector in one
    /// kernel sweep ([`lstm_gates_packed_batch`]) before the elementwise
    /// state update; per sample the bias -> `W_x x_t` -> `W_h h` chain
    /// and BF16 rounding points are exactly those of the serial path, so
    /// results are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics on buffer-length or packed-shape mismatches, or when
    /// `steps == 0` (no final hidden state exists).
    #[allow(clippy::too_many_arguments)]
    pub fn last_hidden_batch_packed(
        &self,
        x: &[f32],
        batch: usize,
        steps: usize,
        packed_wx: &PackedPanels,
        packed_wh: &PackedPanels,
        pad: &mut ScratchPad,
        out: &mut [f32],
    ) {
        let h_dim = self.hidden;
        assert!(steps > 0, "batched LSTM needs at least one timestep");
        assert_eq!(packed_wx.m(), 4 * h_dim, "packed wx row mismatch");
        assert_eq!(packed_wx.k(), self.input, "packed wx width mismatch");
        assert_eq!(packed_wh.m(), 4 * h_dim, "packed wh row mismatch");
        assert_eq!(packed_wh.k(), h_dim, "packed wh width mismatch");
        assert_eq!(x.len(), batch * steps * self.input, "batched LSTM input");
        assert_eq!(out.len(), batch * h_dim, "batched LSTM output");
        // h and c must start zeroed (`take`); gates are fully
        // overwritten every timestep so skip the zero fill.
        let mut h = pad.take(batch * h_dim);
        let mut c = pad.take(batch * h_dim);
        let mut gates = pad.take_dirty(batch * 4 * h_dim);
        for t in 0..steps {
            lstm_gates_packed_batch(
                packed_wx.data(),
                packed_wh.data(),
                &self.bias,
                x,
                t * self.input,
                steps * self.input,
                &h,
                batch,
                self.input,
                h_dim,
                &mut gates,
            );
            for s in 0..batch {
                let g = &gates[s * 4 * h_dim..(s + 1) * 4 * h_dim];
                let cs = &mut c[s * h_dim..(s + 1) * h_dim];
                let hs = &mut h[s * h_dim..(s + 1) * h_dim];
                for j in 0..h_dim {
                    let i_g = sigmoid(g[j]);
                    let f_g = sigmoid(g[h_dim + j]);
                    let g_g = g[2 * h_dim + j].tanh();
                    let o_g = sigmoid(g[3 * h_dim + j]);
                    cs[j] = bf16_round(f_g * cs[j] + i_g * g_g);
                    hs[j] = bf16_round(o_g * cs[j].tanh());
                }
            }
        }
        out.copy_from_slice(&h);
        pad.give(h);
        pad.give(c);
        pad.give(gates);
    }

    /// MACs of a forward pass over `steps` timesteps.
    pub fn macs(&self, steps: u64) -> u64 {
        lstm_macs(steps, self.input as u64, self.hidden as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_are_correct() {
        let lstm = Lstm::new(8, 16, 0);
        let x = Tensor::random(&[5, 8], 1.0, 1);
        let y = lstm.forward(&x);
        assert_eq!(y.shape(), &[5, 16]);
        assert_eq!(lstm.last_hidden(&x).shape(), &[16]);
    }

    #[test]
    fn hidden_state_is_bounded() {
        // h = o * tanh(c): |h| <= 1 always.
        let lstm = Lstm::new(4, 8, 3);
        let x = Tensor::random(&[50, 4], 10.0, 4);
        let y = lstm.forward(&x);
        assert!(y.data().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn state_carries_information() {
        // Same final input, different prefixes -> different final hidden.
        let lstm = Lstm::new(2, 4, 5);
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.5, 0.5], &[2, 2]);
        let b = Tensor::from_vec(vec![-1.0, 0.7, 0.5, 0.5], &[2, 2]);
        assert_ne!(lstm.last_hidden(&a).data(), lstm.last_hidden(&b).data());
    }

    #[test]
    fn zero_input_zero_weights_stays_zero() {
        let mut lstm = Lstm::new(2, 2, 0);
        lstm.wx = Tensor::zeros(&[8, 2]);
        lstm.wh = Tensor::zeros(&[8, 2]);
        lstm.bias = vec![0.0; 8];
        let x = Tensor::zeros(&[3, 2]);
        let y = lstm.forward(&x);
        // gates = 0 -> i = 0.5, g = 0 -> c stays 0 -> h stays 0.
        assert!(y.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn deterministic_per_seed() {
        let x = Tensor::random(&[5, 4], 1.0, 9);
        let a = Lstm::new(4, 8, 7).forward(&x);
        let b = Lstm::new(4, 8, 7).forward(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn macs_match_formula() {
        let lstm = Lstm::new(32, 64, 0);
        assert_eq!(lstm.macs(10), 10 * 4 * (32 * 64 + 64 * 64));
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn wrong_width_panics() {
        let lstm = Lstm::new(4, 8, 0);
        let _ = lstm.forward(&Tensor::zeros(&[5, 3]));
    }
}
