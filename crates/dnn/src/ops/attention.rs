//! Multi-head self-attention (the TransLOB building block).

use crate::kernels::{attn_context, attn_scores};
use crate::ops::activation::{softmax_last_dim, softmax_rows};
use crate::ops::count::attention_macs;
use crate::ops::expect_rank;
use crate::ops::linear::Linear;
use crate::scratch::ScratchPad;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Multi-head scaled-dot-product self-attention over `[T, D]` sequences.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    d_model: usize,
}

impl MultiHeadAttention {
    /// Creates an attention block.
    ///
    /// # Panics
    ///
    /// Panics unless `heads` divides `d_model`.
    pub fn new(d_model: usize, heads: usize, seed: u64) -> Self {
        assert!(heads > 0, "need at least one head");
        assert_eq!(
            d_model % heads,
            0,
            "heads {heads} must divide d_model {d_model}"
        );
        MultiHeadAttention {
            wq: Linear::new(d_model, d_model, seed),
            wk: Linear::new(d_model, d_model, seed.wrapping_add(1)),
            wv: Linear::new(d_model, d_model, seed.wrapping_add(2)),
            wo: Linear::new(d_model, d_model, seed.wrapping_add(3)),
            heads,
            d_model,
        }
    }

    /// Model width.
    pub fn d_model(&self) -> usize {
        self.d_model
    }

    /// Head count.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Applies self-attention to a `[T, D]` sequence.
    ///
    /// Runs the tiled fast path on a throwaway [`ScratchPad`]; use
    /// [`Self::forward_scratch`] to reuse buffers.
    ///
    /// # Panics
    ///
    /// Panics if the input is not rank 2 of width `d_model`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        self.forward_scratch(x, &mut ScratchPad::new())
    }

    /// Applies self-attention with the tiled score/context kernels,
    /// drawing every intermediate (Q/K/V, scores, context) from `pad`.
    /// Bit-identical to [`Self::forward_reference`].
    ///
    /// # Panics
    ///
    /// Panics if the input is not rank 2 of width `d_model`.
    pub fn forward_scratch(&self, x: &Tensor, pad: &mut ScratchPad) -> Tensor {
        expect_rank(x, 2, "MultiHeadAttention");
        assert_eq!(x.shape()[1], self.d_model, "width mismatch");
        let t = x.shape()[0];
        let d_head = self.d_model / self.heads;
        let q = self.wq.forward_scratch(x, pad);
        let k = self.wk.forward_scratch(x, pad);
        let v = self.wv.forward_scratch(x, pad);
        let scale = 1.0 / (d_head as f32).sqrt();
        let mut context = pad.take_tensor(&[t, self.d_model]);
        let mut scores = pad.take(t * t);
        for h in 0..self.heads {
            let off = h * d_head;
            attn_scores(
                q.data(),
                k.data(),
                t,
                self.d_model,
                off,
                d_head,
                scale,
                &mut scores,
            );
            softmax_rows(&mut scores, t, t);
            attn_context(
                &scores,
                v.data(),
                t,
                self.d_model,
                off,
                d_head,
                context.data_mut(),
            );
        }
        pad.give(scores);
        pad.give_tensor(q);
        pad.give_tensor(k);
        pad.give_tensor(v);
        let out = self.wo.forward_scratch(&context, pad);
        pad.give_tensor(context);
        out
    }

    /// The naive reference implementation (kept for equivalence tests
    /// and the benchmark baseline): `Tensor::at`-indexed loops over
    /// naive Q/K/V/O projections.
    ///
    /// # Panics
    ///
    /// Panics if the input is not rank 2 of width `d_model`.
    pub fn forward_reference(&self, x: &Tensor) -> Tensor {
        expect_rank(x, 2, "MultiHeadAttention");
        assert_eq!(x.shape()[1], self.d_model, "width mismatch");
        let t = x.shape()[0];
        let d_head = self.d_model / self.heads;
        let q = self.wq.forward_reference(x);
        let k = self.wk.forward_reference(x);
        let v = self.wv.forward_reference(x);
        let scale = 1.0 / (d_head as f32).sqrt();
        let mut context = Tensor::zeros(&[t, self.d_model]);
        for h in 0..self.heads {
            let off = h * d_head;
            // scores[i][j] = q_i . k_j / sqrt(d_head)
            let mut scores = Tensor::zeros(&[t, t]);
            for i in 0..t {
                let qi = &q.row(i)[off..off + d_head];
                for j in 0..t {
                    let kj = &k.row(j)[off..off + d_head];
                    let dot: f32 = qi.iter().zip(kj).map(|(a, b)| a * b).sum();
                    scores.set(&[i, j], dot * scale);
                }
            }
            softmax_last_dim(&mut scores);
            for i in 0..t {
                for d in 0..d_head {
                    let mut acc = 0.0;
                    for j in 0..t {
                        acc += scores.at(&[i, j]) * v.row(j)[off + d];
                    }
                    context.set(&[i, off + d], acc);
                }
            }
        }
        self.wo.forward_reference(&context)
    }

    /// MACs of a forward pass over a length-`seq` sequence.
    pub fn macs(&self, seq: u64) -> u64 {
        attention_macs(seq, self.d_model as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shape_matches_input() {
        let mha = MultiHeadAttention::new(16, 4, 0);
        let x = Tensor::random(&[6, 16], 1.0, 1);
        let y = mha.forward(&x);
        assert_eq!(y.shape(), &[6, 16]);
    }

    #[test]
    fn uniform_sequence_gives_uniform_output() {
        // If every token is identical, attention mixes identical values, so
        // every output token must be identical too.
        let mha = MultiHeadAttention::new(8, 2, 2);
        let row: Vec<f32> = (0..8).map(|i| i as f32 * 0.1).collect();
        let mut data = Vec::new();
        for _ in 0..4 {
            data.extend_from_slice(&row);
        }
        let x = Tensor::from_vec(data, &[4, 8]);
        let y = mha.forward(&x);
        for t in 1..4 {
            assert_eq!(y.row(0), y.row(t));
        }
    }

    #[test]
    fn attends_to_content_not_position() {
        // Without positional encodings, permuting the sequence permutes the
        // output rows identically (self-attention is permutation-equivariant).
        let mha = MultiHeadAttention::new(8, 2, 3);
        let a = Tensor::random(&[1, 8], 1.0, 10);
        let b = Tensor::random(&[1, 8], 1.0, 11);
        let ab = Tensor::from_vec([a.data(), b.data()].concat(), &[2, 8]);
        let ba = Tensor::from_vec([b.data(), a.data()].concat(), &[2, 8]);
        let y_ab = mha.forward(&ab);
        let y_ba = mha.forward(&ba);
        for (x, y) in y_ab.row(0).iter().zip(y_ba.row(1)) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn single_head_equals_heads_of_full_width() {
        // Sanity: single head runs and differs from multi-head chunking.
        let x = Tensor::random(&[3, 8], 1.0, 20);
        let one = MultiHeadAttention::new(8, 1, 5).forward(&x);
        let four = MultiHeadAttention::new(8, 4, 5).forward(&x);
        assert_eq!(one.shape(), four.shape());
        assert_ne!(one.data(), four.data());
    }

    #[test]
    fn macs_match_formula() {
        let mha = MultiHeadAttention::new(64, 8, 0);
        assert_eq!(mha.macs(10), 4 * 10 * 64 * 64 + 2 * 100 * 64);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn indivisible_heads_panics() {
        let _ = MultiHeadAttention::new(10, 3, 0);
    }
}
