//! Neural-network layers and their analytic cost counters.
//!
//! Each layer owns its weights, offers a `forward` pass on [`Tensor`]s,
//! and exposes the MAC count of that pass through [`count`]. The counters
//! are what the accelerator's latency model consumes; the forward passes
//! are used functionally by tests, examples, and the CGRA simulator.

pub mod activation;
pub mod attention;
pub mod conv;
pub mod count;
pub mod linear;
pub mod lstm;
pub mod norm;
pub mod pool;

pub use activation::{
    leaky_relu, leaky_relu_slice, relu, relu_slice, sigmoid, softmax_last_dim, softmax_rows,
    tanh_inplace,
};
pub use attention::MultiHeadAttention;
pub use conv::Conv2d;
pub use linear::{Linear, LinearInt8};
pub use lstm::Lstm;
pub use norm::LayerNorm;
pub use pool::{global_avg_pool, max_pool_1d};

use crate::tensor::Tensor;

/// Asserts a tensor's rank, with a readable panic message.
pub(crate) fn expect_rank(t: &Tensor, rank: usize, what: &str) {
    assert_eq!(
        t.shape().len(),
        rank,
        "{what} expects a rank-{rank} tensor, got shape {:?}",
        t.shape()
    );
}
