//! Property tests over the tensor ops' numerical invariants.

use lt_dnn::bf16::{bf16_round, dequantize_int8, quantize_int8};
use lt_dnn::ops::{softmax_last_dim, LayerNorm, Linear, Lstm, MultiHeadAttention};
use lt_dnn::Tensor;
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    (-1e6f32..1e6).prop_map(|v| v)
}

proptest! {
    /// BF16 rounding is idempotent and within half a BF16 ulp.
    #[test]
    fn bf16_round_contract(x in finite_f32()) {
        let r = bf16_round(x);
        prop_assert_eq!(bf16_round(r), r);
        if x != 0.0 {
            prop_assert!(((r - x) / x).abs() <= 1.0 / 256.0, "{} -> {}", x, r);
        }
    }

    /// BF16 rounding is monotone: x <= y implies round(x) <= round(y).
    #[test]
    fn bf16_round_monotone(a in finite_f32(), b in finite_f32()) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bf16_round(lo) <= bf16_round(hi));
    }

    /// INT8 quantization error is bounded by half a quantization step.
    #[test]
    fn int8_error_bounded(xs in proptest::collection::vec(finite_f32(), 1..64)) {
        let (q, scale) = quantize_int8(&xs);
        let back = dequantize_int8(&q, scale);
        for (a, b) in xs.iter().zip(&back) {
            prop_assert!((a - b).abs() <= scale * 0.5 + 1e-3);
        }
    }

    /// Softmax output is a probability distribution for any logits.
    #[test]
    fn softmax_is_distribution(xs in proptest::collection::vec(-50f32..50.0, 2..16)) {
        let n = xs.len();
        let mut t = Tensor::from_vec(xs, &[n]);
        softmax_last_dim(&mut t);
        let sum: f32 = t.data().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(t.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    /// Linear layers are (approximately) additive in their input:
    /// f(x + y) - b = (f(x) - b) + (f(y) - b) up to BF16 rounding.
    #[test]
    fn linear_is_affine(seed in 0u64..1000) {
        let layer = Linear::new(8, 4, seed);
        let x = Tensor::random(&[8], 1.0, seed.wrapping_add(1));
        let y = Tensor::random(&[8], 1.0, seed.wrapping_add(2));
        let fx = layer.forward(&x);
        let fy = layer.forward(&y);
        let sum_in = Tensor::from_vec(
            x.data().iter().zip(y.data()).map(|(a, b)| a + b).collect(),
            &[8],
        );
        let f_sum = layer.forward(&sum_in);
        for i in 0..4 {
            let expect = fx.data()[i] + fy.data()[i]; // bias cancels: b = 0
            prop_assert!((f_sum.data()[i] - expect).abs() < 0.05,
                "{} vs {}", f_sum.data()[i], expect);
        }
    }

    /// Layer-norm rows always have ~zero mean and <=1 variance.
    #[test]
    fn layernorm_normalizes(rows in 1usize..5, seed in 0u64..100) {
        let ln = LayerNorm::new(8);
        let x = Tensor::random(&[rows, 8], 10.0, seed);
        let y = ln.forward(&x);
        for r in 0..rows {
            let row = y.row(r);
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            prop_assert!(mean.abs() < 1e-3);
        }
    }

    /// LSTM hidden states stay in [-1, 1] regardless of input magnitude.
    #[test]
    fn lstm_hidden_bounded(scale in 0.1f32..100.0, seed in 0u64..50) {
        let lstm = Lstm::new(4, 6, seed);
        let x = Tensor::random(&[10, 4], scale, seed.wrapping_add(1));
        let y = lstm.forward(&x);
        prop_assert!(y.data().iter().all(|v| v.abs() <= 1.0));
    }

    /// Attention output is finite and shape-preserving for any input.
    #[test]
    fn attention_finite(scale in 0.1f32..10.0, seed in 0u64..50) {
        let mha = MultiHeadAttention::new(8, 2, seed);
        let x = Tensor::random(&[5, 8], scale, seed.wrapping_add(1));
        let y = mha.forward(&x);
        prop_assert_eq!(y.shape(), &[5usize, 8][..]);
        prop_assert!(y.data().iter().all(|v| v.is_finite()));
    }
}
