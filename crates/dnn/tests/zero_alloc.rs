//! Proves the zero-allocation claim: after a warm-up pass populates the
//! [`ScratchPad`]'s free lists, steady-state `forward_scratch` performs
//! **zero** heap allocations for every benchmark model.
//!
//! The proof uses a counting `#[global_allocator]` wrapping the system
//! allocator; the whole file is one `#[test]` so the allocator and its
//! thread-local counter are private to this integration-test binary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use lt_dnn::models::{CnnSpec, DeepLobSpec, QuantizedCnn, TransLobSpec};
use lt_dnn::{Model, Prediction, ScratchPad, Tensor};

thread_local! {
    // `const` init so reading the counter never allocates.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

impl CountingAlloc {
    fn bump() {
        // `try_with` so allocations during TLS teardown don't panic.
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
    }
}

// SAFETY: delegates every operation to `System`; the counter is a
// thread-local side effect that itself never allocates.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::bump();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        Self::bump();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        Self::bump();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.with(|c| c.get())
}

fn assert_steady_state_alloc_free(name: &str, model: &dyn Model, input: &Tensor) {
    let mut pad = ScratchPad::new();
    // Warm up: the first passes populate the pad's free lists. Three
    // passes (not one) so take/give ordering differences across calls
    // are already settled before we start counting.
    for _ in 0..3 {
        let _ = model.forward_scratch(input, &mut pad);
    }
    let misses_before = pad.misses();
    let allocs_before = allocations();
    let p = model.forward_scratch(input, &mut pad);
    let allocs_after = allocations();
    let misses_after = pad.misses();
    assert!(
        p.probs.iter().all(|v| v.is_finite()),
        "{name}: non-finite output"
    );
    assert_eq!(
        allocs_after - allocs_before,
        0,
        "{name}: steady-state forward_scratch allocated"
    );
    assert_eq!(
        misses_after, misses_before,
        "{name}: scratch pad missed in steady state"
    );
}

/// The batched twin: once the weight panels are packed and a warm-up
/// batch has sized the pad's buffers and the output vector, serial
/// (`threads = 1`) batched forwards at the same batch size allocate
/// nothing — staging, unfold, packed GEMM, and prediction output all
/// live in recycled storage.
fn assert_steady_state_batch_alloc_free(name: &str, model: &dyn Model, inputs: &[Tensor]) {
    let packed = model.pack_weights();
    let mut pad = ScratchPad::new();
    let mut out: Vec<Prediction> = Vec::new();
    for _ in 0..3 {
        model.forward_batch_scratch(inputs, &packed, &mut pad, &mut out);
    }
    let misses_before = pad.misses();
    let allocs_before = allocations();
    model.forward_batch_scratch(inputs, &packed, &mut pad, &mut out);
    let allocs_after = allocations();
    let misses_after = pad.misses();
    assert_eq!(out.len(), inputs.len(), "{name}: prediction count");
    assert!(
        out.iter().all(|p| p.probs.iter().all(|v| v.is_finite())),
        "{name}: non-finite output"
    );
    assert_eq!(
        allocs_after - allocs_before,
        0,
        "{name}: steady-state forward_batch_scratch allocated"
    );
    assert_eq!(
        misses_after, misses_before,
        "{name}: scratch pad missed in steady state"
    );
}

#[test]
fn steady_state_forward_is_allocation_free() {
    let vanilla = CnnSpec::tiny().build(3);
    let quant = QuantizedCnn::from_float(&vanilla);
    let deeplob = DeepLobSpec::tiny().build(3);
    let translob = TransLobSpec::tiny().build(3);
    let x20 = Tensor::random(&[20, 40], 1.0, 5);
    let x24 = Tensor::random(&[24, 40], 1.0, 5);
    let x16 = Tensor::random(&[16, 40], 1.0, 5);
    assert_steady_state_alloc_free("VanillaCnn", &vanilla, &x20);
    assert_steady_state_alloc_free("QuantizedCnn", &quant, &x20);
    assert_steady_state_alloc_free("DeepLob", &deeplob, &x24);
    assert_steady_state_alloc_free("TransLob", &translob, &x16);

    let batch = |rows: usize| -> Vec<Tensor> {
        (0..8)
            .map(|i| Tensor::random(&[rows, 40], 1.0, 60 + i))
            .collect()
    };
    assert_steady_state_batch_alloc_free("VanillaCnn batch", &vanilla, &batch(20));
    assert_steady_state_batch_alloc_free("DeepLob batch", &deeplob, &batch(24));
    assert_steady_state_batch_alloc_free("TransLob batch", &translob, &batch(16));
}
