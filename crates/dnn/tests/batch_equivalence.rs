//! The batched-inference contract: `Model::forward_batch_scratch` over
//! prepacked weight panels is **bit-identical**, per sample, to looping
//! `forward_scratch` — packing permutes operand layout and batching
//! stacks GEMM output dimensions, neither touches any `k` accumulation
//! chain. Also pins the packed/batched kernels at degenerate shapes.

use lt_dnn::kernels::{
    gemm_bt_bias_rows_bf16, gemm_packed_bt_bias_rows_bf16, im2col_batch, matvec_packed_bias_bf16,
    pack_bt_panels,
};
use lt_dnn::models::{CnnSpec, DeepLobSpec, TransLobSpec};
use lt_dnn::{Model, PackedWeights, Prediction, ScratchPad, Tensor};
use proptest::prelude::*;

/// Random `[window, features]` inputs for `model`, one per sample.
fn random_batch(model: &dyn Model, batch: usize, seed: u64) -> Vec<Tensor> {
    (0..batch)
        .map(|i| {
            Tensor::random(
                &[model.window(), model.features()],
                1.0,
                seed.wrapping_mul(1000).wrapping_add(i as u64),
            )
        })
        .collect()
}

/// Asserts batched == looped, bit for bit, and returns the predictions.
fn assert_batch_matches_loop(
    name: &str,
    model: &dyn Model,
    packed: &PackedWeights,
    inputs: &[Tensor],
) -> Vec<Prediction> {
    let mut pad = ScratchPad::new();
    let mut looped = Vec::new();
    model.forward_batch_looped(inputs, &mut pad, &mut looped);
    let mut batched = Vec::new();
    model.forward_batch_scratch(inputs, packed, &mut pad, &mut batched);
    assert_eq!(batched.len(), inputs.len(), "{name}: prediction count");
    for (s, (b, l)) in batched.iter().zip(&looped).enumerate() {
        assert_eq!(
            b.probs.map(f32::to_bits),
            l.probs.map(f32::to_bits),
            "{name}: sample {s} diverged (batched {:?} vs looped {:?})",
            b.probs,
            l.probs
        );
    }
    batched
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// VanillaCnn: batched packed path == looped path, any batch size.
    #[test]
    fn vanilla_batch_matches_loop(seed in 0u64..500, batch in 0usize..6) {
        let model = CnnSpec::tiny().build(seed);
        let packed = model.pack_weights();
        let inputs = random_batch(&model, batch, seed);
        assert_batch_matches_loop("VanillaCnn", &model, &packed, &inputs);
    }

    /// TransLob: batched packed path == looped path, any batch size.
    #[test]
    fn translob_batch_matches_loop(seed in 0u64..500, batch in 0usize..6) {
        let model = TransLobSpec::tiny().build(seed);
        let packed = model.pack_weights();
        let inputs = random_batch(&model, batch, seed);
        assert_batch_matches_loop("TransLob", &model, &packed, &inputs);
    }

    /// DeepLob: batched packed path == looped path, any batch size.
    #[test]
    fn deeplob_batch_matches_loop(seed in 0u64..500, batch in 0usize..6) {
        let model = DeepLobSpec::tiny().build(seed);
        let packed = model.pack_weights();
        let inputs = random_batch(&model, batch, seed);
        assert_batch_matches_loop("DeepLob", &model, &packed, &inputs);
    }

    /// Thread scatter only re-times work: multi-threaded batched
    /// forwards are bit-identical to the serial batched forward.
    #[test]
    fn parallel_batch_matches_serial(seed in 0u64..500, threads in 2usize..5) {
        let model = DeepLobSpec::tiny().build(seed);
        let serial = model.pack_weights();
        let parallel = model.pack_weights().with_threads(threads);
        let inputs = random_batch(&model, 5, seed);
        let a = assert_batch_matches_loop("DeepLob serial", &model, &serial, &inputs);
        let b = assert_batch_matches_loop("DeepLob parallel", &model, &parallel, &inputs);
        prop_assert_eq!(a, b);
    }
}

/// An empty pack is the explicit looped-fallback marker.
#[test]
fn empty_pack_runs_looped_fallback() {
    let model = CnnSpec::tiny().build(11);
    let empty = PackedWeights::empty(model.kind());
    let inputs = random_batch(&model, 3, 11);
    assert_batch_matches_loop("VanillaCnn empty pack", &model, &empty, &inputs);
}

/// Results land in input order and `out` is cleared between calls.
#[test]
fn batch_output_order_and_reuse() {
    let model = CnnSpec::tiny().build(4);
    let packed = model.pack_weights();
    let inputs = random_batch(&model, 4, 9);
    let mut pad = ScratchPad::new();
    let mut out = vec![Prediction::new([1.0, 0.0, 0.0]); 7];
    model.forward_batch_scratch(&inputs, &packed, &mut pad, &mut out);
    assert_eq!(out.len(), 4);
    for (s, input) in inputs.iter().enumerate() {
        let single = model.forward_scratch(input, &mut pad);
        assert_eq!(
            out[s].probs.map(f32::to_bits),
            single.probs.map(f32::to_bits)
        );
    }
    // Reversing the inputs reverses the outputs.
    let rev: Vec<Tensor> = inputs.iter().rev().cloned().collect();
    let mut out_rev = Vec::new();
    model.forward_batch_scratch(&rev, &packed, &mut pad, &mut out_rev);
    for (a, b) in out.iter().zip(out_rev.iter().rev()) {
        assert_eq!(a.probs.map(f32::to_bits), b.probs.map(f32::to_bits));
    }
}

// ---- degenerate kernel shapes ---------------------------------------

/// k = 0: the GEMM reduces over nothing, so outputs are the
/// BF16-rounded biases — packed and unpacked agree.
#[test]
fn gemm_with_zero_k_emits_bias() {
    let (m, n) = (5, 3);
    let bias = [1.5f32, -2.0, 0.25, 7.0, 0.0];
    let mut packed = Vec::new();
    pack_bt_panels(&[], m, 0, &mut packed);
    assert!(packed.is_empty());
    let mut a_out = vec![f32::NAN; m * n];
    gemm_bt_bias_rows_bf16(&[], &[], &bias, m, n, 0, &mut a_out);
    let mut b_out = vec![f32::NAN; m * n];
    gemm_packed_bt_bias_rows_bf16(&packed, &[], &bias, m, n, 0, &mut b_out);
    assert_eq!(a_out, b_out);
    for i in 0..m {
        for j in 0..n {
            assert_eq!(a_out[i * n + j], bias[i]);
        }
    }
}

/// m = 0 and n = 0 are no-ops for both GEMM layouts and the matvec.
#[test]
fn gemm_with_zero_rows_or_cols_is_noop() {
    let mut packed = Vec::new();
    pack_bt_panels(&[], 0, 4, &mut packed);
    gemm_packed_bt_bias_rows_bf16(&packed, &[1.0, 2.0, 3.0, 4.0], &[], 0, 1, 4, &mut []);
    gemm_bt_bias_rows_bf16(&[], &[1.0, 2.0, 3.0, 4.0], &[], 0, 1, 4, &mut []);
    let a = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
    pack_bt_panels(&a, 2, 4, &mut packed);
    gemm_packed_bt_bias_rows_bf16(&packed, &[], &[0.5, -0.5], 2, 0, 4, &mut []);
    matvec_packed_bias_bf16(
        &packed,
        &[0.5, -0.5],
        &[1.0, 0.0, 0.0, 0.0],
        2,
        4,
        &mut [0.0; 2],
    );
}

/// Batched im2col at batch 0 and batch 1; batch 1 equals plain im2col.
#[test]
fn batched_im2col_degenerate_batches() {
    im2col_batch(&[], 0, 2, 3, 4, 2, 2, (1, 1), (0, 0), 2, 3, &mut []);
    let x: Vec<f32> = (0..2 * 3 * 4).map(|i| i as f32 * 0.5).collect();
    let (oh, ow) = (2, 3);
    let k = 2 * 2 * 2;
    let mut single = vec![0.0f32; oh * ow * k];
    lt_dnn::kernels::im2col(&x, 2, 3, 4, 2, 2, (1, 1), (0, 0), oh, ow, &mut single);
    let mut batched = vec![f32::NAN; oh * ow * k];
    im2col_batch(&x, 1, 2, 3, 4, 2, 2, (1, 1), (0, 0), oh, ow, &mut batched);
    assert_eq!(single, batched);
}

/// Packing then multiplying at MR/NB boundary sizes (m = 4/5, n = 63/
/// 64/65 around the n cache block) matches the unpacked GEMM bit for
/// bit — the blocking seams introduce no reordering.
#[test]
fn packed_gemm_boundary_shapes_match_unpacked() {
    for m in [4usize, 5] {
        for n in [63usize, 64, 65, 128] {
            let k = 9;
            let a: Vec<f32> = (0..m * k).map(|i| ((i * 37 % 23) as f32) - 11.0).collect();
            let b: Vec<f32> = (0..n * k).map(|i| ((i * 13 % 31) as f32) * 0.25).collect();
            let bias: Vec<f32> = (0..m).map(|i| i as f32 - 1.0).collect();
            let mut reference = vec![0.0f32; m * n];
            gemm_bt_bias_rows_bf16(&a, &b, &bias, m, n, k, &mut reference);
            let mut packed = Vec::new();
            pack_bt_panels(&a, m, k, &mut packed);
            let mut fast = vec![0.0f32; m * n];
            gemm_packed_bt_bias_rows_bf16(&packed, &b, &bias, m, n, k, &mut fast);
            assert_eq!(reference, fast, "m={m} n={n}");
        }
    }
}
