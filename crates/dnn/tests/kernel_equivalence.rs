//! Bit-exactness property tests: every fast (im2col / blocked-GEMM /
//! register-tiled) `forward_scratch` path must produce **bit-identical**
//! output to its naive `forward_reference` counterpart, across randomized
//! shapes, strides, and paddings.
//!
//! Equality is asserted with `Tensor`'s derived `PartialEq` (elementwise
//! f32 `==`), so even a one-ulp accumulation-order difference fails.
//! Every property runs each fast path twice with the same [`ScratchPad`]
//! so pooled-buffer reuse (the steady-state regime) is covered too.

use lt_dnn::models::{CnnSpec, DeepLobSpec, QuantizedCnn, TransLobSpec};
use lt_dnn::ops::{Conv2d, LayerNorm, Linear, LinearInt8, Lstm, MultiHeadAttention};
use lt_dnn::{Model, ScratchPad, Tensor};
use proptest::prelude::*;

proptest! {
    /// Conv2d: im2col + blocked GEMM == naive sliding window, across
    /// channel counts, kernel sizes, strides, and paddings (including
    /// padding > 0, which exercises the zero-filled im2col edge rows).
    #[test]
    fn conv_fast_matches_reference(
        (in_c, out_c, kh, kw) in (1usize..=3, 1usize..=4, 1usize..=3, 1usize..=3),
        (extra_h, extra_w, sh, sw) in (0usize..=4, 0usize..=4, 1usize..=2, 1usize..=2),
        (ph, pw, seed) in (0usize..=2, 0usize..=2, 0u64..1000),
    ) {
        let (h, w) = (kh + extra_h, kw + extra_w);
        let conv = Conv2d::new(in_c, out_c, (kh, kw), (sh, sw), (ph, pw), seed);
        let x = Tensor::random(&[in_c, h, w], 1.0, seed.wrapping_add(1));
        let reference = conv.forward_reference(&x);
        let mut pad = ScratchPad::new();
        prop_assert_eq!(&conv.forward_scratch(&x, &mut pad), &reference);
        // Second pass reuses pooled buffers; must still be identical.
        prop_assert_eq!(&conv.forward_scratch(&x, &mut pad), &reference);
    }

    /// Linear: register-tiled matvec == naive loop, rank-1 and rank-2.
    #[test]
    fn linear_fast_matches_reference(
        (input, output, rows, seed) in (1usize..=33, 1usize..=17, 1usize..=5, 0u64..1000),
    ) {
        let layer = Linear::new(input, output, seed);
        let mut pad = ScratchPad::new();
        let x1 = Tensor::random(&[input], 1.0, seed.wrapping_add(1));
        let r1 = layer.forward_reference(&x1);
        prop_assert_eq!(&layer.forward_scratch(&x1, &mut pad), &r1);
        let x2 = Tensor::random(&[rows, input], 1.0, seed.wrapping_add(2));
        let r2 = layer.forward_reference(&x2);
        prop_assert_eq!(&layer.forward_scratch(&x2, &mut pad), &r2);
        prop_assert_eq!(&layer.forward_scratch(&x2, &mut pad), &r2);
    }

    /// LinearInt8: the i32-accumulating tiled kernel == naive loop,
    /// including the scale-multiplication order of the epilogue.
    #[test]
    fn linear_int8_fast_matches_reference(
        (input, output, seed) in (1usize..=33, 1usize..=17, 0u64..1000),
    ) {
        let layer = LinearInt8::from_linear(&Linear::new(input, output, seed));
        let x = Tensor::random(&[input], 1.0, seed.wrapping_add(1));
        let reference = layer.forward_reference(&x);
        let mut pad = ScratchPad::new();
        prop_assert_eq!(&layer.forward_scratch(&x, &mut pad), &reference);
        prop_assert_eq!(&layer.forward_scratch(&x, &mut pad), &reference);
    }

    /// LSTM: the fused tiled gate kernel == naive per-gate loops across
    /// the whole recurrence.
    #[test]
    fn lstm_fast_matches_reference(
        (input, hidden, steps, seed) in (1usize..=9, 1usize..=9, 1usize..=6, 0u64..1000),
    ) {
        let lstm = Lstm::new(input, hidden, seed);
        let x = Tensor::random(&[steps, input], 1.0, seed.wrapping_add(1));
        let reference = lstm.forward_reference(&x);
        let mut pad = ScratchPad::new();
        prop_assert_eq!(&lstm.forward_scratch(&x, &mut pad), &reference);
        prop_assert_eq!(&lstm.forward_scratch(&x, &mut pad), &reference);
    }

    /// Attention: tiled score/context kernels == naive `at`-indexed loops.
    #[test]
    fn attention_fast_matches_reference(
        (heads, d_head, t, seed) in (1usize..=4, 1usize..=5, 1usize..=7, 0u64..1000),
    ) {
        let d_model = heads * d_head;
        let mha = MultiHeadAttention::new(d_model, heads, seed);
        let x = Tensor::random(&[t, d_model], 1.0, seed.wrapping_add(1));
        let reference = mha.forward_reference(&x);
        let mut pad = ScratchPad::new();
        prop_assert_eq!(&mha.forward_scratch(&x, &mut pad), &reference);
        prop_assert_eq!(&mha.forward_scratch(&x, &mut pad), &reference);
    }

    /// LayerNorm: slice-written rows == `set`-written rows.
    #[test]
    fn layernorm_fast_matches_reference(
        (t, d, seed) in (1usize..=6, 1usize..=16, 0u64..1000),
    ) {
        let ln = LayerNorm::new(d);
        let x = Tensor::random(&[t, d], 2.0, seed);
        let reference = ln.forward_reference(&x);
        let mut pad = ScratchPad::new();
        prop_assert_eq!(&ln.forward_scratch(&x, &mut pad), &reference);
        prop_assert_eq!(&ln.forward_scratch(&x, &mut pad), &reference);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Full VanillaCnn forward: fast trait path == naive composition.
    #[test]
    fn vanilla_cnn_forward_matches_reference(seed in 0u64..100) {
        let model = CnnSpec::tiny().build(seed);
        let x = Tensor::random(&[20, 40], 1.0, seed.wrapping_add(1));
        let reference = model.forward_reference(&x);
        let mut pad = ScratchPad::new();
        prop_assert_eq!(model.forward_scratch(&x, &mut pad).probs, reference.probs);
        prop_assert_eq!(model.forward_scratch(&x, &mut pad).probs, reference.probs);
    }

    /// Full DeepLob forward (conv trunk + inception + LSTM + head).
    #[test]
    fn deeplob_forward_matches_reference(seed in 0u64..100) {
        let model = DeepLobSpec::tiny().build(seed);
        let x = Tensor::random(&[24, 40], 1.0, seed.wrapping_add(1));
        let reference = model.forward_reference(&x);
        let mut pad = ScratchPad::new();
        prop_assert_eq!(model.forward_scratch(&x, &mut pad).probs, reference.probs);
        prop_assert_eq!(model.forward_scratch(&x, &mut pad).probs, reference.probs);
    }

    /// Full TransLob forward (conv stack + transformer blocks + head).
    #[test]
    fn translob_forward_matches_reference(seed in 0u64..100) {
        let model = TransLobSpec::tiny().build(seed);
        let x = Tensor::random(&[16, 40], 1.0, seed.wrapping_add(1));
        let reference = model.forward_reference(&x);
        let mut pad = ScratchPad::new();
        prop_assert_eq!(model.forward_scratch(&x, &mut pad).probs, reference.probs);
        prop_assert_eq!(model.forward_scratch(&x, &mut pad).probs, reference.probs);
    }

    /// Full QuantizedCnn forward (BF16 convs + INT8 dense layers).
    #[test]
    fn quantized_cnn_forward_matches_reference(seed in 0u64..100) {
        let model = QuantizedCnn::from_float(&CnnSpec::tiny().build(seed));
        let x = Tensor::random(&[20, 40], 1.0, seed.wrapping_add(1));
        let reference = model.forward_reference(&x);
        let mut pad = ScratchPad::new();
        prop_assert_eq!(model.forward_scratch(&x, &mut pad).probs, reference.probs);
        prop_assert_eq!(model.forward_scratch(&x, &mut pad).probs, reference.probs);
    }
}
