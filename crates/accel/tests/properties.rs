//! Property tests for the accelerator models.

use lt_accel::dvfs::{DvfsTable, OperatingPoint};
use lt_accel::pe::SystolicArray;
use lt_accel::{DeviceProfile, PowerModel};
use lt_dnn::{ModelKind, Precision, Tensor};
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = ModelKind> {
    prop_oneof![
        Just(ModelKind::VanillaCnn),
        Just(ModelKind::TransLob),
        Just(ModelKind::DeepLob),
    ]
}

fn point_strategy() -> impl Strategy<Value = OperatingPoint> {
    (8u64..=22).prop_map(|tenths| OperatingPoint::at_freq(tenths as f64 / 10.0))
}

proptest! {
    /// Latency is monotone: more batch or less clock never goes faster.
    #[test]
    fn latency_monotonicity(
        kind in kind_strategy(),
        point in point_strategy(),
        batch in 1u32..16,
    ) {
        let profile = DeviceProfile::lighttrader();
        let t = profile.t_infer(kind, batch, point);
        prop_assert!(profile.t_infer(kind, batch + 1, point) > t);
        if let Some(up) = DvfsTable::full_range().step_up(point) {
            prop_assert!(profile.t_infer(kind, batch, up) < t);
        }
    }

    /// Power is monotone in clock and batch, and always within Table I.
    #[test]
    fn power_monotonicity_and_envelope(
        kind in kind_strategy(),
        point in point_strategy(),
        batch in 1u32..16,
    ) {
        let power = PowerModel::calibrated();
        let w = power.power_w(kind, batch, point);
        prop_assert!(w > 0.0 && w <= 10.8, "{} W", w);
        prop_assert!(power.power_w(kind, batch + 1, point) > w);
        if let Some(up) = DvfsTable::full_range().step_up(point) {
            prop_assert!(power.power_w(kind, batch, up) > w);
        }
    }

    /// INT8 is always faster than BF16 at the same point & batch.
    #[test]
    fn int8_dominates_bf16(
        kind in kind_strategy(),
        point in point_strategy(),
        batch in 1u32..16,
    ) {
        let bf16 = DeviceProfile::lighttrader();
        let int8 = DeviceProfile::lighttrader().with_precision(Precision::Int8);
        prop_assert!(int8.t_infer(kind, batch, point) < bf16.t_infer(kind, batch, point));
    }

    /// Full batching beats single-query PPW at every point of the
    /// evaluation table (<= 2.0 GHz). Per-step monotonicity does NOT hold
    /// universally — at 2.2 GHz the dynamic-power lift of a second query
    /// can outweigh its amortization — which is exactly why Algorithm 1
    /// searches the grid instead of assuming "bigger batch is better".
    #[test]
    fn batching_pays_off_on_evaluation_table(
        kind in kind_strategy(),
        tenths in 8u64..=20,
    ) {
        let point = OperatingPoint::at_freq(tenths as f64 / 10.0);
        let profile = DeviceProfile::lighttrader();
        prop_assert!(profile.ppw(kind, 16, point) > profile.ppw(kind, 1, point));
    }

    /// The cycle-stepped systolic array computes exact matmuls for any
    /// shape and array geometry, and its cycle count is the closed-form
    /// tile cost summed over tiles.
    #[test]
    fn systolic_matches_naive(
        rows in 1usize..6,
        cols in 1usize..6,
        m in 1usize..8,
        k in 1usize..10,
        n in 1usize..8,
        seed in 0u64..100,
    ) {
        let array = SystolicArray::new(rows, cols);
        let a = Tensor::random(&[m, k], 1.0, seed);
        let b = Tensor::random(&[k, n], 1.0, seed + 1);
        let (out, cycles) = array.matmul(&a, &b);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a.at(&[i, kk]) * b.at(&[kk, j]);
                }
                prop_assert!((out.at(&[i, j]) - acc).abs() < 1e-3);
            }
        }
        // Closed-form cycle total over the tile grid.
        let mut expected = 0u64;
        let mut r0 = 0;
        while r0 < m {
            let tm = rows.min(m - r0);
            let mut c0 = 0;
            while c0 < n {
                let tn = cols.min(n - c0);
                expected += (k + tm + tn - 2) as u64;
                c0 += tn;
            }
            r0 += tm;
        }
        prop_assert_eq!(cycles, expected);
    }
}
