//! The data formatter (FMT) of the memory engine.
//!
//! "The data formatter (FMT) is proposed to support prompt data
//! transformation of the streaming data as in lowering, shuffling, and
//! transposing" (§III-C). FMT runs layout transformations as streams whose
//! partial results feed the PEs early, so with double buffering their
//! latency largely hides behind compute. This module implements the three
//! transformations functionally and models the streamed cycle cost.

use lt_dnn::Tensor;

/// FMT lanes: elements moved per cycle.
const FMT_LANES: u64 = 64;
/// Start-up cycles before the first element emerges.
const FMT_STARTUP: u64 = 8;

/// Cycle cost of streaming `elements` through FMT.
pub fn streamed_cycles(elements: u64) -> u64 {
    FMT_STARTUP + elements.div_ceil(FMT_LANES)
}

/// Cycles of a transform that runs concurrently with `compute_cycles` of
/// PE work under fine-grained double buffering: only the excess shows.
pub fn overlapped_cycles(elements: u64, compute_cycles: u64) -> u64 {
    streamed_cycles(elements).saturating_sub(compute_cycles)
}

/// Transposes a `[H, W]` tensor to `[W, H]`.
///
/// # Panics
///
/// Panics if the input is not rank 2.
pub fn transpose_2d(x: &Tensor) -> Tensor {
    assert_eq!(x.shape().len(), 2, "transpose_2d expects rank 2");
    let (h, w) = (x.shape()[0], x.shape()[1]);
    let mut out = Tensor::zeros(&[w, h]);
    for i in 0..h {
        for j in 0..w {
            out.set(&[j, i], x.at(&[i, j]));
        }
    }
    out
}

/// Flattens a `[C, H, W]` tensor along the requested dimension order,
/// producing `[H*W, C]` (channel-last rows ready for a dense layer) —
/// the "flattens 2-D tensors with respect to the height (H), width (W),
/// or channel (C) dimensions" operation of Fig. 7.
///
/// # Panics
///
/// Panics if the input is not rank 3.
pub fn flatten_hw_c(x: &Tensor) -> Tensor {
    assert_eq!(x.shape().len(), 3, "flatten_hw_c expects rank 3");
    let (c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let mut out = Tensor::zeros(&[h * w, c]);
    for ch in 0..c {
        for y in 0..h {
            for xx in 0..w {
                out.set(&[y * w + xx, ch], x.at(&[ch, y, xx]));
            }
        }
    }
    out
}

/// Im2col lowering: converts a `[C, H, W]` input into the
/// `[out_h*out_w, C*k_h*k_w]` matrix whose matmul with the flattened
/// kernel performs the convolution.
///
/// # Panics
///
/// Panics if the kernel does not fit the input.
pub fn lower_im2col(x: &Tensor, k_h: usize, k_w: usize) -> Tensor {
    assert_eq!(x.shape().len(), 3, "lower_im2col expects rank 3");
    let (c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    assert!(
        k_h <= h && k_w <= w,
        "kernel {k_h}x{k_w} exceeds input {h}x{w}"
    );
    let (oh, ow) = (h - k_h + 1, w - k_w + 1);
    let mut out = Tensor::zeros(&[oh * ow, c * k_h * k_w]);
    for oy in 0..oh {
        for ox in 0..ow {
            let row = oy * ow + ox;
            let mut col = 0;
            for ch in 0..c {
                for ky in 0..k_h {
                    for kx in 0..k_w {
                        out.set(&[row, col], x.at(&[ch, oy + ky, ox + kx]));
                        col += 1;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lt_dnn::ops::Conv2d;

    #[test]
    fn transpose_round_trips() {
        let x = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]);
        let t = transpose_2d(&x);
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.at(&[2, 1]), x.at(&[1, 2]));
        assert_eq!(transpose_2d(&t), x);
    }

    #[test]
    fn flatten_layout() {
        let x = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[2, 2, 2]);
        let f = flatten_hw_c(&x);
        assert_eq!(f.shape(), &[4, 2]);
        // Row (y=0,x=1) holds channels [1, 5].
        assert_eq!(f.row(1), &[1.0, 5.0]);
    }

    /// The core FMT correctness property: im2col + matmul == Conv2d.
    #[test]
    fn im2col_lowering_reproduces_convolution() {
        let conv_kernel = Tensor::random(&[3, 2, 2, 2], 1.0, 7);
        let conv = Conv2d::from_weights(conv_kernel.clone(), vec![0.0; 3], (1, 1), (0, 0));
        let x = Tensor::random(&[2, 4, 5], 1.0, 8);
        let direct = conv.forward(&x);

        // Lower and multiply: out[row, oc] = sum_col lowered[row, col] * kflat[oc, col].
        let lowered = lower_im2col(&x, 2, 2);
        let (oh, ow) = conv.output_hw(4, 5);
        for oc in 0..3 {
            for row in 0..oh * ow {
                let mut acc = 0.0f32;
                for col in 0..2 * 2 * 2 {
                    let (ic, rem) = (col / 4, col % 4);
                    let (ky, kx) = (rem / 2, rem % 2);
                    acc += lowered.at(&[row, col]) * conv_kernel.at(&[oc, ic, ky, kx]);
                }
                let direct_v = direct.at(&[oc, row / ow, row % ow]);
                // Conv2d rounds its outputs to BF16; allow one BF16 ulp.
                assert!(
                    (acc - direct_v).abs() < 0.02_f32.max(direct_v.abs() / 128.0),
                    "oc {oc} row {row}: {acc} vs {direct_v}"
                );
            }
        }
    }

    #[test]
    fn streamed_cycles_scale() {
        assert_eq!(streamed_cycles(0), FMT_STARTUP);
        assert_eq!(streamed_cycles(64), FMT_STARTUP + 1);
        assert_eq!(streamed_cycles(65), FMT_STARTUP + 2);
    }

    #[test]
    fn overlap_hides_cost_behind_compute() {
        // A transform fully covered by compute costs nothing extra.
        assert_eq!(overlapped_cycles(640, 1_000), 0);
        // Only the excess shows.
        let raw = streamed_cycles(64_000);
        assert_eq!(overlapped_cycles(64_000, 100), raw - 100);
    }

    #[test]
    #[should_panic(expected = "exceeds input")]
    fn oversized_kernel_panics() {
        let x = Tensor::zeros(&[1, 2, 2]);
        let _ = lower_im2col(&x, 3, 1);
    }
}
