//! The memory engine: DMEM/IMEM and double-buffered load/store units.
//!
//! "The memory engine consists of two Load Store Units (LSUs), offering
//! latency-hiding off-chip communication via our customized chip-to-chip
//! (C2C) interface, and the data memory (DMEM) and the instruction
//! memory (IMEM) that store the data and program code to allow double
//! buffering between the computation and data transaction. DMEM
//! primarily stores the pre-fetched weight parameters before the
//! inference along with the activation data during the runtime, where
//! the L2 cache can be additionally utilized through the C2C interface
//! in case the data size exceeds the DMEM's capacity" (§III-C).
//!
//! This module models those mechanics: capacity planning for a network's
//! weights + activations, and the double-buffering timeline that tells
//! how much of a transfer hides behind compute.

use crate::c2c::C2cLink;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// On-chip memory geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Data memory capacity in bytes.
    pub dmem_bytes: usize,
    /// Instruction memory capacity in bytes.
    pub imem_bytes: usize,
    /// Number of load/store units (transfers that can be in flight).
    pub lsus: usize,
}

impl MemoryConfig {
    /// The LightTrader accelerator's memory engine: 8 MiB DMEM, 256 KiB
    /// IMEM, two LSUs.
    pub fn lighttrader() -> Self {
        MemoryConfig {
            dmem_bytes: 8 << 20,
            imem_bytes: 256 << 10,
            lsus: 2,
        }
    }
}

/// Where a network's working set lives during inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Residency {
    /// Weights and activations fit in DMEM: no mid-inference C2C traffic.
    Dmem,
    /// The working set spills: the overflow streams from the FPGA-side L2
    /// through the C2C interface during inference.
    L2Spill {
        /// Bytes that must stream from L2 per inference.
        overflow_bytes: usize,
    },
}

/// Plans residency for a working set of `weight_bytes` + `activation_bytes`.
pub fn plan_residency(
    config: &MemoryConfig,
    weight_bytes: usize,
    activation_bytes: usize,
) -> Residency {
    let total = weight_bytes + activation_bytes;
    if total <= config.dmem_bytes {
        Residency::Dmem
    } else {
        Residency::L2Spill {
            overflow_bytes: total - config.dmem_bytes,
        }
    }
}

/// The double-buffering timeline of one inference: given the compute time
/// and the bytes that must move during it, how much transfer time remains
/// exposed (not hidden behind compute)?
///
/// With `lsus` units, transfers proceed concurrently with compute at the
/// link's full rate; only the portion exceeding the compute window shows
/// up as added latency — the "latency-hiding off-chip communication" of
/// the paper.
pub fn exposed_transfer(
    config: &MemoryConfig,
    link: &C2cLink,
    bytes_during_compute: usize,
    compute: Duration,
) -> Duration {
    if bytes_during_compute == 0 {
        return Duration::ZERO;
    }
    // Each LSU issues its share; fixed latency paid once per LSU batch,
    // bandwidth shared (single physical link).
    let per_lsu = bytes_during_compute.div_ceil(config.lsus);
    let stream_time = link.transfer_time(per_lsu * config.lsus);
    stream_time.saturating_sub(compute)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MemoryConfig {
        MemoryConfig::lighttrader()
    }

    #[test]
    fn lighttrader_geometry() {
        let c = cfg();
        assert_eq!(c.dmem_bytes, 8 * 1024 * 1024);
        assert_eq!(c.imem_bytes, 256 * 1024);
        assert_eq!(c.lsus, 2);
    }

    #[test]
    fn tiny_models_fit_in_dmem() {
        // The tiny functional models are far below 8 MiB.
        use lt_dnn::models::CnnSpec;
        let spec = CnnSpec::tiny();
        // Rough weight count: conv kernels + fc layers, 2 bytes each (BF16).
        let weights = (spec.channels * 4 * 40
            + 2 * spec.channels * spec.channels * 4
            + spec.channels * 11 * spec.hidden
            + spec.hidden * 3)
            * 2;
        let activations = spec.window * spec.features * 2 * 4;
        assert!(matches!(
            plan_residency(&cfg(), weights, activations),
            Residency::Dmem
        ));
    }

    #[test]
    fn oversized_working_set_spills_to_l2() {
        let r = plan_residency(&cfg(), 12 << 20, 1 << 20);
        match r {
            Residency::L2Spill { overflow_bytes } => {
                assert_eq!(overflow_bytes, (12 << 20) + (1 << 20) - (8 << 20));
            }
            other => panic!("expected spill, got {other:?}"),
        }
    }

    #[test]
    fn boundary_exactly_fits() {
        let c = cfg();
        assert!(matches!(
            plan_residency(&c, c.dmem_bytes, 0),
            Residency::Dmem
        ));
        assert!(matches!(
            plan_residency(&c, c.dmem_bytes, 1),
            Residency::L2Spill { overflow_bytes: 1 }
        ));
    }

    #[test]
    fn transfers_hide_behind_long_compute() {
        let link = C2cLink::lighttrader();
        // 100 KiB during 100 µs of compute: the link moves ~4.5 MiB in
        // that window, so nothing is exposed.
        let exposed = exposed_transfer(&cfg(), &link, 100 << 10, Duration::from_micros(100));
        assert_eq!(exposed, Duration::ZERO);
    }

    #[test]
    fn oversized_transfers_expose_the_excess() {
        let link = C2cLink::lighttrader();
        // 45 MB during 100 µs: stream time ~1 ms, exposing ~0.9 ms.
        let exposed = exposed_transfer(&cfg(), &link, 45_000_000, Duration::from_micros(100));
        assert!(exposed > Duration::from_micros(800), "{exposed:?}");
        assert!(exposed < Duration::from_micros(1_100), "{exposed:?}");
    }

    #[test]
    fn zero_bytes_costs_nothing() {
        let link = C2cLink::lighttrader();
        assert_eq!(
            exposed_transfer(&cfg(), &link, 0, Duration::ZERO),
            Duration::ZERO
        );
    }
}
