//! The calibrated power model and the co-location power conditions.
//!
//! Per-model chip power is fitted as
//!
//! ```text
//! P(model, batch, point) = P_static(model) + k(model) · u(batch) · V² · f²
//! ```
//!
//! where `V`/`f` come from the DVFS point, `u(batch) ≥ 1` is the
//! utilization lift of batched execution, and the per-model constants
//! `(P_static, k)` are *profiled* values — calibrated so the static plan
//! of [`crate::dvfs::static_plan`] reproduces the paper's Table III
//! frequency grid cell-for-cell (the paper likewise drives its simulator
//! from profiled power, §IV-A). The `V²·f²` shape (rather than the
//! textbook `V²·f`) reflects the frequency-dependent current margin the
//! fit needs to satisfy all of Table III simultaneously.

use crate::dvfs::OperatingPoint;
use lt_dnn::ModelKind;
use serde::{Deserialize, Serialize};

/// The two co-location power environments of the evaluation (§IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PowerCondition {
    /// The full 75 W PCIe-card budget.
    Sufficient,
    /// A constrained 40 W budget.
    Limited,
}

impl PowerCondition {
    /// Total card power in watts.
    pub fn card_budget_w(self) -> f64 {
        match self {
            PowerCondition::Sufficient => 75.0,
            PowerCondition::Limited => 40.0,
        }
    }

    /// Power consumed by the FPGA and peripherals, off the top of the card
    /// budget ("the AI accelerators receive the power, except the FPGA and
    /// peripherals consume", §IV-C).
    pub const FPGA_AND_PERIPHERALS_W: f64 = 20.0;

    /// Power available to the accelerator pool (Table III's "Available
    /// Power" row at one accelerator: 55 W / 20 W).
    pub fn accelerator_budget_w(self) -> f64 {
        self.card_budget_w() - Self::FPGA_AND_PERIPHERALS_W
    }
}

impl std::fmt::Display for PowerCondition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PowerCondition::Sufficient => f.write_str("sufficient (75 W)"),
            PowerCondition::Limited => f.write_str("limited (40 W)"),
        }
    }
}

/// Per-model fitted power constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct ModelPowerFit {
    /// Workload-dependent baseline (SRAM, IO, clock tree) in watts.
    p_static_w: f64,
    /// Dynamic coefficient in W / (V² · GHz²).
    k_dyn: f64,
}

/// The calibrated chip power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    cnn: ModelPowerFit,
    translob: ModelPowerFit,
    deeplob: ModelPowerFit,
}

impl PowerModel {
    /// The calibration that reproduces Table III (see module docs).
    pub fn calibrated() -> Self {
        PowerModel {
            cnn: ModelPowerFit {
                p_static_w: 0.48,
                k_dyn: 0.72,
            },
            translob: ModelPowerFit {
                p_static_w: 0.70,
                k_dyn: 0.92,
            },
            deeplob: ModelPowerFit {
                p_static_w: 0.65,
                k_dyn: 1.00,
            },
        }
    }

    fn fit(&self, kind: ModelKind) -> ModelPowerFit {
        match kind {
            ModelKind::VanillaCnn => self.cnn,
            ModelKind::TransLob => self.translob,
            ModelKind::DeepLob => self.deeplob,
        }
    }

    /// Utilization lift of batch-`b` execution relative to batch 1:
    /// batching fills more of the PE grid, so dynamic power rises,
    /// saturating around +50%.
    pub fn batch_utilization(batch: u32) -> f64 {
        assert!(batch >= 1, "batch must be at least 1");
        1.0 + 0.5 * (1.0 - 1.0 / batch as f64)
    }

    /// Chip power in watts for `kind` at batch `batch` on `point`.
    pub fn power_w(&self, kind: ModelKind, batch: u32, point: OperatingPoint) -> f64 {
        let fit = self.fit(kind);
        let v2f2 = point.voltage_v * point.voltage_v * point.freq_ghz * point.freq_ghz;
        fit.p_static_w + fit.k_dyn * Self::batch_utilization(batch) * v2f2
    }

    /// Idle power (clock-gated, no inference running).
    pub fn idle_power_w(&self, kind: ModelKind) -> f64 {
        self.fit(kind).p_static_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dvfs::{AccelSpec, DvfsTable};

    #[test]
    fn power_conditions_match_paper() {
        assert_eq!(PowerCondition::Sufficient.card_budget_w(), 75.0);
        assert_eq!(PowerCondition::Limited.card_budget_w(), 40.0);
        assert_eq!(PowerCondition::Sufficient.accelerator_budget_w(), 55.0);
        assert_eq!(PowerCondition::Limited.accelerator_budget_w(), 20.0);
    }

    #[test]
    fn power_monotone_in_frequency() {
        let m = PowerModel::calibrated();
        for kind in ModelKind::ALL {
            let mut last = 0.0;
            for p in DvfsTable::full_range().points() {
                let w = m.power_w(kind, 1, *p);
                assert!(w > last, "{kind} at {p}: {w} <= {last}");
                last = w;
            }
        }
    }

    #[test]
    fn power_monotone_in_batch() {
        let m = PowerModel::calibrated();
        let p = OperatingPoint::at_freq(2.0);
        for kind in ModelKind::ALL {
            let b1 = m.power_w(kind, 1, p);
            let b4 = m.power_w(kind, 4, p);
            let b16 = m.power_w(kind, 16, p);
            assert!(b1 < b4 && b4 < b16);
        }
    }

    /// No model/batch combination exceeds the Table I 10.8 W ceiling even
    /// at the full 2.2 GHz point.
    #[test]
    fn never_exceeds_table1_envelope() {
        let m = PowerModel::calibrated();
        let top = OperatingPoint::at_freq(2.2);
        for kind in ModelKind::ALL {
            for batch in [1, 2, 4, 8, 16, 64] {
                let w = m.power_w(kind, batch, top);
                assert!(
                    w <= AccelSpec::TABLE1.max_power_w,
                    "{kind} b{batch}: {w:.2} W > 10.8 W"
                );
            }
        }
    }

    /// Heavier models draw more power at the same point (DeepLOB has the
    /// highest sustained utilization).
    #[test]
    fn heavier_models_draw_more() {
        let m = PowerModel::calibrated();
        let p = OperatingPoint::at_freq(2.0);
        let cnn = m.power_w(ModelKind::VanillaCnn, 1, p);
        let translob = m.power_w(ModelKind::TransLob, 1, p);
        let deeplob = m.power_w(ModelKind::DeepLob, 1, p);
        assert!(cnn < translob && translob < deeplob);
    }

    #[test]
    fn batch_utilization_shape() {
        assert_eq!(PowerModel::batch_utilization(1), 1.0);
        assert!(PowerModel::batch_utilization(16) < 1.5);
        assert!(PowerModel::batch_utilization(2) > 1.0);
    }

    #[test]
    fn idle_power_is_static_floor() {
        let m = PowerModel::calibrated();
        for kind in ModelKind::ALL {
            let idle = m.idle_power_w(kind);
            assert!(idle > 0.0);
            assert!(idle < m.power_w(kind, 1, OperatingPoint::at_freq(0.8)));
        }
    }
}
