//! The profiled device view the scheduler consumes.
//!
//! Algorithm 1 iterates `(dvfs, batch)` candidates and reads
//! `t_infer[dvfs][bs]`, `t_trans[bs]`, and `power[dvfs][bs]` from
//! profiles; Algorithm 2 additionally needs marginal PPW. This module
//! packages the calibrated latency and power models (plus the C2C link)
//! behind exactly that interface, including the PPW metric of §III-D:
//!
//! ```text
//! PPW = batch_size / (latency · consumed power)
//! ```

use crate::c2c::C2cLink;
use crate::dvfs::OperatingPoint;
use crate::latency::LatencyModel;
use crate::power::PowerModel;
use lt_dnn::{ModelKind, Precision};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Latency/power/PPW lookups for one accelerator chip.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    latency: LatencyModel,
    power: PowerModel,
    link: C2cLink,
    precision: Precision,
}

impl DeviceProfile {
    /// The calibrated LightTrader profile at BF16.
    pub fn lighttrader() -> Self {
        DeviceProfile {
            latency: LatencyModel::calibrated(),
            power: PowerModel::calibrated(),
            link: C2cLink::lighttrader(),
            precision: Precision::Bf16,
        }
    }

    /// The same profile with a different execution precision.
    #[must_use]
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Execution precision of this profile.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Inference latency `t_infer[dvfs][bs]`.
    pub fn t_infer(&self, kind: ModelKind, batch: u32, point: OperatingPoint) -> Duration {
        self.latency.infer(kind, batch, point, self.precision)
    }

    /// Transfer latency `t_trans[bs]`.
    pub fn t_trans(&self, kind: ModelKind, batch: u32) -> Duration {
        self.latency.transfer(kind, batch, &self.link)
    }

    /// End-to-end DNN-pipeline latency `t_total = t_infer + t_trans`.
    pub fn t_total(&self, kind: ModelKind, batch: u32, point: OperatingPoint) -> Duration {
        self.t_infer(kind, batch, point) + self.t_trans(kind, batch)
    }

    /// Chip power `power[dvfs][bs]` in watts.
    pub fn power_w(&self, kind: ModelKind, batch: u32, point: OperatingPoint) -> f64 {
        self.power.power_w(kind, batch, point)
    }

    /// Idle chip power in watts.
    pub fn idle_power_w(&self, kind: ModelKind) -> f64 {
        self.power.idle_power_w(kind)
    }

    /// The §III-D PPW metric: `batch / (latency_secs · power_watts)`.
    pub fn ppw(&self, kind: ModelKind, batch: u32, point: OperatingPoint) -> f64 {
        let latency = self.t_total(kind, batch, point).as_secs_f64();
        let power = self.power_w(kind, batch, point);
        batch as f64 / (latency * power)
    }

    /// Energy per batch in joules (diagnostics and ablation benches).
    pub fn energy_j(&self, kind: ModelKind, batch: u32, point: OperatingPoint) -> f64 {
        self.t_total(kind, batch, point).as_secs_f64() * self.power_w(kind, batch, point)
    }

    /// Effective TFLOPS/W at batch 1 (Fig. 11(c)'s metric).
    pub fn effective_tflops_per_watt(&self, kind: ModelKind, point: OperatingPoint) -> f64 {
        self.latency.effective_tflops(kind, point) / self.power_w(kind, 1, point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(f: f64) -> OperatingPoint {
        OperatingPoint::at_freq(f)
    }

    #[test]
    fn t_total_is_sum() {
        let prof = DeviceProfile::lighttrader();
        for kind in ModelKind::ALL {
            let total = prof.t_total(kind, 4, p(2.0));
            assert_eq!(total, prof.t_infer(kind, 4, p(2.0)) + prof.t_trans(kind, 4));
        }
    }

    /// Batching improves PPW: the throughput gain outweighs the power lift
    /// (this is why Algorithm 1 batches under bursts).
    #[test]
    fn ppw_increases_with_batch() {
        let prof = DeviceProfile::lighttrader();
        for kind in ModelKind::ALL {
            let p1 = prof.ppw(kind, 1, p(2.0));
            let p4 = prof.ppw(kind, 4, p(2.0));
            let p16 = prof.ppw(kind, 16, p(2.0));
            assert!(p1 < p4 && p4 < p16, "{kind}: {p1} {p4} {p16}");
        }
    }

    /// Scaling frequency up cuts latency but costs energy efficiency —
    /// the trade-off Algorithm 1 navigates (§III-D).
    #[test]
    fn frequency_trades_latency_for_efficiency() {
        let prof = DeviceProfile::lighttrader();
        let kind = ModelKind::TransLob;
        let fast = p(2.0);
        let slow = p(1.2);
        assert!(prof.t_infer(kind, 1, fast) < prof.t_infer(kind, 1, slow));
        assert!(
            prof.ppw(kind, 1, fast) < prof.ppw(kind, 1, slow),
            "higher clock must be less energy-efficient"
        );
    }

    #[test]
    fn int8_profile_is_faster() {
        let bf16 = DeviceProfile::lighttrader();
        let int8 = DeviceProfile::lighttrader().with_precision(Precision::Int8);
        assert!(
            int8.t_infer(ModelKind::DeepLob, 1, p(2.0))
                < bf16.t_infer(ModelKind::DeepLob, 1, p(2.0))
        );
        assert_eq!(int8.precision(), Precision::Int8);
    }

    #[test]
    fn energy_consistency() {
        let prof = DeviceProfile::lighttrader();
        let e = prof.energy_j(ModelKind::VanillaCnn, 2, p(1.5));
        let t = prof.t_total(ModelKind::VanillaCnn, 2, p(1.5)).as_secs_f64();
        let w = prof.power_w(ModelKind::VanillaCnn, 2, p(1.5));
        assert!((e - t * w).abs() < 1e-12);
        // PPW is the reciprocal energy per query.
        let ppw = prof.ppw(ModelKind::VanillaCnn, 2, p(1.5));
        assert!((ppw - 2.0 / e).abs() / ppw < 1e-9);
    }

    #[test]
    fn efficiency_metric_positive_and_finite() {
        let prof = DeviceProfile::lighttrader();
        for kind in ModelKind::ALL {
            let eff = prof.effective_tflops_per_watt(kind, p(2.0));
            assert!(eff.is_finite() && eff > 0.0);
        }
    }
}
