//! Compiled command streams for the tensor engine.
//!
//! The paper's software stack includes an "ML compiler which generates
//! the command streams for the latency-aware network execution of a
//! given neural network graph, managing compute and data transaction
//! tasks in the accelerators" (§III-E). This module is that layer's
//! analytic counterpart: [`compile`] lowers each benchmark's
//! architecture spec into a [`Program`] — an ordered stream of
//! hyperblock-level commands (matmul/conv tiles, EPE non-linear sweeps,
//! FMT layout transforms, LSU transfers) — and
//! [`Program::estimate`] prices it on a grid/memory/link configuration,
//! overlapping transfers with compute exactly as the double-buffered
//! memory engine does.

use crate::c2c::C2cLink;
use crate::cgra::GridConfig;
use crate::dvfs::OperatingPoint;
use crate::fmt::streamed_cycles;
use crate::memory::{exposed_transfer, MemoryConfig};
use lt_dnn::models::{CnnSpec, DeepLobSpec, TransLobSpec};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// One hyperblock-level command in a compiled stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Command {
    /// A MAC-dominated tile (matmul, convolution, LSTM gate block).
    Macs {
        /// Multiply-accumulates in the tile.
        count: u64,
    },
    /// An EPE sweep (activation, softmax, tanh/sigmoid).
    Nonlinear {
        /// Elements processed.
        elems: u64,
    },
    /// An FMT layout transform (lowering, transpose, flatten).
    Format {
        /// Elements moved.
        elems: u64,
    },
    /// An LSU transfer that must happen during inference (activations,
    /// L2 spill traffic).
    Transfer {
        /// Bytes moved over the C2C link.
        bytes: u64,
    },
}

/// A compiled command stream.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Program {
    commands: Vec<Command>,
}

/// The cycle/time estimate of one program execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    /// Compute cycles on the PE grid (MAC tiles + EPE sweeps + exposed
    /// FMT cycles).
    pub compute_cycles: u64,
    /// Transfer time left exposed after double-buffering.
    pub exposed_transfer: Duration,
    /// End-to-end time at the given operating point.
    pub total: Duration,
}

/// Pipeline fill charged per hyperblock launch (matches `cgra`).
const HYPERBLOCK_FILL: u64 = 32;
/// EPE cycles per transcendental element (matches `cgra`).
const EPE_CYCLES_PER_ELEM: u64 = 4;

impl Program {
    /// Appends a command (builder style, used by the compilers).
    pub fn push(&mut self, command: Command) {
        self.commands.push(command);
    }

    /// The command stream.
    pub fn commands(&self) -> &[Command] {
        &self.commands
    }

    /// Total MACs across the stream.
    pub fn total_macs(&self) -> u64 {
        self.commands
            .iter()
            .map(|c| match c {
                Command::Macs { count } => *count,
                _ => 0,
            })
            .sum()
    }

    /// Total bytes that must move during inference.
    pub fn total_transfer_bytes(&self) -> u64 {
        self.commands
            .iter()
            .map(|c| match c {
                Command::Transfer { bytes } => *bytes,
                _ => 0,
            })
            .sum()
    }

    /// Prices the stream on a hardware configuration at `point`.
    pub fn estimate(
        &self,
        grid: &GridConfig,
        memory: &MemoryConfig,
        link: &C2cLink,
        point: OperatingPoint,
    ) -> Estimate {
        let mac_lanes = grid.mac_lanes() as u64;
        let epe_lanes = grid.epe_lanes() as u64;
        let mut compute_cycles = 0u64;
        for c in &self.commands {
            compute_cycles += match c {
                Command::Macs { count } => HYPERBLOCK_FILL + count.div_ceil(mac_lanes),
                Command::Nonlinear { elems } => {
                    HYPERBLOCK_FILL + (elems * EPE_CYCLES_PER_ELEM).div_ceil(epe_lanes)
                }
                // FMT streams overlap with compute; only start-up shows.
                Command::Format { elems } => streamed_cycles(*elems).min(HYPERBLOCK_FILL),
                Command::Transfer { .. } => 0,
            };
        }
        let compute = Duration::from_secs_f64(compute_cycles as f64 / (point.freq_ghz * 1e9));
        let exposed = exposed_transfer(memory, link, self.total_transfer_bytes() as usize, compute);
        Estimate {
            compute_cycles,
            exposed_transfer: exposed,
            total: compute + exposed,
        }
    }
}

/// Lowers architecture specs into command streams.
pub mod compile {
    use super::*;

    fn conv_block(program: &mut Program, macs: u64, out_elems: u64) {
        program.push(Command::Format { elems: out_elems }); // im2col lowering
        program.push(Command::Macs { count: macs });
        program.push(Command::Nonlinear { elems: out_elems }); // activation
    }

    /// Compiles a Vanilla CNN spec.
    pub fn cnn(spec: &CnnSpec) -> Program {
        let mut p = Program::default();
        let c = spec.channels as u64;
        let t = spec.window as u64;
        let f = spec.features as u64;
        p.push(Command::Transfer {
            bytes: t * f * 2, // BF16 input feature map
        });
        conv_block(&mut p, c * 4 * f * (t - 3), c * (t - 3));
        conv_block(&mut p, c * c * 4 * (t - 6), c * (t - 6));
        conv_block(&mut p, c * c * 4 * (t - 9), c * (t - 9));
        let h = spec.hidden as u64;
        p.push(Command::Macs {
            count: c * (t - 9) * h,
        });
        p.push(Command::Nonlinear { elems: h });
        p.push(Command::Macs { count: h * 3 });
        p.push(Command::Nonlinear { elems: 3 }); // softmax
        p.push(Command::Transfer { bytes: 16 }); // result
        p
    }

    /// Compiles a TransLOB spec.
    pub fn translob(spec: &TransLobSpec) -> Program {
        let mut p = Program::default();
        let t = spec.window as u64;
        let f = spec.features as u64;
        let c = spec.conv_channels as u64;
        let d = spec.d_model as u64;
        p.push(Command::Transfer { bytes: t * f * 2 });
        conv_block(&mut p, t * 3 * f * c, t * c);
        for _ in 0..4 {
            conv_block(&mut p, t * 3 * c * c, t * c);
        }
        p.push(Command::Macs { count: t * c * d }); // projection
        for _ in 0..spec.layers {
            p.push(Command::Nonlinear { elems: t * d }); // layer norm
            p.push(Command::Macs {
                count: 4 * t * d * d,
            }); // QKV + out proj
            p.push(Command::Format { elems: t * d }); // head shuffling
            p.push(Command::Macs {
                count: 2 * t * t * d,
            }); // scores + context
            p.push(Command::Nonlinear { elems: t * t }); // softmax
            p.push(Command::Nonlinear { elems: t * d }); // layer norm
            p.push(Command::Macs {
                count: 8 * t * d * d,
            }); // FFN
            p.push(Command::Nonlinear { elems: 4 * t * d }); // FFN activation
        }
        p.push(Command::Macs { count: d * 3 });
        p.push(Command::Nonlinear { elems: 3 });
        p.push(Command::Transfer { bytes: 16 });
        p
    }

    /// Compiles a DeepLOB spec.
    pub fn deeplob(spec: &DeepLobSpec) -> Program {
        let mut p = Program::default();
        let t = spec.window as u64;
        let c = spec.channels as u64;
        let h = spec.lstm_hidden as u64;
        p.push(Command::Transfer { bytes: t * 40 * 2 });
        // The three level-folding blocks (counts mirror DeepLobSpec::macs).
        conv_block(&mut p, c * 2 * t * 20, c * t * 20);
        conv_block(&mut p, c * c * 4 * (t - 3) * 20, c * (t - 3) * 20);
        conv_block(&mut p, c * c * 4 * (t - 6) * 20, c * (t - 6) * 20);
        conv_block(&mut p, c * c * 2 * (t - 6) * 10, c * (t - 6) * 10);
        conv_block(&mut p, c * c * 4 * (t - 9) * 10, c * (t - 9) * 10);
        conv_block(&mut p, c * c * 4 * (t - 12) * 10, c * (t - 12) * 10);
        conv_block(&mut p, c * c * 10 * (t - 12), c * (t - 12));
        conv_block(&mut p, c * c * 4 * (t - 15), c * (t - 15));
        conv_block(&mut p, c * c * 4 * (t - 18), c * (t - 18));
        let steps = spec.lstm_steps() as u64;
        // Inception branches.
        conv_block(&mut p, c * c * steps, c * steps);
        conv_block(&mut p, c * c * steps + 3 * c * c * steps, c * steps);
        conv_block(&mut p, c * c * steps + 5 * c * c * steps, c * steps);
        // LSTM: per-step gate matmuls + elementwise gates.
        p.push(Command::Format {
            elems: steps * 3 * c,
        }); // channel concat
        p.push(Command::Macs {
            count: steps * 4 * (3 * c * h + h * h),
        });
        p.push(Command::Nonlinear {
            elems: steps * 4 * h,
        });
        p.push(Command::Macs { count: h * 3 });
        p.push(Command::Nonlinear { elems: 3 });
        p.push(Command::Transfer { bytes: 16 });
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hw() -> (GridConfig, MemoryConfig, C2cLink) {
        (
            GridConfig::lighttrader(),
            MemoryConfig::lighttrader(),
            C2cLink::lighttrader(),
        )
    }

    /// The compiler's MAC totals agree exactly with the analytic spec
    /// counters — one source of truth for workload size.
    #[test]
    fn compiled_macs_match_specs() {
        assert_eq!(
            compile::cnn(&CnnSpec::tiny()).total_macs(),
            CnnSpec::tiny().macs()
        );
        assert_eq!(
            compile::translob(&TransLobSpec::tiny()).total_macs(),
            TransLobSpec::tiny().macs()
        );
        assert_eq!(
            compile::deeplob(&DeepLobSpec::tiny()).total_macs(),
            DeepLobSpec::tiny().macs()
        );
        // And at paper scale.
        assert_eq!(
            compile::cnn(&CnnSpec::paper()).total_macs(),
            CnnSpec::paper().macs()
        );
        assert_eq!(
            compile::translob(&TransLobSpec::paper()).total_macs(),
            TransLobSpec::paper().macs()
        );
        assert_eq!(
            compile::deeplob(&DeepLobSpec::paper()).total_macs(),
            DeepLobSpec::paper().macs()
        );
    }

    #[test]
    fn estimates_scale_with_model_complexity() {
        let (grid, mem, link) = hw();
        let p = OperatingPoint::at_freq(2.0);
        let cnn = compile::cnn(&CnnSpec::paper()).estimate(&grid, &mem, &link, p);
        let translob = compile::translob(&TransLobSpec::paper()).estimate(&grid, &mem, &link, p);
        let deeplob = compile::deeplob(&DeepLobSpec::paper()).estimate(&grid, &mem, &link, p);
        assert!(cnn.total < translob.total);
        assert!(translob.total < deeplob.total);
    }

    #[test]
    fn estimates_scale_inversely_with_clock() {
        let (grid, mem, link) = hw();
        // Paper scale: compute-dominated, so the clock visibly matters
        // (a tiny spec is transfer-latency-bound and nearly clock-flat).
        let prog = compile::cnn(&CnnSpec::paper());
        let fast = prog.estimate(&grid, &mem, &link, OperatingPoint::at_freq(2.0));
        let slow = prog.estimate(&grid, &mem, &link, OperatingPoint::at_freq(1.0));
        assert!(slow.total > fast.total);
        assert_eq!(
            slow.compute_cycles, fast.compute_cycles,
            "cycles are clock-free"
        );
    }

    #[test]
    fn input_transfers_hide_behind_compute() {
        let (grid, mem, link) = hw();
        let est = compile::deeplob(&DeepLobSpec::paper()).estimate(
            &grid,
            &mem,
            &link,
            OperatingPoint::at_freq(2.0),
        );
        // An 8 KB input stream is trivially hidden by milliseconds of
        // compute: nothing exposed.
        assert_eq!(est.exposed_transfer, Duration::ZERO);
        assert!(est.total > Duration::from_micros(100));
    }

    /// The compiled estimate for paper-scale models is consistent with the
    /// Table II note (EXPERIMENTS.md): raw command streams at the 16 TFLOPS
    /// peak take milliseconds, which is why Table II's totals must be
    /// per-bundle and the per-query latency is calibrated to Fig. 11(a).
    #[test]
    fn paper_scale_streams_exceed_anchor_latency() {
        let (grid, mem, link) = hw();
        let est = compile::deeplob(&DeepLobSpec::paper()).estimate(
            &grid,
            &mem,
            &link,
            OperatingPoint::at_freq(2.0),
        );
        assert!(est.total > Duration::from_millis(10), "{est:?}");
    }

    #[test]
    fn program_accessors() {
        let mut p = Program::default();
        p.push(Command::Macs { count: 100 });
        p.push(Command::Transfer { bytes: 64 });
        assert_eq!(p.commands().len(), 2);
        assert_eq!(p.total_macs(), 100);
        assert_eq!(p.total_transfer_bytes(), 64);
    }
}
