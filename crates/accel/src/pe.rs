//! Cycle-stepped processing-element dataflow.
//!
//! "Each PE and EPE can run different instruction streams … for the
//! forwarded input data from the neighboring elements and push the
//! computational results to the next target processing elements" and
//! "the data transaction in the tensor engine is limited to the neighbor
//! PEs" (§III-C). This module simulates that neighbor-only dataflow at
//! cycle granularity for the workhorse kernel — a weight-stationary
//! systolic matmul: activations stream west→east, partial sums
//! north→south, each PE touching only its four neighbours.
//!
//! Unlike the hyperblock-level [`crate::cgra`] model (which charges
//! aggregate cycles), this simulator steps every PE every cycle, so the
//! pipeline fill/drain behaviour is *emergent*, and its closed-form cost
//! (`K + R + C - 2` per tile) is verified against the stepped execution
//! rather than assumed.

use lt_dnn::Tensor;

/// A weight-stationary systolic array of `rows x cols` PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystolicArray {
    rows: usize,
    cols: usize,
}

impl SystolicArray {
    /// Creates an array.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be positive");
        SystolicArray { rows, cols }
    }

    /// The LightTrader tensor engine's regular-PE region (16 x 14).
    pub fn lighttrader() -> Self {
        SystolicArray::new(16, 14)
    }

    /// Array rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Array columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Closed-form cycles for one `K`-deep tile on this array:
    /// `K + rows + cols - 2` (fill + stream + drain).
    pub fn tile_cycles(&self, k: usize) -> u64 {
        (k + self.rows + self.cols - 2) as u64
    }

    /// Multiplies `a [m, k] x b [k, n]` by cycle-stepping tiles through
    /// the array. Returns the product and the exact cycle count.
    ///
    /// Output-stationary schedule: PE `(r, c)` accumulates
    /// `out[row0+r][col0+c]`. Activations stream west→east (row `r`'s
    /// feed skewed by `r` cycles), weights stream north→south (column
    /// `c`'s feed skewed by `c`), so `a[r][k]` and `b[k][c]` meet at PE
    /// `(r, c)` exactly at cycle `k + r + c` — every transaction touches
    /// only a neighbouring PE.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn matmul(&self, a: &Tensor, b: &Tensor) -> (Tensor, u64) {
        assert_eq!(a.shape().len(), 2, "a must be rank 2");
        assert_eq!(b.shape().len(), 2, "b must be rank 2");
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let (k2, n) = (b.shape()[0], b.shape()[1]);
        assert_eq!(k, k2, "inner dimensions differ: {k} vs {k2}");

        let mut out = Tensor::zeros(&[m, n]);
        let mut cycles = 0u64;
        let mut row0 = 0;
        while row0 < m {
            let tile_m = self.rows.min(m - row0);
            let mut col0 = 0;
            while col0 < n {
                let tile_n = self.cols.min(n - col0);
                cycles += self.run_tile(a, b, &mut out, row0, tile_m, col0, tile_n, k);
                col0 += tile_n;
            }
            row0 += tile_m;
        }
        (out, cycles)
    }

    /// Cycle-steps one output-stationary tile; returns its cycle count.
    #[allow(clippy::too_many_arguments)]
    fn run_tile(
        &self,
        a: &Tensor,
        b: &Tensor,
        out: &mut Tensor,
        row0: usize,
        tile_m: usize,
        col0: usize,
        tile_n: usize,
        k: usize,
    ) -> u64 {
        // Per-PE registers: `h` holds the activation moving east, `w` the
        // weight moving south, `acc` the stationary partial sum. `None`
        // marks pipeline bubbles during fill/drain.
        let mut h: Vec<Vec<Option<f32>>> = vec![vec![None; tile_n]; tile_m];
        let mut w: Vec<Vec<Option<f32>>> = vec![vec![None; tile_n]; tile_m];
        let mut acc = vec![vec![0.0f32; tile_n]; tile_m];
        let total = (k + tile_m + tile_n - 2) as u64;
        for cycle in 0..total as usize {
            // Sweep south-east first so each PE reads its west/north
            // neighbour's value from the *previous* cycle.
            for r in (0..tile_m).rev() {
                for c in (0..tile_n).rev() {
                    let new_h = if c == 0 {
                        // West-edge feed for row r, skewed by r: element
                        // k_idx enters at cycle k_idx + r.
                        let k_idx = cycle as isize - r as isize;
                        if (0..k as isize).contains(&k_idx) {
                            Some(a.at(&[row0 + r, k_idx as usize]))
                        } else {
                            None
                        }
                    } else {
                        h[r][c - 1]
                    };
                    let new_w = if r == 0 {
                        // North-edge feed for column c, skewed by c.
                        let k_idx = cycle as isize - c as isize;
                        if (0..k as isize).contains(&k_idx) {
                            Some(b.at(&[k_idx as usize, col0 + c]))
                        } else {
                            None
                        }
                    } else {
                        w[r - 1][c]
                    };
                    if let (Some(x), Some(y)) = (new_h, new_w) {
                        acc[r][c] += x * y;
                    }
                    h[r][c] = new_h;
                    w[r][c] = new_w;
                }
            }
        }
        // Drain: read the stationary accumulators (overlapped with the
        // next tile's weight load in hardware, so not charged here).
        for (r, acc_row) in acc.iter().enumerate().take(tile_m) {
            for (c, &v) in acc_row.iter().enumerate().take(tile_n) {
                out.set(&[row0 + r, col0 + c], v);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.at(&[i, kk]) * b.at(&[kk, j]);
                }
                out.set(&[i, j], acc);
            }
        }
        out
    }

    fn assert_close(a: &Tensor, b: &Tensor) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn tiny_exact_case() {
        let array = SystolicArray::new(2, 2);
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let (out, cycles) = array.matmul(&a, &b);
        assert_eq!(out.data(), &[19.0, 22.0, 43.0, 50.0]);
        assert!(cycles > 0);
    }

    #[test]
    fn matches_naive_on_array_sized_problem() {
        let array = SystolicArray::new(4, 4);
        let a = Tensor::random(&[4, 6], 1.0, 1);
        let b = Tensor::random(&[6, 4], 1.0, 2);
        let (out, _) = array.matmul(&a, &b);
        assert_close(&out, &naive(&a, &b));
    }

    #[test]
    fn tiles_larger_problems_correctly() {
        let array = SystolicArray::new(3, 5);
        // m, n deliberately non-multiples of the array dims.
        let a = Tensor::random(&[7, 9], 1.0, 3);
        let b = Tensor::random(&[9, 11], 1.0, 4);
        let (out, cycles) = array.matmul(&a, &b);
        assert_close(&out, &naive(&a, &b));
        assert!(cycles > array.tile_cycles(9));
    }

    #[test]
    fn lighttrader_region_runs_real_layer_shapes() {
        let array = SystolicArray::lighttrader();
        // A tiny-CNN fc1-like shape: [1, 88] x [88, 16].
        let a = Tensor::random(&[1, 88], 1.0, 5);
        let b = Tensor::random(&[88, 16], 1.0, 6);
        let (out, _) = array.matmul(&a, &b);
        assert_close(&out, &naive(&a, &b));
    }

    #[test]
    fn cycles_scale_with_depth_not_width_within_a_tile() {
        let array = SystolicArray::new(4, 4);
        let shallow = {
            let a = Tensor::random(&[4, 8], 1.0, 7);
            let b = Tensor::random(&[8, 4], 1.0, 8);
            array.matmul(&a, &b).1
        };
        let deep = {
            let a = Tensor::random(&[4, 64], 1.0, 9);
            let b = Tensor::random(&[64, 4], 1.0, 10);
            array.matmul(&a, &b).1
        };
        assert!(deep > shallow);
        // One tile each: difference equals the depth difference exactly —
        // the streaming property of the systolic schedule.
        assert_eq!(deep - shallow, 64 - 8);
    }

    #[test]
    fn pipeline_overhead_is_fill_plus_drain() {
        // A 1x1 "array" degenerates to a sequential MAC: exactly K cycles.
        let array = SystolicArray::new(1, 1);
        let a = Tensor::random(&[1, 16], 1.0, 11);
        let b = Tensor::random(&[16, 1], 1.0, 12);
        let (out, cycles) = array.matmul(&a, &b);
        assert_close(&out, &naive(&a, &b));
        assert_eq!(cycles, 16, "K cycles on a single PE");
        // A 4x4 tile of the same depth pays the skew fill/drain.
        let array = SystolicArray::new(4, 4);
        let a = Tensor::random(&[4, 16], 1.0, 13);
        let b = Tensor::random(&[16, 4], 1.0, 14);
        let (out, cycles) = array.matmul(&a, &b);
        assert_close(&out, &naive(&a, &b));
        assert_eq!(cycles, array.tile_cycles(16));
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn shape_mismatch_panics() {
        let array = SystolicArray::new(2, 2);
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = array.matmul(&a, &b);
    }
}
