//! The custom chip-to-chip (C2C) link between FPGA and accelerator.
//!
//! Fig. 9 describes the link's latency/bandwidth optimizations: source
//! synchronous clocking, out-of-band flow control carried on two
//! dedicated bits, striping across 16-bit lanes, and watermark-based FIFO
//! flow control. The paper credits these with a 2.4x effective-bandwidth
//! gain over an Interlaken-style implementation; [`C2cLink`] and
//! [`InterlakenLink`] model both so the ablation bench can reproduce the
//! ratio, and [`WatermarkFifo`] implements the flow-control state machine
//! functionally.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// The custom lane-striped link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct C2cLink {
    /// Number of 16-bit data lanes.
    pub lanes: u32,
    /// Per-lane symbol rate in Gbaud (each symbol carries 16 payload bits
    /// thanks to out-of-band flow control — no in-band framing tax).
    pub lane_gbaud: f64,
    /// Fixed request/response latency (serialization start-up, SYNC).
    pub fixed_latency: Duration,
}

impl C2cLink {
    /// LightTrader's link: 16 lanes x 1.4 Gbaud x 16 bit = 358.4 Gb/s of
    /// payload, 2.4x the Interlaken-style baseline's effective rate.
    pub fn lighttrader() -> Self {
        C2cLink {
            lanes: 16,
            lane_gbaud: 1.4,
            fixed_latency: Duration::from_nanos(500),
        }
    }

    /// Effective payload bandwidth in bits per second: every 16-bit lane
    /// symbol is payload because flow control travels out-of-band.
    pub fn payload_bits_per_sec(&self) -> f64 {
        self.lanes as f64 * self.lane_gbaud * 1e9 * 16.0
    }

    /// Time to move `bytes` across the link.
    pub fn transfer_time(&self, bytes: usize) -> Duration {
        let bits = bytes as f64 * 8.0;
        let secs = bits / self.payload_bits_per_sec();
        self.fixed_latency + Duration::from_secs_f64(secs)
    }
}

/// An Interlaken-style baseline: same physical lanes, but 64b/67b coding
/// plus in-band control words eat into payload bandwidth, and framing
/// adds latency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterlakenLink {
    /// Number of lanes (matched to the custom link for a fair ablation).
    pub lanes: u32,
    /// Per-lane symbol rate in Gbaud.
    pub lane_gbaud: f64,
    /// Fixed framing latency.
    pub fixed_latency: Duration,
}

impl InterlakenLink {
    /// The 150G-class configuration the paper compares against.
    pub fn interlaken_150g() -> Self {
        InterlakenLink {
            lanes: 16,
            lane_gbaud: 1.4,
            fixed_latency: Duration::from_nanos(1_200),
        }
    }

    /// Effective payload bandwidth: 64/67 line coding, in-band control
    /// words every 2048 bits, and protocol overhead reduce the payload
    /// fraction to ~41.7% of the raw symbol rate.
    pub fn payload_bits_per_sec(&self) -> f64 {
        let raw = self.lanes as f64 * self.lane_gbaud * 1e9 * 16.0;
        let coding = 64.0 / 67.0;
        let control = 2048.0 / (2048.0 + 64.0);
        let burst_overhead = 0.45; // burst-interleaving + scheduling slack
        raw * coding * control * burst_overhead
    }

    /// Time to move `bytes` across the link.
    pub fn transfer_time(&self, bytes: usize) -> Duration {
        let bits = bytes as f64 * 8.0;
        let secs = bits / self.payload_bits_per_sec();
        self.fixed_latency + Duration::from_secs_f64(secs)
    }
}

/// Watermark-based flow control (Fig. 9(d)): the receiver FIFO raises
/// `almost_full` above the high watermark and `almost_empty` below the
/// low watermark; the two bits travel out-of-band to the sender.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WatermarkFifo {
    capacity: usize,
    high: usize,
    low: usize,
    occupancy: usize,
}

impl WatermarkFifo {
    /// Creates a FIFO with the given capacity and watermarks.
    ///
    /// # Panics
    ///
    /// Panics unless `low < high <= capacity` and `capacity > 0`.
    pub fn new(capacity: usize, low: usize, high: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(
            low < high && high <= capacity,
            "need low < high <= capacity"
        );
        WatermarkFifo {
            capacity,
            high,
            low,
            occupancy: 0,
        }
    }

    /// Current fill level.
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// The out-of-band `almost_full` bit: sender must pause.
    pub fn almost_full(&self) -> bool {
        self.occupancy >= self.high
    }

    /// The out-of-band `almost_empty` bit: sender may burst.
    pub fn almost_empty(&self) -> bool {
        self.occupancy <= self.low
    }

    /// Sender pushes `n` words; returns how many were accepted (the rest
    /// are back-pressured; with correct flow control this never truncates
    /// because the sender respects `almost_full`).
    pub fn push(&mut self, n: usize) -> usize {
        let accepted = n.min(self.capacity - self.occupancy);
        self.occupancy += accepted;
        accepted
    }

    /// Receiver drains up to `n` words; returns how many were available.
    pub fn pop(&mut self, n: usize) -> usize {
        let drained = n.min(self.occupancy);
        self.occupancy -= drained;
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline ablation: the custom link's effective bandwidth is
    /// ~2.4x the Interlaken-style baseline (Fig. 9 / §III-C).
    #[test]
    fn custom_link_is_2_4x_interlaken() {
        let custom = C2cLink::lighttrader();
        let baseline = InterlakenLink::interlaken_150g();
        let ratio = custom.payload_bits_per_sec() / baseline.payload_bits_per_sec();
        assert!(
            (ratio - 2.4).abs() < 0.1,
            "bandwidth ratio {ratio:.2}, paper claims 2.4x"
        );
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let link = C2cLink::lighttrader();
        let t1 = link.transfer_time(1_000);
        let t10 = link.transfer_time(10_000);
        assert!(t10 > t1);
        // Fixed latency dominates tiny transfers.
        let t0 = link.transfer_time(0);
        assert_eq!(t0, link.fixed_latency);
    }

    #[test]
    fn custom_beats_interlaken_on_latency_too() {
        let custom = C2cLink::lighttrader();
        let baseline = InterlakenLink::interlaken_150g();
        for bytes in [64, 1_000, 100_000] {
            assert!(custom.transfer_time(bytes) < baseline.transfer_time(bytes));
        }
    }

    #[test]
    fn payload_rate_sanity() {
        // 16 lanes x 1.4 Gbaud x 16 bits = 358.4 Gb/s.
        let bw = C2cLink::lighttrader().payload_bits_per_sec();
        assert!((bw - 358.4e9).abs() / 358.4e9 < 1e-9, "bw = {bw:.3e}");
    }

    #[test]
    fn watermark_bits_toggle() {
        let mut fifo = WatermarkFifo::new(16, 4, 12);
        assert!(fifo.almost_empty());
        assert!(!fifo.almost_full());
        assert_eq!(fifo.push(12), 12);
        assert!(fifo.almost_full());
        assert!(!fifo.almost_empty());
        assert_eq!(fifo.pop(9), 9);
        assert!(fifo.almost_empty());
        assert_eq!(fifo.occupancy(), 3);
    }

    #[test]
    fn fifo_never_overflows() {
        let mut fifo = WatermarkFifo::new(8, 2, 6);
        assert_eq!(fifo.push(100), 8, "capacity clamps the push");
        assert_eq!(fifo.occupancy(), 8);
        assert_eq!(fifo.pop(100), 8);
        assert_eq!(fifo.occupancy(), 0);
    }

    /// A sender respecting `almost_full` never loses words.
    #[test]
    fn flow_controlled_sender_never_truncates() {
        let mut fifo = WatermarkFifo::new(16, 4, 12);
        let mut sent = 0usize;
        let mut received = 0usize;
        for step in 0..1_000 {
            if !fifo.almost_full() {
                let pushed = fifo.push(3);
                assert_eq!(pushed, 3, "step {step}");
                sent += pushed;
            }
            if step % 2 == 0 {
                received += fifo.pop(4);
            }
        }
        received += fifo.pop(usize::MAX);
        assert_eq!(sent, received);
    }

    #[test]
    #[should_panic(expected = "low < high")]
    fn bad_watermarks_panic() {
        let _ = WatermarkFifo::new(8, 6, 6);
    }
}
