//! The CGRA AI-accelerator simulator.
//!
//! The paper's accelerator is a 7 nm ASIC (Table I: 0.68–1.16 V, up to
//! 2.2 GHz, up to 10.8 W) built around a Coarse-Grained Reconfigurable
//! Array: a tensor engine of regular and extended PEs, a memory engine
//! with double-buffered LSUs and a streaming data formatter, and a custom
//! chip-to-chip link to the host FPGA (§III-C). Silicon obviously cannot
//! be reproduced; this crate substitutes a simulator with two fidelity
//! levels, exactly mirroring how the paper itself evaluates (it profiles
//! the hardware once, then drives a back-test simulator from the
//! profiles, §IV-A):
//!
//! * **functional** — [`cgra`] executes real (tiny) tensor programs on a
//!   modeled PE grid with cycle accounting; [`pe`] steps a systolic
//!   PE-to-neighbour dataflow cycle by cycle; [`fmt`] implements the data
//!   formatter's layout transformations; [`memory`] models DMEM residency
//!   and double-buffered LSU transfers; [`c2c`] models the link's lane
//!   striping and watermark flow control, including the Interlaken-style
//!   baseline for the paper's 2.4x bandwidth claim (Fig. 9); [`program`]
//!   is the compiler layer lowering model specs into command streams;
//! * **profiled** — [`latency`] and [`power`] are analytic models
//!   calibrated to the paper's anchors (batch-1 latencies of Fig. 11a,
//!   the Table I power envelope, and the Table III frequency grid, which
//!   [`dvfs::static_plan`] reproduces cell-for-cell);
//!   [`profile::DeviceProfile`] packages them into the `(latency, power,
//!   PPW)` lookup the scheduler consumes.
//!
//! [`device::Accelerator`] is the per-chip state machine (busy/idle, DVFS
//! point with PMIC switching delay) that the discrete-event simulator
//! drives.

pub mod c2c;
pub mod cgra;
pub mod device;
pub mod dvfs;
pub mod fmt;
pub mod latency;
pub mod memory;
pub mod pe;
pub mod power;
pub mod profile;
pub mod program;

pub use device::Accelerator;
pub use dvfs::{static_plan, AccelSpec, DvfsTable, OperatingPoint, StaticPlan};
pub use latency::LatencyModel;
pub use power::{PowerCondition, PowerModel};
pub use profile::DeviceProfile;
