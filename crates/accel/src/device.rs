//! The per-chip device state machine driven by the simulator.

use crate::dvfs::{DvfsTable, OperatingPoint};
use lt_lob::Timestamp;
use std::time::Duration;

/// Completion-callback token for one issued (or re-timed) busy window.
///
/// The discrete-event simulator schedules a completion event carrying the
/// token returned by [`Accelerator::start_batch`]. When a DVFS rescale
/// re-times the in-flight batch, [`Accelerator::retime_batch`] issues a
/// fresh token, so the completion event scheduled for the *old* finishing
/// time no longer matches [`Accelerator::current_batch`] and is discarded
/// instead of completing the batch twice.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BatchId(u64);

/// One AI accelerator: its DVFS point, busy window, and switch history.
///
/// The scheduler mutates this through [`Accelerator::set_point`] (which
/// charges the PMIC switching delay and enforces the minimum dwell time)
/// and [`Accelerator::start_batch`]; the discrete-event simulator reads
/// [`Accelerator::busy_until`] to know when the chip frees up.
#[derive(Debug, Clone, PartialEq)]
pub struct Accelerator {
    id: usize,
    point: OperatingPoint,
    busy_until: Option<Timestamp>,
    last_switch: Option<Timestamp>,
    switches: u64,
    batches: u64,
    issued: u64,
    current: Option<BatchId>,
}

impl Accelerator {
    /// Creates an idle accelerator at `point`.
    pub fn new(id: usize, point: OperatingPoint) -> Self {
        Accelerator {
            id,
            point,
            busy_until: None,
            last_switch: None,
            switches: 0,
            batches: 0,
            issued: 0,
            current: None,
        }
    }

    /// Device id (index on the card).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The current operating point.
    pub fn point(&self) -> OperatingPoint {
        self.point
    }

    /// When the current batch completes, if busy.
    pub fn busy_until(&self) -> Option<Timestamp> {
        self.busy_until
    }

    /// True when no batch is in flight at `now`.
    pub fn is_idle(&self, now: Timestamp) -> bool {
        match self.busy_until {
            Some(t) => t <= now,
            None => true,
        }
    }

    /// Total DVFS switches performed.
    pub fn switch_count(&self) -> u64 {
        self.switches
    }

    /// Total batches executed.
    pub fn batch_count(&self) -> u64 {
        self.batches
    }

    /// Requests a DVFS change at `now`.
    ///
    /// Returns the *delay before the new point is usable*: zero when the
    /// point is unchanged; otherwise the PMIC switching delay, extended if
    /// the minimum dwell time since the previous switch has not elapsed
    /// (the paper's guard against rapid repeated scaling, §III-D).
    pub fn set_point(&mut self, target: OperatingPoint, now: Timestamp) -> Duration {
        if (target.freq_ghz - self.point.freq_ghz).abs() < 1e-12 {
            return Duration::ZERO;
        }
        let dwell_wait = match self.last_switch {
            Some(prev) if prev > now => {
                // The previous switch has not even taken effect yet: wait
                // for it, then a full dwell period.
                prev.since(now) + DvfsTable::MIN_DWELL
            }
            Some(prev) => DvfsTable::MIN_DWELL.saturating_sub(now.since(prev)),
            None => Duration::ZERO,
        };
        let delay = dwell_wait + DvfsTable::SWITCH_DELAY;
        self.point = target;
        self.last_switch = Some(now + delay);
        self.switches += 1;
        delay
    }

    /// Marks the device busy until `completion`, returning the token the
    /// matching completion event must carry.
    ///
    /// # Panics
    ///
    /// Panics if the device is already busy at `now`.
    pub fn start_batch(&mut self, now: Timestamp, completion: Timestamp) -> BatchId {
        assert!(
            self.is_idle(now),
            "accelerator {} already busy until {:?}",
            self.id,
            self.busy_until
        );
        assert!(completion >= now, "completion before start");
        self.busy_until = Some(completion);
        self.batches += 1;
        self.next_token()
    }

    /// Moves the in-flight batch's finishing time (a DVFS rescale
    /// stretched or shrank the remaining work) and returns a fresh
    /// completion token; the token from [`Self::start_batch`] — and any
    /// completion event carrying it — becomes stale.
    ///
    /// # Panics
    ///
    /// Panics if no batch is in flight.
    pub fn retime_batch(&mut self, completion: Timestamp) -> BatchId {
        assert!(
            self.current.is_some(),
            "accelerator {} has no batch to re-time",
            self.id
        );
        self.busy_until = Some(completion);
        self.next_token()
    }

    /// The token of the in-flight batch, if any. A completion event whose
    /// token does not match is stale and must be ignored.
    pub fn current_batch(&self) -> Option<BatchId> {
        self.current
    }

    /// Clears the busy window (called by the simulator at completion).
    pub fn finish_batch(&mut self) {
        self.busy_until = None;
        self.current = None;
    }

    fn next_token(&mut self) -> BatchId {
        let id = BatchId(self.issued);
        self.issued += 1;
        self.current = Some(id);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(us: u64) -> Timestamp {
        Timestamp::from_micros(us)
    }

    fn accel() -> Accelerator {
        Accelerator::new(0, OperatingPoint::at_freq(2.0))
    }

    #[test]
    fn starts_idle() {
        let a = accel();
        assert!(a.is_idle(ts(0)));
        assert_eq!(a.busy_until(), None);
        assert_eq!(a.switch_count(), 0);
    }

    #[test]
    fn busy_window_lifecycle() {
        let mut a = accel();
        a.start_batch(ts(10), ts(110));
        assert!(!a.is_idle(ts(50)));
        assert!(a.is_idle(ts(110)), "idle exactly at completion");
        a.finish_batch();
        assert!(a.is_idle(ts(50)));
        assert_eq!(a.batch_count(), 1);
    }

    #[test]
    #[should_panic(expected = "already busy")]
    fn double_start_panics() {
        let mut a = accel();
        a.start_batch(ts(0), ts(100));
        a.start_batch(ts(50), ts(150));
    }

    #[test]
    fn same_point_switch_is_free() {
        let mut a = accel();
        let d = a.set_point(OperatingPoint::at_freq(2.0), ts(0));
        assert_eq!(d, Duration::ZERO);
        assert_eq!(a.switch_count(), 0);
    }

    #[test]
    fn switch_charges_pmic_delay() {
        let mut a = accel();
        let d = a.set_point(OperatingPoint::at_freq(1.5), ts(0));
        assert_eq!(d, DvfsTable::SWITCH_DELAY);
        assert_eq!(a.switch_count(), 1);
        assert!((a.point().freq_ghz - 1.5).abs() < 1e-12);
    }

    #[test]
    fn completion_tokens_go_stale_on_retime() {
        let mut a = accel();
        let first = a.start_batch(ts(0), ts(100));
        assert_eq!(a.current_batch(), Some(first));
        // A rescale re-times the batch: the first token goes stale.
        let second = a.retime_batch(ts(80));
        assert_ne!(first, second);
        assert_eq!(a.current_batch(), Some(second));
        assert_eq!(a.busy_until(), Some(ts(80)));
        a.finish_batch();
        assert_eq!(a.current_batch(), None);
        // Tokens never repeat across batches.
        let third = a.start_batch(ts(200), ts(300));
        assert_ne!(third, first);
        assert_ne!(third, second);
    }

    #[test]
    #[should_panic(expected = "no batch to re-time")]
    fn retime_without_batch_panics() {
        let mut a = accel();
        let _ = a.retime_batch(ts(10));
    }

    #[test]
    fn rapid_switches_pay_dwell_penalty() {
        let mut a = accel();
        let d1 = a.set_point(OperatingPoint::at_freq(1.5), ts(0));
        assert_eq!(d1, DvfsTable::SWITCH_DELAY);
        // Second switch only 20 µs later: must wait out the 50 µs dwell
        // (measured from when the first switch became effective).
        let d2 = a.set_point(OperatingPoint::at_freq(2.0), ts(20));
        assert!(d2 > DvfsTable::SWITCH_DELAY, "dwell not enforced: {d2:?}");
        // A switch after a long pause pays only the PMIC delay.
        let mut b = accel();
        b.set_point(OperatingPoint::at_freq(1.5), ts(0));
        let d3 = b.set_point(OperatingPoint::at_freq(2.0), ts(1_000));
        assert_eq!(d3, DvfsTable::SWITCH_DELAY);
    }
}
