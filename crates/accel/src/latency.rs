//! The calibrated inference-latency model.
//!
//! Anchored to the paper's Fig. 11(a): with a single accelerator at the
//! 2.0 GHz evaluation clock and batch size 1, LightTrader infers the
//! Vanilla CNN in 119 µs, TransLOB in 160 µs, and DeepLOB in 296 µs.
//! Around those anchors:
//!
//! * a small frequency-independent floor covers control, kernel launch,
//!   and interrupt turnaround;
//! * the compute portion scales as `1/f` with the DVFS point;
//! * batching amortizes: sample `b`'s marginal cost shrinks as the PE
//!   grid fills (`eff(b) = 0.5 + 0.5·b^-0.6`), matching the paper's
//!   "batch-insensitive" mapping that still leaves batching worthwhile
//!   under bursts (§III-D);
//! * transfer time (`t_trans` in Algorithm 1) is priced by the C2C link.
//!
//! Note on Table II: the paper's 16 TFLOPS peak cannot execute 93–515 G
//! OPs in 119–296 µs, so "Total OPs" must cover an evaluation bundle
//! rather than a single query. We therefore treat Table II as the model
//! complexity metric (reproduced analytically in `lt-dnn`) and calibrate
//! latency directly to the Fig. 11(a) anchors; effective-throughput
//! figures (Fig. 11c) divide the per-inference workload
//! `ops / INFERENCE_BUNDLE` by these latencies. See EXPERIMENTS.md.

use crate::c2c::C2cLink;
use crate::dvfs::OperatingPoint;
use lt_dnn::{ModelKind, Precision};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Queries per Table II "Total OPs" bundle (see module docs).
pub const INFERENCE_BUNDLE: u64 = 500;

/// Reference clock of the Fig. 11(a) anchors.
pub const REFERENCE_FREQ_GHZ: f64 = 2.0;

/// The calibrated latency model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Frequency-independent per-batch floor.
    fixed_ns: f64,
    /// Per-sample BF16 compute time at the reference clock, per model.
    sample_ns_cnn: f64,
    sample_ns_translob: f64,
    sample_ns_deeplob: f64,
}

impl LatencyModel {
    /// The calibration that reproduces Fig. 11(a)'s batch-1 anchors.
    pub fn calibrated() -> Self {
        const FIXED_NS: f64 = 5_000.0;
        LatencyModel {
            fixed_ns: FIXED_NS,
            sample_ns_cnn: 119_000.0 - FIXED_NS,
            sample_ns_translob: 160_000.0 - FIXED_NS,
            sample_ns_deeplob: 296_000.0 - FIXED_NS,
        }
    }

    fn sample_ns(&self, kind: ModelKind) -> f64 {
        match kind {
            ModelKind::VanillaCnn => self.sample_ns_cnn,
            ModelKind::TransLob => self.sample_ns_translob,
            ModelKind::DeepLob => self.sample_ns_deeplob,
        }
    }

    /// Marginal per-sample efficiency of batch-`b` execution: 1.0 at
    /// batch 1, falling toward 0.5 as the grid fills.
    pub fn batch_efficiency(batch: u32) -> f64 {
        assert!(batch >= 1, "batch must be at least 1");
        0.5 + 0.5 * (batch as f64).powf(-0.6)
    }

    /// Inference latency (`t_infer` in Algorithm 1) for a batch of
    /// `batch` queries of `kind` at `point` and `precision`.
    pub fn infer(
        &self,
        kind: ModelKind,
        batch: u32,
        point: OperatingPoint,
        precision: Precision,
    ) -> Duration {
        assert!(batch >= 1, "batch must be at least 1");
        let scale = REFERENCE_FREQ_GHZ / point.freq_ghz;
        let compute = batch as f64 * Self::batch_efficiency(batch) * self.sample_ns(kind) * scale
            / precision.throughput_multiplier();
        Duration::from_nanos((self.fixed_ns + compute) as u64)
    }

    /// Input-tensor byte size of one query of `kind` (BF16: 2 bytes per
    /// feature over the `[window, 40]` map).
    pub fn query_bytes(kind: ModelKind) -> usize {
        // All three paper specs use a 100-tick window of 40 features.
        let _ = kind;
        100 * 40 * 2
    }

    /// Result transfer latency (`t_trans` in Algorithm 1) over the C2C
    /// link: the batched input tensors plus the (tiny) result vector.
    pub fn transfer(&self, kind: ModelKind, batch: u32, link: &C2cLink) -> Duration {
        let bytes = Self::query_bytes(kind) * batch as usize + 16;
        link.transfer_time(bytes)
    }

    /// The per-inference workload in OPs (`Table II ops / bundle`).
    pub fn ops_per_inference(kind: ModelKind) -> f64 {
        kind.table2_ops() as f64 / INFERENCE_BUNDLE as f64
    }

    /// Effective throughput in TFLOPS sustained at batch 1 on `point`
    /// (used by the Fig. 11(c) energy-efficiency comparison).
    pub fn effective_tflops(&self, kind: ModelKind, point: OperatingPoint) -> f64 {
        let t = self.infer(kind, 1, point, Precision::Bf16).as_secs_f64();
        Self::ops_per_inference(kind) / t / 1e12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(f: f64) -> OperatingPoint {
        OperatingPoint::at_freq(f)
    }

    /// The Fig. 11(a) anchors reproduce exactly at the reference clock.
    #[test]
    fn batch1_anchors_at_reference_clock() {
        let m = LatencyModel::calibrated();
        let cases = [
            (ModelKind::VanillaCnn, 119),
            (ModelKind::TransLob, 160),
            (ModelKind::DeepLob, 296),
        ];
        for (kind, micros) in cases {
            let t = m.infer(kind, 1, p(2.0), Precision::Bf16);
            assert_eq!(t, Duration::from_micros(micros), "{kind}");
        }
    }

    #[test]
    fn latency_scales_inversely_with_frequency() {
        let m = LatencyModel::calibrated();
        let fast = m.infer(ModelKind::DeepLob, 1, p(2.0), Precision::Bf16);
        let slow = m.infer(ModelKind::DeepLob, 1, p(1.0), Precision::Bf16);
        // Compute portion doubles; fixed floor does not.
        assert!(slow > fast);
        let expected = 5_000.0 + 291_000.0 * 2.0;
        assert!((slow.as_nanos() as f64 - expected).abs() < 1_000.0);
    }

    #[test]
    fn batching_amortizes_but_costs_latency() {
        let m = LatencyModel::calibrated();
        let b1 = m.infer(ModelKind::VanillaCnn, 1, p(2.0), Precision::Bf16);
        let b4 = m.infer(ModelKind::VanillaCnn, 4, p(2.0), Precision::Bf16);
        // A batch of 4 is slower than one query...
        assert!(b4 > b1);
        // ...but much faster than four sequential queries.
        assert!(b4 < Duration::from_nanos(4 * b1.as_nanos() as u64));
        // Per-query throughput strictly improves with batch size.
        let per_q1 = b1.as_nanos() as f64;
        let per_q4 = b4.as_nanos() as f64 / 4.0;
        let per_q16 = m
            .infer(ModelKind::VanillaCnn, 16, p(2.0), Precision::Bf16)
            .as_nanos() as f64
            / 16.0;
        assert!(per_q4 < per_q1 && per_q16 < per_q4);
    }

    #[test]
    fn int8_is_faster_than_bf16() {
        let m = LatencyModel::calibrated();
        let bf16 = m.infer(ModelKind::DeepLob, 1, p(2.0), Precision::Bf16);
        let int8 = m.infer(ModelKind::DeepLob, 1, p(2.0), Precision::Int8);
        assert!(int8 < bf16);
        // Compute portion is 4x faster.
        let expect = 5_000.0 + 291_000.0 / 4.0;
        assert!((int8.as_nanos() as f64 - expect).abs() < 1_000.0);
    }

    #[test]
    fn transfer_is_small_relative_to_inference() {
        let m = LatencyModel::calibrated();
        let link = C2cLink::lighttrader();
        for kind in ModelKind::ALL {
            let t_trans = m.transfer(kind, 1, &link);
            let t_infer = m.infer(kind, 1, p(2.0), Precision::Bf16);
            assert!(t_trans.as_nanos() * 20 < t_infer.as_nanos());
        }
    }

    #[test]
    fn transfer_grows_with_batch() {
        let m = LatencyModel::calibrated();
        let link = C2cLink::lighttrader();
        let t1 = m.transfer(ModelKind::VanillaCnn, 1, &link);
        let t8 = m.transfer(ModelKind::VanillaCnn, 8, &link);
        assert!(t8 > t1);
    }

    #[test]
    fn effective_tflops_ordering_matches_paper_story() {
        // Bigger models utilize the CGRA grid better: DeepLOB sustains the
        // highest effective throughput.
        let m = LatencyModel::calibrated();
        let cnn = m.effective_tflops(ModelKind::VanillaCnn, p(2.0));
        let translob = m.effective_tflops(ModelKind::TransLob, p(2.0));
        let deeplob = m.effective_tflops(ModelKind::DeepLob, p(2.0));
        assert!(cnn < translob && translob < deeplob);
        // And all stay below the 16 TFLOPS peak.
        assert!(deeplob < 16.0);
    }

    #[test]
    fn batch_efficiency_shape() {
        assert_eq!(LatencyModel::batch_efficiency(1), 1.0);
        let e16 = LatencyModel::batch_efficiency(16);
        assert!(e16 > 0.5 && e16 < 0.7, "eff(16) = {e16}");
    }
}
