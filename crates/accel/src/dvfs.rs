//! DVFS operating points and the static (no-scheduling) power plan.
//!
//! Table I bounds the chip at 0.68–1.16 V and up to 2.2 GHz; the DVFS
//! table exposes that range in 0.1 GHz steps with a linear
//! voltage/frequency curve. [`static_plan`] reproduces the paper's
//! Table III: the conservative clock chosen per model when a fixed power
//! budget is split evenly across accelerators and no runtime scheduling
//! is active.

use crate::power::{PowerCondition, PowerModel};
use lt_dnn::ModelKind;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// The Table I device envelope.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccelSpec {
    /// Process node label.
    pub process: &'static str,
    /// Package edge in millimetres (square package).
    pub package_mm: f64,
    /// Supply range in volts.
    pub voltage_range: (f64, f64),
    /// Clock range in GHz.
    pub freq_range_ghz: (f64, f64),
    /// Maximum chip power in watts.
    pub max_power_w: f64,
    /// Peak BF16 throughput in TFLOPS (at max clock).
    pub peak_tflops_bf16: f64,
    /// Peak INT8 throughput in TOPS (at max clock).
    pub peak_tops_int8: f64,
}

impl AccelSpec {
    /// The Table I specification of the LightTrader accelerator.
    pub const TABLE1: AccelSpec = AccelSpec {
        process: "7 nm",
        package_mm: 8.7,
        voltage_range: (0.68, 1.16),
        freq_range_ghz: (0.8, 2.2),
        max_power_w: 10.8,
        peak_tflops_bf16: 16.0,
        peak_tops_int8: 64.0,
    };
}

/// One (frequency, voltage) pair the PMICs can configure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Core clock in GHz.
    pub freq_ghz: f64,
    /// Supply voltage in volts.
    pub voltage_v: f64,
}

impl OperatingPoint {
    /// The voltage on the linear V/f curve for a given frequency.
    ///
    /// # Panics
    ///
    /// Panics if `freq_ghz` is outside the Table I range.
    pub fn at_freq(freq_ghz: f64) -> Self {
        let (f_lo, f_hi) = AccelSpec::TABLE1.freq_range_ghz;
        let (v_lo, v_hi) = AccelSpec::TABLE1.voltage_range;
        assert!(
            (f_lo..=f_hi + 1e-9).contains(&freq_ghz),
            "frequency {freq_ghz} GHz outside [{f_lo}, {f_hi}]"
        );
        OperatingPoint {
            freq_ghz,
            voltage_v: v_lo + (v_hi - v_lo) * (freq_ghz - f_lo) / (f_hi - f_lo),
        }
    }
}

impl std::fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1} GHz @ {:.3} V", self.freq_ghz, self.voltage_v)
    }
}

/// The discrete DVFS table the scheduler iterates over (`dvfs_options` in
/// Algorithm 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsTable {
    points: Vec<OperatingPoint>,
}

impl DvfsTable {
    /// PMIC reconfiguration delay charged on every DVFS switch; "frequent
    /// changing in DVFS policy ... increases the overall latency due to
    /// the power switching delay" (§III-D).
    pub const SWITCH_DELAY: Duration = Duration::from_micros(10);

    /// Minimum dwell time at a point before the next switch, limiting the
    /// power-failure risk the paper warns about.
    pub const MIN_DWELL: Duration = Duration::from_micros(50);

    /// The full Table I range in 0.1 GHz steps (0.8 ..= 2.2 GHz).
    pub fn full_range() -> Self {
        let points = (8..=22)
            .map(|tenths| OperatingPoint::at_freq(tenths as f64 / 10.0))
            .collect();
        DvfsTable { points }
    }

    /// The evaluation table: capped at 2.0 GHz, the conservative maximum
    /// the paper's experiments use (Table III never exceeds 2.0 GHz).
    pub fn evaluation() -> Self {
        let points = (8..=20)
            .map(|tenths| OperatingPoint::at_freq(tenths as f64 / 10.0))
            .collect();
        DvfsTable { points }
    }

    /// A copy of this table restricted to points at or above `freq_ghz`
    /// (used by schedulers that must never under-clock a floor).
    ///
    /// # Panics
    ///
    /// Panics if no point satisfies the floor.
    pub fn at_least(&self, freq_ghz: f64) -> DvfsTable {
        let points: Vec<OperatingPoint> = self
            .points
            .iter()
            .filter(|p| p.freq_ghz >= freq_ghz - 1e-9)
            .copied()
            .collect();
        assert!(
            !points.is_empty(),
            "no DVFS point at or above {freq_ghz} GHz"
        );
        DvfsTable { points }
    }

    /// Points in ascending frequency order.
    pub fn points(&self) -> &[OperatingPoint] {
        &self.points
    }

    /// The fastest point.
    pub fn max(&self) -> OperatingPoint {
        *self.points.last().expect("table is never empty")
    }

    /// The slowest point.
    pub fn min(&self) -> OperatingPoint {
        *self.points.first().expect("table is never empty")
    }

    /// The next point up from `p`, if any.
    pub fn step_up(&self, p: OperatingPoint) -> Option<OperatingPoint> {
        self.points
            .iter()
            .find(|q| q.freq_ghz > p.freq_ghz + 1e-9)
            .copied()
    }

    /// The next point down from `p`, if any.
    pub fn step_down(&self, p: OperatingPoint) -> Option<OperatingPoint> {
        self.points
            .iter()
            .rev()
            .find(|q| q.freq_ghz < p.freq_ghz - 1e-9)
            .copied()
    }
}

/// The static configuration of one accelerator under an even power split —
/// the paper's no-scheduling baseline (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StaticPlan {
    /// Power available to each accelerator in watts.
    pub per_accel_power_w: f64,
    /// The conservative clock chosen (highest that fits the budget,
    /// capped at 2.0 GHz).
    pub point: OperatingPoint,
}

/// Computes the Table III static plan: split the condition's accelerator
/// power budget evenly across `n_accels` and pick the fastest evaluation
/// DVFS point whose batch-1 power fits.
///
/// # Panics
///
/// Panics if `n_accels` is zero or even the slowest point exceeds the
/// per-accelerator budget.
pub fn static_plan(kind: ModelKind, n_accels: usize, condition: PowerCondition) -> StaticPlan {
    assert!(n_accels > 0, "need at least one accelerator");
    let model = PowerModel::calibrated();
    let budget = condition.accelerator_budget_w() / n_accels as f64;
    let table = DvfsTable::evaluation();
    let point = table
        .points()
        .iter()
        .rev()
        .find(|p| model.power_w(kind, 1, **p) <= budget + 1e-9)
        .copied()
        .unwrap_or_else(|| {
            panic!(
                "budget {budget:.2} W per accelerator cannot power {kind} even at {}",
                table.min()
            )
        });
    StaticPlan {
        per_accel_power_w: budget,
        point,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_constants() {
        let s = AccelSpec::TABLE1;
        assert_eq!(s.process, "7 nm");
        assert_eq!(s.voltage_range, (0.68, 1.16));
        assert_eq!(s.freq_range_ghz, (0.8, 2.2));
        assert_eq!(s.max_power_w, 10.8);
        assert_eq!(s.peak_tflops_bf16, 16.0);
        assert_eq!(s.peak_tops_int8, 64.0);
    }

    #[test]
    fn voltage_curve_endpoints() {
        assert!((OperatingPoint::at_freq(0.8).voltage_v - 0.68).abs() < 1e-12);
        assert!((OperatingPoint::at_freq(2.2).voltage_v - 1.16).abs() < 1e-12);
        let mid = OperatingPoint::at_freq(1.5);
        assert!(mid.voltage_v > 0.68 && mid.voltage_v < 1.16);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_frequency_panics() {
        let _ = OperatingPoint::at_freq(2.5);
    }

    #[test]
    fn tables_are_ordered_and_bounded() {
        let full = DvfsTable::full_range();
        assert_eq!(full.points().len(), 15);
        assert!((full.max().freq_ghz - 2.2).abs() < 1e-9);
        assert!((full.min().freq_ghz - 0.8).abs() < 1e-9);
        for w in full.points().windows(2) {
            assert!(w[0].freq_ghz < w[1].freq_ghz);
            assert!(w[0].voltage_v < w[1].voltage_v);
        }
        let eval = DvfsTable::evaluation();
        assert!((eval.max().freq_ghz - 2.0).abs() < 1e-9);
    }

    #[test]
    fn stepping_moves_one_notch() {
        let t = DvfsTable::evaluation();
        let p = OperatingPoint::at_freq(1.5);
        assert!((t.step_up(p).unwrap().freq_ghz - 1.6).abs() < 1e-9);
        assert!((t.step_down(p).unwrap().freq_ghz - 1.4).abs() < 1e-9);
        assert!(t.step_up(t.max()).is_none());
        assert!(t.step_down(t.min()).is_none());
    }

    /// The headline reproduction: `static_plan` regenerates every cell of
    /// the paper's Table III frequency grid.
    #[test]
    fn static_plan_reproduces_table3() {
        use ModelKind::*;
        use PowerCondition::*;
        // (condition, accels, [cnn, translob, deeplob] GHz) — Table III.
        let rows = [
            (Sufficient, 1, [2.0, 2.0, 2.0]),
            (Sufficient, 2, [2.0, 2.0, 2.0]),
            (Sufficient, 4, [2.0, 2.0, 2.0]),
            (Sufficient, 8, [2.0, 2.0, 2.0]),
            (Sufficient, 16, [1.9, 1.7, 1.6]),
            (Limited, 1, [2.0, 2.0, 2.0]),
            (Limited, 2, [2.0, 2.0, 2.0]),
            (Limited, 4, [2.0, 1.9, 1.9]),
            (Limited, 8, [1.6, 1.5, 1.4]),
            (Limited, 16, [1.2, 1.0, 1.0]),
        ];
        for (cond, n, freqs) in rows {
            for (kind, expect) in [VanillaCnn, TransLob, DeepLob].into_iter().zip(freqs) {
                let plan = static_plan(kind, n, cond);
                assert!(
                    (plan.point.freq_ghz - expect).abs() < 1e-9,
                    "{kind} x{n} {cond:?}: got {:.1} GHz, Table III says {expect:.1}",
                    plan.point.freq_ghz
                );
            }
        }
    }

    #[test]
    fn static_plan_splits_budget_evenly() {
        let p1 = static_plan(ModelKind::VanillaCnn, 1, PowerCondition::Sufficient);
        let p4 = static_plan(ModelKind::VanillaCnn, 4, PowerCondition::Sufficient);
        assert!((p1.per_accel_power_w - 55.0).abs() < 1e-9);
        assert!((p4.per_accel_power_w - 13.75).abs() < 1e-9);
    }
}
