//! A functional, cycle-approximate CGRA tensor engine.
//!
//! The tensor engine is "a 2-D grid of the two types of processing
//! elements (PEs), the regular PE and the extended PE (EPE)" (§III-C):
//! regular PEs carry BF16/INT SIMD MAC datapaths, EPEs additionally
//! support transcendental functions for non-linear layers. This module
//! executes real tensor programs on a modeled grid while accounting
//! cycles: MACs are spread across the PE array's SIMD lanes, hyperblocks
//! pay a pipeline fill/drain cost, and non-linear element streams run on
//! the (fewer) EPE lanes at a higher per-element cost.
//!
//! It is deliberately *cycle-approximate*: the repro target is scheduler
//! and system behaviour, not RTL timing (see DESIGN.md non-goals); the
//! back-test simulator uses the profiled [`crate::latency`] model, while
//! this engine provides functional verification that the architecture
//! computes the same results as the plain `lt-dnn` layers.

use crate::dvfs::OperatingPoint;
use lt_dnn::ops::Linear;
use lt_dnn::Tensor;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Grid geometry of the tensor engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridConfig {
    /// PE rows.
    pub rows: usize,
    /// PE columns (the rightmost [`Self::epe_cols`] are EPEs).
    pub cols: usize,
    /// Columns populated with extended PEs.
    pub epe_cols: usize,
    /// SIMD MAC lanes per regular PE.
    pub simd_width: usize,
}

impl GridConfig {
    /// The LightTrader configuration: a 16x16 grid with two EPE columns
    /// and 16-wide BF16 SIMD — 4096 MACs/cycle, i.e. 16 TFLOPS (2 ops per
    /// MAC) near the 2.2 GHz peak clock, consistent with Table I.
    pub fn lighttrader() -> Self {
        GridConfig {
            rows: 16,
            cols: 16,
            epe_cols: 2,
            simd_width: 16,
        }
    }

    /// Regular-PE MAC lanes across the grid.
    pub fn mac_lanes(&self) -> usize {
        self.rows * (self.cols - self.epe_cols) * self.simd_width
    }

    /// EPE lanes available for non-linear streams.
    pub fn epe_lanes(&self) -> usize {
        self.rows * self.epe_cols
    }

    /// Peak MACs per second at `point`.
    pub fn peak_macs_per_sec(&self, point: OperatingPoint) -> f64 {
        self.mac_lanes() as f64 * point.freq_ghz * 1e9
    }
}

/// Cycle cost of one transcendental evaluation on an EPE.
const EPE_CYCLES_PER_ELEM: u64 = 4;
/// Pipeline fill/drain cost charged per hyperblock launch.
const HYPERBLOCK_FILL: u64 = 32;

/// The functional tensor-engine simulator.
///
/// # Example
///
/// ```
/// use lt_accel::cgra::{CgraSim, GridConfig};
/// use lt_dnn::ops::Linear;
/// use lt_dnn::Tensor;
///
/// let mut sim = CgraSim::new(GridConfig::lighttrader());
/// let layer = Linear::new(8, 4, 0);
/// let x = Tensor::random(&[8], 1.0, 1);
/// let y = sim.run_linear(&layer, &x);
/// assert_eq!(y, layer.forward(&x)); // bit-identical to the host path
/// assert!(sim.cycles() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct CgraSim {
    config: GridConfig,
    cycles: u64,
    macs: u64,
    hyperblocks: u64,
}

impl CgraSim {
    /// Creates an idle engine.
    pub fn new(config: GridConfig) -> Self {
        CgraSim {
            config,
            cycles: 0,
            macs: 0,
            hyperblocks: 0,
        }
    }

    /// The grid configuration.
    pub fn config(&self) -> GridConfig {
        self.config
    }

    /// Cycles consumed since construction or the last [`Self::reset`].
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// MACs executed.
    pub fn macs_executed(&self) -> u64 {
        self.macs
    }

    /// Hyperblocks launched.
    pub fn hyperblocks(&self) -> u64 {
        self.hyperblocks
    }

    /// Clears the cycle/MAC counters.
    pub fn reset(&mut self) {
        self.cycles = 0;
        self.macs = 0;
        self.hyperblocks = 0;
    }

    /// Achieved MAC-lane utilization in `[0, 1]` so far.
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.macs as f64 / (self.cycles as f64 * self.config.mac_lanes() as f64)
    }

    /// Wall-clock equivalent of the consumed cycles at `point`.
    pub fn elapsed(&self, point: OperatingPoint) -> Duration {
        Duration::from_secs_f64(self.cycles as f64 / (point.freq_ghz * 1e9))
    }

    fn charge_macs(&mut self, macs: u64) {
        self.hyperblocks += 1;
        self.macs += macs;
        let lanes = self.config.mac_lanes() as u64;
        self.cycles += HYPERBLOCK_FILL + macs.div_ceil(lanes);
    }

    fn charge_epe(&mut self, elems: u64) {
        self.hyperblocks += 1;
        let lanes = self.config.epe_lanes() as u64;
        self.cycles += HYPERBLOCK_FILL + (elems * EPE_CYCLES_PER_ELEM).div_ceil(lanes);
    }

    /// Matrix multiply `[m, k] x [k, n] -> [m, n]`, bit-identical to a
    /// naive host matmul, with cycle accounting.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn matmul(&mut self, a: &Tensor, b: &Tensor) -> Tensor {
        assert_eq!(a.shape().len(), 2, "a must be rank 2");
        assert_eq!(b.shape().len(), 2, "b must be rank 2");
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let (k2, n) = (b.shape()[0], b.shape()[1]);
        assert_eq!(k, k2, "inner dimensions differ: {k} vs {k2}");
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a.at(&[i, kk]) * b.at(&[kk, j]);
                }
                out.set(&[i, j], acc);
            }
        }
        self.charge_macs((m * n * k) as u64);
        out
    }

    /// Runs a dense layer on the grid; numerically identical to
    /// [`Linear::forward`].
    pub fn run_linear(&mut self, layer: &Linear, x: &Tensor) -> Tensor {
        let rows = if x.shape().len() == 1 {
            1
        } else {
            x.shape()[0]
        };
        self.charge_macs(layer.macs(rows as u64));
        // Arithmetic delegates to the reference layer so results stay
        // bit-identical to the host path; this simulator adds timing.
        layer.forward(x)
    }

    /// Applies a non-linear function elementwise on the EPE columns.
    pub fn run_nonlinear(&mut self, t: &mut Tensor, f: impl Fn(f32) -> f32) {
        self.charge_epe(t.len() as u64);
        for v in t.data_mut() {
            *v = f(*v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lighttrader_grid_peaks_at_16_tflops() {
        let g = GridConfig::lighttrader();
        // 16 rows x 14 regular cols x 16 SIMD = 3584 MAC lanes; at 2.2 GHz
        // that is 3584 * 2.2e9 * 2 ops = 15.8 TFLOPS ~ Table I's 16.
        let peak_ops = 2.0 * g.peak_macs_per_sec(OperatingPoint::at_freq(2.2));
        assert!(
            (peak_ops / 1e12 - 16.0).abs() < 0.35,
            "peak = {:.2} TFLOPS",
            peak_ops / 1e12
        );
    }

    #[test]
    fn matmul_matches_reference() {
        let mut sim = CgraSim::new(GridConfig::lighttrader());
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = sim.matmul(&a, &b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
        assert_eq!(sim.macs_executed(), 8);
        assert!(sim.cycles() > HYPERBLOCK_FILL);
    }

    #[test]
    fn linear_is_bit_identical_to_host() {
        let mut sim = CgraSim::new(GridConfig::lighttrader());
        let layer = Linear::new(32, 16, 9);
        let x = Tensor::random(&[32], 1.0, 10);
        assert_eq!(sim.run_linear(&layer, &x), layer.forward(&x));
        assert_eq!(sim.macs_executed(), 32 * 16);
    }

    #[test]
    fn nonlinear_runs_on_epe_and_costs_more_per_element() {
        let mut sim = CgraSim::new(GridConfig::lighttrader());
        let mut t = Tensor::from_vec(vec![-1.0, 0.0, 1.0], &[3]);
        sim.run_nonlinear(&mut t, |x| x.max(0.0));
        assert_eq!(t.data(), &[0.0, 0.0, 1.0]);
        let epe_cycles = sim.cycles();
        sim.reset();
        // The same element count as MACs would be cheaper (more lanes).
        sim.charge_macs(3);
        assert!(sim.cycles() <= epe_cycles);
    }

    #[test]
    fn utilization_improves_with_problem_size() {
        let cfg = GridConfig::lighttrader();
        let mut small = CgraSim::new(cfg);
        let a = Tensor::random(&[2, 2], 1.0, 0);
        let b = Tensor::random(&[2, 2], 1.0, 1);
        small.matmul(&a, &b);
        let mut large = CgraSim::new(cfg);
        let a = Tensor::random(&[64, 64], 1.0, 2);
        let b = Tensor::random(&[64, 64], 1.0, 3);
        large.matmul(&a, &b);
        assert!(
            large.utilization() > small.utilization() * 10.0,
            "small {:.4} vs large {:.4} — the paper's batch-insensitivity \
             story: bigger hyperblocks fill the grid",
            small.utilization(),
            large.utilization()
        );
    }

    #[test]
    fn elapsed_scales_with_frequency() {
        let mut sim = CgraSim::new(GridConfig::lighttrader());
        let a = Tensor::random(&[16, 16], 1.0, 0);
        let b = Tensor::random(&[16, 16], 1.0, 1);
        sim.matmul(&a, &b);
        let fast = sim.elapsed(OperatingPoint::at_freq(2.0));
        let slow = sim.elapsed(OperatingPoint::at_freq(1.0));
        assert_eq!(slow.as_nanos(), fast.as_nanos() * 2);
    }

    #[test]
    fn reset_clears_counters() {
        let mut sim = CgraSim::new(GridConfig::lighttrader());
        let a = Tensor::random(&[4, 4], 1.0, 0);
        let b = Tensor::random(&[4, 4], 1.0, 1);
        sim.matmul(&a, &b);
        assert!(sim.cycles() > 0);
        sim.reset();
        assert_eq!(sim.cycles(), 0);
        assert_eq!(sim.macs_executed(), 0);
        assert_eq!(sim.utilization(), 0.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn shape_mismatch_panics() {
        let mut sim = CgraSim::new(GridConfig::lighttrader());
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 2]);
        let _ = sim.matmul(&a, &b);
    }
}
